/**
 * @file
 * Trace-file tool: validate, summarize, diff, and convert the binary
 * traces produced by `--trace` (see src/trace/).
 *
 *   dws_trace check FILE           structural validation (exit 1 on
 *                                  any problem)
 *   dws_trace summary FILE         human-readable aggregate summary
 *   dws_trace diff A B             first divergent record of two runs
 *   dws_trace convert FILE -o OUT  re-emit as .json (Perfetto) or
 *                                  .jsonl (JSON-lines)
 *   dws_trace dump FILE [-n N]     print records as JSON lines
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "trace/reader.hh"
#include "trace/sinks.hh"

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: dws_trace check FILE\n"
                 "       dws_trace summary FILE\n"
                 "       dws_trace diff A B\n"
                 "       dws_trace convert FILE -o OUT.json|OUT.jsonl\n"
                 "       dws_trace dump FILE [-n N]\n");
}

bool
load(const std::string &path, dws::TraceData &t)
{
    std::string err;
    if (!dws::readTraceFile(path, t, err)) {
        std::fprintf(stderr, "dws_trace: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return true;
}

int
cmdCheck(const std::string &path)
{
    dws::TraceData t;
    if (!load(path, t))
        return 1;
    const auto problems = dws::checkTrace(t);
    if (problems.empty()) {
        std::printf("%s: OK (%zu records)\n", path.c_str(),
                    t.records.size());
        return 0;
    }
    for (const auto &p : problems)
        std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
    return 1;
}

int
cmdSummary(const std::string &path)
{
    dws::TraceData t;
    if (!load(path, t))
        return 1;
    dws::writeTraceSummary(std::cout, t);
    return 0;
}

int
cmdDiff(const std::string &a, const std::string &b)
{
    dws::TraceData ta, tb;
    if (!load(a, ta) || !load(b, tb))
        return 1;
    const long long at = dws::diffTraces(std::cout, ta, tb);
    if (at < 0) {
        std::printf("traces identical (%zu records)\n",
                    ta.records.size());
        return 0;
    }
    return 1;
}

int
cmdConvert(const std::string &in, const std::string &out)
{
    dws::TraceData t;
    if (!load(in, t))
        return 1;
    if (out.size() < 6 ||
        (out.rfind(".json") != out.size() - 5 &&
         out.rfind(".jsonl") != out.size() - 6)) {
        std::fprintf(stderr,
                     "dws_trace: convert output must end in .json "
                     "(Perfetto) or .jsonl (JSON-lines), got '%s'\n",
                     out.c_str());
        return 2;
    }
    auto sink = dws::makeTraceSink(out);
    if (!sink) {
        std::fprintf(stderr, "dws_trace: cannot open '%s'\n",
                     out.c_str());
        return 1;
    }
    // Replay the loaded trace through the sink verbatim.
    sink->begin(t.header);
    if (!t.records.empty())
        sink->write(t.records.data(), t.records.size());
    dws::TraceFileFooter foot = t.footer;
    if (!t.hasFooter) {
        std::memcpy(foot.magic, "DWSTFOOT", 8);
        foot.records = t.records.size();
        foot.dropped = 0;
        foot.checksum = dws::traceFnv1a(
                t.records.data(),
                t.records.size() * sizeof(dws::TraceRecord));
        foot.lastCycle =
                t.records.empty() ? 0 : t.records.back().cycle;
    }
    sink->end(foot);
    std::printf("%s: wrote %zu records to %s\n", in.c_str(),
                t.records.size(), out.c_str());
    return 0;
}

int
cmdDump(const std::string &path, long long limit)
{
    dws::TraceData t;
    if (!load(path, t))
        return 1;
    long long n = 0;
    for (const auto &r : t.records) {
        if (limit >= 0 && n >= limit)
            break;
        dws::writeRecordJson(std::cout, r);
        std::cout << '\n';
        n++;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "-h" || cmd == "--help" || cmd == "help") {
        usage(stdout);
        return 0;
    }
    if (cmd == "check" && argc == 3)
        return cmdCheck(argv[2]);
    if (cmd == "summary" && argc == 3)
        return cmdSummary(argv[2]);
    if (cmd == "diff" && argc == 4)
        return cmdDiff(argv[2], argv[3]);
    if (cmd == "convert") {
        std::string in, out;
        for (int i = 2; i < argc; i++) {
            if (!std::strcmp(argv[i], "-o") && i + 1 < argc)
                out = argv[++i];
            else if (in.empty())
                in = argv[i];
            else if (out.empty())
                out = argv[i];
        }
        if (!in.empty() && !out.empty())
            return cmdConvert(in, out);
    }
    if (cmd == "dump" && argc >= 3) {
        long long limit = -1;
        for (int i = 3; i < argc; i++) {
            if (!std::strcmp(argv[i], "-n") && i + 1 < argc)
                limit = std::atoll(argv[++i]);
        }
        return cmdDump(argv[2], limit);
    }
    usage(stderr);
    return 2;
}
