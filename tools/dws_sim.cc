/**
 * @file
 * dws_sim: command-line driver for the simulator.
 *
 * Runs one benchmark under one divergence policy with arbitrary
 * machine-parameter overrides and prints the full statistics, making
 * one-off experiments possible without writing C++.
 *
 *   dws_sim --kernel Filter --policy revive --width 16 --warps 4
 *   dws_sim --kernel Merge --policy conv --dcache-kb 16 --l2-lat 100
 *   dws_sim --kernel Merge --inject mask-flip@2000:seed=7
 *   dws_sim --campaign --campaign-out report.json
 *   dws_sim --list
 *   dws_sim --kernel FFT --disasm
 *
 * Exit codes (sim/abort.hh): 0 ok, 2 validation failed, 3 deadlock,
 * 4 cycle limit, 5 invariant violation, 6 panic, 7 watchdog timeout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "energy/energy.hh"
#include "fault/campaign.hh"
#include "fault/fault.hh"
#include "harness/runner.hh"
#include "isa/disasm.hh"
#include "sim/abort.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "trace/trace.hh"

using namespace dws;

namespace {

void
usage()
{
    std::puts(
        "usage: dws_sim [options]\n"
        "  --kernel NAME     benchmark (see --list) or a textual IR\n"
        "                    file (path or *.dws); default Filter\n"
        "  --policy NAME     conv | branch-stack | branch | bl-aggress |\n"
        "                    bl-lazy | bl-revive | mem-only | aggress |\n"
        "                    lazy | revive | slip | slip-bb\n"
        "  --scale S         tiny | default\n"
        "  --width N         SIMD width            --warps N   warps/WPU\n"
        "  --wpus N          number of WPUs        --slots N   sched slots\n"
        "  --wst N           warp-split entries    --seed N    input seed\n"
        "  --dcache-kb N     L1 D-cache capacity   --assoc N   (0 = full)\n"
        "  --l2-kb N         L2 capacity           --l2-lat N  L2 latency\n"
        "  --hier SPEC       explicit cache fabric: comma-separated\n"
        "                    levels name:size:assoc:lat[:slices[:mshrs]]\n"
        "                    with name l1i|l1d|l2|l3|...; sizes accept\n"
        "                    k/m/g, e.g. l1d:32k:8:3,l2:1m:16:30,\n"
        "                    l3:8m:16:60:2\n"
        "  --l3-kb N         add a shared L3 of N KB behind the L2\n"
        "  --l3-assoc N      L3 associativity (default 16)\n"
        "  --l3-lat N        L3 hit latency in cycles (default 60)\n"
        "  --subdiv N        branch heuristic bound (instrs)\n"
        "  --min-split N     over-subdivision width floor\n"
        "  --check-invariants[=N]  audit runtime invariants every N\n"
        "                    cycles (default 256; 0 disables; Debug\n"
        "                    builds audit by default)\n"
        "  --check-oracle    cross-validate the static-analysis claims\n"
        "                    against the execution (panics on any\n"
        "                    contradiction)\n"
        "  --trace[=MODE]    record a structured trace; MODE is events,\n"
        "                    timeline or all (default all)\n"
        "  --trace-out FILE  trace destination (default trace.dwst);\n"
        "                    .dwst binary, .jsonl JSON-lines, .json\n"
        "                    Perfetto (load in ui.perfetto.dev)\n"
        "  --trace-epoch N   timeline sample period in cycles "
        "(default 1024)\n"
        "  --max-cycles N    abort with the cycle-limit outcome past N\n"
        "                    cycles (0 disables)\n"
        "  --inject SPEC     plant one deterministic fault, SPEC =\n"
        "                    class@cycle[:wpu=N][:seed=S]; classes:\n"
        "                    wst-skew, mask-flip, mshr-drop-fill,\n"
        "                    mshr-delay-fill, stale-event-target,\n"
        "                    cache-tag-corrupt, sched-slot-skew\n"
        "  --campaign        run the detection-latency campaign (fault\n"
        "                    classes x seeds) and print the JSON report\n"
        "  --campaign-class C      restrict the campaign to one class\n"
        "                          (repeatable)\n"
        "  --campaign-seeds N      seeds per class (default 3)\n"
        "  --campaign-kernel NAME  kernel to poison (default Merge)\n"
        "  --campaign-cycle N      injection cycle (default 2000)\n"
        "  --campaign-cadence N    audit cadence in cycles (default 1)\n"
        "  --campaign-bound N      detection-latency bound (default "
        "50000)\n"
        "  --campaign-out FILE     write the report JSON to FILE\n"
        "  --disasm          print the kernel listing and exit\n"
        "  --list            print benchmark names and exit\n"
        "  --quiet           suppress warnings");
}

PolicyConfig
policyByName(const std::string &n)
{
    if (n == "conv")         return PolicyConfig::conv();
    if (n == "branch-stack") return PolicyConfig::branchOnlyStack();
    if (n == "branch")       return PolicyConfig::branchOnly();
    if (n == "bl-aggress")
        return PolicyConfig::memOnlyBranchLimited(SplitScheme::Aggressive);
    if (n == "bl-lazy")
        return PolicyConfig::memOnlyBranchLimited(SplitScheme::Lazy);
    if (n == "bl-revive")
        return PolicyConfig::memOnlyBranchLimited(SplitScheme::Revive);
    if (n == "mem-only")     return PolicyConfig::reviveMemOnly();
    if (n == "aggress")      return PolicyConfig::dws(SplitScheme::Aggressive);
    if (n == "lazy")         return PolicyConfig::dws(SplitScheme::Lazy);
    if (n == "revive")       return PolicyConfig::reviveSplit();
    if (n == "slip")         return PolicyConfig::adaptiveSlip();
    if (n == "slip-bb")      return PolicyConfig::slipBranchBypassCfg();
    fatal("unknown policy '%s'", n.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernelName = "Filter";
    std::string policyName = "conv";
    KernelScale scale = KernelScale::Default;
    SystemConfig cfg;
    bool wantDisasm = false;
    bool wantCampaign = false;
    std::string hierSpec;
    long long l3Kb = 0, l3Assoc = 16, l3Lat = 60;
    int campaignSeeds = 3;
    std::string campaignOut;
    CampaignOptions copts;

    auto intArg = [&](int &i) -> long long {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        const auto v = parseInt64(argv[i + 1]);
        if (!v)
            fatal("%s: '%s' is not a valid integer", argv[i],
                  argv[i + 1]);
        ++i;
        return *v;
    };

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage();
            return 0;
        } else if (!std::strcmp(a, "--list")) {
            for (const auto &n : kernelNames())
                std::puts(n.c_str());
            return 0;
        } else if (!std::strcmp(a, "--kernel") && i + 1 < argc) {
            kernelName = argv[++i];
        } else if (!std::strcmp(a, "--policy") && i + 1 < argc) {
            policyName = argv[++i];
        } else if (!std::strcmp(a, "--scale") && i + 1 < argc) {
            const std::string s = argv[++i];
            if (s == "tiny")
                scale = KernelScale::Tiny;
            else if (s == "default")
                scale = KernelScale::Default;
            else
                fatal("unknown scale '%s'", s.c_str());
        } else if (!std::strcmp(a, "--width")) {
            cfg.wpu.simdWidth = static_cast<int>(intArg(i));
            cfg.wpu.dcache.banks = cfg.wpu.simdWidth;
        } else if (!std::strcmp(a, "--warps")) {
            cfg.wpu.numWarps = static_cast<int>(intArg(i));
            cfg.wpu.schedSlots = 2 * cfg.wpu.numWarps;
        } else if (!std::strcmp(a, "--wpus")) {
            if (i + 1 >= argc)
                fatal("missing value for --wpus");
            const auto w = parseInt64InRange(argv[++i], 1, 1024);
            if (!w) {
                usage();
                std::fprintf(stderr,
                             "error: --wpus '%s' is not an integer in "
                             "[1, 1024]\n", argv[i]);
                return 2;
            }
            cfg.numWpus = static_cast<int>(*w);
        } else if (!std::strcmp(a, "--hier") && i + 1 < argc) {
            hierSpec = argv[++i];
        } else if (!std::strcmp(a, "--l3-kb")) {
            l3Kb = intArg(i);
        } else if (!std::strcmp(a, "--l3-assoc")) {
            l3Assoc = intArg(i);
        } else if (!std::strcmp(a, "--l3-lat")) {
            l3Lat = intArg(i);
        } else if (!std::strcmp(a, "--slots")) {
            cfg.wpu.schedSlots = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--wst")) {
            cfg.wpu.wstEntries = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--seed")) {
            cfg.seed = static_cast<std::uint64_t>(intArg(i));
        } else if (!std::strcmp(a, "--dcache-kb")) {
            cfg.wpu.dcache.sizeBytes =
                    static_cast<std::uint64_t>(intArg(i)) * 1024;
        } else if (!std::strcmp(a, "--assoc")) {
            cfg.wpu.dcache.assoc = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--l2-kb")) {
            cfg.mem.l2.sizeBytes =
                    static_cast<std::uint64_t>(intArg(i)) * 1024;
        } else if (!std::strcmp(a, "--l2-lat")) {
            cfg.mem.l2.hitLatency = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--subdiv")) {
            cfg.policy.subdivMaxPostBlock = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--min-split")) {
            cfg.policy.minSplitWidth = static_cast<int>(intArg(i));
        } else if (!std::strcmp(a, "--check-oracle")) {
            cfg.checkOracle = true;
        } else if (!std::strcmp(a, "--check-invariants")) {
            cfg.checkInvariants = 256;
        } else if (!std::strncmp(a, "--check-invariants=", 19)) {
            const auto v = parseInt64(a + 19);
            if (!v || *v < 0)
                fatal("--check-invariants: '%s' is not a valid cycle "
                      "count", a + 19);
            cfg.checkInvariants = static_cast<Cycle>(*v);
        } else if (!std::strcmp(a, "--trace")) {
            cfg.traceMode = static_cast<int>(TraceMode::All);
        } else if (!std::strncmp(a, "--trace=", 8)) {
            const TraceMode m = parseTraceMode(a + 8);
            if (m == TraceMode::Off)
                fatal("--trace mode must be events, timeline or all, "
                      "got '%s'", a + 8);
            cfg.traceMode = static_cast<int>(m);
        } else if (!std::strcmp(a, "--trace-out") && i + 1 < argc) {
            cfg.traceOut = argv[++i];
        } else if (!std::strcmp(a, "--trace-epoch")) {
            cfg.traceEpoch = static_cast<Cycle>(intArg(i));
        } else if (!std::strcmp(a, "--max-cycles")) {
            cfg.maxCycles = static_cast<Cycle>(intArg(i));
        } else if (!std::strcmp(a, "--inject") && i + 1 < argc) {
            cfg.faultSpec = argv[++i];
            if (!parseFaultSpec(cfg.faultSpec))
                fatal("invalid --inject spec '%s'",
                      cfg.faultSpec.c_str());
        } else if (!std::strncmp(a, "--inject=", 9)) {
            cfg.faultSpec = a + 9;
            if (!parseFaultSpec(cfg.faultSpec))
                fatal("invalid --inject spec '%s'",
                      cfg.faultSpec.c_str());
        } else if (!std::strcmp(a, "--campaign")) {
            wantCampaign = true;
        } else if (!std::strcmp(a, "--campaign-class") && i + 1 < argc) {
            const auto cls = faultClassFromName(argv[++i]);
            if (!cls)
                fatal("unknown fault class '%s'", argv[i]);
            copts.classes.push_back(*cls);
        } else if (!std::strcmp(a, "--campaign-seeds")) {
            campaignSeeds = static_cast<int>(intArg(i));
            if (campaignSeeds < 1)
                fatal("--campaign-seeds must be positive");
        } else if (!std::strcmp(a, "--campaign-kernel") && i + 1 < argc) {
            copts.kernel = argv[++i];
        } else if (!std::strcmp(a, "--campaign-cycle")) {
            copts.injectCycle = static_cast<Cycle>(intArg(i));
        } else if (!std::strcmp(a, "--campaign-cadence")) {
            copts.auditCadence = static_cast<Cycle>(intArg(i));
        } else if (!std::strcmp(a, "--campaign-bound")) {
            copts.detectBound = static_cast<Cycle>(intArg(i));
        } else if (!std::strcmp(a, "--campaign-out") && i + 1 < argc) {
            campaignOut = argv[++i];
        } else if (!std::strcmp(a, "--disasm")) {
            wantDisasm = true;
        } else if (!std::strcmp(a, "--quiet")) {
            setQuiet(true);
        } else {
            usage();
            fatal("unknown argument '%s'", a);
        }
    }

    if (!hierSpec.empty() && l3Kb > 0) {
        usage();
        std::fprintf(stderr,
                     "error: --hier and --l3-kb are mutually "
                     "exclusive\n");
        return 2;
    }
    if (!hierSpec.empty()) {
        HierarchySpec hs;
        std::string err;
        if (!HierarchySpec::parse(hierSpec, hs, err)) {
            usage();
            std::fprintf(stderr, "error: --hier: %s\n", err.c_str());
            return 2;
        }
        cfg.applyHierarchy(hs);
    } else if (l3Kb > 0) {
        HierarchySpec hs = HierarchySpec::withL3(
                static_cast<std::uint64_t>(l3Kb) * 1024,
                static_cast<int>(l3Assoc), static_cast<int>(l3Lat));
        // Keep any --l2-kb/--l2-lat overrides on the L2 level.
        hs.levels[0].cache = cfg.mem.l2;
        cfg.applyHierarchy(hs);
    } else if (l3Kb < 0 || (l3Kb == 0 && (l3Assoc != 16 || l3Lat != 60))) {
        usage();
        std::fprintf(stderr,
                     "error: --l3-assoc/--l3-lat require --l3-kb with a "
                     "positive capacity\n");
        return 2;
    }
    const std::string hierErr = cfg.hierarchy().validate(cfg.numWpus);
    if (!hierErr.empty()) {
        usage();
        std::fprintf(stderr, "error: %s\n", hierErr.c_str());
        return 2;
    }

    if (cfg.traceMode != 0 && cfg.traceOut.empty())
        cfg.traceOut = "trace.dwst";
    if (cfg.traceMode == 0 && !cfg.traceOut.empty())
        fatal("--trace-out requires --trace");

    const int subdiv = cfg.policy.subdivMaxPostBlock;
    const int minSplit = cfg.policy.minSplitWidth;
    cfg.policy = policyByName(policyName);
    cfg.policy.subdivMaxPostBlock = subdiv;
    cfg.policy.minSplitWidth = minSplit;

    if (wantDisasm) {
        KernelParams kp;
        kp.scale = scale;
        kp.seed = cfg.seed;
        kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;
        auto kernel = makeKernel(kernelName, kp);
        if (!kernel)
            fatal("unknown kernel '%s' (try --list)", kernelName.c_str());
        // Include .membytes so the listing is directly runnable via
        // --kernel FILE.
        std::fputs(disasm(kernel->buildProgram(),
                          kernel->memBytes()).c_str(),
                   stdout);
        return 0;
    }

    if (wantCampaign) {
        copts.seeds.clear();
        for (int s = 1; s <= campaignSeeds; s++)
            copts.seeds.push_back(static_cast<std::uint64_t>(s));
        const CampaignReport rep = runFaultCampaign(copts);
        std::printf("fault campaign: %zu cells -> %d detected, "
                    "%d contained, %d missed (max latency %llu cycles)\n",
                    rep.cells.size(), rep.detected, rep.contained,
                    rep.missed, (unsigned long long)rep.maxLatency);
        for (const auto &c : rep.cells)
            if (c.classification == "missed")
                std::printf("  MISSED %s: %s\n", c.spec.c_str(),
                            c.message.c_str());
        if (!campaignOut.empty()) {
            std::ofstream f(campaignOut, std::ios::trunc);
            if (!f.is_open())
                fatal("cannot open %s for writing",
                      campaignOut.c_str());
            writeCampaignReport(rep, f);
            f << '\n';
            std::printf("wrote report to %s\n", campaignOut.c_str());
        }
        return rep.missed == 0 ? 0 : 1;
    }

    RunResult r;
    try {
        // Catch structured failures so the driver can print the state
        // dump itself (simAbort would exit with the same code, but
        // without the run header printed below the dump).
        ScopedRecoverableAborts recoverable;
        r = runKernel(kernelName, cfg, scale);
    } catch (const SimAbortError &e) {
        if (!e.diagnostics.empty())
            std::fprintf(stderr, "%s\n", e.diagnostics.c_str());
        std::fprintf(stderr, "%s / %s failed: %s at cycle %llu: %s\n",
                     kernelName.c_str(), policyName.c_str(),
                     simOutcomeName(e.outcome),
                     (unsigned long long)e.cycle, e.what());
        return exitCodeFor(e.outcome);
    }
    std::printf("%s / %s (%s scale)\n", r.kernel.c_str(),
                r.policy.c_str(),
                scale == KernelScale::Tiny ? "tiny" : "default");
    std::printf("  validated:        %s\n", r.valid ? "yes" : "NO");
    std::printf("  cycles:           %llu\n",
                (unsigned long long)r.stats.cycles);
    std::printf("  scalar instrs:    %llu\n",
                (unsigned long long)r.stats.totalScalarInstrs());
    std::printf("  SIMD issues:      %llu (avg width %.2f)\n",
                (unsigned long long)r.stats.totalIssuedInstrs(),
                r.stats.avgSimdWidth());
    std::printf("  memory stall:     %.1f%%\n",
                100.0 * r.stats.memStallFrac());
    std::uint64_t bsp = 0, msp = 0, pcm = 0, stm = 0, wfd = 0;
    for (const auto &w : r.stats.wpus) {
        bsp += w.branchSplits;
        msp += w.memSplits;
        pcm += w.pcMerges;
        stm += w.stackMerges;
        wfd += w.wstFullDenials;
    }
    std::printf("  splits:           %llu branch, %llu memory "
                "(%llu denied by WST)\n",
                (unsigned long long)bsp, (unsigned long long)msp,
                (unsigned long long)wfd);
    std::printf("  merges:           %llu by PC, %llu by stack\n",
                (unsigned long long)pcm, (unsigned long long)stm);
    std::printf("  L2 accesses:      %llu (%.1f%% miss)\n",
                (unsigned long long)r.stats.mem.l2.accesses(),
                100.0 * r.stats.mem.l2.missRate());
    for (std::size_t d = 0; d < r.stats.mem.deeper.size(); d++)
        std::printf("  L%zu accesses:      %llu (%.1f%% miss)\n", d + 3,
                    (unsigned long long)r.stats.mem.deeper[d].accesses(),
                    100.0 * r.stats.mem.deeper[d].missRate());
    std::printf("  DRAM accesses:    %llu\n",
                (unsigned long long)r.stats.mem.dramAccesses);
    const EnergyBreakdown e = computeEnergy(r.stats, cfg);
    std::printf("  energy:           %.3f mJ (pipeline %.0f%%, caches "
                "%.0f%%, net %.0f%%, dram %.0f%%, leak %.0f%%)\n",
                e.total() * 1e-6, 100 * e.pipeline / e.total(),
                100 * e.caches / e.total(), 100 * e.network / e.total(),
                100 * e.dram / e.total(), 100 * e.leakage / e.total());
    if (cfg.traceMode != 0)
        std::printf("  trace:            %llu records -> %s "
                    "(%llu dropped)\n",
                    (unsigned long long)r.traceRecords,
                    cfg.traceOut.c_str(),
                    (unsigned long long)r.traceDropped);
    if (!cfg.faultSpec.empty())
        std::printf("  fault:            %s armed; run completed "
                    "without a structured abort\n",
                    cfg.faultSpec.c_str());
    if (cfg.checkOracle)
        std::printf("  oracle:           every static claim held "
                    "(a contradiction would have panicked)\n");
    return exitCodeFor(r.valid ? SimOutcome::Ok
                               : SimOutcome::ValidationFailed);
}
