/**
 * @file
 * dws_chaos: network-chaos campaign runner for the sweep service
 * (DESIGN.md §17, EXPERIMENTS.md).
 *
 * Boots a real dws_serve daemon behind a deterministic fault proxy
 * (fault/netfault.hh) and drives a mini-sweep through every
 * network-fault class in two modes — transient (the client must retry
 * to success) and persistent (the client must degrade to a correct
 * local run). A campaign passes only if EVERY cell's RunStats
 * fingerprint is byte-identical to a daemon-less baseline: zero wrong
 * tables, zero hangs.
 *
 *   dws_chaos                          # all classes, default seed
 *   dws_chaos --class corrupt-byte --seed 7 --out BENCH_chaos.json
 *
 * Exit code 0 iff all cells passed.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "fault/netfault.hh"
#include "serve/transport.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

using namespace dws;

namespace {

void
usage()
{
    std::puts(
        "usage: dws_chaos [options]\n"
        "  --class NAME    restrict to one fault class (repeatable):\n"
        "                  conn-refused, mid-frame-disconnect, "
        "corrupt-byte,\n"
        "                  stall-past-deadline, truncated-reply, "
        "busy-storm\n"
        "  --seed N        determinism seed (default 1)\n"
        "  --work-dir DIR  scratch directory (default .dws_chaos)\n"
        "  --rpc-timeout MS  client per-RPC deadline (default 1500)\n"
        "  --out FILE      write the JSON report to FILE\n"
        "  --help          this message");
}

NetFaultClass
classByName(const std::string &name)
{
    for (NetFaultClass c : allNetFaultClasses())
        if (name == netFaultClassName(c))
            return c;
    fatal("unknown fault class '%s'", name.c_str());
    return NetFaultClass::ConnRefused; // unreachable
}

} // namespace

int
main(int argc, char **argv)
{
    NetChaosOptions opts;
    opts.rpcTimeoutMs = 1500;
    std::string outPath;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--class") == 0) {
            if (i + 1 >= argc)
                fatal("--class requires a fault-class name");
            opts.classes.push_back(classByName(argv[++i]));
        } else if (std::strcmp(arg, "--seed") == 0) {
            if (i + 1 >= argc)
                fatal("--seed requires an integer");
            const auto n = parseUint64(argv[++i]);
            if (!n)
                fatal("--seed '%s' is not an integer", argv[i]);
            opts.seed = *n;
        } else if (std::strcmp(arg, "--work-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--work-dir requires a directory");
            opts.workDir = argv[++i];
        } else if (std::strcmp(arg, "--rpc-timeout") == 0) {
            if (i + 1 >= argc)
                fatal("--rpc-timeout requires milliseconds");
            const auto n = parseInt64InRange(argv[++i], 50, 600000);
            if (!n)
                fatal("--rpc-timeout '%s' is not a valid millisecond "
                      "count", argv[i]);
            opts.rpcTimeoutMs = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--out") == 0) {
            if (i + 1 >= argc)
                fatal("--out requires a file path");
            outPath = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg);
        }
    }

    setQuiet(false);
    ignoreSigpipe();
    const NetChaosReport report = runNetChaosCampaign(opts);

    std::printf("\n%-22s %-11s %5s %7s %6s %8s  %s\n", "class", "mode",
                "jobs", "matched", "served", "degraded", "result");
    for (const NetChaosCell &c : report.cells) {
        std::printf("%-22s %-11s %5d %7d %6d %8d  %s%s%s\n",
                    netFaultClassName(c.cls), c.mode.c_str(), c.jobs,
                    c.matched, c.served, c.degraded,
                    c.pass ? "PASS" : "FAIL",
                    c.detail.empty() ? "" : " — ", c.detail.c_str());
    }
    std::printf("\n%d/%d cells passed\n", report.passed,
                report.passed + report.failed);

    if (!outPath.empty()) {
        std::ofstream f(outPath, std::ios::trunc);
        if (!f)
            fatal("cannot write '%s'", outPath.c_str());
        writeNetChaosReport(report, f);
        inform("chaos report written to %s", outPath.c_str());
    }
    return report.allPassed() ? 0 : 1;
}
