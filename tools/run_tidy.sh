#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library, tool and test
# sources using the CMake compilation database.
#
#   tools/run_tidy.sh              # lint everything
#   tools/run_tidy.sh src/wpu      # lint one subtree
#   CLANG_TIDY=clang-tidy-15 tools/run_tidy.sh
#
# This is a BLOCKING CI leg: .clang-tidy promotes the enabled check
# families to errors (WarningsAsErrors), so any finding exits nonzero
# and fails tools/ci.sh. The only soft path is a missing clang-tidy
# binary: the script exits 0 with a notice so CI keeps working on
# minimal images. Set TIDY_REQUIRED=1 to turn even that into a failure
# (for images that are supposed to ship the toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
    if [ "${TIDY_REQUIRED:-0}" != "0" ]; then
        echo "run_tidy.sh: '$TIDY' not found and TIDY_REQUIRED=1" >&2
        exit 1
    fi
    echo "run_tidy.sh: '$TIDY' not found; skipping lint (set CLANG_TIDY to override)" >&2
    exit 0
fi

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -S . -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

roots=("$@")
[ ${#roots[@]} -eq 0 ] && roots=(src tools tests)
mapfile -t sources < <(find "${roots[@]}" -name '*.cc' | sort)
if [ ${#sources[@]} -eq 0 ]; then
    echo "run_tidy.sh: no sources under: ${roots[*]}" >&2
    exit 2
fi

echo "run_tidy.sh: linting ${#sources[@]} files with $TIDY"
"$TIDY" -p "$BUILD_DIR" --quiet "${sources[@]}"
