/**
 * @file
 * dws_kgen: seeded random kernel generator and differential-oracle
 * fuzz driver.
 *
 * Generates lint-clean-by-construction IR kernels (isa/kgen.hh),
 * optionally writes them out as `.dws` files, gates them through the
 * full static analyzer, and runs the differential oracle: the scalar
 * reference interpreter's final memory image must match the simulated
 * image under the conventional policy, every DWS scheme and slip.
 *
 *   dws_kgen --seed 1 --count 100 --lint --oracle --report fuzz.json
 *   dws_kgen --seed 7 --print
 *   dws_kgen --seed 7 --out examples/ir
 *
 * Exit codes: 0 every kernel generated, linted clean and passed the
 * oracle; 1 any failure; 2 usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "harness/system.hh"
#include "isa/asm.hh"
#include "isa/kgen.hh"
#include "isa/scalar_ref.hh"
#include "kernels/irfile.hh"
#include "sim/abort.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

using namespace dws;

namespace {

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: dws_kgen [options]\n"
        "  --seed N      first seed (default 1)\n"
        "  --count N     kernels to generate, seeds N..N+count-1 "
        "(default 1)\n"
        "  --stmts N     statements per phase (default 5)\n"
        "  --phases N    barrier-separated phases (default 2)\n"
        "  --depth N     max if/loop nesting depth (default 2)\n"
        "  --slot-bits N log2 of per-phase output slots (default 6)\n"
        "  --in-words N  read-only input words (default 64)\n"
        "  --out DIR     write each kernel to DIR/<name>.dws\n"
        "  --print       dump the kernel text to stdout\n"
        "  --lint        require a clean static-analysis report\n"
        "                (0 errors, 0 warnings)\n"
        "  --oracle      run the differential oracle across policies\n"
        "  --wpus N --warps N --width N  oracle machine (default "
        "2x2x8)\n"
        "  --report FILE write a JSON report\n"
        "  --quiet       suppress warnings\n"
        "exit codes: 0 all pass, 1 failures, 2 usage\n",
        out);
}

struct PolicyEntry
{
    const char *name;
    PolicyConfig cfg;
};

std::vector<PolicyEntry>
oraclePolicies()
{
    return {
        {"conv", PolicyConfig::conv()},
        {"branch-stack", PolicyConfig::branchOnlyStack()},
        {"branch", PolicyConfig::branchOnly()},
        {"bl-aggress",
         PolicyConfig::memOnlyBranchLimited(SplitScheme::Aggressive)},
        {"bl-lazy", PolicyConfig::memOnlyBranchLimited(SplitScheme::Lazy)},
        {"bl-revive",
         PolicyConfig::memOnlyBranchLimited(SplitScheme::Revive)},
        {"mem-only", PolicyConfig::reviveMemOnly()},
        {"aggress", PolicyConfig::dws(SplitScheme::Aggressive)},
        {"lazy", PolicyConfig::dws(SplitScheme::Lazy)},
        {"revive", PolicyConfig::reviveSplit()},
        {"slip", PolicyConfig::adaptiveSlip()},
        {"slip-bb", PolicyConfig::slipBranchBypassCfg()},
    };
}

struct KernelOutcome
{
    std::string name;
    std::uint64_t seed = 0;
    int instrs = 0;
    int lintErrors = 0;
    int lintWarnings = 0;
    bool assembled = false;
    bool scalarOk = false;
    std::uint64_t scalarInstrs = 0;
    std::uint64_t regHash = 0;
    std::vector<std::pair<std::string, std::string>> policies;
    bool oracleOk = true;

    bool
    pass(bool wantLint, bool wantOracle) const
    {
        if (!assembled)
            return false;
        if (wantLint && (lintErrors > 0 || lintWarnings > 0))
            return false;
        if (wantOracle && (!scalarOk || !oracleOk))
            return false;
        return true;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    int count = 1;
    KgenOptions base;
    SystemConfig cfg;
    cfg.numWpus = 2;
    cfg.wpu.numWarps = 2;
    cfg.wpu.simdWidth = 8;
    cfg.wpu.dcache.banks = 8;
    cfg.wpu.schedSlots = 4;
    std::string outDir, reportPath;
    bool print = false, wantLint = false, wantOracle = false;

    auto intArg = [&](int &i, std::int64_t lo, std::int64_t hi) {
        if (i + 1 >= argc) {
            usage(stderr);
            std::fprintf(stderr, "dws_kgen: missing value for %s\n",
                         argv[i]);
            std::exit(2);
        }
        const auto v = parseInt64InRange(argv[i + 1], lo, hi);
        if (!v) {
            usage(stderr);
            std::fprintf(stderr,
                         "dws_kgen: %s: '%s' is not an integer in "
                         "[%lld, %lld]\n",
                         argv[i], argv[i + 1], (long long)lo,
                         (long long)hi);
            std::exit(2);
        }
        ++i;
        return *v;
    };

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage(stdout);
            return 0;
        } else if (!std::strcmp(a, "--seed")) {
            seed = static_cast<std::uint64_t>(
                    intArg(i, 0, std::int64_t(1) << 62));
        } else if (!std::strcmp(a, "--count")) {
            count = static_cast<int>(intArg(i, 1, 100000));
        } else if (!std::strcmp(a, "--stmts")) {
            base.stmts = static_cast<int>(intArg(i, 1, 16));
        } else if (!std::strcmp(a, "--phases")) {
            base.phases = static_cast<int>(intArg(i, 1, 8));
        } else if (!std::strcmp(a, "--depth")) {
            base.maxDepth = static_cast<int>(intArg(i, 0, 3));
        } else if (!std::strcmp(a, "--slot-bits")) {
            base.slotBits = static_cast<int>(intArg(i, 1, 10));
        } else if (!std::strcmp(a, "--in-words")) {
            base.inWords = static_cast<int>(intArg(i, 8, 4096));
        } else if (!std::strcmp(a, "--wpus")) {
            cfg.numWpus = static_cast<int>(intArg(i, 1, 64));
        } else if (!std::strcmp(a, "--warps")) {
            cfg.wpu.numWarps = static_cast<int>(intArg(i, 1, 64));
            cfg.wpu.schedSlots = 2 * cfg.wpu.numWarps;
        } else if (!std::strcmp(a, "--width")) {
            cfg.wpu.simdWidth = static_cast<int>(intArg(i, 1, 64));
            cfg.wpu.dcache.banks = cfg.wpu.simdWidth;
        } else if (!std::strcmp(a, "--out") && i + 1 < argc) {
            outDir = argv[++i];
        } else if (!std::strcmp(a, "--report") && i + 1 < argc) {
            reportPath = argv[++i];
        } else if (!std::strcmp(a, "--print")) {
            print = true;
        } else if (!std::strcmp(a, "--lint")) {
            wantLint = true;
        } else if (!std::strcmp(a, "--oracle")) {
            wantOracle = true;
        } else if (!std::strcmp(a, "--quiet")) {
            setQuiet(true);
        } else {
            usage(stderr);
            std::fprintf(stderr, "dws_kgen: unknown option '%s'\n", a);
            return 2;
        }
    }

    const std::int64_t threads = cfg.totalThreads();
    const auto policies = oraclePolicies();
    std::vector<KernelOutcome> outcomes;
    int failures = 0;

    for (int k = 0; k < count; k++) {
        KgenOptions opt = base;
        opt.seed = seed + static_cast<std::uint64_t>(k);
        const std::string text = generateKernel(opt);

        KernelOutcome oc;
        oc.seed = opt.seed;

        if (print)
            std::fputs(text.c_str(), stdout);

        std::vector<AsmDiag> diags;
        auto ak = assemble(text, diags);
        if (!ak) {
            // Generator bug: the construction discipline should make
            // this impossible.
            std::fprintf(stderr,
                         "dws_kgen: seed %llu: generated kernel does "
                         "not assemble:\n",
                         (unsigned long long)opt.seed);
            for (const AsmDiag &d : diags)
                std::fprintf(stderr, "  %s\n", toString(d).c_str());
            oc.name = "gen" + std::to_string(opt.seed);
            outcomes.push_back(oc);
            failures++;
            continue;
        }
        oc.assembled = true;
        oc.name = ak->name;
        oc.instrs = ak->program.size();

        if (!outDir.empty()) {
            const std::string path = outDir + "/" + ak->name + ".dws";
            std::ofstream f(path, std::ios::trunc);
            if (!f.is_open())
                fatal("cannot write '%s'", path.c_str());
            f << text;
        }

        AnalysisInput input;
        input.memBytes = ak->memBytes;
        input.numThreads = threads;
        const StaticReport rep =
                StaticAnalyzer::analyze(ak->program, input);
        oc.lintErrors = rep.errors();
        oc.lintWarnings = rep.warnings();
        if (wantLint && (oc.lintErrors > 0 || oc.lintWarnings > 0)) {
            std::fprintf(stderr,
                         "dws_kgen: seed %llu (%s): not lint-clean "
                         "(%d errors, %d warnings):\n",
                         (unsigned long long)opt.seed, oc.name.c_str(),
                         oc.lintErrors, oc.lintWarnings);
            for (const Diagnostic &d : rep.diags)
                if (d.severity != Severity::Note)
                    std::fprintf(stderr, "  %s\n", toString(d).c_str());
        }

        if (wantOracle) {
            Memory golden(ak->memBytes);
            ak->initMemory(golden);
            const ScalarRefResult ref =
                    runScalarRef(ak->program, golden, threads);
            oc.scalarOk = ref.ok;
            oc.scalarInstrs = ref.instrs;
            oc.regHash = ref.regHash;
            if (!ref.ok) {
                std::fprintf(stderr,
                             "dws_kgen: seed %llu (%s): scalar "
                             "reference failed: %s\n",
                             (unsigned long long)opt.seed,
                             oc.name.c_str(), ref.error.c_str());
            } else {
                for (const PolicyEntry &pe : policies) {
                    SystemConfig pcfg = cfg;
                    pcfg.policy = pe.cfg;
                    KernelParams kp;
                    kp.launchThreads = threads;
                    auto kern = makeIrKernel(*ak, kp);
                    std::string verdict = "ok";
                    try {
                        ScopedRecoverableAborts recover;
                        System sys(pcfg, *kern);
                        sys.run();
                        if (!kern->validate(sys.memory()))
                            verdict = "memory-mismatch";
                    } catch (const SimAbortError &e) {
                        verdict = std::string(simOutcomeName(e.outcome)) +
                                  ": " + e.what();
                    }
                    if (verdict != "ok") {
                        oc.oracleOk = false;
                        std::fprintf(stderr,
                                     "dws_kgen: seed %llu (%s) under "
                                     "%s: %s\n",
                                     (unsigned long long)opt.seed,
                                     oc.name.c_str(), pe.name,
                                     verdict.c_str());
                    }
                    oc.policies.emplace_back(pe.name, verdict);
                }
            }
        }

        if (!oc.pass(wantLint, wantOracle))
            failures++;
        outcomes.push_back(std::move(oc));
    }

    if (!reportPath.empty()) {
        std::ofstream f(reportPath, std::ios::trunc);
        if (!f.is_open())
            fatal("cannot write report '%s'", reportPath.c_str());
        JsonWriter w(f, 2);
        w.beginObject();
        w.field("seed", seed);
        w.field("count", count);
        w.field("threads", threads);
        w.field("failures", failures);
        w.key("kernels");
        w.beginArray();
        for (const KernelOutcome &oc : outcomes) {
            w.beginObject();
            w.field("name", oc.name);
            w.field("seed", oc.seed);
            w.field("instrs", oc.instrs);
            w.field("assembled", oc.assembled);
            w.field("lint_errors", oc.lintErrors);
            w.field("lint_warnings", oc.lintWarnings);
            if (wantOracle) {
                w.field("scalar_ok", oc.scalarOk);
                w.field("scalar_instrs", oc.scalarInstrs);
                w.field("reg_hash", oc.regHash);
                w.key("policies");
                w.beginObject();
                for (const auto &[name, verdict] : oc.policies)
                    w.field(name, verdict);
                w.endObject();
            }
            w.field("pass", oc.pass(wantLint, wantOracle));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        f << "\n";
    }

    std::printf("dws_kgen: %d kernel(s), %d failure(s)%s%s\n", count,
                failures, wantLint ? ", lint gated" : "",
                wantOracle ? ", oracle across 12 policies" : "");
    return failures == 0 ? 0 : 1;
}
