#!/usr/bin/env bash
# Full CI sweep: Release build + tests + static lint + the simulator
# throughput benchmark (archived to BENCH_throughput.json), then an
# ASan+UBSan build that re-runs the tests and an every-cycle invariant
# audit of a DWS.ReviveSplit run of every kernel (paper Fig. 9 config,
# tiny scale), then a TSan build that exercises the parallel sweep
# executor (determinism test + a multi-job figure bench). Any failure
# aborts the script with a nonzero exit.
#
#   tools/ci.sh              # everything
#   JOBS=8 tools/ci.sh       # override parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "=== Release: configure + build ==="
cmake -S . -B build-ci-release -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"

echo "=== Release: ctest ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== Release: dws_lint --all ==="
./build-ci-release/tools/dws_lint --all

echo "=== Release: simulator throughput benchmark ==="
./build-ci-release/bench/bench_throughput --fast \
    --json BENCH_throughput.json
echo "  archived BENCH_throughput.json"

echo "=== ASan+UBSan: configure + build ==="
cmake -S . -B build-ci-asan -DCMAKE_BUILD_TYPE=Debug \
      -DDWS_ASAN=ON -DDWS_UBSAN=ON >/dev/null
cmake --build build-ci-asan -j "$JOBS"

echo "=== ASan+UBSan: ctest ==="
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== ASan+UBSan: every-cycle invariant audit, DWS.ReviveSplit ==="
for k in $(./build-ci-asan/tools/dws_sim --list); do
    ./build-ci-asan/tools/dws_sim --kernel "$k" --policy revive \
        --scale tiny --check-invariants=1 --quiet >/dev/null
    echo "  $k: clean"
done

echo "=== TSan: configure + build ==="
cmake -S . -B build-ci-tsan -DCMAKE_BUILD_TYPE=Debug \
      -DDWS_TSAN=ON >/dev/null
cmake --build build-ci-tsan -j "$JOBS"

echo "=== TSan: executor determinism + hot-path structure tests ==="
./build-ci-tsan/tests/dws_tests --gtest_filter='Executor.*:GoldenFingerprints.*:ReadyList*.*:GroupArena.*:BarrierPool.*:HotPathAudits.*'

echo "=== TSan: multi-job figure bench ==="
./build-ci-tsan/bench/bench_fig13_schemes --fast --jobs 4 >/dev/null
echo "  bench_fig13_schemes --fast --jobs 4: clean"

echo "=== clang-tidy (skipped automatically if not installed) ==="
tools/run_tidy.sh

echo "CI passed."
