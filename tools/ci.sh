#!/usr/bin/env bash
# Full CI sweep: Release build + tests + gating static analysis
# (dws_lint --all --json, archived to LINT_report.json, plus a
# dws_sim --check-oracle sweep proving execution never contradicts a
# static claim) + a hierarchy smoke leg (a 3-level 16-WPU fabric built
# from a --hier spec runs the scheme comparison and an
# invariant-audited pass over the .dws examples) + the simulator
# throughput benchmark (archived to BENCH_throughput.json) + the sweep
# service (a dws_serve daemon serves the figure sweep twice: the warm
# run must be 100% cache hits, byte-identical and >=5x faster, and the
# cache must survive a daemon restart; archived to BENCH_serve.json)
# + a TCP-loopback serve leg (the same daemon reached over
# --listen/--connect must produce byte-identical tables and 100% warm
# hits across a SIGTERM-drained restart, and dws_client must exit 3 on
# an unreachable endpoint)
# + the network chaos campaign (dws_chaos: every fault class x
# transient/persistent under a hard timeout, gated on all cells
# passing; archived to BENCH_chaos.json), then the
# tracing subsystem (fingerprint neutrality, a traced figure bench
# validated with dws_trace check + Perfetto convert, tracing overhead
# archived to BENCH_trace_overhead.json, and a DWS_TRACING=OFF build
# proving the hooks compile away), then an
# ASan+UBSan build that re-runs the tests and an every-cycle invariant
# audit of a DWS.ReviveSplit run of every kernel (paper Fig. 9 config,
# tiny scale), then a TSan build that exercises the parallel sweep
# executor (determinism test + a multi-job figure bench). Any failure
# aborts the script with a nonzero exit.
#
#   tools/ci.sh              # everything
#   JOBS=8 tools/ci.sh       # override parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "=== Release: configure + build ==="
cmake -S . -B build-ci-release -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"

echo "=== Release: ctest ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== Release: dws_lint --all (gating; report archived) ==="
# Exit 0 required: any error OR warning from the dataflow passes
# (init, deadstore, range, barrier, loopbound) fails CI. The JSON
# report is archived next to the benchmark records.
./build-ci-release/tools/dws_lint --all --json LINT_report.json
python3 - <<'EOF'
import json
reps = json.load(open("LINT_report.json"))
assert len(reps) >= 8, "expected a report per kernel, got %d" % len(reps)
dirty = [r["kernel"] for r in reps
         if r["errors"] or r["warnings"] or not r["clean"]]
assert not dirty, "kernels not lint-clean: %r" % dirty
proved = sum(r["stats"]["accesses_proved"] for r in reps)
oob = sum(r["stats"]["accesses_out_of_bounds"] for r in reps)
assert oob == 0, "out-of-bounds accesses in shipped kernels"
print("  %d kernels clean; %d accesses proved in bounds; "
      "archived LINT_report.json" % (len(reps), proved))
EOF

echo "=== Release: static-claim oracle (dws_sim --check-oracle) ==="
# Re-run every kernel with the execution oracle armed: the simulator
# panics if any run contradicts a claim the static passes proved.
for k in $(./build-ci-release/tools/dws_sim --list); do
    for p in conv revive slip; do
        ./build-ci-release/tools/dws_sim --kernel "$k" --policy "$p" \
            --scale tiny --check-oracle --quiet >/dev/null
    done
    echo "  $k: conv/revive/slip agree with the static claims"
done

echo "=== Release: IR text format — examples + generative fuzz ==="
# Every shipped example kernel must survive the assemble/disassemble
# round trip (checked by the RoundTrip ctest leg) and run end-to-end
# from the file, validated against the scalar reference interpreter.
for f in examples/ir/*.dws; do
    ./build-ci-release/tools/dws_sim --kernel "$f" --policy revive \
        --quiet >/dev/null
    ./build-ci-release/tools/dws_lint --kernel "$f" >/dev/null
    echo "  $f: runs + lint-clean"
done
# Generative fuzz leg: fixed seeds so failures reproduce. Every
# generated kernel must be lint-clean and produce the identical final
# memory image under the conventional policy, every DWS scheme and
# slip (cross-checked against the scalar reference). Exit 0 required.
./build-ci-release/tools/dws_kgen --seed 1 --count 100 \
    --lint --oracle --report FUZZ_report.json
python3 - <<'EOF'
import json
rep = json.load(open("FUZZ_report.json"))
assert rep["failures"] == 0, "fuzz failures: %d" % rep["failures"]
ks = rep["kernels"]
assert len(ks) == 100, "expected 100 kernels, got %d" % len(ks)
dirty = [k["name"] for k in ks
         if not k["pass"] or k["lint_errors"] or k["lint_warnings"]]
assert not dirty, "kernels not clean: %r" % dirty
bad = [k["name"] for k in ks
       for pol, verdict in k["policies"].items() if verdict != "ok"]
assert not bad, "policy mismatches: %r" % bad
print("  100 generated kernels lint-clean; scalar oracle agrees "
      "across all 12 policies; archived FUZZ_report.json")
EOF

echo "=== Release: hierarchy smoke (3-level fabric, 16 WPUs) ==="
# A machine the paper never built — sliced L2 over an L3, 16 WPUs —
# must build from the declarative spec alone, run the full scheme
# comparison, and survive an invariant-audited pass over the .dws
# example kernels.
# Modest capacities keep the per-audit tag scans (every line of every
# slice) cheap enough for an every-1024-cycles cadence.
HIER='l1d:16k:8:3,l2:256k:16:30:4,l3:2m:16:60:2'
./build-ci-release/bench/bench_fig13_schemes --fast --wpus 16 \
    --hier "$HIER" >/dev/null
echo "  bench_fig13_schemes --fast --wpus 16 --hier: clean"
for f in examples/ir/*.dws; do
    ./build-ci-release/tools/dws_sim --kernel "$f" --policy revive \
        --wpus 16 --hier "$HIER" --check-invariants=1024 --quiet \
        >/dev/null
done
echo "  examples/ir/*.dws on the 3-level 16-WPU fabric: invariants clean"

echo "=== Release: simulator throughput benchmark ==="
./build-ci-release/bench/bench_throughput --fast \
    --json BENCH_throughput.json
echo "  archived BENCH_throughput.json"

echo "=== Release: tracing subsystem ==="
# Golden fingerprints must be unchanged with tracing on:
# GoldenFingerprints pins the untraced hashes and
# Trace.TracingDoesNotPerturbFingerprints pins traced == untraced.
./build-ci-release/tests/dws_tests \
    --gtest_filter='TraceRing.*:JsonWriter.*:Trace.*:GoldenFingerprints.*'
TRACE_DIR=$(mktemp -d)
./build-ci-release/bench/bench_fig13_schemes --fast \
    --trace --trace-out "$TRACE_DIR/fig13.dwst" >/dev/null
for t in "$TRACE_DIR"/fig13.*.dwst; do
    ./build-ci-release/tools/dws_trace check "$t" >/dev/null
done
echo "  $(ls "$TRACE_DIR"/fig13.*.dwst | wc -l) per-job traces check clean"
./build-ci-release/tools/dws_trace convert \
    "$TRACE_DIR/fig13.Revive.SVM.dwst" \
    -o "$TRACE_DIR/fig13.Revive.SVM.json"
echo "  Perfetto convert: ok"

echo "=== Release: tracing overhead (archived next to throughput) ==="
./build-ci-release/bench/bench_throughput --fast \
    --trace --trace-out "$TRACE_DIR/tp.dwst" \
    --json BENCH_throughput_traced.json >/dev/null
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
base = json.load(open("BENCH_throughput.json"))
traced = json.load(open("BENCH_throughput_traced.json"))
b = sum(c["wall_ms"] for c in base)
t = sum(c["wall_ms"] for c in traced)
out = {"untraced_wall_ms": round(b, 3), "traced_wall_ms": round(t, 3),
       "tracing_on_overhead_pct": round(100.0 * (t - b) / b, 2)}
json.dump(out, open("BENCH_trace_overhead.json", "w"), indent=2)
print("  tracing-on overhead: %.1f%% "
      "(archived BENCH_trace_overhead.json)"
      % out["tracing_on_overhead_pct"])
EOF
else
    echo "  python3 not found; skipped overhead summary"
fi
rm -rf "$TRACE_DIR"

echo "=== Release: fault-injection smoke (campaign + poisoned sweep) ==="
# Every fault class x 3 seeds must be caught by the invariant checker
# or the deadlock detector: the campaign gates on zero missed cells and
# the report is archived next to the throughput record.
./build-ci-release/tools/dws_sim --campaign --campaign-seeds 3 \
    --campaign-out BENCH_fault_campaign.json
echo "  archived BENCH_fault_campaign.json"
# One poisoned cell in the 64-cell figure sweep must fail alone: the
# other 63 cells' fingerprints stay byte-identical to a clean sweep.
FAULT_DIR=$(mktemp -d)
./build-ci-release/bench/bench_fig13_schemes --fast --jobs 4 \
    --journal "$FAULT_DIR/clean.jsonl" >/dev/null
set +e
./build-ci-release/bench/bench_fig13_schemes --fast --jobs 4 \
    --journal "$FAULT_DIR/poison.jsonl" \
    --inject mask-flip@2000 --inject-cell Revive/Merge >/dev/null
POISON_RC=$?
set -e
if [ "$POISON_RC" -eq 0 ]; then
    echo "  FAIL: poisoned sweep exited 0"; exit 1
fi
echo "  poisoned sweep exit code: $POISON_RC (expected nonzero)"
python3 - "$FAULT_DIR" <<'EOF'
import json, sys
def load(p):
    return {(r["label"], r["kernel"]): r
            for r in map(json.loads, open(p))}
c = load(sys.argv[1] + "/clean.jsonl")
p = load(sys.argv[1] + "/poison.jsonl")
assert set(c) == set(p), "poisoned sweep lost cells"
poisoned = ("Revive", "Merge")
assert p[poisoned]["outcome"] != "ok", "poisoned cell reported ok"
bad = [k for k in c if k != poisoned
       and c[k]["fingerprint"] != p[k]["fingerprint"]]
assert not bad, "surviving cells diverged: %r" % bad
print("  %d surviving cells byte-identical; poisoned cell: %s"
      % (len(c) - 1, p[poisoned]["outcome"]))
EOF
rm -rf "$FAULT_DIR"

echo "=== Release: sweep service (dws_serve daemon; cold vs warm) ==="
# A cold figure sweep through the daemon populates its content-
# addressed result cache; the warm re-run must be served 100% from it,
# byte-identical to a daemon-less run and >=5x faster; the cache must
# survive a daemon restart. The cold/warm wall clocks and hit rate are
# archived to BENCH_serve.json.
SERVE_DIR=$(mktemp -d)
SOCK="$SERVE_DIR/serve.sock"
./build-ci-release/tools/dws_serve --socket "$SOCK" \
    --cache-dir "$SERVE_DIR/cache" --jobs "$JOBS" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
./build-ci-release/tools/dws_client --socket "$SOCK" status >/dev/null

./build-ci-release/bench/bench_fig13_schemes --fast \
    > "$SERVE_DIR/direct.txt"
COLD_NS=$(date +%s%N)
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$SOCK" \
    --json "$SERVE_DIR/cold.json" > "$SERVE_DIR/cold.txt"
COLD_NS=$(( $(date +%s%N) - COLD_NS ))
WARM_NS=$(date +%s%N)
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$SOCK" \
    --json "$SERVE_DIR/warm.json" > "$SERVE_DIR/warm.txt"
WARM_NS=$(( $(date +%s%N) - WARM_NS ))
cmp "$SERVE_DIR/direct.txt" "$SERVE_DIR/cold.txt"
cmp "$SERVE_DIR/direct.txt" "$SERVE_DIR/warm.txt"
echo "  direct / cold / warm table output byte-identical"

# Restart the daemon on the same cache directory: still 100% warm.
./build-ci-release/tools/dws_client --socket "$SOCK" shutdown >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
./build-ci-release/tools/dws_serve --socket "$SOCK" \
    --cache-dir "$SERVE_DIR/cache" --jobs "$JOBS" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$SOCK" \
    --json "$SERVE_DIR/restart.json" > "$SERVE_DIR/restart.txt"
cmp "$SERVE_DIR/direct.txt" "$SERVE_DIR/restart.txt"
./build-ci-release/tools/dws_client --socket "$SOCK" shutdown >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT

python3 - "$SERVE_DIR" "$COLD_NS" "$WARM_NS" <<'EOF'
import json, sys
d, cold_ns, warm_ns = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
def load(p):
    return json.load(open(p))["results"]
cold, warm, restart = (load("%s/%s.json" % (d, n))
                       for n in ("cold", "warm", "restart"))
assert cold and len(cold) == len(warm) == len(restart)
assert all(r["outcome"] == "ok" for r in cold + warm + restart)
assert not any(r.get("cached") for r in cold), "cold run hit the cache"
miss = [r for r in warm if not r.get("cached")]
assert not miss, "warm run not 100%% served: %d misses" % len(miss)
miss = [r for r in restart if not r.get("cached")]
assert not miss, "cache lost on restart: %d misses" % len(miss)
def cells(rows):
    return {(r["label"], r["kernel"]): (r["cycles"], r["energy_nj"])
            for r in rows}
assert cells(cold) == cells(warm) == cells(restart), "cells diverged"
cold_ms, warm_ms = cold_ns / 1e6, warm_ns / 1e6
speedup = cold_ms / warm_ms
assert speedup >= 5.0, "warm speedup only %.1fx" % speedup
out = {"cells": len(cold), "cold_wall_ms": round(cold_ms, 1),
       "warm_wall_ms": round(warm_ms, 1),
       "warm_speedup": round(speedup, 1), "warm_hit_rate": 1.0}
json.dump(out, open("BENCH_serve.json", "w"), indent=2)
print("  %d cells; cold %.0f ms, warm %.0f ms (%.0fx); 100%% warm hits;"
      " archived BENCH_serve.json"
      % (len(cold), cold_ms, warm_ms, speedup))
EOF
rm -rf "$SERVE_DIR"

echo "=== Release: sweep service over TCP loopback (+ drain, client UX) ==="
# The same daemon, reached over --listen/--connect instead of the Unix
# socket, must produce byte-identical figure tables; the cache must be
# shared across both transports (the TCP run after the Unix run is 100%
# warm); a SIGTERM must drain the daemon cleanly (exit 0); and after a
# restart on the same cache directory the TCP run is still 100% warm.
TCP_DIR=$(mktemp -d)
SOCK="$TCP_DIR/serve.sock"
./build-ci-release/tools/dws_serve --socket "$SOCK" \
    --listen 127.0.0.1:0 --endpoint-file "$TCP_DIR/endpoint" \
    --cache-dir "$TCP_DIR/cache" --jobs "$JOBS" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -s "$TCP_DIR/endpoint" ] && break; sleep 0.1; done
EP=$(cat "$TCP_DIR/endpoint")
./build-ci-release/tools/dws_client --connect "$EP" status >/dev/null
./build-ci-release/tools/dws_client --connect "$EP" health >/dev/null

# dws_client UX: an unreachable endpoint is a distinct exit code (3),
# not a generic failure.
set +e
./build-ci-release/tools/dws_client --socket "$TCP_DIR/nobody.sock" \
    status >/dev/null 2>&1
UNREACH_RC=$?
set -e
if [ "$UNREACH_RC" -ne 3 ]; then
    echo "  FAIL: unreachable endpoint exit code $UNREACH_RC (want 3)"
    exit 1
fi
echo "  dws_client exit code on unreachable endpoint: 3"

./build-ci-release/bench/bench_fig13_schemes --fast \
    > "$TCP_DIR/direct.txt"
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$SOCK" \
    --json "$TCP_DIR/unix.json" > "$TCP_DIR/unix.txt"
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$EP" \
    --json "$TCP_DIR/tcp.json" > "$TCP_DIR/tcp.txt"
cmp "$TCP_DIR/direct.txt" "$TCP_DIR/unix.txt"
cmp "$TCP_DIR/direct.txt" "$TCP_DIR/tcp.txt"
echo "  direct / unix-socket / tcp table output byte-identical"

# Clean SIGTERM drain, then restart on the same cache: still 100% warm
# over TCP.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "  SIGTERM drain: daemon exited 0"
./build-ci-release/tools/dws_serve --socket "$SOCK" \
    --listen 127.0.0.1:0 --endpoint-file "$TCP_DIR/endpoint2" \
    --cache-dir "$TCP_DIR/cache" --jobs "$JOBS" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$TCP_DIR/endpoint2" ] && break; sleep 0.1; done
EP2=$(cat "$TCP_DIR/endpoint2")
./build-ci-release/bench/bench_fig13_schemes --fast --serve "$EP2" \
    --json "$TCP_DIR/restart.json" > "$TCP_DIR/restart.txt"
cmp "$TCP_DIR/direct.txt" "$TCP_DIR/restart.txt"
./build-ci-release/tools/dws_client --connect "$EP2" shutdown >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT

python3 - "$TCP_DIR" <<'EOF'
import json, sys
d = sys.argv[1]
def load(p):
    return json.load(open(p))["results"]
unix, tcp, restart = (load("%s/%s.json" % (d, n))
                      for n in ("unix", "tcp", "restart"))
assert unix and len(unix) == len(tcp) == len(restart)
assert all(r["outcome"] == "ok" for r in unix + tcp + restart)
assert not any(r.get("degraded") for r in unix + tcp + restart), \
    "a served run degraded to local simulation"
miss = [r for r in tcp if not r.get("cached")]
assert not miss, "tcp run not 100%% warm: %d misses" % len(miss)
miss = [r for r in restart if not r.get("cached")]
assert not miss, "cache lost on restart: %d misses" % len(miss)
def cells(rows):
    return {(r["label"], r["kernel"]): (r["cycles"], r["energy_nj"])
            for r in rows}
assert cells(unix) == cells(tcp) == cells(restart), "cells diverged"
print("  %d cells; tcp + restarted-tcp 100%% warm, byte-identical"
      % len(unix))
EOF
rm -rf "$TCP_DIR"

echo "=== Release: network chaos campaign (all classes, fixed seed) ==="
# Every network-fault class, in transient (retry-to-success) and
# persistent (degrade-to-correct-local) mode, against a daemon-less
# baseline: zero wrong tables, zero hangs. The hard timeout is the
# no-hang gate; the report is archived to BENCH_chaos.json.
CHAOS_DIR=$(mktemp -d)
timeout 900 ./build-ci-release/tools/dws_chaos --seed 1 \
    --work-dir "$CHAOS_DIR/work" --out BENCH_chaos.json
python3 - <<'EOF'
import json
rep = json.load(open("BENCH_chaos.json"))
assert rep["failed"] == 0, "chaos cells failed: %d" % rep["failed"]
runs = rep["runs"]
assert len(runs) == 12, "expected 12 cells (6 classes x 2), got %d" \
    % len(runs)
assert all(r["pass"] and r["matched"] == r["jobs"] for r in runs)
deg = [r for r in runs if r["mode"] == "persistent"]
assert all(r["degraded"] == r["jobs"] for r in deg), \
    "a persistent-fault cell did not degrade to local"
print("  12/12 chaos cells passed; archived BENCH_chaos.json")
EOF
rm -rf "$CHAOS_DIR"

echo "=== Tracing compiled out (DWS_TRACING=OFF): build + ctest ==="
cmake -S . -B build-ci-notrace -DCMAKE_BUILD_TYPE=Release \
      -DDWS_TRACING=OFF >/dev/null
cmake --build build-ci-notrace -j "$JOBS"
ctest --test-dir build-ci-notrace --output-on-failure -j "$JOBS"

echo "=== ASan+UBSan: configure + build ==="
cmake -S . -B build-ci-asan -DCMAKE_BUILD_TYPE=Debug \
      -DDWS_ASAN=ON -DDWS_UBSAN=ON >/dev/null
cmake --build build-ci-asan -j "$JOBS"

echo "=== ASan+UBSan: ctest ==="
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== ASan+UBSan: every-cycle invariant audit, DWS.ReviveSplit ==="
for k in $(./build-ci-asan/tools/dws_sim --list); do
    ./build-ci-asan/tools/dws_sim --kernel "$k" --policy revive \
        --scale tiny --check-invariants=1 --quiet >/dev/null
    echo "  $k: clean"
done

echo "=== TSan: configure + build ==="
cmake -S . -B build-ci-tsan -DCMAKE_BUILD_TYPE=Debug \
      -DDWS_TSAN=ON >/dev/null
cmake --build build-ci-tsan -j "$JOBS"

echo "=== TSan: executor determinism + hot-path structure tests ==="
./build-ci-tsan/tests/dws_tests --gtest_filter='Executor.*:GoldenFingerprints.*:ReadyList*.*:GroupArena.*:BarrierPool.*:HotPathAudits.*'

echo "=== TSan: multi-job figure bench ==="
./build-ci-tsan/bench/bench_fig13_schemes --fast --jobs 4 >/dev/null
echo "  bench_fig13_schemes --fast --jobs 4: clean"

echo "=== clang-tidy (blocking; skipped only if not installed) ==="
tools/run_tidy.sh

echo "CI passed."
