/**
 * @file
 * dws_serve: the long-lived sweep-service daemon (DESIGN.md §16).
 *
 * Owns a SweepExecutor worker pool and a disk-persistent
 * content-addressed result cache, and serves batched simulation jobs
 * over a Unix-domain socket. Benches attach with `--serve SOCKET`;
 * dws_client drives status / cache-stats / flush / shutdown and can
 * render figure tables from served cells.
 *
 *   dws_serve --socket /tmp/dws.sock
 *   dws_serve --socket /tmp/dws.sock --cache-dir ~/.dws_cache --jobs 8
 *
 * The daemon runs until a Shutdown frame arrives (dws_client
 * --socket ... shutdown) or the process is killed. The cache directory
 * outlives the daemon: a restarted daemon serves the same entries.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/server.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

using namespace dws;

namespace {

void
usage()
{
    std::puts(
        "usage: dws_serve --socket PATH [options]\n"
        "  --socket PATH     Unix-domain socket to listen on "
        "(required;\n"
        "                    a stale socket file is replaced)\n"
        "  --cache-dir DIR   result-cache directory (default "
        ".dws_serve_cache;\n"
        "                    created if missing, persists across "
        "restarts)\n"
        "  --jobs N          simulation worker threads (default: "
        "DWS_JOBS\n"
        "                    env, else hardware cores)\n"
        "  --cache-cap N     LRU entry cap (default 4096; 0 = "
        "unbounded)\n"
        "  --help            this message");
}

} // namespace

int
main(int argc, char **argv)
{
    ServeDaemon::Options opts;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--socket") == 0) {
            if (i + 1 >= argc)
                fatal("--socket requires a path");
            opts.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--cache-dir requires a directory");
            opts.cacheDir = argv[++i];
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a positive integer");
            const auto n = parseInt64InRange(argv[++i], 1, 4096);
            if (!n)
                fatal("--jobs '%s' is not a positive integer "
                      "(max 4096)", argv[i]);
            opts.jobs = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--cache-cap") == 0) {
            if (i + 1 >= argc)
                fatal("--cache-cap requires an entry count");
            const auto n = parseInt64InRange(argv[++i], 0, 1 << 30);
            if (!n)
                fatal("--cache-cap '%s' is not a non-negative "
                      "integer", argv[i]);
            opts.cacheCapEntries = static_cast<std::size_t>(*n);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg);
        }
    }
    if (opts.socketPath.empty()) {
        usage();
        fatal("--socket is required");
    }

    setQuiet(false);
    ServeDaemon daemon(opts);
    std::string err;
    if (!daemon.start(err))
        fatal("dws_serve: %s", err.c_str());
    const ServeStatus st = daemon.status();
    inform("dws_serve: listening on %s (%u workers, cache %s, "
           "build %s)",
           opts.socketPath.c_str(), st.workers, st.cacheDir.c_str(),
           st.buildFingerprint.c_str());
    daemon.wait();
    daemon.stop();
    const ServeStatus end = daemon.status();
    inform("dws_serve: shut down after %llu batches / %llu jobs",
           (unsigned long long)end.batches, (unsigned long long)end.jobs);
    return 0;
}
