/**
 * @file
 * dws_serve: the long-lived sweep-service daemon (DESIGN.md §16–17).
 *
 * Owns a SweepExecutor worker pool and a disk-persistent
 * content-addressed result cache, and serves batched simulation jobs
 * over a Unix-domain socket and/or a TCP endpoint. Benches attach with
 * `--serve SPEC`; dws_client drives status / health / cache-stats /
 * flush / shutdown and can render figure tables from served cells.
 *
 *   dws_serve --socket /tmp/dws.sock
 *   dws_serve --listen 127.0.0.1:7811 --auth SECRET --jobs 8
 *   dws_serve --socket /tmp/dws.sock --listen 127.0.0.1:0 \
 *             --endpoint-file /tmp/dws.endpoint
 *
 * The daemon runs until a Shutdown frame arrives (dws_client ...
 * shutdown) or SIGTERM/SIGINT, which triggers a clean drain: new work
 * is refused with Busy("draining"), in-flight jobs finish, then the
 * process exits. The cache directory outlives the daemon: a restarted
 * daemon serves the same entries.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <csignal>

#include "serve/server.hh"
#include "serve/transport.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

using namespace dws;

namespace {

/** Set by the SIGTERM/SIGINT handler; the main loop drains on it.
 *  A handler may not take locks, so it only flips this flag. */
volatile std::sig_atomic_t drainRequested = 0;

extern "C" void
onDrainSignal(int)
{
    drainRequested = 1;
}

void
usage()
{
    std::puts(
        "usage: dws_serve [--socket PATH] [--listen HOST:PORT] "
        "[options]\n"
        "  --socket PATH       Unix-domain socket to listen on (a "
        "stale\n"
        "                      socket file is replaced)\n"
        "  --listen HOST:PORT  TCP endpoint to listen on (port 0 binds "
        "an\n"
        "                      ephemeral port; see --endpoint-file)\n"
        "  --auth TOKEN        require this pre-shared token; "
        "unauthenticated\n"
        "                      connections may only query status\n"
        "  --endpoint-file F   write the bound TCP endpoint "
        "(tcp:HOST:PORT)\n"
        "                      to F after startup (for scripts/tests)\n"
        "  --cache-dir DIR     result-cache directory (default "
        ".dws_serve_cache;\n"
        "                      created if missing, persists across "
        "restarts)\n"
        "  --jobs N            simulation worker threads (default: "
        "DWS_JOBS\n"
        "                      env, else hardware cores)\n"
        "  --cache-cap N       LRU entry cap (default 4096; 0 = "
        "unbounded)\n"
        "  --max-conns N       connection cap; excess get Busy + close "
        "(default 64)\n"
        "  --admission-cap N   bound on admitted-but-unfinished jobs; "
        "a batch\n"
        "                      past it gets Busy (default 256)\n"
        "  --idle-timeout MS   reap a connection idle past MS (default "
        "300000)\n"
        "  --frame-deadline MS slow-loris bound: first byte to whole "
        "frame\n"
        "                      (default 10000)\n"
        "  --help              this message\n"
        "SIGTERM/SIGINT drain cleanly: refuse new work, finish "
        "in-flight\n"
        "jobs, then exit.");
}

} // namespace

int
main(int argc, char **argv)
{
    ServeDaemon::Options opts;
    std::string endpointFile;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--socket") == 0) {
            if (i + 1 >= argc)
                fatal("--socket requires a path");
            opts.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--listen") == 0) {
            if (i + 1 >= argc)
                fatal("--listen requires HOST:PORT");
            opts.tcpListen = argv[++i];
        } else if (std::strcmp(arg, "--auth") == 0) {
            if (i + 1 >= argc)
                fatal("--auth requires a token");
            opts.authToken = argv[++i];
        } else if (std::strcmp(arg, "--endpoint-file") == 0) {
            if (i + 1 >= argc)
                fatal("--endpoint-file requires a path");
            endpointFile = argv[++i];
        } else if (std::strcmp(arg, "--cache-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--cache-dir requires a directory");
            opts.cacheDir = argv[++i];
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a positive integer");
            const auto n = parseInt64InRange(argv[++i], 1, 4096);
            if (!n)
                fatal("--jobs '%s' is not a positive integer "
                      "(max 4096)", argv[i]);
            opts.jobs = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--cache-cap") == 0) {
            if (i + 1 >= argc)
                fatal("--cache-cap requires an entry count");
            const auto n = parseInt64InRange(argv[++i], 0, 1 << 30);
            if (!n)
                fatal("--cache-cap '%s' is not a non-negative "
                      "integer", argv[i]);
            opts.cacheCapEntries = static_cast<std::size_t>(*n);
        } else if (std::strcmp(arg, "--max-conns") == 0) {
            if (i + 1 >= argc)
                fatal("--max-conns requires a count");
            const auto n = parseInt64InRange(argv[++i], 1, 65536);
            if (!n)
                fatal("--max-conns '%s' is not a positive integer",
                      argv[i]);
            opts.maxConns = static_cast<std::size_t>(*n);
        } else if (std::strcmp(arg, "--admission-cap") == 0) {
            if (i + 1 >= argc)
                fatal("--admission-cap requires a count");
            const auto n = parseInt64InRange(argv[++i], 1, 1 << 30);
            if (!n)
                fatal("--admission-cap '%s' is not a positive "
                      "integer", argv[i]);
            opts.admissionCap = static_cast<std::size_t>(*n);
        } else if (std::strcmp(arg, "--idle-timeout") == 0) {
            if (i + 1 >= argc)
                fatal("--idle-timeout requires milliseconds");
            const auto n =
                    parseInt64InRange(argv[++i], 100, 86400000);
            if (!n)
                fatal("--idle-timeout '%s' is not a valid "
                      "millisecond count", argv[i]);
            opts.idleTimeoutMs = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--frame-deadline") == 0) {
            if (i + 1 >= argc)
                fatal("--frame-deadline requires milliseconds");
            const auto n =
                    parseInt64InRange(argv[++i], 100, 86400000);
            if (!n)
                fatal("--frame-deadline '%s' is not a valid "
                      "millisecond count", argv[i]);
            opts.frameDeadlineMs = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg);
        }
    }
    if (opts.socketPath.empty() && opts.tcpListen.empty()) {
        usage();
        fatal("--socket and/or --listen is required");
    }

    setQuiet(false);
    ignoreSigpipe();
    std::signal(SIGTERM, onDrainSignal);
    std::signal(SIGINT, onDrainSignal);

    ServeDaemon daemon(opts);
    std::string err;
    if (!daemon.start(err))
        fatal("dws_serve: %s", err.c_str());
    const ServeStatus st = daemon.status();
    const std::string tcpEp = daemon.tcpEndpoint();
    inform("dws_serve: listening on %s%s%s (%u workers, cache %s, "
           "build %s)",
           opts.socketPath.c_str(),
           !opts.socketPath.empty() && !tcpEp.empty() ? " + " : "",
           tcpEp.c_str(), st.workers, st.cacheDir.c_str(),
           st.buildFingerprint.c_str());
    if (!endpointFile.empty()) {
        std::ofstream f(endpointFile, std::ios::trunc);
        f << tcpEp << "\n";
        if (!f)
            fatal("dws_serve: cannot write --endpoint-file %s",
                  endpointFile.c_str());
    }

    // Wake periodically to notice the signal flag; waitFor() returns
    // true as soon as a Shutdown frame (or stop()) lands.
    bool drained = false;
    while (!daemon.waitFor(200)) {
        if (drainRequested) {
            inform("dws_serve: drain requested (signal); refusing new "
                   "work, finishing in-flight jobs");
            daemon.drainAndStop();
            drained = true;
            break;
        }
    }
    if (!drained)
        daemon.stop();
    const ServeStatus end = daemon.status();
    inform("dws_serve: shut down after %llu batches / %llu jobs",
           (unsigned long long)end.batches, (unsigned long long)end.jobs);
    return 0;
}
