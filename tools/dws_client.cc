/**
 * @file
 * dws_client: command-line client of the dws_serve daemon.
 *
 * Speaks the batched frame protocol (serve/protocol.hh) directly:
 *
 *   dws_client --socket /tmp/dws.sock status
 *   dws_client --connect 127.0.0.1:7811 --auth SECRET health
 *   dws_client --socket /tmp/dws.sock cache-stats
 *   dws_client --socket /tmp/dws.sock flush
 *   dws_client --socket /tmp/dws.sock shutdown
 *   dws_client --socket /tmp/dws.sock fig13 [--fast|--full]
 *
 * `fig13` renders the Figure 13 scheme-comparison table entirely from
 * served cells: every (scheme x benchmark) job travels to the daemon
 * in ONE SubmitBatch frame, results come back in one SubmitReply, and
 * the exact RunStats of each cell is rebuilt from its fingerprint —
 * warm cells never re-simulate, and the table is byte-identical to the
 * bench_fig13_schemes output.
 *
 * Exit codes (scriptable):
 *   0  success
 *   1  usage/configuration error
 *   3  daemon unreachable (connect/auth failed)
 *   4  protocol error (bad frame, timeout, unexpected reply)
 *   5  daemon overloaded (Busy reply)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "serve/client.hh"
#include "serve/transport.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "kernels/kernel.hh"

using namespace dws;

namespace {

constexpr int kExitConnectFailed = 3;
constexpr int kExitProtocolError = 4;
constexpr int kExitBusy = 5;

void
usage()
{
    std::puts(
        "usage: dws_client (--socket PATH | --connect SPEC) [options] "
        "COMMAND\n"
        "  --socket PATH    daemon Unix-domain socket\n"
        "  --connect SPEC   daemon endpoint: unix:PATH, tcp:HOST:PORT,\n"
        "                   HOST:PORT, or a bare socket path\n"
        "  --auth TOKEN     pre-shared token for an authenticated "
        "daemon\n"
        "  --timeout MS     per-RPC deadline (default 300000)\n"
        "commands:\n"
        "  status         daemon snapshot: workers, batches/jobs "
        "served\n"
        "  health         overload snapshot: connections, in-flight "
        "jobs,\n"
        "                 admission cap, busy-rejections, drain state\n"
        "  cache-stats    result-cache counters: entries, bytes, "
        "hits, misses\n"
        "  flush          drop every cached result\n"
        "  shutdown       stop the daemon (it replies, then exits)\n"
        "  fig13          render the Figure 13 scheme table from "
        "served cells\n"
        "                 (--fast tiny inputs, --full paper-scale; "
        "default tiny)\n"
        "exit codes: 0 ok, 1 usage, 3 unreachable, 4 protocol error, "
        "5 busy");
}

/** Map the failed client's last RPC status to a distinct exit code so
 *  scripts can tell "daemon down" from "daemon sick" from "try later". */
[[noreturn]] void
rpcDie(const ServeClient &client, const std::string &endpoint,
       const std::string &err)
{
    std::fprintf(stderr, "dws_client: %s\n", err.c_str());
    switch (client.lastStatus()) {
    case RpcStatus::ConnectFailed:
        std::fprintf(stderr,
                     "dws_client: cannot reach a daemon at '%s' — is "
                     "dws_serve running? (start one with: dws_serve "
                     "--socket PATH)\n",
                     endpoint.c_str());
        std::exit(kExitConnectFailed);
    case RpcStatus::Busy:
        std::fprintf(stderr,
                     "dws_client: daemon at '%s' is overloaded; retry "
                     "after %u ms\n",
                     endpoint.c_str(), client.busyRetryAfterMs());
        std::exit(kExitBusy);
    default:
        std::exit(kExitProtocolError);
    }
}

ServeClient
connectOrDie(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client(copts);
    std::string err;
    if (!client.connectTo(endpoint, err))
        rpcDie(client, endpoint, err);
    return client;
}

int
cmdStatus(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client = connectOrDie(endpoint, copts);
    ServeStatus st;
    std::string err;
    if (!client.status(st, err))
        rpcDie(client, endpoint, err);
    std::printf("workers:  %u\n", st.workers);
    std::printf("batches:  %llu\n", (unsigned long long)st.batches);
    std::printf("jobs:     %llu\n", (unsigned long long)st.jobs);
    std::printf("cache:    %s\n", st.cacheDir.c_str());
    std::printf("build:    %s\n", st.buildFingerprint.c_str());
    return 0;
}

int
cmdHealth(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client = connectOrDie(endpoint, copts);
    ServeHealth h;
    std::string err;
    if (!client.health(h, err))
        rpcDie(client, endpoint, err);
    std::printf("connections:    %u\n", h.activeConns);
    std::printf("in-flight jobs: %u\n", h.inFlightJobs);
    std::printf("admission cap:  %u\n", h.admissionCap);
    std::printf("draining:       %s\n", h.draining ? "yes" : "no");
    std::printf("busy-rejected:  %llu\n",
                (unsigned long long)h.busyRejected);
    std::printf("batches:        %llu\n", (unsigned long long)h.batches);
    std::printf("jobs:           %llu\n", (unsigned long long)h.jobs);
    std::printf("cache entries:  %llu\n",
                (unsigned long long)h.cache.entries);
    std::printf("cache hits:     %llu\n",
                (unsigned long long)h.cache.hits);
    return 0;
}

int
cmdCacheStats(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client = connectOrDie(endpoint, copts);
    ServeCacheCounters c;
    std::string err;
    if (!client.cacheStats(c, err))
        rpcDie(client, endpoint, err);
    std::printf("entries:  %llu\n", (unsigned long long)c.entries);
    std::printf("bytes:    %llu\n", (unsigned long long)c.bytes);
    std::printf("hits:     %llu\n", (unsigned long long)c.hits);
    std::printf("misses:   %llu\n", (unsigned long long)c.misses);
    std::printf("inserted: %llu\n", (unsigned long long)c.inserted);
    std::printf("corrupt:  %llu\n", (unsigned long long)c.corrupt);
    std::printf("evicted:  %llu\n", (unsigned long long)c.evicted);
    std::printf("dir:      %s\n", c.dir.c_str());
    return 0;
}

int
cmdFlush(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client = connectOrDie(endpoint, copts);
    std::uint64_t removed = 0;
    std::string err;
    if (!client.flushCache(removed, err))
        rpcDie(client, endpoint, err);
    std::printf("flushed %llu entries\n", (unsigned long long)removed);
    return 0;
}

int
cmdShutdown(const std::string &endpoint, const ClientOptions &copts)
{
    ServeClient client = connectOrDie(endpoint, copts);
    std::string err;
    if (!client.shutdownServer(err))
        rpcDie(client, endpoint, err);
    std::puts("daemon shutting down");
    return 0;
}

int
cmdFig13(const std::string &endpoint, const ClientOptions &copts,
         KernelScale scale)
{
    const std::vector<std::pair<std::string, PolicyConfig>> schemes = {
        {"Conv", PolicyConfig::conv()},
        {"BranchOnly", PolicyConfig::branchOnly()},
        {"MemOnly", PolicyConfig::reviveMemOnly()},
        {"Aggress", PolicyConfig::dws(SplitScheme::Aggressive)},
        {"Lazy", PolicyConfig::dws(SplitScheme::Lazy)},
        {"Revive", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
        {"Slip.BB", PolicyConfig::slipBranchBypassCfg()},
    };
    const std::vector<std::string> &names = kernelNames();

    // One frame carries the whole figure: every (scheme x benchmark)
    // cell in a single SubmitBatch.
    std::vector<ServeJob> jobs;
    for (const auto &[label, pol] : schemes) {
        const SystemConfig cfg = SystemConfig::table3(pol);
        for (const auto &name : names) {
            ServeJob j;
            j.kernel = name;
            j.label = label;
            j.scale = scale == KernelScale::Tiny ? 0 : 1;
            j.configKey = cfg.cacheKey();
            jobs.push_back(std::move(j));
        }
    }

    ServeClient client = connectOrDie(endpoint, copts);
    std::vector<ServeResult> results;
    std::string err;
    if (!client.submitBatch(jobs, results, err))
        rpcDie(client, endpoint, err);

    // scheme label -> benchmark -> stats
    std::map<std::string, std::map<std::string, RunStats>> cells;
    std::size_t cachedCount = 0;
    for (std::size_t i = 0; i < results.size(); i++) {
        const ServeResult &r = results[i];
        if (!r.ok()) {
            warn("cell %s/%s failed: %s: %s", jobs[i].label.c_str(),
                 jobs[i].kernel.c_str(), r.outcome.c_str(),
                 r.error.c_str());
            continue;
        }
        RunStats stats;
        if (!RunStats::parseFingerprint(r.fingerprint, stats)) {
            std::fprintf(stderr,
                         "dws_client: unparsable fingerprint for "
                         "%s/%s\n",
                         jobs[i].label.c_str(), jobs[i].kernel.c_str());
            return kExitProtocolError;
        }
        cells[jobs[i].label][jobs[i].kernel] = stats;
        if (r.cached)
            cachedCount++;
    }

    const auto &conv = cells["Conv"];
    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (std::size_t s = 1; s < schemes.size(); s++)
        head.push_back(schemes[s].first);
    t.header(head);
    for (const auto &[name, cs] : conv) {
        std::vector<std::string> row = {name};
        for (std::size_t s = 1; s < schemes.size(); s++) {
            const auto &run = cells[schemes[s].first];
            const auto it = run.find(name);
            row.push_back(it != run.end() ? fmt(speedup(cs, it->second))
                                          : "FAIL");
        }
        t.row(row);
    }
    t.print();
    std::printf("[%zu/%zu cells served from cache]\n", cachedCount,
                results.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string endpoint;
    std::string command;
    ClientOptions copts;
    KernelScale scale = KernelScale::Tiny;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--socket") == 0 ||
            std::strcmp(arg, "--connect") == 0) {
            if (i + 1 >= argc)
                fatal("%s requires an endpoint", arg);
            endpoint = argv[++i];
        } else if (std::strcmp(arg, "--auth") == 0) {
            if (i + 1 >= argc)
                fatal("--auth requires a token");
            copts.authToken = argv[++i];
        } else if (std::strcmp(arg, "--timeout") == 0) {
            if (i + 1 >= argc)
                fatal("--timeout requires milliseconds");
            copts.rpcTimeoutMs = std::atoi(argv[++i]);
            if (copts.rpcTimeoutMs <= 0)
                fatal("--timeout '%s' is not a positive millisecond "
                      "count", argv[i]);
        } else if (std::strcmp(arg, "--fast") == 0) {
            scale = KernelScale::Tiny;
        } else if (std::strcmp(arg, "--full") == 0) {
            scale = KernelScale::Default;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else if (arg[0] == '-') {
            usage();
            fatal("unknown argument '%s'", arg);
        } else if (command.empty()) {
            command = arg;
        } else {
            usage();
            fatal("unexpected extra argument '%s'", arg);
        }
    }
    if (endpoint.empty() || command.empty()) {
        usage();
        fatal("an endpoint (--socket/--connect) and a command are "
              "required");
    }

    setQuiet(true);
    ignoreSigpipe();
    if (command == "status")
        return cmdStatus(endpoint, copts);
    if (command == "health")
        return cmdHealth(endpoint, copts);
    if (command == "cache-stats")
        return cmdCacheStats(endpoint, copts);
    if (command == "flush")
        return cmdFlush(endpoint, copts);
    if (command == "shutdown")
        return cmdShutdown(endpoint, copts);
    if (command == "fig13")
        return cmdFig13(endpoint, copts, scale);
    usage();
    fatal("unknown command '%s'", command.c_str());
}
