/**
 * @file
 * dws_client: command-line client of the dws_serve daemon.
 *
 * Speaks the batched frame protocol (serve/protocol.hh) directly:
 *
 *   dws_client --socket /tmp/dws.sock status
 *   dws_client --socket /tmp/dws.sock cache-stats
 *   dws_client --socket /tmp/dws.sock flush
 *   dws_client --socket /tmp/dws.sock shutdown
 *   dws_client --socket /tmp/dws.sock fig13 [--fast|--full]
 *
 * `fig13` renders the Figure 13 scheme-comparison table entirely from
 * served cells: every (scheme x benchmark) job travels to the daemon
 * in ONE SubmitBatch frame, results come back in one SubmitReply, and
 * the exact RunStats of each cell is rebuilt from its fingerprint —
 * warm cells never re-simulate, and the table is byte-identical to the
 * bench_fig13_schemes output.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "serve/client.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "kernels/kernel.hh"

using namespace dws;

namespace {

void
usage()
{
    std::puts(
        "usage: dws_client --socket PATH COMMAND\n"
        "  --socket PATH  daemon Unix-domain socket (required)\n"
        "commands:\n"
        "  status         daemon snapshot: workers, batches/jobs "
        "served\n"
        "  cache-stats    result-cache counters: entries, bytes, "
        "hits, misses\n"
        "  flush          drop every cached result\n"
        "  shutdown       stop the daemon (it replies, then exits)\n"
        "  fig13          render the Figure 13 scheme table from "
        "served cells\n"
        "                 (--fast tiny inputs, --full paper-scale; "
        "default tiny)");
}

ServeClient
connectOrDie(const std::string &socketPath)
{
    ServeClient client;
    std::string err;
    if (!client.connectTo(socketPath, err))
        fatal("dws_client: %s", err.c_str());
    return client;
}

int
cmdStatus(const std::string &socketPath)
{
    ServeClient client = connectOrDie(socketPath);
    ServeStatus st;
    std::string err;
    if (!client.status(st, err))
        fatal("dws_client: %s", err.c_str());
    std::printf("workers:  %u\n", st.workers);
    std::printf("batches:  %llu\n", (unsigned long long)st.batches);
    std::printf("jobs:     %llu\n", (unsigned long long)st.jobs);
    std::printf("cache:    %s\n", st.cacheDir.c_str());
    std::printf("build:    %s\n", st.buildFingerprint.c_str());
    return 0;
}

int
cmdCacheStats(const std::string &socketPath)
{
    ServeClient client = connectOrDie(socketPath);
    ServeCacheCounters c;
    std::string err;
    if (!client.cacheStats(c, err))
        fatal("dws_client: %s", err.c_str());
    std::printf("entries:  %llu\n", (unsigned long long)c.entries);
    std::printf("bytes:    %llu\n", (unsigned long long)c.bytes);
    std::printf("hits:     %llu\n", (unsigned long long)c.hits);
    std::printf("misses:   %llu\n", (unsigned long long)c.misses);
    std::printf("inserted: %llu\n", (unsigned long long)c.inserted);
    std::printf("corrupt:  %llu\n", (unsigned long long)c.corrupt);
    std::printf("evicted:  %llu\n", (unsigned long long)c.evicted);
    std::printf("dir:      %s\n", c.dir.c_str());
    return 0;
}

int
cmdFlush(const std::string &socketPath)
{
    ServeClient client = connectOrDie(socketPath);
    std::uint64_t removed = 0;
    std::string err;
    if (!client.flushCache(removed, err))
        fatal("dws_client: %s", err.c_str());
    std::printf("flushed %llu entries\n", (unsigned long long)removed);
    return 0;
}

int
cmdShutdown(const std::string &socketPath)
{
    ServeClient client = connectOrDie(socketPath);
    std::string err;
    if (!client.shutdownServer(err))
        fatal("dws_client: %s", err.c_str());
    std::puts("daemon shutting down");
    return 0;
}

int
cmdFig13(const std::string &socketPath, KernelScale scale)
{
    const std::vector<std::pair<std::string, PolicyConfig>> schemes = {
        {"Conv", PolicyConfig::conv()},
        {"BranchOnly", PolicyConfig::branchOnly()},
        {"MemOnly", PolicyConfig::reviveMemOnly()},
        {"Aggress", PolicyConfig::dws(SplitScheme::Aggressive)},
        {"Lazy", PolicyConfig::dws(SplitScheme::Lazy)},
        {"Revive", PolicyConfig::reviveSplit()},
        {"Slip", PolicyConfig::adaptiveSlip()},
        {"Slip.BB", PolicyConfig::slipBranchBypassCfg()},
    };
    const std::vector<std::string> &names = kernelNames();

    // One frame carries the whole figure: every (scheme x benchmark)
    // cell in a single SubmitBatch.
    std::vector<ServeJob> jobs;
    for (const auto &[label, pol] : schemes) {
        const SystemConfig cfg = SystemConfig::table3(pol);
        for (const auto &name : names) {
            ServeJob j;
            j.kernel = name;
            j.label = label;
            j.scale = scale == KernelScale::Tiny ? 0 : 1;
            j.configKey = cfg.cacheKey();
            jobs.push_back(std::move(j));
        }
    }

    ServeClient client = connectOrDie(socketPath);
    std::vector<ServeResult> results;
    std::string err;
    if (!client.submitBatch(jobs, results, err))
        fatal("dws_client: %s", err.c_str());

    // scheme label -> benchmark -> stats
    std::map<std::string, std::map<std::string, RunStats>> cells;
    std::size_t cachedCount = 0;
    for (std::size_t i = 0; i < results.size(); i++) {
        const ServeResult &r = results[i];
        if (!r.ok()) {
            warn("cell %s/%s failed: %s: %s", jobs[i].label.c_str(),
                 jobs[i].kernel.c_str(), r.outcome.c_str(),
                 r.error.c_str());
            continue;
        }
        RunStats stats;
        if (!RunStats::parseFingerprint(r.fingerprint, stats))
            fatal("dws_client: unparsable fingerprint for %s/%s",
                  jobs[i].label.c_str(), jobs[i].kernel.c_str());
        cells[jobs[i].label][jobs[i].kernel] = stats;
        if (r.cached)
            cachedCount++;
    }

    const auto &conv = cells["Conv"];
    TextTable t;
    std::vector<std::string> head = {"benchmark"};
    for (std::size_t s = 1; s < schemes.size(); s++)
        head.push_back(schemes[s].first);
    t.header(head);
    for (const auto &[name, cs] : conv) {
        std::vector<std::string> row = {name};
        for (std::size_t s = 1; s < schemes.size(); s++) {
            const auto &run = cells[schemes[s].first];
            const auto it = run.find(name);
            row.push_back(it != run.end() ? fmt(speedup(cs, it->second))
                                          : "FAIL");
        }
        t.row(row);
    }
    t.print();
    std::printf("[%zu/%zu cells served from cache]\n", cachedCount,
                results.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string command;
    KernelScale scale = KernelScale::Tiny;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--socket") == 0) {
            if (i + 1 >= argc)
                fatal("--socket requires a path");
            socketPath = argv[++i];
        } else if (std::strcmp(arg, "--fast") == 0) {
            scale = KernelScale::Tiny;
        } else if (std::strcmp(arg, "--full") == 0) {
            scale = KernelScale::Default;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else if (arg[0] == '-') {
            usage();
            fatal("unknown argument '%s'", arg);
        } else if (command.empty()) {
            command = arg;
        } else {
            usage();
            fatal("unexpected extra argument '%s'", arg);
        }
    }
    if (socketPath.empty() || command.empty()) {
        usage();
        fatal("--socket and a command are required");
    }

    setQuiet(true);
    if (command == "status")
        return cmdStatus(socketPath);
    if (command == "cache-stats")
        return cmdCacheStats(socketPath);
    if (command == "flush")
        return cmdFlush(socketPath);
    if (command == "shutdown")
        return cmdShutdown(socketPath);
    if (command == "fig13")
        return cmdFig13(socketPath, scale);
    usage();
    fatal("unknown command '%s'", command.c_str());
}
