/**
 * @file
 * dws_lint: static analysis front end for the built-in kernels.
 *
 * Runs the IR verifier (structural checks + post-dominator cross-check)
 * and the static divergence analysis over one kernel or all of them,
 * printing each diagnostic and a per-branch divergence verdict.
 *
 *   dws_lint --all
 *   dws_lint --kernel Merge --verbose
 *   dws_lint --list
 *
 * Exits 0 when every linted kernel is free of errors (warnings are
 * reported but do not fail the run unless --werror is given), 1 on any
 * error, 2 on usage problems.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/divergence.hh"
#include "analysis/verifier.hh"
#include "isa/disasm.hh"
#include "kernels/kernel.hh"
#include "sim/logging.hh"

using namespace dws;

namespace {

void
usage()
{
    std::puts(
        "usage: dws_lint [options]\n"
        "  --kernel NAME   lint one benchmark (repeatable)\n"
        "  --all           lint every built-in benchmark\n"
        "  --scale S       tiny | default (input-size preset)\n"
        "  --subdiv N      branch heuristic bound (instrs)\n"
        "  --verbose       also print per-branch divergence verdicts\n"
        "  --werror        treat warnings as errors\n"
        "  --list          print benchmark names and exit");
}

/** @return number of errors found (after --werror promotion). */
int
lintKernel(const std::string &name, const KernelParams &kp, bool verbose,
           bool werror)
{
    auto kernel = makeKernel(name, kp);
    if (!kernel)
        fatal("unknown kernel '%s' (try --list)", name.c_str());

    const Program prog = kernel->buildProgram();
    std::vector<Diagnostic> diags = Verifier::verify(prog);
    if (werror)
        for (Diagnostic &d : diags)
            d.severity = Severity::Error;

    const DivergenceReport rep =
            DivergenceAnalysis::analyze(prog.instructions());
    std::printf("%s: %d instrs, %d branches (%d divergent, %d uniform), "
                "%d error(s), %d warning(s)\n",
                prog.name().c_str(), prog.size(),
                rep.uniformBranches + rep.divergentBranches,
                rep.divergentBranches, rep.uniformBranches,
                countSeverity(diags, Severity::Error),
                countSeverity(diags, Severity::Warning));
    for (const Diagnostic &d : diags)
        std::printf("  %s\n", toString(d).c_str());

    if (verbose) {
        for (Pc pc = 0; pc < prog.size(); pc++) {
            const Instr &in = prog.at(pc);
            if (in.op != Op::Br)
                continue;
            const BranchInfo &bi = prog.branchInfo(pc);
            std::printf("  @pc %3d: %-28s %s, ipdom %d, post block %d%s\n",
                        pc, disasm(in).c_str(),
                        rep.mayDiverge(pc) ? "divergent" : "uniform  ",
                        bi.ipdom, bi.postBlockLen,
                        (in.flags & kFlagSubdividable) ? ", subdividable"
                                                       : "");
        }
    }
    return countSeverity(diags, Severity::Error);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    KernelParams kp;
    bool all = false;
    bool verbose = false;
    bool werror = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage();
            return 0;
        } else if (!std::strcmp(a, "--list")) {
            for (const auto &n : kernelNames())
                std::puts(n.c_str());
            return 0;
        } else if (!std::strcmp(a, "--all")) {
            all = true;
        } else if (!std::strcmp(a, "--verbose") || !std::strcmp(a, "-v")) {
            verbose = true;
        } else if (!std::strcmp(a, "--werror")) {
            werror = true;
        } else if (!std::strcmp(a, "--kernel") && i + 1 < argc) {
            names.push_back(argv[++i]);
        } else if (!std::strcmp(a, "--scale") && i + 1 < argc) {
            const std::string s = argv[++i];
            if (s == "tiny")
                kp.scale = KernelScale::Tiny;
            else if (s == "default")
                kp.scale = KernelScale::Default;
            else
                fatal("unknown scale '%s'", s.c_str());
        } else if (!std::strcmp(a, "--subdiv") && i + 1 < argc) {
            kp.subdivThreshold = std::atoi(argv[++i]);
        } else {
            usage();
            return 2;
        }
    }

    if (all)
        names = kernelNames();
    if (names.empty()) {
        usage();
        return 2;
    }

    int errors = 0;
    for (const std::string &n : names)
        errors += lintKernel(n, kp, verbose, werror);
    if (errors > 0)
        std::printf("dws_lint: %d error(s) total\n", errors);
    return errors > 0 ? 1 : 0;
}
