/**
 * @file
 * dws_lint: the static analyzer front end for the built-in kernels.
 *
 * Runs every static pass (see analysis/report.hh) over one kernel or
 * all of them: the structural verifier, maybe-uninitialized reads,
 * dead stores, interval value-range analysis with out-of-bounds
 * proofs for every Ld/St against the kernel's declared memory size,
 * the barrier-divergence check, and loop-bound classification. Every
 * diagnostic carries its pass, pc, basic block and a disassembly
 * snippet.
 *
 *   dws_lint --all
 *   dws_lint --kernel Merge --verbose
 *   dws_lint --all --json lint.json
 *
 * Exit codes: 0 every linted kernel is clean (no errors, no
 * warnings; notes are informational), 1 any error, 2 usage problems
 * (unknown flag, unknown kernel, no kernel selected), 3 warnings but
 * no errors (--werror turns this into 1).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "isa/disasm.hh"
#include "kernels/kernel.hh"
#include "sim/config.hh"
#include "sim/json_writer.hh"
#include "sim/parse.hh"

using namespace dws;

namespace {

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: dws_lint [options]\n"
        "  --kernel NAME   lint one benchmark or a textual IR file\n"
        "                  (path or *.dws); repeatable\n"
        "  --all           lint every built-in benchmark\n"
        "  --scale S       tiny | default (input-size preset)\n"
        "  --subdiv N      branch heuristic bound (instrs)\n"
        "  --threads N     launch thread count the prover assumes\n"
        "                  (default: the standard system configuration)\n"
        "  --json PATH     write a structured report (JSON array,\n"
        "                  one object per kernel)\n"
        "  --verbose       also print per-branch divergence verdicts\n"
        "                  and per-access proof results\n"
        "  --werror        treat warnings as errors\n"
        "  --list          print benchmark names and exit\n"
        "exit codes: 0 clean, 1 errors, 2 usage, 3 warnings only\n",
        out);
}

struct LintTotals
{
    int errors = 0;
    int warnings = 0;
};

void
lintKernel(const std::string &name, const KernelParams &kp,
           std::int64_t threads, bool verbose, bool werror,
           LintTotals &totals, JsonWriter *json)
{
    auto kernel = makeKernel(name, kp);
    const Program prog = kernel->buildProgram();

    AnalysisInput input;
    input.memBytes = kernel->memBytes();
    input.numThreads = threads;
    StaticReport rep = StaticAnalyzer::analyze(prog, input);
    if (werror)
        for (Diagnostic &d : rep.diags)
            if (d.severity == Severity::Warning)
                d.severity = Severity::Error;

    int divergent = 0;
    int uniform = 0;
    for (Pc pc = 0; pc < prog.size(); pc++) {
        if (prog.at(pc).op != Op::Br)
            continue;
        if (prog.branchInfo(pc).mayDiverge)
            divergent++;
        else
            uniform++;
    }

    std::printf("%s: %d instrs, %d error(s), %d warning(s), %d note(s)\n",
                prog.name().c_str(), prog.size(), rep.errors(),
                rep.warnings(), rep.notes());
    std::printf("  branches:  %d divergent, %d uniform\n", divergent,
                uniform);
    std::printf("  accesses:  %d proved in-bounds, %d unproved, "
                "%d out-of-bounds\n",
                rep.provedAccesses, rep.unprovedAccesses,
                rep.oobAccesses);
    std::printf("  barriers:  %d uniform of %d\n", rep.uniformBarriers,
                rep.barriers);
    std::printf("  loops:     %d static, %d input-bounded, %d unknown\n",
                rep.staticLoops, rep.inputLoops, rep.unknownLoops);
    for (const Diagnostic &d : rep.diags)
        std::printf("  %s\n", toString(d).c_str());

    if (verbose) {
        for (Pc pc = 0; pc < prog.size(); pc++) {
            const Instr &in = prog.at(pc);
            if (in.op != Op::Br)
                continue;
            const BranchInfo &bi = prog.branchInfo(pc);
            std::printf("  @pc %3d: %-28s %s, ipdom %d, post block %d%s\n",
                        pc, disasm(in).c_str(),
                        bi.mayDiverge ? "divergent" : "uniform  ",
                        bi.ipdom, bi.postBlockLen,
                        (in.flags & kFlagSubdividable) ? ", subdividable"
                                                       : "");
        }
        for (const MemAccessClaim &a : rep.accesses) {
            std::printf("  @pc %3d: %-28s %s [%lld, %lld]\n", a.pc,
                        disasm(prog.at(a.pc)).c_str(),
                        memVerdictName(a.verdict), (long long)a.addr.lo,
                        (long long)a.addr.hi);
        }
    }

    if (json)
        writeReportJson(*json, rep, prog.name(), prog.size());

    totals.errors += rep.errors();
    totals.warnings += rep.warnings();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    KernelParams kp;
    std::int64_t threads = SystemConfig{}.totalThreads();
    std::string jsonPath;
    bool all = false;
    bool verbose = false;
    bool werror = false;

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage(stdout);
            return 0;
        } else if (!std::strcmp(a, "--list")) {
            for (const auto &n : kernelNames())
                std::puts(n.c_str());
            return 0;
        } else if (!std::strcmp(a, "--all")) {
            all = true;
        } else if (!std::strcmp(a, "--verbose") || !std::strcmp(a, "-v")) {
            verbose = true;
        } else if (!std::strcmp(a, "--werror")) {
            werror = true;
        } else if (!std::strcmp(a, "--kernel") && i + 1 < argc) {
            names.push_back(argv[++i]);
        } else if (!std::strcmp(a, "--json") && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (!std::strcmp(a, "--threads") && i + 1 < argc) {
            const auto v = parseInt64InRange(argv[++i], 0, 1 << 24);
            if (!v) {
                std::fprintf(stderr,
                             "dws_lint: --threads: '%s' is not a valid "
                             "thread count (0 = unknown)\n", argv[i]);
                usage(stderr);
                return 2;
            }
            threads = *v;
        } else if (!std::strcmp(a, "--scale") && i + 1 < argc) {
            const std::string s = argv[++i];
            if (s == "tiny") {
                kp.scale = KernelScale::Tiny;
            } else if (s == "default") {
                kp.scale = KernelScale::Default;
            } else {
                std::fprintf(stderr, "dws_lint: unknown scale '%s'\n",
                             s.c_str());
                usage(stderr);
                return 2;
            }
        } else if (!std::strcmp(a, "--subdiv") && i + 1 < argc) {
            const auto v = parseInt64InRange(argv[++i], 0, 100000);
            if (!v) {
                std::fprintf(stderr,
                             "dws_lint: --subdiv: '%s' is not a valid "
                             "instruction bound\n", argv[i]);
                usage(stderr);
                return 2;
            }
            kp.subdivThreshold = static_cast<int>(*v);
        } else {
            std::fprintf(stderr, "dws_lint: unknown option '%s'\n", a);
            usage(stderr);
            return 2;
        }
    }

    if (all)
        names = kernelNames();
    if (names.empty()) {
        std::fprintf(stderr, "dws_lint: no kernel selected\n");
        usage(stderr);
        return 2;
    }
    for (const std::string &n : names) {
        if (!makeKernel(n, kp)) {
            std::fprintf(stderr,
                         "dws_lint: cannot load kernel '%s' "
                         "(try --list, or check the IR file)\n",
                         n.c_str());
            usage(stderr);
            return 2;
        }
    }

    std::ofstream jsonFile;
    std::unique_ptr<JsonWriter> json;
    if (!jsonPath.empty()) {
        jsonFile.open(jsonPath);
        if (!jsonFile) {
            std::fprintf(stderr, "dws_lint: cannot open '%s'\n",
                         jsonPath.c_str());
            return 2;
        }
        json = std::make_unique<JsonWriter>(jsonFile, 2);
        json->beginArray();
    }

    LintTotals totals;
    for (const std::string &n : names)
        lintKernel(n, kp, threads, verbose, werror, totals, json.get());

    if (json) {
        json->endArray();
        jsonFile << "\n";
    }

    if (totals.errors > 0) {
        std::printf("dws_lint: %d error(s) total\n", totals.errors);
        return 1;
    }
    if (totals.warnings > 0) {
        std::printf("dws_lint: %d warning(s) total\n", totals.warnings);
        return 3;
    }
    return 0;
}
