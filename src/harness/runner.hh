/**
 * @file
 * One-call simulation API used by tests, benches and examples.
 */

#ifndef DWS_HARNESS_RUNNER_HH
#define DWS_HARNESS_RUNNER_HH

#include <string>

#include "harness/system.hh"
#include "kernels/kernel.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace dws {

/** Result of one benchmark run. */
struct RunResult
{
    RunStats stats;
    /** Output matched the host-side golden reference. */
    bool valid = false;
    /** Kernel name. */
    std::string kernel;
    /** Policy name. */
    std::string policy;
    /** Trace records emitted (0 when tracing is off). */
    std::uint64_t traceRecords = 0;
    /** Trace records lost to ring overflow (sink-less tracing only). */
    std::uint64_t traceDropped = 0;
};

/**
 * Build the system, run the named kernel to completion and validate
 * its output.
 *
 * @param kernelName one of kernelNames()
 * @param cfg        system configuration (policy included)
 * @param scale      kernel input-size preset
 */
RunResult runKernel(const std::string &kernelName,
                    const SystemConfig &cfg,
                    KernelScale scale = KernelScale::Default);

/** @return execution-time speedup of `test` relative to `base`. */
double speedup(const RunStats &base, const RunStats &test);

} // namespace dws

#endif // DWS_HARNESS_RUNNER_HH
