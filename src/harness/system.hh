/**
 * @file
 * The full simulated system: WPUs + coherent cache hierarchy + kernel,
 * with the top-level simulation loop.
 */

#ifndef DWS_HARNESS_SYSTEM_HH
#define DWS_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "analysis/oracle.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "kernels/kernel.hh"
#include "mem/memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"
#include "wpu/kernel_barrier.hh"
#include "wpu/wpu.hh"

namespace dws {

/** One complete simulation instance. */
class System
{
  public:
    /**
     * Build the system and load the kernel (program + memory image).
     *
     * @param cfg    system configuration
     * @param kernel the benchmark to run (not owned; must outlive run())
     */
    System(const SystemConfig &cfg, const Kernel &kernel);

    /**
     * Simulate until every thread halts.
     * @return the collected statistics (including energy).
     */
    RunStats run();

    /** @return true once the simulation has completed. */
    bool finished() const;

    /** @return the functional memory (for output validation). */
    Memory &memory() { return mem; }

    /** @return a WPU (tests, diagnostics). */
    Wpu &wpu(int i) { return *wpus[static_cast<size_t>(i)]; }

    /** @return the memory hierarchy (tests, diagnostics). */
    MemSystem &memSystem() { return memsys; }

    /** @return current simulated cycle. */
    Cycle now() const { return cycle; }

    /**
     * @return the tracer, or nullptr when cfg.traceMode is off.
     * Purely observational: enabling it never changes RunStats.
     */
    Tracer *tracer() { return tracer_.get(); }

    /**
     * Attach the sink trace records flush through. Overrides the sink
     * the constructor opened from cfg.traceOut (tests pass an
     * in-memory stream). No-op when tracing is off. Call before
     * run(): records already buffered in the rings are retained, but
     * a ring that filled earlier has already dropped its overflow.
     */
    void attachTraceSink(std::unique_ptr<TraceSink> sink);

    /** Energy parameters applied when collecting statistics. */
    EnergyParams energyParams{};

    /**
     * @return the fault injector built from cfg.faultSpec, or nullptr
     *         when no injection was requested. The campaign reads
     *         firedAt()/description() after run() aborts.
     */
    const FaultInjector *faultInjector() const { return injector_.get(); }

    /**
     * @return the static-analysis cross-validation oracle, or nullptr
     *         when cfg.checkOracle is off. Tests put it in collect
     *         mode and read the recorded contradictions after run().
     */
    ExecutionOracle *oracle() { return oracle_.get(); }

  private:
    RunStats collect() const;
    void sampleTraceEpoch();
    /** Deadlock/cycle-limit report body: per-WPU lines + event census. */
    std::string failureDiagnostics() const;

    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<ExecutionOracle> oracle_;

    SystemConfig cfg;
    Program prog;
    Memory mem;
    EventQueue events;
    MemSystem memsys;
    KernelBarrier kbar;
    std::vector<std::unique_ptr<Wpu>> wpus;
    Cycle cycle = 0;
    /** Next metrics-timeline sample boundary (timeline mode only). */
    Cycle traceEpochNext_ = 0;
};

} // namespace dws

#endif // DWS_HARNESS_SYSTEM_HH
