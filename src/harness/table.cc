#include "harness/table.hh"

#include <cstdio>
#include <iostream>

namespace dws {

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TextTable::header(std::vector<std::string> cells)
{
    rows.insert(rows.begin(), std::move(cells));
    hasHeader = true;
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
TextTable::numericRow(const std::string &label,
                      const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells{label};
    for (double v : values)
        cells.push_back(fmt(v, precision));
    rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    for (const auto &r : rows) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (size_t i = 0; i < r.size(); i++)
            widths[i] = std::max(widths[i], r[i].size());
    }
    for (size_t ri = 0; ri < rows.size(); ri++) {
        const auto &r = rows[ri];
        for (size_t i = 0; i < r.size(); i++) {
            const int pad = static_cast<int>(widths[i] - r[i].size());
            if (i == 0) {
                os << r[i] << std::string(static_cast<size_t>(pad), ' ');
            } else {
                os << "  " << std::string(static_cast<size_t>(pad), ' ')
                   << r[i];
            }
        }
        os << "\n";
        if (ri == 0 && hasHeader) {
            size_t total = 0;
            for (size_t i = 0; i < widths.size(); i++)
                total += widths[i] + (i ? 2 : 0);
            os << std::string(total, '-') << "\n";
        }
    }
}

void
TextTable::print() const
{
    print(std::cout);
}

} // namespace dws
