#include "harness/sweep.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dws {

PolicyRun
runAll(const std::string &label, const SystemConfig &cfg,
       KernelScale scale, const std::vector<std::string> &benchmarks)
{
    PolicyRun out;
    out.label = label;
    const std::vector<std::string> &names =
            benchmarks.empty() ? kernelNames() : benchmarks;
    for (const auto &name : names) {
        const RunResult r = runKernel(name, cfg, scale);
        out.stats[name] = r.stats;
    }
    return out;
}

std::vector<double>
speedups(const PolicyRun &base, const PolicyRun &test)
{
    std::vector<double> out;
    for (const auto &[name, bs] : base.stats) {
        auto it = test.stats.find(name);
        if (it == test.stats.end())
            fatal("speedups: '%s' missing from test run", name.c_str());
        out.push_back(speedup(bs, it->second));
    }
    return out;
}

double
hmeanSpeedup(const PolicyRun &base, const PolicyRun &test)
{
    return harmonicMean(speedups(base, test));
}

BenchOptions
parseBenchArgs(int argc, char **argv, KernelScale defaultScale)
{
    BenchOptions opts;
    opts.scale = defaultScale;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            opts.scale = KernelScale::Tiny;
        } else if (std::strcmp(argv[i], "--full") == 0) {
            opts.scale = KernelScale::Default;
        } else if (std::strcmp(argv[i], "--bench") == 0 &&
                   i + 1 < argc) {
            opts.benchmarks.emplace_back(argv[++i]);
        }
    }
    return opts;
}

} // namespace dws
