#include "harness/sweep.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fault.hh"
#include "kernels/irfile.hh"
#include "kernels/kernel.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "trace/trace.hh"

namespace dws {

namespace {

/** Bench-wide trace options, set once by parseBenchArgs. */
int gBenchTraceMode = 0;
std::string gBenchTraceOut;

/** Bench-wide fault-injection options, set once by parseBenchArgs. */
std::string gBenchFaultSpec;
std::string gBenchFaultCell;

/** Bench-wide machine overrides, set once by parseBenchArgs. */
int gBenchWpus = 0;
HierarchySpec gBenchHier;

std::string
sanitizeToken(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        out.push_back(ok ? c : '-');
    }
    return out;
}

} // namespace

void
setBenchTrace(int traceMode, const std::string &traceOutPattern)
{
    gBenchTraceMode = traceMode;
    gBenchTraceOut = traceOutPattern;
}

SystemConfig
withBenchTrace(SystemConfig cfg, const std::string &label,
               const std::string &kernel)
{
    if (gBenchTraceMode == 0)
        return cfg;
    cfg.traceMode = gBenchTraceMode;
    if (!gBenchTraceOut.empty()) {
        const std::string job =
                sanitizeToken(label) + "." + sanitizeToken(kernel);
        const size_t dot = gBenchTraceOut.rfind('.');
        const size_t slash = gBenchTraceOut.find_last_of('/');
        if (dot != std::string::npos &&
            (slash == std::string::npos || dot > slash)) {
            cfg.traceOut = gBenchTraceOut.substr(0, dot) + "." + job +
                           gBenchTraceOut.substr(dot);
        } else {
            cfg.traceOut = gBenchTraceOut + "." + job;
        }
    }
    return cfg;
}

void
setBenchFault(const std::string &spec, const std::string &cell)
{
    gBenchFaultSpec = spec;
    gBenchFaultCell = cell;
}

SystemConfig
withBenchFault(SystemConfig cfg, const std::string &label,
               const std::string &kernel)
{
    if (gBenchFaultSpec.empty())
        return cfg;
    if (!gBenchFaultCell.empty() && gBenchFaultCell != kernel &&
        gBenchFaultCell != label + "/" + kernel)
        return cfg;
    cfg.faultSpec = gBenchFaultSpec;
    return cfg;
}

void
setBenchHier(int wpus, const HierarchySpec &hier)
{
    gBenchWpus = wpus;
    gBenchHier = hier;
}

SystemConfig
withBenchHier(SystemConfig cfg)
{
    if (gBenchWpus > 0)
        cfg.numWpus = gBenchWpus;
    if (!gBenchHier.empty())
        cfg.applyHierarchy(gBenchHier);
    return cfg;
}

PolicyRun
PendingRun::get()
{
    PolicyRun out;
    out.label = label;
    for (auto &[name, fut] : futures) {
        JobResult r = fut.get();
        if (r.ok())
            out.stats[name] = r.run.stats;
        else
            out.failures[name] =
                    std::string(simOutcomeName(r.outcome)) + ": " +
                    r.error;
    }
    futures.clear();
    return out;
}

PendingRun
runAllAsync(const std::string &label, const SystemConfig &cfg,
            KernelScale scale, const std::vector<std::string> &benchmarks,
            SweepExecutor &ex)
{
    PendingRun pending;
    pending.label = label;
    const std::vector<std::string> &names =
            benchmarks.empty() ? kernelNames() : benchmarks;
    for (const auto &name : names) {
        SystemConfig jobCfg = withBenchFault(
                withBenchTrace(withBenchHier(cfg), label, name), label,
                name);
        pending.futures.emplace_back(
                name,
                ex.submit(SweepJob{name, std::move(jobCfg), scale,
                                   label}));
    }
    return pending;
}

PolicyRun
runAll(const std::string &label, const SystemConfig &cfg,
       KernelScale scale, const std::vector<std::string> &benchmarks,
       SweepExecutor *ex)
{
    if (ex)
        return runAllAsync(label, cfg, scale, benchmarks, *ex).get();
    PolicyRun out;
    out.label = label;
    const std::vector<std::string> &names =
            benchmarks.empty() ? kernelNames() : benchmarks;
    for (const auto &name : names) {
        const SystemConfig jobCfg = withBenchFault(
                withBenchTrace(withBenchHier(cfg), label, name), label,
                name);
        const RunResult r = runKernel(name, jobCfg, scale);
        out.stats[name] = r.stats;
    }
    return out;
}

std::vector<double>
speedups(const PolicyRun &base, const PolicyRun &test)
{
    std::vector<double> out;
    for (const auto &[name, bs] : base.stats) {
        auto it = test.stats.find(name);
        if (it == test.stats.end()) {
            // The cell failed (or was never run) under `test`: exclude
            // the benchmark from the comparison rather than abort the
            // whole sweep.
            const auto fail = test.failures.find(name);
            warn("speedups: %s missing from run '%s'%s%s; skipped",
                 name.c_str(), test.label.c_str(),
                 fail != test.failures.end() ? " — " : "",
                 fail != test.failures.end() ? fail->second.c_str()
                                             : "");
            continue;
        }
        out.push_back(speedup(bs, it->second));
    }
    return out;
}

double
hmeanSpeedup(const PolicyRun &base, const PolicyRun &test)
{
    const std::string context = "speedups of '" + test.label +
                                "' over '" + base.label + "'";
    return harmonicMean(speedups(base, test), context.c_str());
}

void
applyBenchOptions(SweepExecutor &ex, const BenchOptions &opts)
{
    if (!opts.journalPath.empty())
        ex.setJournal(opts.journalPath, opts.resume);
    if (opts.timeoutSec > 0.0)
        ex.setWatchdog(opts.timeoutSec);
    if (opts.retryAttempts > 1)
        ex.setRetry(opts.retryAttempts);
    if (!opts.serveSocket.empty()) {
        ServeConfig cfg;
        cfg.endpoint = opts.serveSocket;
        cfg.authToken = opts.serveAuth;
        cfg.rpcTimeoutMs = opts.serveTimeoutMs;
        cfg.retry.maxAttempts = opts.serveRetries;
        ex.setServe(std::move(cfg));
    }
}

namespace {

void
printUsage(const char *prog)
{
    std::string names;
    for (const auto &n : kernelNames())
        names += (names.empty() ? "" : ", ") + n;
    std::fprintf(stderr,
                 "usage: %s [--fast|--full] [--bench NAME]... "
                 "[--jobs N] [--json FILE] "
                 "[--trace[=MODE]] [--trace-out FILE]\n"
                 "  --fast        tiny kernel inputs (wide sweeps)\n"
                 "  --full        default (paper-scale) kernel inputs\n"
                 "  --bench NAME  restrict to one benchmark, or run a\n"
                 "                textual IR file (path or *.dws; "
                 "repeatable)\n"
                 "  --jobs N      simulation worker threads "
                 "(default: DWS_JOBS env, else hardware cores)\n"
                 "  --json FILE   write per-job results as JSON\n"
                 "  --trace[=MODE]   trace every run; MODE is events, "
                 "timeline or all (default all)\n"
                 "  --trace-out FILE trace file pattern; each job "
                 "writes FILE.<label>.<kernel>.<ext>\n"
                 "                   (.dwst binary, .jsonl JSON-lines, "
                 ".json Perfetto)\n"
                 "  --journal FILE   append completed cells to a "
                 "JSON-lines journal\n"
                 "  --resume         restore journaled cells instead of "
                 "re-simulating (needs --journal)\n"
                 "  --timeout SEC    cancel cells making no simulated "
                 "progress for SEC wall seconds\n"
                 "  --retry N        retry cancelled cells up to N total "
                 "attempts\n"
                 "  --inject SPEC    plant a fault, e.g. "
                 "mask-flip@5000:wpu=1:seed=7\n"
                 "  --inject-cell LABEL/KERNEL  poison only the matching "
                 "sweep cell\n"
                 "  --wpus N         override the WPU count for every "
                 "cell (1..1024)\n"
                 "  --hier SPEC      explicit cache fabric, levels "
                 "name:size:assoc:lat[:slices[:mshrs]]\n"
                 "                   comma-separated, e.g. "
                 "l1d:32k:8:3,l2:1m:16:30,l3:8m:16:60:2\n"
                 "  --l3-kb N        append a shared L3 of N KB behind "
                 "the default L2\n"
                 "  --l3-assoc N     L3 associativity (default 16)\n"
                 "  --l3-lat N       L3 hit latency (default 60)\n"
                 "  --serve SPEC     run every cell through the "
                 "dws_serve daemon at SPEC\n"
                 "                   (unix:PATH, tcp:HOST:PORT, or a "
                 "bare socket path; cached cells\n"
                 "                   are not re-simulated; incompatible "
                 "with --trace; an unreachable\n"
                 "                   daemon degrades to local "
                 "simulation)\n"
                 "  --serve-timeout MS  per-RPC deadline for --serve "
                 "(default 300000)\n"
                 "  --serve-retries N   serve attempts per cell "
                 "(default 4)\n"
                 "  --serve-auth TOKEN  pre-shared token for an "
                 "authenticated daemon\n"
                 "  --help        this message\n"
                 "benchmarks: %s\n",
                 prog, names.c_str());
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv, KernelScale defaultScale)
{
    BenchOptions opts;
    opts.scale = defaultScale;
    long long l3Kb = 0, l3Assoc = 16, l3Lat = 60;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--fast") == 0) {
            opts.scale = KernelScale::Tiny;
        } else if (std::strcmp(arg, "--full") == 0) {
            opts.scale = KernelScale::Default;
        } else if (std::strcmp(arg, "--bench") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--bench requires a benchmark name");
            }
            const std::string name = argv[++i];
            const auto &known = kernelNames();
            const bool registered =
                    std::find(known.begin(), known.end(), name) !=
                    known.end();
            // IR files are accepted too; assemble now so malformed
            // files are rejected before the sweep starts.
            if (!registered &&
                !(looksLikeIrFile(name) &&
                  makeKernel(name, KernelParams{}) != nullptr)) {
                printUsage(argv[0]);
                fatal("unknown benchmark '%s'", name.c_str());
            }
            opts.benchmarks.push_back(name);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--jobs requires a positive integer");
            }
            const auto jobs = parseInt64InRange(argv[++i], 1, 4096);
            if (!jobs) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --jobs '%s' is not a positive "
                             "integer (max 4096)\n", argv[i]);
                std::exit(2);
            }
            opts.jobs = static_cast<int>(*jobs);
        } else if (std::strcmp(arg, "--json") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--json requires a file path");
            }
            opts.jsonPath = argv[++i];
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.traceMode = static_cast<int>(TraceMode::All);
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            const TraceMode m = parseTraceMode(arg + 8);
            if (m == TraceMode::Off) {
                printUsage(argv[0]);
                fatal("--trace mode must be events, timeline or all, "
                      "got '%s'", arg + 8);
            }
            opts.traceMode = static_cast<int>(m);
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--trace-out requires a file path");
            }
            opts.traceOut = argv[++i];
        } else if (std::strcmp(arg, "--journal") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--journal requires a file path");
            }
            opts.journalPath = argv[++i];
        } else if (std::strcmp(arg, "--resume") == 0) {
            opts.resume = true;
        } else if (std::strcmp(arg, "--timeout") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--timeout requires seconds");
            }
            const auto sec = parseFiniteDouble(argv[++i]);
            if (!sec || *sec <= 0.0) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --timeout '%s' is not a positive "
                             "number of seconds\n", argv[i]);
                std::exit(2);
            }
            opts.timeoutSec = *sec;
        } else if (std::strcmp(arg, "--retry") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--retry requires an attempt count");
            }
            const auto n = parseInt64InRange(argv[++i], 1, 1000);
            if (!n) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --retry '%s' is not a positive "
                             "integer (max 1000)\n", argv[i]);
                std::exit(2);
            }
            opts.retryAttempts = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--inject") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--inject requires a fault spec");
            }
            opts.injectSpec = argv[++i];
            if (!parseFaultSpec(opts.injectSpec)) {
                printUsage(argv[0]);
                fatal("invalid --inject spec '%s'",
                      opts.injectSpec.c_str());
            }
        } else if (std::strcmp(arg, "--inject-cell") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--inject-cell requires LABEL/KERNEL");
            }
            opts.injectCell = argv[++i];
        } else if (std::strcmp(arg, "--wpus") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--wpus requires a WPU count");
            }
            const auto w = parseInt64InRange(argv[++i], 1, 1024);
            if (!w) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --wpus '%s' is not an integer in "
                             "[1, 1024]\n", argv[i]);
                std::exit(2);
            }
            opts.wpus = static_cast<int>(*w);
        } else if (std::strcmp(arg, "--hier") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--hier requires a spec string");
            }
            std::string err;
            if (!HierarchySpec::parse(argv[++i], opts.hier, err)) {
                printUsage(argv[0]);
                std::fprintf(stderr, "error: --hier: %s\n",
                             err.c_str());
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--l3-kb") == 0 ||
                   std::strcmp(arg, "--l3-assoc") == 0 ||
                   std::strcmp(arg, "--l3-lat") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("%s requires a positive integer", arg);
            }
            const auto v = parseInt64InRange(argv[++i], 1, 1 << 30);
            if (!v) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: %s '%s' is not a positive "
                             "integer\n", arg, argv[i]);
                std::exit(2);
            }
            if (std::strcmp(arg, "--l3-kb") == 0)
                l3Kb = *v;
            else if (std::strcmp(arg, "--l3-assoc") == 0)
                l3Assoc = *v;
            else
                l3Lat = *v;
        } else if (std::strcmp(arg, "--serve") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--serve requires a daemon endpoint "
                      "(unix:PATH, tcp:HOST:PORT, or a socket path)");
            }
            opts.serveSocket = argv[++i];
        } else if (std::strcmp(arg, "--serve-timeout") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--serve-timeout requires milliseconds");
            }
            const auto ms = parseInt64InRange(argv[++i], 1, 86400000);
            if (!ms) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --serve-timeout '%s' is not a "
                             "positive millisecond count\n", argv[i]);
                std::exit(2);
            }
            opts.serveTimeoutMs = static_cast<int>(*ms);
        } else if (std::strcmp(arg, "--serve-retries") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--serve-retries requires an attempt count");
            }
            const auto n = parseInt64InRange(argv[++i], 1, 100);
            if (!n) {
                printUsage(argv[0]);
                std::fprintf(stderr,
                             "error: --serve-retries '%s' is not a "
                             "positive integer (max 100)\n", argv[i]);
                std::exit(2);
            }
            opts.serveRetries = static_cast<int>(*n);
        } else if (std::strcmp(arg, "--serve-auth") == 0) {
            if (i + 1 >= argc) {
                printUsage(argv[0]);
                fatal("--serve-auth requires a token");
            }
            opts.serveAuth = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            printUsage(argv[0]);
            fatal("unknown argument '%s'", arg);
        }
    }
    if (opts.traceMode == 0 && !opts.traceOut.empty()) {
        printUsage(argv[0]);
        fatal("--trace-out requires --trace");
    }
    // Trace knobs are observationally pure and deliberately excluded
    // from the served cache key, so a traced run routed through the
    // daemon would silently produce no trace files.
    if (!opts.serveSocket.empty() && opts.traceMode != 0) {
        printUsage(argv[0]);
        fatal("--serve and --trace are mutually exclusive");
    }
    if (opts.serveSocket.empty() &&
        (opts.serveTimeoutMs != 300000 || opts.serveRetries != 4 ||
         !opts.serveAuth.empty())) {
        printUsage(argv[0]);
        fatal("--serve-timeout/--serve-retries/--serve-auth require "
              "--serve");
    }
    if (opts.resume && opts.journalPath.empty()) {
        printUsage(argv[0]);
        fatal("--resume requires --journal");
    }
    if (opts.injectSpec.empty() && !opts.injectCell.empty()) {
        printUsage(argv[0]);
        fatal("--inject-cell requires --inject");
    }
    if (l3Kb > 0) {
        if (!opts.hier.empty()) {
            printUsage(argv[0]);
            std::fprintf(stderr,
                         "error: --hier and --l3-kb are mutually "
                         "exclusive\n");
            std::exit(2);
        }
        opts.hier = HierarchySpec::withL3(
                static_cast<std::uint64_t>(l3Kb) * 1024,
                static_cast<int>(l3Assoc), static_cast<int>(l3Lat));
    } else if (l3Assoc != 16 || l3Lat != 60) {
        printUsage(argv[0]);
        std::fprintf(stderr,
                     "error: --l3-assoc/--l3-lat require --l3-kb\n");
        std::exit(2);
    }
    if (opts.wpus > 0 || !opts.hier.empty()) {
        SystemConfig probe;
        if (opts.wpus > 0)
            probe.numWpus = opts.wpus;
        if (!opts.hier.empty())
            probe.applyHierarchy(opts.hier);
        const std::string err =
                probe.hierarchy().validate(probe.numWpus);
        if (!err.empty()) {
            printUsage(argv[0]);
            std::fprintf(stderr, "error: %s\n", err.c_str());
            std::exit(2);
        }
    }
    setBenchTrace(opts.traceMode, opts.traceOut);
    setBenchFault(opts.injectSpec, opts.injectCell);
    setBenchHier(opts.wpus, opts.hier);
    return opts;
}

} // namespace dws
