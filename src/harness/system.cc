#include "harness/system.hh"

#include <cstdio>

#include "sim/abort.hh"
#include "sim/logging.hh"
#include "trace/sinks.hh"

namespace dws {

namespace {
/** Hard cap when the user sets no maxCycles: catches runaway runs. */
constexpr Cycle kDefaultMaxCycles = 2'000'000'000ULL;
} // namespace

System::System(const SystemConfig &sysCfg, const Kernel &kernel)
    : cfg(sysCfg), prog(kernel.buildProgram()), mem(kernel.memBytes()),
      memsys(sysCfg, events)
{
    kernel.initMemory(mem);
#ifndef DWS_TRACE_DISABLED
    if (cfg.traceMode != 0) {
        tracer_ = std::make_unique<Tracer>(
                cfg.numWpus, cfg.wpu.simdWidth,
                static_cast<TraceMode>(cfg.traceMode), cfg.traceEpoch,
                cfg.traceRingCap);
        traceEpochNext_ = tracer_->epoch();
        if (!cfg.traceOut.empty()) {
            auto sink = makeTraceSink(cfg.traceOut);
            if (sink)
                tracer_->setSink(std::move(sink));
            else
                std::fprintf(stderr,
                             "warning: cannot open trace output %s; "
                             "tracing to ring buffers only\n",
                             cfg.traceOut.c_str());
        }
        memsys.setTracer(tracer_.get());
        events.setTracer(tracer_.get());
    }
#endif
    if (cfg.checkOracle) {
        // Run every static pass over the loaded program and arm the
        // dynamic cross-validation oracle with the resulting claims.
        AnalysisInput input;
        input.memBytes = mem.sizeBytes();
        input.numThreads = cfg.totalThreads();
        oracle_ = std::make_unique<ExecutionOracle>(
                prog.instructions(),
                StaticAnalyzer::analyze(prog, input),
                cfg.totalThreads());
    }
    const int perWpu = cfg.wpu.numThreads();
    for (WpuId i = 0; i < cfg.numWpus; i++) {
        wpus.push_back(std::make_unique<Wpu>(
                i, cfg, prog, mem, memsys, events, &kbar));
        wpus.back()->setTracer(tracer_.get());
        wpus.back()->setOracle(oracle_.get());
        kbar.addWpu(wpus.back().get());
    }
    kbar.setAliveThreads(cfg.totalThreads());
    for (WpuId i = 0; i < cfg.numWpus; i++)
        wpus[static_cast<size_t>(i)]->launch(i * perWpu,
                                             cfg.totalThreads());
    if (!cfg.faultSpec.empty()) {
        const std::optional<FaultSpec> spec =
                parseFaultSpec(cfg.faultSpec);
        if (!spec)
            fatal("invalid --inject spec '%s'", cfg.faultSpec.c_str());
        if (spec->wpu < 0 || spec->wpu >= cfg.numWpus)
            fatal("--inject targets wpu %d, system has %d", spec->wpu,
                  cfg.numWpus);
        injector_ = std::make_unique<FaultInjector>(*spec);
    }
}

bool
System::finished() const
{
    for (const auto &w : wpus)
        if (!w->finished())
            return false;
    return true;
}

RunStats
System::run()
{
    const Cycle maxCycles =
            cfg.maxCycles ? cfg.maxCycles : kDefaultMaxCycles;
    SimControl *const ctl = threadSimControl();
    std::uint64_t iters = 0;

    while (!finished()) {
        events.runUntil(cycle);
        DWS_TRACE(tracer_.get(), advanceTo(cycle));
        // Inject between the event drain and the ticks: both sides of
        // the mutation are architecturally consistent states, so the
        // next audit sees the planted fault, not a mid-update artifact.
        if (injector_ && !injector_->fired())
            injector_->tryFire(cycle, wpus, events, memsys);
        // Watchdog handshake (sweep harness only): publish progress
        // and honor cancellation. Checked every 256 iterations so the
        // atomics stay off the single-run hot path.
        if (ctl && (++iters & 255u) == 0) {
            ctl->progressCycle.store(cycle, std::memory_order_relaxed);
            if (ctl->cancel.load(std::memory_order_relaxed))
                simAbort(SimOutcome::Timeout, cycle,
                         failureDiagnostics(),
                         "run cancelled by watchdog at cycle %llu "
                         "(no progress within the configured budget)",
                         (unsigned long long)cycle);
        }
        bool any = false;
        for (auto &w : wpus) {
            // Evaluate per WPU immediately before its tick: an earlier
            // WPU's tick this cycle can release the kernel barrier and
            // hand later WPUs fresh Ready groups.
            if (w->needsTick(cycle))
                any |= w->tick(cycle);
        }
#ifndef DWS_TRACE_DISABLED
        // Sample the metrics timeline once per epoch boundary; a
        // fast-forward skip collapses the boundaries it jumped over
        // into the next sample (deltas stay exact — they are
        // cumulative-counter differences).
        if (tracer_ && tracer_->timelineOn() && cycle >= traceEpochNext_)
            sampleTraceEpoch();
#endif
        if (finished()) {
            cycle++;
            break;
        }
        if (!any) {
            bool imminent = false;
            for (const auto &w : wpus)
                imminent |= w->hasImminentWork();
            if (!imminent) {
                if (events.empty()) {
                    simAbort(SimOutcome::Deadlock, cycle,
                             failureDiagnostics(),
                             "deadlock at cycle %llu: no events, no "
                             "ready groups",
                             (unsigned long long)cycle);
                }
                const Cycle next = events.nextEventCycle();
                if (next > cycle + 1) {
                    const Cycle skip = next - cycle - 1;
                    for (auto &w : wpus) {
                        // Settle the backlog (through this cycle) under
                        // the current states before crediting the
                        // fast-forwarded span.
                        w->accountStallsBefore(cycle + 1);
                        w->addStallCycles(skip);
                    }
                    cycle += skip;
                }
            }
        }
        cycle++;
        if (cycle > maxCycles) {
            simAbort(SimOutcome::CycleLimit, cycle,
                     failureDiagnostics(),
                     "simulation exceeded %llu cycles",
                     (unsigned long long)maxCycles);
        }
    }
    if (tracer_) {
        DWS_TRACE(tracer_.get(), advanceTo(cycle));
        tracer_->finish();
    }
    if (oracle_)
        oracle_->finish();
    return collect();
}

void
System::attachTraceSink(std::unique_ptr<TraceSink> sink)
{
    if (tracer_)
        tracer_->setSink(std::move(sink));
}

std::string
System::failureDiagnostics() const
{
    // One line per WPU plus the event census: enough to see what every
    // WPU was doing and what the system still waited for, without the
    // multi-page per-group dump drowning the report. The full dump of
    // each WPU follows for post-mortem digging.
    std::string s;
    for (const auto &w : wpus) {
        s += w->stateLine();
        s += "\n";
    }
    s += events.censusLine();
    s += "\n";
    for (const auto &w : wpus)
        s += w->dumpState();
    return s;
}

void
System::sampleTraceEpoch()
{
    for (auto &w : wpus)
        tracer_->epochSample(w->id(), w->traceSample());
    traceEpochNext_ =
            (cycle / tracer_->epoch() + 1) * tracer_->epoch();
}

RunStats
System::collect() const
{
    RunStats r;
    r.cycles = cycle;
    for (const auto &w : wpus) {
        r.wpus.push_back(w->stats);
        // Pad the per-WPU cycle accounting so active+stall+idle spans
        // the whole run (tail cycles after local completion).
        WpuStats &ws = r.wpus.back();
        const std::uint64_t accounted = ws.totalCycles();
        if (accounted < cycle)
            ws.idleCycles += cycle - accounted;
    }
    for (int i = 0; i < cfg.numWpus; i++) {
        r.icaches.push_back(memsys.icache(i).stats);
        r.dcaches.push_back(memsys.dcache(i).stats);
    }
    r.mem = memsys.stats();
    r.energyNj = computeEnergy(r, cfg, energyParams).total();
    return r;
}

} // namespace dws
