/**
 * @file
 * Parallel experiment executor for the paper-reproduction sweeps.
 *
 * Every figure of the evaluation runs dozens of fully independent
 * (kernel x config x policy) simulations. Each job builds its own
 * `System`, so jobs share no mutable state and can run on a pool of
 * worker threads. Results are returned in deterministic submission
 * order regardless of completion order (futures + ordered collection),
 * so `--jobs N` output is byte-identical to `--jobs 1`.
 *
 * The executor also records per-job wall time and can dump all records
 * as a machine-readable JSON file (`--json out.json`), letting the
 * perf trajectory track both simulated cycles and real wall-clock.
 *
 * Failure handling: each job runs under recoverable aborts
 * (sim/abort.hh), so a deadlock, cycle-limit hit, invariant violation
 * or panic in one cell is captured as that job's JobResult/Record —
 * with the abort's diagnostics — while every other cell completes
 * normally and stays byte-identical to an all-healthy sweep. A
 * wall-clock watchdog (setWatchdog) cancels jobs that stop making
 * simulated progress; cancelled jobs are the one transient failure
 * class and can be retried with backoff (setRetry). A JSON-lines
 * journal (setJournal) records each completed cell and lets an
 * interrupted sweep resume without re-simulating finished cells.
 */

#ifndef DWS_HARNESS_EXECUTOR_HH
#define DWS_HARNESS_EXECUTOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hh"
#include "kernels/kernel.hh"
#include "serve/retry.hh"
#include "sim/abort.hh"
#include "sim/config.hh"

namespace dws {

class ServeClient;

/**
 * Serve-mode configuration (DESIGN.md §17): where the daemon lives,
 * how long to wait for it, how hard to retry, and whether a job may
 * degrade to local simulation when the daemon stays unreachable.
 */
struct ServeConfig
{
    /** Daemon endpoint (unix:PATH, tcp:HOST:PORT, bare path). */
    std::string endpoint;
    /** Pre-shared token; empty skips the Auth handshake. */
    std::string authToken;
    /** Bound on connect()+auth per attempt; < 0 waits forever. */
    int connectTimeoutMs = 5000;
    /** Per-RPC bound (request write + reply read); < 0 forever. */
    int rpcTimeoutMs = 300000;
    /** Bounded retry with deterministic jittered backoff. */
    RetryPolicy retry;
    /** Degrade to local simulation (flagged) instead of failing the
     *  cell when the daemon stays unreachable past the retries. */
    bool allowFallback = true;
};

/** One simulation job: a kernel under one configuration. */
struct SweepJob
{
    std::string kernel;
    SystemConfig cfg;
    KernelScale scale = KernelScale::Default;
    /** Row/config label carried into the JSON records (e.g. "Conv"). */
    std::string label;
};

/** Outcome of one job. */
struct JobResult
{
    RunResult run;
    /** Real time spent simulating this job, in milliseconds. */
    double wallMs = 0.0;

    /**
     * How the job ended: Ok, ValidationFailed, or — captured from a
     * recoverable abort — Deadlock, CycleLimit, InvariantViolation,
     * Panic or Timeout (watchdog). `run.stats` is meaningless unless
     * ok().
     */
    SimOutcome outcome = SimOutcome::Ok;
    /** Abort message (empty when ok). */
    std::string error;
    /** Abort diagnostics: per-WPU state lines, event census, dumps. */
    std::string diagnostics;
    /** Simulation attempts made (> 1 after watchdog retries). */
    int attempts = 1;
    /** True when the result was restored from the journal, not run. */
    bool resumed = false;
    /** True when a serve daemon answered the cell from its cache. */
    bool cached = false;
    /** True when serve mode fell back to local simulation because the
     *  daemon was unreachable, overloaded past the retries, or timing
     *  out — the result itself is still a correct local run. */
    bool degraded = false;

    /** @return true if the run completed with valid output. */
    bool ok() const { return outcome == SimOutcome::Ok; }
};

/** Fixed-size std::thread pool running independent simulations. */
class SweepExecutor
{
  public:
    /**
     * @param jobs worker threads; <= 0 selects defaultJobs()
     */
    explicit SweepExecutor(int jobs = 0);

    /** Joins the workers (pending jobs are completed first). */
    ~SweepExecutor();

    SweepExecutor(const SweepExecutor &) = delete;
    SweepExecutor &operator=(const SweepExecutor &) = delete;

    /**
     * Enqueue one job.
     * @return a future delivering the result; futures complete in any
     *         order, but the executor's JSON records stay in submission
     *         order.
     */
    std::future<JobResult> submit(SweepJob job);

    /**
     * Run a batch and wait for all of it.
     * @return results in submission order, independent of completion
     *         order.
     */
    std::vector<JobResult> runBatch(std::vector<SweepJob> jobs);

    /** @return configured worker-thread count. */
    int jobs() const { return numWorkers; }

    /** One line of the machine-readable results file. */
    struct Record
    {
        std::string label;
        std::string kernel;
        std::string policy;
        Cycle cycles = 0;
        double energyNj = 0.0;
        double wallMs = 0.0;
        bool valid = false;
        /** Outcome name (simOutcomeName), "ok" for healthy cells. */
        std::string outcome = "ok";
        /** Abort message (empty when ok). */
        std::string error;
        int attempts = 1;
        bool resumed = false;
        /** True when a serve daemon answered from its result cache. */
        bool cached = false;
        /** True when serve mode degraded this cell to a local run. */
        bool degraded = false;
        /** Hex jobConfigHash of the cell's config + scale (journal). */
        std::string cfgHash;
        /** RunStats::fingerprint() of a completed run (journal). */
        std::string fingerprint;
    };

    /** @return all completed-job records, in submission order. */
    std::vector<Record> records() const;

    /**
     * Write all records as JSON:
     *   {"jobs": N, "total_wall_ms": T, "results": [...]}
     * fatal()s if the file cannot be written.
     */
    void writeJson(const std::string &path) const;

    /**
     * Cancel jobs whose simulation makes no forward progress for
     * `timeoutSec` of wall time (cooperative: the run loop polls its
     * SimControl). Cancelled jobs end with SimOutcome::Timeout. Call
     * before submitting; 0 disables.
     */
    void setWatchdog(double timeoutSec);

    /**
     * Retry watchdog-cancelled (transient) jobs up to `maxAttempts`
     * total attempts, sleeping `backoffMs * attempt` between tries.
     * Deterministic failures (deadlock, invariant violation, panic)
     * are never retried — the simulator is deterministic, so they
     * would fail identically.
     */
    void setRetry(int maxAttempts, double backoffMs = 100.0);

    /**
     * Journal completed cells to `path` as JSON lines, one per job,
     * keyed by (label, kernel, config hash) — the "cfg" field carries
     * jobConfigHash(cfg, scale) so a journal written under one
     * configuration can never resume a sweep under another. With
     * `resume`, cells already journaled with outcome "ok" *and* a
     * matching config hash are not re-simulated: submit() restores
     * their full RunStats from the journaled fingerprint and completes
     * the future immediately (Record.resumed marks them). Lines from
     * older journals without a "cfg" field are ignored (re-simulated).
     * Call before submitting.
     */
    void setJournal(const std::string &path, bool resume);

    /**
     * Route every job to a dws_serve daemon (DESIGN.md §16–17): each
     * worker thread sends a batch-of-one SubmitBatch and rebuilds the
     * exact RunStats from the returned fingerprint, so results — and
     * every figure table — are byte-identical to a local run. Per-job
     * failures (daemon gone, timeout, Busy) are retried with jittered
     * backoff per cfg.retry; when the daemon stays unreachable and
     * cfg.allowFallback holds, the executor *degrades* — a one-line
     * warning, then local simulation with JobResult/Record.degraded
     * set — so `--serve` can never make a bench less reliable than no
     * daemon. With allowFallback off, an unreachable daemon at
     * setServe() time is fatal() and a per-job failure becomes that
     * job's Panic result. Call before submitting.
     */
    void setServe(ServeConfig cfg);
    void setServe(const std::string &endpoint);

    /**
     * Retain per-job Records (records()/writeJson()) — default on.
     * The serve daemon turns this off: it is long-lived and answers
     * from its replies, so an ever-growing record vector would leak.
     */
    void setKeepRecords(bool keep);

    /**
     * @return the most severe outcome over all completed records —
     *         SimOutcome::Ok only if every cell succeeded. Feed to
     *         exitCodeFor() for the bench exit status.
     */
    SimOutcome worstOutcome() const;

    /**
     * @return the pool size chosen when the user passes no `--jobs`:
     *         the DWS_JOBS environment variable if set, else
     *         std::thread::hardware_concurrency().
     */
    static int defaultJobs();

  private:
    void workerLoop();
    JobResult runJob(const SweepJob &job);
    JobResult runLocalJob(const SweepJob &job);
    JobResult runServeJob(const SweepJob &job);
    JobResult degradeToLocal(const SweepJob &job,
                             const std::string &why);
    void journalRecord(const Record &rec);
    void watchdogLoop();
    /** @return journal-map key of a cell (cfgHash in keyHex form). */
    static std::string journalKey(const std::string &label,
                                  const std::string &kernel,
                                  const std::string &cfgHash);

    int numWorkers;
    std::vector<std::thread> workers;

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::packaged_task<JobResult()>> queue;
    bool stopping = false;

    /** Submission-order sequence counter (also records() index). */
    std::size_t seqCounter = 0;
    bool keepRecords = true;

    /** Indexed by submission sequence; filled as jobs complete. */
    std::vector<Record> completed;

    // --- serve --------------------------------------------------------
    ServeConfig serveCfg;
    bool serveEnabled = false;
    /** Cleared after the first unrecoverable daemon failure: later
     *  jobs skip straight to local simulation (degraded). */
    std::atomic<bool> serveHealthy{true};
    std::atomic<bool> serveWarned{false};
    std::mutex serveMtx;
    /** Idle daemon connections, borrowed per job by worker threads. */
    std::vector<std::unique_ptr<ServeClient>> serveIdle;

    // --- watchdog -----------------------------------------------------
    /** One active job under watch. */
    struct WatchSlot
    {
        SimControl *ctl = nullptr;
        Cycle lastCycle = 0;
        std::chrono::steady_clock::time_point lastChange;
    };
    std::size_t watchdogRegister(SimControl *ctl);
    void watchdogUnregister(std::size_t token);

    double watchdogTimeoutSec = 0.0;
    std::thread watchdogThread;
    mutable std::mutex watchMtx;
    std::condition_variable watchCv;
    bool watchStopping = false;
    std::vector<WatchSlot> watchSlots;

    // --- retry --------------------------------------------------------
    int retryMaxAttempts = 1;
    double retryBackoffMs = 100.0;

    // --- journal ------------------------------------------------------
    std::string journalPath;
    mutable std::mutex journalMtx;
    /** Journaled ok-cells, keyed by journalKey (resume mode only). */
    std::map<std::string, Record> journaled;
};

} // namespace dws

#endif // DWS_HARNESS_EXECUTOR_HH
