/**
 * @file
 * Parallel experiment executor for the paper-reproduction sweeps.
 *
 * Every figure of the evaluation runs dozens of fully independent
 * (kernel x config x policy) simulations. Each job builds its own
 * `System`, so jobs share no mutable state and can run on a pool of
 * worker threads. Results are returned in deterministic submission
 * order regardless of completion order (futures + ordered collection),
 * so `--jobs N` output is byte-identical to `--jobs 1`.
 *
 * The executor also records per-job wall time and can dump all records
 * as a machine-readable JSON file (`--json out.json`), letting the
 * perf trajectory track both simulated cycles and real wall-clock.
 */

#ifndef DWS_HARNESS_EXECUTOR_HH
#define DWS_HARNESS_EXECUTOR_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hh"
#include "kernels/kernel.hh"
#include "sim/config.hh"

namespace dws {

/** One simulation job: a kernel under one configuration. */
struct SweepJob
{
    std::string kernel;
    SystemConfig cfg;
    KernelScale scale = KernelScale::Default;
    /** Row/config label carried into the JSON records (e.g. "Conv"). */
    std::string label;
};

/** Outcome of one job. */
struct JobResult
{
    RunResult run;
    /** Real time spent simulating this job, in milliseconds. */
    double wallMs = 0.0;
};

/** Fixed-size std::thread pool running independent simulations. */
class SweepExecutor
{
  public:
    /**
     * @param jobs worker threads; <= 0 selects defaultJobs()
     */
    explicit SweepExecutor(int jobs = 0);

    /** Joins the workers (pending jobs are completed first). */
    ~SweepExecutor();

    SweepExecutor(const SweepExecutor &) = delete;
    SweepExecutor &operator=(const SweepExecutor &) = delete;

    /**
     * Enqueue one job.
     * @return a future delivering the result; futures complete in any
     *         order, but the executor's JSON records stay in submission
     *         order.
     */
    std::future<JobResult> submit(SweepJob job);

    /**
     * Run a batch and wait for all of it.
     * @return results in submission order, independent of completion
     *         order.
     */
    std::vector<JobResult> runBatch(std::vector<SweepJob> jobs);

    /** @return configured worker-thread count. */
    int jobs() const { return numWorkers; }

    /** One line of the machine-readable results file. */
    struct Record
    {
        std::string label;
        std::string kernel;
        std::string policy;
        Cycle cycles = 0;
        double energyNj = 0.0;
        double wallMs = 0.0;
        bool valid = false;
    };

    /** @return all completed-job records, in submission order. */
    std::vector<Record> records() const;

    /**
     * Write all records as JSON:
     *   {"jobs": N, "total_wall_ms": T, "results": [...]}
     * fatal()s if the file cannot be written.
     */
    void writeJson(const std::string &path) const;

    /**
     * @return the pool size chosen when the user passes no `--jobs`:
     *         the DWS_JOBS environment variable if set, else
     *         std::thread::hardware_concurrency().
     */
    static int defaultJobs();

  private:
    void workerLoop();

    int numWorkers;
    std::vector<std::thread> workers;

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::packaged_task<JobResult()>> queue;
    bool stopping = false;

    /** Indexed by submission sequence; filled as jobs complete. */
    std::vector<Record> completed;
};

} // namespace dws

#endif // DWS_HARNESS_EXECUTOR_HH
