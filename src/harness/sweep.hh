/**
 * @file
 * Sweep helpers shared by the bench binaries: run a policy across all
 * benchmarks (optionally on a SweepExecutor worker pool), compute
 * per-benchmark speedups and harmonic means, and parse the common
 * bench CLI flags.
 */

#ifndef DWS_HARNESS_SWEEP_HH
#define DWS_HARNESS_SWEEP_HH

#include <functional>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "sim/config.hh"

namespace dws {

/** Per-benchmark results of one configuration. */
struct PolicyRun
{
    std::string label;
    /** keyed by benchmark name */
    std::map<std::string, RunStats> stats;
};

/**
 * A PolicyRun being computed on a SweepExecutor: jobs are submitted,
 * results are collected on get(). Submitting several PendingRuns
 * before collecting any lets independent configurations overlap.
 */
class PendingRun
{
  public:
    /** Wait for all jobs and assemble the PolicyRun (call once). */
    PolicyRun get();

  private:
    friend PendingRun runAllAsync(const std::string &, const SystemConfig &,
                                  KernelScale,
                                  const std::vector<std::string> &,
                                  SweepExecutor &);
    std::string label;
    std::vector<std::pair<std::string, std::future<JobResult>>> futures;
};

/**
 * Submit every benchmark (or a subset) under one configuration to the
 * executor without waiting.
 *
 * @param label      row label for tables and JSON records
 * @param cfg        the configuration (including policy)
 * @param scale      kernel input preset
 * @param benchmarks subset of kernelNames(); empty = all
 * @param ex         the worker pool
 */
PendingRun runAllAsync(const std::string &label, const SystemConfig &cfg,
                       KernelScale scale,
                       const std::vector<std::string> &benchmarks,
                       SweepExecutor &ex);

/**
 * Run every benchmark (or a subset) under one configuration.
 *
 * @param label      row label for tables
 * @param cfg        the configuration (including policy)
 * @param scale      kernel input preset
 * @param benchmarks subset of kernelNames(); empty = all
 * @param ex         worker pool to run on; nullptr runs serially on
 *                   the calling thread
 */
PolicyRun runAll(const std::string &label, const SystemConfig &cfg,
                 KernelScale scale,
                 const std::vector<std::string> &benchmarks = {},
                 SweepExecutor *ex = nullptr);

/**
 * @return per-benchmark speedups of `test` over `base` (matching
 *         benchmark sets required), in base's iteration order.
 */
std::vector<double> speedups(const PolicyRun &base, const PolicyRun &test);

/** @return harmonic-mean speedup of `test` over `base`. */
double hmeanSpeedup(const PolicyRun &base, const PolicyRun &test);

/**
 * Common bench CLI options.
 *
 *   --fast        use tiny kernel inputs
 *   --full        use default (paper-scale) kernel inputs
 *   --bench NAME  restrict to one benchmark (repeatable)
 *   --jobs N      worker threads (default: DWS_JOBS env, else cores)
 *   --json FILE   write per-job machine-readable results
 *   --trace[=events|timeline|all]  trace every run (default all)
 *   --trace-out FILE  per-job trace files FILE.<label>.<kernel>.<ext>
 *   --help        print usage and exit
 *
 * Unknown flags and unknown benchmark names are rejected with a usage
 * message (fatal).
 */
struct BenchOptions
{
    KernelScale scale = KernelScale::Default;
    std::vector<std::string> benchmarks;
    /** Worker threads; 0 = SweepExecutor::defaultJobs(). */
    int jobs = 0;
    /** Path for the JSON results file; empty = none. */
    std::string jsonPath;
    /** TraceMode as an int (sim/config.hh); 0 = off. */
    int traceMode = 0;
    /** Trace file pattern; empty = trace to rings only (no file). */
    std::string traceOut;
};

/**
 * Record the bench-wide trace options (parseBenchArgs calls this);
 * runAll/runAllAsync/runBenchmarks then stamp every job's config.
 */
void setBenchTrace(int traceMode, const std::string &traceOutPattern);

/**
 * @return cfg with the bench-wide trace options applied. A non-empty
 * pattern "base.ext" yields the per-job file "base.<label>.<kernel>.ext"
 * so parallel sweep jobs never share a sink (label sanitized to
 * [A-Za-z0-9_-]).
 */
SystemConfig withBenchTrace(SystemConfig cfg, const std::string &label,
                            const std::string &kernel);

BenchOptions parseBenchArgs(int argc, char **argv,
                            KernelScale defaultScale =
                                    KernelScale::Default);

} // namespace dws

#endif // DWS_HARNESS_SWEEP_HH
