/**
 * @file
 * Sweep helpers shared by the bench binaries: run a policy across all
 * benchmarks, compute per-benchmark speedups and harmonic means.
 */

#ifndef DWS_HARNESS_SWEEP_HH
#define DWS_HARNESS_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "sim/config.hh"

namespace dws {

/** Per-benchmark results of one configuration. */
struct PolicyRun
{
    std::string label;
    /** keyed by benchmark name */
    std::map<std::string, RunStats> stats;
};

/**
 * Run every benchmark (or a subset) under one configuration.
 *
 * @param label      row label for tables
 * @param cfg        the configuration (including policy)
 * @param scale      kernel input preset
 * @param benchmarks subset of kernelNames(); empty = all
 */
PolicyRun runAll(const std::string &label, const SystemConfig &cfg,
                 KernelScale scale,
                 const std::vector<std::string> &benchmarks = {});

/**
 * @return per-benchmark speedups of `test` over `base` (matching
 *         benchmark sets required), in base's iteration order.
 */
std::vector<double> speedups(const PolicyRun &base, const PolicyRun &test);

/** @return harmonic-mean speedup of `test` over `base`. */
double hmeanSpeedup(const PolicyRun &base, const PolicyRun &test);

/**
 * Parse common bench CLI flags.
 *
 *   --fast        use tiny kernel inputs
 *   --bench NAME  restrict to one benchmark (repeatable)
 *
 * @return selected scale and benchmark subset
 */
struct BenchOptions
{
    KernelScale scale = KernelScale::Default;
    std::vector<std::string> benchmarks;
};

BenchOptions parseBenchArgs(int argc, char **argv,
                            KernelScale defaultScale =
                                    KernelScale::Default);

} // namespace dws

#endif // DWS_HARNESS_SWEEP_HH
