/**
 * @file
 * Sweep helpers shared by the bench binaries: run a policy across all
 * benchmarks (optionally on a SweepExecutor worker pool), compute
 * per-benchmark speedups and harmonic means, and parse the common
 * bench CLI flags.
 */

#ifndef DWS_HARNESS_SWEEP_HH
#define DWS_HARNESS_SWEEP_HH

#include <functional>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "sim/config.hh"

namespace dws {

/** Per-benchmark results of one configuration. */
struct PolicyRun
{
    std::string label;
    /** keyed by benchmark name; failed cells are absent */
    std::map<std::string, RunStats> stats;
    /**
     * Failed cells, keyed by benchmark name: "outcome: message"
     * (e.g. "deadlock: deadlock at cycle 412..."). Tables render these
     * as FAIL(outcome) cells; speedups() skips them.
     */
    std::map<std::string, std::string> failures;

    /** @return true if the named benchmark completed with valid output. */
    bool ok(const std::string &bench) const
    {
        return stats.count(bench) != 0;
    }
};

/**
 * A PolicyRun being computed on a SweepExecutor: jobs are submitted,
 * results are collected on get(). Submitting several PendingRuns
 * before collecting any lets independent configurations overlap.
 */
class PendingRun
{
  public:
    /** Wait for all jobs and assemble the PolicyRun (call once). */
    PolicyRun get();

  private:
    friend PendingRun runAllAsync(const std::string &, const SystemConfig &,
                                  KernelScale,
                                  const std::vector<std::string> &,
                                  SweepExecutor &);
    std::string label;
    std::vector<std::pair<std::string, std::future<JobResult>>> futures;
};

/**
 * Submit every benchmark (or a subset) under one configuration to the
 * executor without waiting.
 *
 * @param label      row label for tables and JSON records
 * @param cfg        the configuration (including policy)
 * @param scale      kernel input preset
 * @param benchmarks subset of kernelNames(); empty = all
 * @param ex         the worker pool
 */
PendingRun runAllAsync(const std::string &label, const SystemConfig &cfg,
                       KernelScale scale,
                       const std::vector<std::string> &benchmarks,
                       SweepExecutor &ex);

/**
 * Run every benchmark (or a subset) under one configuration.
 *
 * @param label      row label for tables
 * @param cfg        the configuration (including policy)
 * @param scale      kernel input preset
 * @param benchmarks subset of kernelNames(); empty = all
 * @param ex         worker pool to run on; nullptr runs serially on
 *                   the calling thread
 */
PolicyRun runAll(const std::string &label, const SystemConfig &cfg,
                 KernelScale scale,
                 const std::vector<std::string> &benchmarks = {},
                 SweepExecutor *ex = nullptr);

/**
 * @return per-benchmark speedups of `test` over `base`, in base's
 *         iteration order. Benchmarks that failed in either run are
 *         skipped (with a warn naming the cell), so one poisoned cell
 *         degrades the table instead of killing the sweep.
 */
std::vector<double> speedups(const PolicyRun &base, const PolicyRun &test);

/**
 * @return harmonic-mean speedup of `test` over `base`, over the cells
 *         that completed in both. A non-positive speedup aborts with
 *         the offending run labels in the message.
 */
double hmeanSpeedup(const PolicyRun &base, const PolicyRun &test);

/**
 * Common bench CLI options.
 *
 *   --fast        use tiny kernel inputs
 *   --full        use default (paper-scale) kernel inputs
 *   --bench NAME  restrict to one benchmark (repeatable)
 *   --jobs N      worker threads (default: DWS_JOBS env, else cores)
 *   --json FILE   write per-job machine-readable results
 *   --trace[=events|timeline|all]  trace every run (default all)
 *   --trace-out FILE  per-job trace files FILE.<label>.<kernel>.<ext>
 *   --journal FILE    append each completed cell to a JSON-lines journal
 *   --resume          restore already-journaled cells instead of
 *                     re-simulating them (requires --journal)
 *   --timeout SEC     watchdog: cancel cells making no progress for SEC
 *   --retry N         retry watchdog-cancelled cells up to N attempts
 *   --inject SPEC     plant a fault (fault/fault.hh spec syntax)
 *   --inject-cell LABEL/KERNEL  restrict --inject to one sweep cell
 *   --wpus N          override the WPU count for every cell
 *   --hier SPEC       explicit cache fabric (HierarchySpec::parse
 *                     syntax) applied to every cell
 *   --l3-kb N / --l3-assoc N / --l3-lat N
 *                     append a shared L3 behind the default L2
 *   --serve SPEC      run every cell through the dws_serve daemon at
 *                     SPEC — unix:PATH, tcp:HOST:PORT, or a bare
 *                     socket path (mutually exclusive with --trace:
 *                     trace knobs are not part of the served cache
 *                     key). An unreachable daemon degrades to local
 *                     simulation (records flagged "degraded").
 *   --serve-timeout MS  per-RPC deadline for --serve (default 300000)
 *   --serve-retries N   serve attempts per cell, with jittered
 *                       exponential backoff (default 4)
 *   --serve-auth TOKEN  pre-shared token for an authenticated daemon
 *   --help        print usage and exit
 *
 * Unknown flags and unknown benchmark names are rejected with a usage
 * message (fatal).
 */
struct BenchOptions
{
    KernelScale scale = KernelScale::Default;
    std::vector<std::string> benchmarks;
    /** Worker threads; 0 = SweepExecutor::defaultJobs(). */
    int jobs = 0;
    /** Path for the JSON results file; empty = none. */
    std::string jsonPath;
    /** TraceMode as an int (sim/config.hh); 0 = off. */
    int traceMode = 0;
    /** Trace file pattern; empty = trace to rings only (no file). */
    std::string traceOut;
    /** Completed-cell journal path; empty = no journal. */
    std::string journalPath;
    /** Restore journaled cells instead of re-running them. */
    bool resume = false;
    /** Watchdog no-progress budget in seconds; 0 = off. */
    double timeoutSec = 0.0;
    /** Total attempts for watchdog-cancelled cells. */
    int retryAttempts = 1;
    /** Fault-injection spec; empty = none. */
    std::string injectSpec;
    /** "LABEL/KERNEL" cell filter for --inject; empty = every cell. */
    std::string injectCell;
    /** WPU-count override; 0 = keep each bench's own configuration. */
    int wpus = 0;
    /** Explicit cache fabric; empty() = keep each bench's own. */
    HierarchySpec hier{};
    /** dws_serve endpoint spec; empty = simulate locally. */
    std::string serveSocket;
    /** Per-RPC deadline for --serve, in milliseconds. */
    int serveTimeoutMs = 300000;
    /** Serve attempts per cell (retry with jittered backoff). */
    int serveRetries = 4;
    /** Pre-shared auth token for --serve; empty = no handshake. */
    std::string serveAuth;
};

/**
 * Apply the failure-handling options (journal, resume, watchdog,
 * retry) to an executor. Call once, before submitting jobs.
 */
void applyBenchOptions(SweepExecutor &ex, const BenchOptions &opts);

/**
 * Record the bench-wide trace options (parseBenchArgs calls this);
 * runAll/runAllAsync/runBenchmarks then stamp every job's config.
 */
void setBenchTrace(int traceMode, const std::string &traceOutPattern);

/**
 * @return cfg with the bench-wide trace options applied. A non-empty
 * pattern "base.ext" yields the per-job file "base.<label>.<kernel>.ext"
 * so parallel sweep jobs never share a sink (label sanitized to
 * [A-Za-z0-9_-]).
 */
SystemConfig withBenchTrace(SystemConfig cfg, const std::string &label,
                            const std::string &kernel);

/**
 * Record the bench-wide fault-injection options (parseBenchArgs calls
 * this); the job-building helpers then stamp matching jobs' configs.
 * `cell` is "LABEL/KERNEL" (or "KERNEL" to match any label); empty
 * poisons every job.
 */
void setBenchFault(const std::string &spec, const std::string &cell);

/**
 * @return cfg with the bench-wide fault spec applied iff (label,
 * kernel) matches the configured --inject-cell filter.
 */
SystemConfig withBenchFault(SystemConfig cfg, const std::string &label,
                            const std::string &kernel);

/**
 * Record the bench-wide machine overrides (parseBenchArgs calls this):
 * a WPU count (0 = keep) and an explicit cache fabric (empty = keep).
 * The job-building helpers then stamp every job's config.
 */
void setBenchHier(int wpus, const HierarchySpec &hier);

/** @return cfg with the bench-wide WPU/hierarchy overrides applied. */
SystemConfig withBenchHier(SystemConfig cfg);

BenchOptions parseBenchArgs(int argc, char **argv,
                            KernelScale defaultScale =
                                    KernelScale::Default);

} // namespace dws

#endif // DWS_HARNESS_SWEEP_HH
