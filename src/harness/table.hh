/**
 * @file
 * Fixed-width text tables for the bench binaries (paper figure/table
 * reproduction output).
 */

#ifndef DWS_HARNESS_TABLE_HH
#define DWS_HARNESS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dws {

/** A simple left-column + numeric-columns text table. */
class TextTable
{
  public:
    /** Set the header cells. */
    void header(std::vector<std::string> cells);

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Append a row with a label and numeric cells (fixed precision). */
    void numericRow(const std::string &label,
                    const std::vector<double> &values, int precision = 2);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> rows;
    bool hasHeader = false;
};

/** @return a double formatted with the given precision. */
std::string fmt(double v, int precision = 2);

} // namespace dws

#endif // DWS_HARNESS_TABLE_HH
