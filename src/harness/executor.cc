#include "harness/executor.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "serve/cache_key.hh"
#include "serve/client.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/stats.hh"

namespace dws {

namespace {

/**
 * Extract the value of `"key":` from one journal line. The journal is
 * our own JsonWriter output (compact, known key set), so a targeted
 * scan suffices — this is not a general JSON parser. Returns the raw
 * token for numbers/booleans and the unescaped body for strings.
 */
bool
journalField(const std::string &line, const std::string &key,
             std::string &out)
{
    const std::string needle = "\"" + key + "\":";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    size_t pos = at + needle.size();
    while (pos < line.size() && line[pos] == ' ')
        pos++;
    if (pos >= line.size())
        return false;
    out.clear();
    if (line[pos] == '"') {
        pos++;
        while (pos < line.size() && line[pos] != '"') {
            char c = line[pos];
            if (c == '\\' && pos + 1 < line.size()) {
                pos++;
                switch (line[pos]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  default:  c = line[pos]; break;
                }
            }
            out += c;
            pos++;
        }
        return pos < line.size();
    }
    while (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
           line[pos] != ' ')
        out += line[pos++];
    return !out.empty();
}

/** Severity rank for worstOutcome (higher = worse). */
int
severity(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Ok:                 return 0;
      case SimOutcome::ValidationFailed:   return 1;
      case SimOutcome::CycleLimit:         return 2;
      case SimOutcome::Timeout:            return 3;
      case SimOutcome::Deadlock:           return 4;
      case SimOutcome::InvariantViolation: return 5;
      case SimOutcome::Panic:              return 6;
    }
    return 0;
}

} // namespace

int
SweepExecutor::defaultJobs()
{
    if (const char *env = std::getenv("DWS_JOBS")) {
        const auto n = parseInt64InRange(env, 1, 4096);
        if (!n)
            fatal("DWS_JOBS='%s' is not a positive integer (max 4096)",
                  env);
        return static_cast<int>(*n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

SweepExecutor::SweepExecutor(int jobs)
    : numWorkers(jobs > 0 ? jobs : defaultJobs())
{
    workers.reserve(static_cast<size_t>(numWorkers));
    for (int i = 0; i < numWorkers; i++)
        workers.emplace_back([this] { workerLoop(); });
}

SweepExecutor::~SweepExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
    if (watchdogThread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchMtx);
            watchStopping = true;
        }
        watchCv.notify_all();
        watchdogThread.join();
    }
}

void
SweepExecutor::workerLoop()
{
    for (;;) {
        std::packaged_task<JobResult()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

// --------------------------------------------------------------------
// Watchdog
// --------------------------------------------------------------------

void
SweepExecutor::setWatchdog(double timeoutSec)
{
    watchdogTimeoutSec = timeoutSec;
    if (timeoutSec > 0.0 && !watchdogThread.joinable())
        watchdogThread = std::thread([this] { watchdogLoop(); });
}

void
SweepExecutor::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(watchMtx);
    while (!watchStopping) {
        watchCv.wait_for(lock, std::chrono::milliseconds(50));
        const auto now = std::chrono::steady_clock::now();
        for (WatchSlot &slot : watchSlots) {
            if (!slot.ctl)
                continue;
            const Cycle cur = slot.ctl->progressCycle.load(
                    std::memory_order_relaxed);
            if (cur != slot.lastCycle) {
                slot.lastCycle = cur;
                slot.lastChange = now;
                continue;
            }
            const double stalledSec =
                    std::chrono::duration<double>(now - slot.lastChange)
                            .count();
            if (stalledSec > watchdogTimeoutSec)
                slot.ctl->cancel.store(true, std::memory_order_relaxed);
        }
    }
}

std::size_t
SweepExecutor::watchdogRegister(SimControl *ctl)
{
    std::lock_guard<std::mutex> lock(watchMtx);
    for (std::size_t i = 0; i < watchSlots.size(); i++) {
        if (!watchSlots[i].ctl) {
            watchSlots[i] = WatchSlot{
                    ctl, 0, std::chrono::steady_clock::now()};
            return i;
        }
    }
    watchSlots.push_back(
            WatchSlot{ctl, 0, std::chrono::steady_clock::now()});
    return watchSlots.size() - 1;
}

void
SweepExecutor::watchdogUnregister(std::size_t token)
{
    std::lock_guard<std::mutex> lock(watchMtx);
    watchSlots[token].ctl = nullptr;
}

void
SweepExecutor::setRetry(int maxAttempts, double backoffMs)
{
    retryMaxAttempts = maxAttempts > 0 ? maxAttempts : 1;
    retryBackoffMs = backoffMs;
}

// --------------------------------------------------------------------
// Journal
// --------------------------------------------------------------------

std::string
SweepExecutor::journalKey(const std::string &label,
                          const std::string &kernel,
                          const std::string &cfgHash)
{
    return label + "\x1f" + kernel + "\x1f" + cfgHash;
}

void
SweepExecutor::setJournal(const std::string &path, bool resume)
{
    journalPath = path;
    if (!resume)
        return;
    std::ifstream f(path);
    if (!f.is_open())
        return; // nothing to resume from; the journal starts fresh
    std::string line;
    int restored = 0;
    int lineNo = 0;
    while (std::getline(f, line)) {
        lineNo++;
        Record rec;
        std::string tok;
        if (!journalField(line, "label", rec.label) ||
            !journalField(line, "kernel", rec.kernel) ||
            !journalField(line, "outcome", rec.outcome))
            continue;
        if (rec.outcome != "ok")
            continue; // failed cells are re-run
        if (!journalField(line, "fingerprint", rec.fingerprint) ||
            rec.fingerprint.empty())
            continue;
        // The config hash binds a journaled cell to the exact
        // configuration it was simulated under; without it (older
        // journals) the cell cannot be trusted across config changes
        // and is re-simulated.
        if (!journalField(line, "cfg", rec.cfgHash) ||
            rec.cfgHash.empty())
            continue;
        journalField(line, "policy", rec.policy);
        // A corrupt numeric token means the line cannot be trusted:
        // treat the cell as not-completed so it is re-simulated,
        // instead of silently resuming with cycles=0.
        if (journalField(line, "cycles", tok)) {
            const auto cycles = parseUint64(tok);
            if (!cycles) {
                warn("journal %s line %d: malformed cycles token '%s'; "
                     "cell %s/%s will be re-simulated",
                     path.c_str(), lineNo, tok.c_str(),
                     rec.label.c_str(), rec.kernel.c_str());
                continue;
            }
            rec.cycles = *cycles;
        }
        if (journalField(line, "energy_nj", tok)) {
            const auto nj = parseFiniteDouble(tok.c_str());
            if (!nj) {
                warn("journal %s line %d: malformed energy_nj token "
                     "'%s'; cell %s/%s will be re-simulated",
                     path.c_str(), lineNo, tok.c_str(),
                     rec.label.c_str(), rec.kernel.c_str());
                continue;
            }
            rec.energyNj = *nj;
        }
        rec.valid = true;
        rec.resumed = true;
        const std::string key =
                journalKey(rec.label, rec.kernel, rec.cfgHash);
        journaled[key] = std::move(rec);
        restored++;
    }
    if (restored > 0)
        inform("journal %s: %d completed cells will be resumed, not "
               "re-simulated",
               path.c_str(), restored);
}

void
SweepExecutor::journalRecord(const Record &rec)
{
    if (journalPath.empty() || rec.resumed)
        return;
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.field("label", rec.label);
    w.field("kernel", rec.kernel);
    w.field("cfg", rec.cfgHash);
    w.field("policy", rec.policy);
    w.field("outcome", rec.outcome);
    w.field("cycles", rec.cycles);
    w.field("energy_nj", rec.energyNj);
    w.field("wall_ms", rec.wallMs);
    w.field("attempts", rec.attempts);
    w.field("error", rec.error);
    w.field("fingerprint", rec.fingerprint);
    w.endObject();

    std::lock_guard<std::mutex> lock(journalMtx);
    std::ofstream f(journalPath, std::ios::app);
    if (!f.is_open()) {
        warn("cannot append to journal '%s'", journalPath.c_str());
        return;
    }
    f << os.str() << "\n";
}

// --------------------------------------------------------------------
// Serve mode
// --------------------------------------------------------------------

void
SweepExecutor::setServe(const std::string &endpoint)
{
    ServeConfig cfg;
    cfg.endpoint = endpoint;
    setServe(std::move(cfg));
}

namespace {

/** Client errors often already carry a "serve: " prefix; strip it so
 *  the executor's own "serve: %s" warnings don't stutter. */
const char *
serveWhy(const std::string &why)
{
    const char *s = why.c_str();
    return why.rfind("serve: ", 0) == 0 ? s + 7 : s;
}

} // namespace

void
SweepExecutor::setServe(ServeConfig cfg)
{
    serveCfg = std::move(cfg);
    serveEnabled = true;
    serveHealthy.store(true, std::memory_order_relaxed);

    // Probe up front so a dead daemon surfaces before any cell runs —
    // but with fallback enabled the answer is degradation, not death:
    // the bench still produces its (correct, locally-simulated) tables.
    // The probe runs under the same retry schedule as the jobs: a
    // transiently-flaky network at startup must not condemn the whole
    // sweep to local simulation.
    ClientOptions copts;
    copts.connectTimeoutMs = serveCfg.connectTimeoutMs;
    copts.rpcTimeoutMs = serveCfg.rpcTimeoutMs;
    copts.authToken = serveCfg.authToken;
    auto probe = std::make_unique<ServeClient>(copts);
    std::string err = "no probe attempt made";
    ServeStatus st;
    bool alive = false;
    const int maxAttempts =
            serveCfg.retry.maxAttempts > 0 ? serveCfg.retry.maxAttempts
                                           : 1;
    for (int attempt = 0; attempt < maxAttempts && !alive; attempt++) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                    serveCfg.retry.delayMs(attempt - 1, 0x70726f6265)));
        if (!probe->connected() &&
            !probe->connectTo(serveCfg.endpoint, err))
            continue;
        if (probe->status(st, err)) {
            alive = true;
        } else if (probe->lastStatus() == RpcStatus::Busy) {
            // An overloaded daemon is an alive daemon: leave serve
            // mode on and let the per-job backoff absorb the storm.
            alive = true;
            st = ServeStatus{};
        } else {
            probe = std::make_unique<ServeClient>(copts);
        }
    }
    if (!alive) {
        if (!serveCfg.allowFallback)
            fatal("--serve %s: %s", serveCfg.endpoint.c_str(),
                  err.c_str());
        serveHealthy.store(false, std::memory_order_relaxed);
        if (!serveWarned.exchange(true))
            warn("serve: %s; falling back to local simulation "
                 "(results flagged degraded)",
                 serveWhy(err));
        return;
    }
    inform("serve: daemon at %s (%u workers, cache %s, build %s)",
           serveCfg.endpoint.c_str(), st.workers, st.cacheDir.c_str(),
           st.buildFingerprint.c_str());
    std::lock_guard<std::mutex> lock(serveMtx);
    serveIdle.push_back(std::move(probe));
}

void
SweepExecutor::setKeepRecords(bool keep)
{
    keepRecords = keep;
}

JobResult
SweepExecutor::degradeToLocal(const SweepJob &job,
                              const std::string &why)
{
    serveHealthy.store(false, std::memory_order_relaxed);
    if (!serveWarned.exchange(true))
        warn("serve: %s; falling back to local simulation "
             "(results flagged degraded)",
             serveWhy(why));
    JobResult r = runLocalJob(job);
    r.degraded = true;
    return r;
}

JobResult
SweepExecutor::runServeJob(const SweepJob &job)
{
    // An earlier job already proved the daemon unreachable: skip
    // straight to local simulation instead of paying the retry
    // schedule once per cell.
    if (!serveHealthy.load(std::memory_order_relaxed))
        return degradeToLocal(job, "daemon marked unreachable");

    const auto t0 = std::chrono::steady_clock::now();
    // Per-job jitter salt: decorrelates the backoff of concurrent
    // worker threads without any global RNG state.
    std::uint64_t salt = 14695981039346656037ull;
    for (const char c : job.label + "\x1f" + job.kernel) {
        salt ^= static_cast<unsigned char>(c);
        salt *= 1099511628211ull;
    }

    ClientOptions copts;
    copts.connectTimeoutMs = serveCfg.connectTimeoutMs;
    copts.rpcTimeoutMs = serveCfg.rpcTimeoutMs;
    copts.authToken = serveCfg.authToken;

    std::string err = "no attempt made";
    const int maxAttempts =
            serveCfg.retry.maxAttempts > 0 ? serveCfg.retry.maxAttempts
                                           : 1;
    for (int attempt = 0; attempt < maxAttempts; attempt++) {
        if (attempt > 0) {
            // Idempotent replay: jobs are content-addressed, so
            // re-submitting after a half-done failure at worst re-runs
            // a cell the daemon already cached.
            std::uint32_t delay =
                    serveCfg.retry.delayMs(attempt - 1, salt);
            std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        }
        std::unique_ptr<ServeClient> client;
        {
            std::lock_guard<std::mutex> lock(serveMtx);
            if (!serveIdle.empty()) {
                client = std::move(serveIdle.back());
                serveIdle.pop_back();
            }
        }
        if (!client)
            client = std::make_unique<ServeClient>(copts);
        if (!client->connected() &&
            !client->connectTo(serveCfg.endpoint, err))
            continue;

        std::vector<ServeResult> results;
        if (!client->submitBatch({makeServeJob(job)}, results, err)) {
            if (client->lastStatus() == RpcStatus::Busy) {
                // Backpressure: the connection survives a Busy reply,
                // so pool it and wait at least the server's hint.
                const std::uint32_t hint = client->busyRetryAfterMs();
                {
                    std::lock_guard<std::mutex> lock(serveMtx);
                    serveIdle.push_back(std::move(client));
                }
                if (hint != 0)
                    std::this_thread::sleep_for(
                            std::chrono::milliseconds(hint));
                continue;
            }
            // The broken connection is dropped, not pooled: the next
            // attempt reconnects fresh.
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(serveMtx);
            serveIdle.push_back(std::move(client));
        }

        const ServeResult &res = results[0];
        JobResult r;
        r.attempts = attempt + 1;
        r.outcome = simOutcomeFromName(res.outcome);
        r.error = res.error;
        r.cached = res.cached;
        r.run.kernel = job.kernel;
        r.run.policy = res.policy;
        if (res.ok()) {
            if (!RunStats::parseFingerprint(res.fingerprint,
                                            r.run.stats)) {
                r.outcome = SimOutcome::Panic;
                r.error = "serve: daemon returned an unparsable "
                          "fingerprint";
            } else {
                r.run.valid = true;
            }
        }
        r.wallMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        return r;
    }

    if (serveCfg.allowFallback)
        return degradeToLocal(job, "daemon unreachable after " +
                                           std::to_string(maxAttempts) +
                                           " attempts (" + err + ")");
    JobResult r;
    r.attempts = maxAttempts;
    r.outcome = SimOutcome::Panic;
    r.error = err;
    r.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return r;
}

// --------------------------------------------------------------------
// Job execution
// --------------------------------------------------------------------

JobResult
SweepExecutor::runJob(const SweepJob &job)
{
    if (serveEnabled)
        return runServeJob(job);
    return runLocalJob(job);
}

JobResult
SweepExecutor::runLocalJob(const SweepJob &job)
{
    JobResult r;
    const auto t0 = std::chrono::steady_clock::now();
    for (int attempt = 1;; attempt++) {
        r = JobResult{};
        r.attempts = attempt;
        SimControl ctl;
        std::size_t token = SIZE_MAX;
        if (watchdogTimeoutSec > 0.0) {
            token = watchdogRegister(&ctl);
            setThreadSimControl(&ctl);
        }
        try {
            ScopedRecoverableAborts recover;
            r.run = runKernel(job.kernel, job.cfg, job.scale);
            r.outcome = r.run.valid ? SimOutcome::Ok
                                    : SimOutcome::ValidationFailed;
            if (!r.run.valid)
                r.error = "output failed validation";
        } catch (const SimAbortError &err) {
            r.outcome = err.outcome;
            r.error = err.what();
            r.diagnostics = err.diagnostics;
        } catch (const std::exception &err) {
            r.outcome = SimOutcome::Panic;
            r.error = err.what();
        }
        if (token != SIZE_MAX) {
            setThreadSimControl(nullptr);
            watchdogUnregister(token);
        }
        // Only watchdog cancellations are transient (host load); the
        // simulator itself is deterministic, so every other failure
        // would repeat identically.
        if (r.outcome == SimOutcome::Timeout &&
            attempt < retryMaxAttempts) {
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>(
                    retryBackoffMs * attempt));
            continue;
        }
        break;
    }
    r.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return r;
}

std::future<JobResult>
SweepExecutor::submit(SweepJob job)
{
    size_t seq;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            panic("SweepExecutor: submit after shutdown");
        seq = seqCounter++;
        if (keepRecords)
            completed.emplace_back(); // reserve the submission slot
    }
    const std::string cfgHash =
            keyHex(jobConfigHash(job.cfg, job.scale));

    // Resume: a cell the journal already records as ok — under this
    // exact configuration — is restored from its fingerprint instead
    // of re-simulated.
    {
        const auto it = journaled.find(
                journalKey(job.label, job.kernel, cfgHash));
        if (it != journaled.end()) {
            JobResult r;
            if (RunStats::parseFingerprint(it->second.fingerprint,
                                           r.run.stats)) {
                r.run.valid = true;
                r.run.kernel = job.kernel;
                r.run.policy = it->second.policy;
                r.outcome = SimOutcome::Ok;
                r.resumed = true;
                if (keepRecords) {
                    std::lock_guard<std::mutex> lock(mtx);
                    completed[seq] = it->second;
                }
                std::promise<JobResult> p;
                p.set_value(std::move(r));
                return p.get_future();
            }
            warn("journal: unparsable fingerprint for %s/%s; "
                 "re-simulating",
                 job.label.c_str(), job.kernel.c_str());
        }
    }

    std::packaged_task<JobResult()> task(
            [this, seq, cfgHash, job = std::move(job)]() -> JobResult {
                JobResult r = runJob(job);
                Record rec;
                rec.label = job.label;
                rec.kernel = job.kernel;
                rec.policy = r.ok() ? r.run.policy
                                    : job.cfg.policy.name();
                rec.cycles = r.run.stats.cycles;
                rec.energyNj = r.run.stats.energyNj;
                rec.wallMs = r.wallMs;
                rec.valid = r.run.valid;
                rec.outcome = simOutcomeName(r.outcome);
                rec.error = r.error;
                rec.attempts = r.attempts;
                rec.cached = r.cached;
                rec.degraded = r.degraded;
                rec.cfgHash = cfgHash;
                if (r.ok())
                    rec.fingerprint = r.run.stats.fingerprint();
                journalRecord(rec);
                if (keepRecords) {
                    std::lock_guard<std::mutex> lock(mtx);
                    completed[seq] = std::move(rec);
                }
                return r;
            });
    std::future<JobResult> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    cv.notify_one();
    return fut;
}

std::vector<JobResult>
SweepExecutor::runBatch(std::vector<SweepJob> jobs)
{
    std::vector<std::future<JobResult>> futs;
    futs.reserve(jobs.size());
    for (auto &j : jobs)
        futs.push_back(submit(std::move(j)));
    std::vector<JobResult> out;
    out.reserve(futs.size());
    for (auto &f : futs)
        out.push_back(f.get()); // collection order = submission order
    return out;
}

std::vector<SweepExecutor::Record>
SweepExecutor::records() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return completed;
}

SimOutcome
SweepExecutor::worstOutcome() const
{
    const std::vector<Record> recs = records();
    SimOutcome worst = SimOutcome::Ok;
    for (const Record &r : recs) {
        const SimOutcome o = simOutcomeFromName(r.outcome);
        if (severity(o) > severity(worst))
            worst = o;
    }
    return worst;
}

void
SweepExecutor::writeJson(const std::string &path) const
{
    const std::vector<Record> recs = records();
    std::ofstream f(path, std::ios::trunc);
    if (!f.is_open())
        fatal("cannot write JSON results to '%s'", path.c_str());
    double totalMs = 0.0;
    for (const auto &r : recs)
        totalMs += r.wallMs;

    JsonWriter w(f);
    w.beginObject();
    w.field("jobs", numWorkers);
    w.field("total_wall_ms", totalMs);
    w.key("results");
    w.beginArray();
    for (const Record &r : recs) {
        w.beginObject();
        w.field("label", r.label);
        w.field("kernel", r.kernel);
        w.field("policy", r.policy);
        w.field("cycles", r.cycles);
        w.field("energy_nj", r.energyNj);
        w.field("wall_ms", r.wallMs);
        w.field("valid", r.valid);
        w.field("outcome", r.outcome);
        if (!r.error.empty())
            w.field("error", r.error);
        if (r.attempts > 1)
            w.field("attempts", r.attempts);
        if (r.resumed)
            w.field("resumed", true);
        if (r.cached)
            w.field("cached", true);
        if (r.degraded)
            w.field("degraded", true);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    f << '\n';
}

} // namespace dws
