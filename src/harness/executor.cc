#include "harness/executor.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace dws {

namespace {

/** Minimal JSON string escaping (labels are plain ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
SweepExecutor::defaultJobs()
{
    if (const char *env = std::getenv("DWS_JOBS")) {
        const int n = std::atoi(env);
        if (n < 1)
            fatal("DWS_JOBS='%s' is not a positive integer", env);
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

SweepExecutor::SweepExecutor(int jobs)
    : numWorkers(jobs > 0 ? jobs : defaultJobs())
{
    workers.reserve(static_cast<size_t>(numWorkers));
    for (int i = 0; i < numWorkers; i++)
        workers.emplace_back([this] { workerLoop(); });
}

SweepExecutor::~SweepExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
SweepExecutor::workerLoop()
{
    for (;;) {
        std::packaged_task<JobResult()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

std::future<JobResult>
SweepExecutor::submit(SweepJob job)
{
    size_t seq;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            panic("SweepExecutor: submit after shutdown");
        seq = completed.size();
        completed.emplace_back(); // reserve the submission-order slot
    }
    std::packaged_task<JobResult()> task(
            [this, seq, job = std::move(job)]() -> JobResult {
                const auto t0 = std::chrono::steady_clock::now();
                JobResult r;
                r.run = runKernel(job.kernel, job.cfg, job.scale);
                r.wallMs = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
                Record rec;
                rec.label = job.label;
                rec.kernel = job.kernel;
                rec.policy = r.run.policy;
                rec.cycles = r.run.stats.cycles;
                rec.energyNj = r.run.stats.energyNj;
                rec.wallMs = r.wallMs;
                rec.valid = r.run.valid;
                {
                    std::lock_guard<std::mutex> lock(mtx);
                    completed[seq] = std::move(rec);
                }
                return r;
            });
    std::future<JobResult> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    cv.notify_one();
    return fut;
}

std::vector<JobResult>
SweepExecutor::runBatch(std::vector<SweepJob> jobs)
{
    std::vector<std::future<JobResult>> futs;
    futs.reserve(jobs.size());
    for (auto &j : jobs)
        futs.push_back(submit(std::move(j)));
    std::vector<JobResult> out;
    out.reserve(futs.size());
    for (auto &f : futs)
        out.push_back(f.get()); // collection order = submission order
    return out;
}

std::vector<SweepExecutor::Record>
SweepExecutor::records() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return completed;
}

void
SweepExecutor::writeJson(const std::string &path) const
{
    const std::vector<Record> recs = records();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write JSON results to '%s'", path.c_str());
    double totalMs = 0.0;
    for (const auto &r : recs)
        totalMs += r.wallMs;
    std::fprintf(f, "{\n  \"jobs\": %d,\n  \"total_wall_ms\": %.3f,\n"
                    "  \"results\": [\n",
                 numWorkers, totalMs);
    for (size_t i = 0; i < recs.size(); i++) {
        const Record &r = recs[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"kernel\": \"%s\", "
                     "\"policy\": \"%s\", \"cycles\": %llu, "
                     "\"energy_nj\": %.6f, \"wall_ms\": %.3f, "
                     "\"valid\": %s}%s\n",
                     jsonEscape(r.label).c_str(),
                     jsonEscape(r.kernel).c_str(),
                     jsonEscape(r.policy).c_str(),
                     (unsigned long long)r.cycles, r.energyNj, r.wallMs,
                     r.valid ? "true" : "false",
                     i + 1 < recs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace dws
