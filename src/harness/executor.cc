#include "harness/executor.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace dws {

int
SweepExecutor::defaultJobs()
{
    if (const char *env = std::getenv("DWS_JOBS")) {
        const int n = std::atoi(env);
        if (n < 1)
            fatal("DWS_JOBS='%s' is not a positive integer", env);
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

SweepExecutor::SweepExecutor(int jobs)
    : numWorkers(jobs > 0 ? jobs : defaultJobs())
{
    workers.reserve(static_cast<size_t>(numWorkers));
    for (int i = 0; i < numWorkers; i++)
        workers.emplace_back([this] { workerLoop(); });
}

SweepExecutor::~SweepExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
SweepExecutor::workerLoop()
{
    for (;;) {
        std::packaged_task<JobResult()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

std::future<JobResult>
SweepExecutor::submit(SweepJob job)
{
    size_t seq;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            panic("SweepExecutor: submit after shutdown");
        seq = completed.size();
        completed.emplace_back(); // reserve the submission-order slot
    }
    std::packaged_task<JobResult()> task(
            [this, seq, job = std::move(job)]() -> JobResult {
                const auto t0 = std::chrono::steady_clock::now();
                JobResult r;
                r.run = runKernel(job.kernel, job.cfg, job.scale);
                r.wallMs = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
                Record rec;
                rec.label = job.label;
                rec.kernel = job.kernel;
                rec.policy = r.run.policy;
                rec.cycles = r.run.stats.cycles;
                rec.energyNj = r.run.stats.energyNj;
                rec.wallMs = r.wallMs;
                rec.valid = r.run.valid;
                {
                    std::lock_guard<std::mutex> lock(mtx);
                    completed[seq] = std::move(rec);
                }
                return r;
            });
    std::future<JobResult> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(task));
    }
    cv.notify_one();
    return fut;
}

std::vector<JobResult>
SweepExecutor::runBatch(std::vector<SweepJob> jobs)
{
    std::vector<std::future<JobResult>> futs;
    futs.reserve(jobs.size());
    for (auto &j : jobs)
        futs.push_back(submit(std::move(j)));
    std::vector<JobResult> out;
    out.reserve(futs.size());
    for (auto &f : futs)
        out.push_back(f.get()); // collection order = submission order
    return out;
}

std::vector<SweepExecutor::Record>
SweepExecutor::records() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return completed;
}

void
SweepExecutor::writeJson(const std::string &path) const
{
    const std::vector<Record> recs = records();
    std::ofstream f(path, std::ios::trunc);
    if (!f.is_open())
        fatal("cannot write JSON results to '%s'", path.c_str());
    double totalMs = 0.0;
    for (const auto &r : recs)
        totalMs += r.wallMs;

    JsonWriter w(f);
    w.beginObject();
    w.field("jobs", numWorkers);
    w.field("total_wall_ms", totalMs);
    w.key("results");
    w.beginArray();
    for (const Record &r : recs) {
        w.beginObject();
        w.field("label", r.label);
        w.field("kernel", r.kernel);
        w.field("policy", r.policy);
        w.field("cycles", r.cycles);
        w.field("energy_nj", r.energyNj);
        w.field("wall_ms", r.wallMs);
        w.field("valid", r.valid);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    f << '\n';
}

} // namespace dws
