#include "harness/runner.hh"

#include "sim/logging.hh"

namespace dws {

RunResult
runKernel(const std::string &kernelName, const SystemConfig &cfg,
          KernelScale scale)
{
    KernelParams kp;
    kp.scale = scale;
    kp.seed = cfg.seed;
    kp.subdivThreshold = cfg.policy.subdivMaxPostBlock;
    kp.launchThreads = cfg.totalThreads();
    auto kernel = makeKernel(kernelName, kp);
    if (!kernel)
        fatal("unknown kernel '%s'", kernelName.c_str());

    System sys(cfg, *kernel);
    RunResult r;
    r.kernel = kernelName;
    r.policy = cfg.policy.name();
    r.stats = sys.run();
    r.valid = kernel->validate(sys.memory());
    if (const Tracer *t = sys.tracer()) {
        r.traceRecords = t->recordsTotal();
        r.traceDropped = t->dropped();
    }
    if (!r.valid)
        warn("%s/%s: output failed validation", kernelName.c_str(),
             r.policy.c_str());
    return r;
}

double
speedup(const RunStats &base, const RunStats &test)
{
    if (test.cycles == 0)
        return 0.0;
    return double(base.cycles) / double(test.cycles);
}

} // namespace dws
