#include "isa/disasm.hh"

#include <cstdio>
#include <sstream>

namespace dws {

std::string
disasm(const Instr &in)
{
    char buf[128];
    switch (in.op) {
      case Op::Nop:
      case Op::Bar:
      case Op::Halt:
        std::snprintf(buf, sizeof(buf), "%s", opName(in.op));
        break;
      case Op::Movi:
        std::snprintf(buf, sizeof(buf), "movi r%d, %lld", in.rd,
                      (long long)in.imm);
        break;
      case Op::Mov:
        std::snprintf(buf, sizeof(buf), "mov r%d, r%d", in.rd, in.ra);
        break;
      case Op::Addi: case Op::Muli: case Op::Andi:
      case Op::Shli: case Op::Shri: case Op::Slti:
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %lld", opName(in.op),
                      in.rd, in.ra, (long long)in.imm);
        break;
      case Op::Ld:
        std::snprintf(buf, sizeof(buf), "ld r%d, [r%d + %lld]", in.rd,
                      in.ra, (long long)in.imm);
        break;
      case Op::St:
        std::snprintf(buf, sizeof(buf), "st [r%d + %lld], r%d", in.ra,
                      (long long)in.imm, in.rb);
        break;
      case Op::Br:
        std::snprintf(buf, sizeof(buf), "br r%d, %d%s", in.ra, in.target,
                      in.subdividable() ? "  ; subdividable" : "");
        break;
      case Op::Jmp:
        std::snprintf(buf, sizeof(buf), "jmp %d", in.target);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, r%d", opName(in.op),
                      in.rd, in.ra, in.rb);
        break;
    }
    return buf;
}

std::string
disasm(const Program &prog)
{
    std::ostringstream os;
    os << "; kernel " << prog.name() << " (" << prog.size()
       << " instructions)\n";
    for (Pc pc = 0; pc < prog.size(); pc++) {
        const Instr &in = prog.at(pc);
        char head[32];
        std::snprintf(head, sizeof(head), "%4d: ", pc);
        os << head << disasm(in);
        if (in.op == Op::Br) {
            const BranchInfo &bi = prog.branchInfo(pc);
            os << "  ; ipdom=" << bi.ipdom
               << " postblock=" << bi.postBlockLen;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace dws
