#include "isa/disasm.hh"

#include <cstdio>
#include <set>
#include <sstream>

namespace dws {

namespace {

/**
 * Instruction text minus target rendering: the single-instruction
 * disassembly uses absolute `@pc` targets, the program listing uses
 * `L<pc>` labels, everything else is shared.
 */
std::string
instrBody(const Instr &in, const std::string &target)
{
    char buf[128];
    switch (in.op) {
      case Op::Nop:
      case Op::Bar:
      case Op::Halt:
        return opName(in.op);
      case Op::Movi:
        std::snprintf(buf, sizeof(buf), "movi r%d, %lld", in.rd,
                      (long long)in.imm);
        break;
      case Op::Mov:
        std::snprintf(buf, sizeof(buf), "mov r%d, r%d", in.rd, in.ra);
        break;
      case Op::Addi: case Op::Muli: case Op::Andi:
      case Op::Shli: case Op::Shri: case Op::Slti:
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %lld", opName(in.op),
                      in.rd, in.ra, (long long)in.imm);
        break;
      case Op::Ld:
        if (in.imm != 0) {
            std::snprintf(buf, sizeof(buf), "ld r%d, [r%d + %lld]", in.rd,
                          in.ra, (long long)in.imm);
        } else {
            std::snprintf(buf, sizeof(buf), "ld r%d, [r%d]", in.rd, in.ra);
        }
        break;
      case Op::St:
        if (in.imm != 0) {
            std::snprintf(buf, sizeof(buf), "st [r%d + %lld], r%d", in.ra,
                          (long long)in.imm, in.rb);
        } else {
            std::snprintf(buf, sizeof(buf), "st [r%d], r%d", in.ra, in.rb);
        }
        break;
      case Op::Br:
        return std::string("br r") + std::to_string(in.ra) + ", " + target;
      case Op::Jmp:
        return "jmp " + target;
      default:
        std::snprintf(buf, sizeof(buf), "%s r%d, r%d, r%d", opName(in.op),
                      in.rd, in.ra, in.rb);
        break;
    }
    return buf;
}

void
emitListing(std::ostringstream &os, const Program &prog)
{
    // Every branch/jump target and every in-program re-convergence
    // point gets a label, so all pc references in the text are symbolic.
    std::set<Pc> labels;
    for (Pc pc = 0; pc < prog.size(); pc++) {
        const Instr &in = prog.at(pc);
        if (in.op == Op::Br || in.op == Op::Jmp)
            labels.insert(in.target);
        if (in.op == Op::Br) {
            const BranchInfo &bi = prog.branchInfo(pc);
            if (bi.ipdom != kPcExit)
                labels.insert(bi.ipdom);
        }
    }

    const auto labelRef = [](Pc pc) { return "L" + std::to_string(pc); };

    for (Pc pc = 0; pc <= prog.size(); pc++) {
        if (labels.count(pc))
            os << labelRef(pc) << ":\n";
        if (pc == prog.size())
            break;
        const Instr &in = prog.at(pc);
        const std::string target =
                (in.op == Op::Br || in.op == Op::Jmp) ? labelRef(in.target)
                                                      : std::string();
        os << "    " << instrBody(in, target);
        if (in.op == Op::Br) {
            const BranchInfo &bi = prog.branchInfo(pc);
            if (in.subdividable())
                os << " !subdividable";
            if (!bi.mayDiverge)
                os << " !uniform";
            os << " !ipdom="
               << (bi.ipdom == kPcExit ? std::string("@end")
                                       : labelRef(bi.ipdom));
            os << " !postblock=" << bi.postBlockLen;
        }
        os << "\n";
    }
}

} // namespace

std::string
disasm(const Instr &in)
{
    std::string s = instrBody(in, "@" + std::to_string(in.target));
    if (in.op == Op::Br && in.subdividable())
        s += " !subdividable";
    return s;
}

std::string
disasm(const Program &prog)
{
    std::ostringstream os;
    os << ".kernel " << prog.name() << "\n";
    os << ".subdiv " << prog.subdivThreshold() << "\n\n";
    emitListing(os, prog);
    return os.str();
}

std::string
disasm(const Program &prog, std::uint64_t memBytes)
{
    std::ostringstream os;
    os << ".kernel " << prog.name() << "\n";
    os << ".subdiv " << prog.subdivThreshold() << "\n";
    os << ".membytes " << memBytes << "\n\n";
    emitListing(os, prog);
    return os.str();
}

} // namespace dws
