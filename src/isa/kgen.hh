/**
 * @file
 * Seeded random kernel generator.
 *
 * Emits textual IR kernels (isa/asm.hh format) that are lint-clean
 * *by construction*:
 *
 *  - Structured CFG: only nested if/else diamonds and counted
 *    do-while loops, always reconverging, ending in a single halt —
 *    so the verifier, reachability and halt-reachability checks pass.
 *  - Bounded addressing: every load index is masked (`andi`) against
 *    a power-of-two region size and scaled by 8, so the interval
 *    range analysis proves every access in bounds against the
 *    declared `.membytes`.
 *  - Uniform barriers: `bar` only at top level, between phases, after
 *    all divergent control flow has reconverged.
 *  - Register discipline: every register is written before any read
 *    on every path, and every ALU result is consumed (the accumulator
 *    feeds the phase's final store), so the liveness passes stay
 *    quiet.
 *
 * Determinism across schedules (the differential-oracle property)
 * comes from a data-race-freedom discipline: each thread stores only
 * to its own slot — indexed by tid masked to the slot count — and
 * every stored value derives from that masked tid, never from the
 * raw tid. Threads that collide on a slot therefore write identical
 * value sequences, so the final memory image is independent of
 * thread count, interleaving and divergence policy. Loads touch only
 * the read-only input region or regions written by *earlier* phases
 * across a global barrier.
 */

#ifndef DWS_ISA_KGEN_HH
#define DWS_ISA_KGEN_HH

#include <cstdint>
#include <string>

namespace dws {

/** Knobs for one generated kernel. */
struct KgenOptions
{
    std::uint64_t seed = 1;
    /** Statements per phase body (before structural expansion). */
    int stmts = 5;
    /** Maximum if/loop nesting depth. */
    int maxDepth = 2;
    /** Barrier-separated phases (>= 1). */
    int phases = 2;
    /** log2 of per-phase output slots (one slot per masked tid). */
    int slotBits = 6;
    /** Read-only input words (power of two). */
    int inWords = 64;
    /** Kernel name; empty derives "gen<seed>". */
    std::string name{};
};

/**
 * @return the kernel as `.dws` text, ready for assemble(). The same
 *         options always produce the same text.
 */
std::string generateKernel(const KgenOptions &opt);

} // namespace dws

#endif // DWS_ISA_KGEN_HH
