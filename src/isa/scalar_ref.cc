#include "isa/scalar_ref.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "mem/memory.hh"

namespace dws {

namespace {

enum class ThreadState { Running, AtBarrier, Halted };

struct ThreadCtx
{
    std::int64_t regs[kNumRegs] = {};
    Pc pc = 0;
    ThreadState state = ThreadState::Running;
};

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

ScalarRefResult
runScalarRef(const Program &prog, Memory &mem, std::int64_t numThreads,
             std::uint64_t maxInstrs)
{
    ScalarRefResult res;
    if (numThreads <= 0) {
        res.error = "numThreads must be positive";
        return res;
    }
    if (prog.size() == 0) {
        res.error = "empty program";
        return res;
    }

    std::vector<ThreadCtx> threads(static_cast<size_t>(numThreads));
    for (std::int64_t t = 0; t < numThreads; t++) {
        threads[static_cast<size_t>(t)].regs[0] = t;
        threads[static_cast<size_t>(t)].regs[1] = numThreads;
    }

    const auto fail = [&](std::int64_t tid, Pc pc, std::string msg) {
        res.error = format("thread %lld @pc %d: ", (long long)tid, pc) +
                    std::move(msg);
        return res;
    };

    std::int64_t halted = 0;
    while (halted < numThreads) {
        std::int64_t atBarrier = 0;
        for (std::int64_t t = 0; t < numThreads; t++) {
            ThreadCtx &ctx = threads[static_cast<size_t>(t)];
            // Run this thread until it blocks, halts or errors out.
            while (ctx.state == ThreadState::Running) {
                if (ctx.pc < 0 || ctx.pc >= prog.size())
                    return fail(t, ctx.pc, "pc outside the program "
                                           "(missing halt?)");
                if (res.instrs >= maxInstrs)
                    return fail(t, ctx.pc,
                                format("instruction budget of %llu "
                                       "exhausted (runaway loop?)",
                                       (unsigned long long)maxInstrs));
                const Instr &in = prog.at(ctx.pc);
                res.instrs++;
                switch (in.op) {
                  case Op::Ld:
                  case Op::St: {
                    const std::int64_t a = ctx.regs[in.ra] + in.imm;
                    if (a < 0 || a % kWordBytes != 0 ||
                        static_cast<std::uint64_t>(a) + kWordBytes >
                                mem.sizeBytes()) {
                        return fail(t, ctx.pc,
                                    format("%s address %lld invalid "
                                           "(mem is %llu bytes)",
                                           opName(in.op), (long long)a,
                                           (unsigned long long)
                                                   mem.sizeBytes()));
                    }
                    const Addr addr = static_cast<Addr>(a);
                    if (in.op == Op::Ld)
                        ctx.regs[in.rd] = mem.read(addr);
                    else
                        mem.write(addr, ctx.regs[in.rb]);
                    ctx.pc++;
                    break;
                  }
                  case Op::Br:
                    ctx.pc = ctx.regs[in.ra] != 0 ? in.target : ctx.pc + 1;
                    break;
                  case Op::Jmp:
                    ctx.pc = in.target;
                    break;
                  case Op::Bar:
                    ctx.state = ThreadState::AtBarrier;
                    ctx.pc++;
                    break;
                  case Op::Halt:
                    ctx.state = ThreadState::Halted;
                    halted++;
                    break;
                  default:
                    if (opWritesRd(in.op)) {
                        ctx.regs[in.rd] = evalAlu(
                                in.op, ctx.regs[in.ra], ctx.regs[in.rb],
                                in.imm);
                    }
                    ctx.pc++;
                    break;
                }
            }
            if (ctx.state == ThreadState::AtBarrier)
                atBarrier++;
        }
        // Every thread is now halted or parked at a barrier. The global
        // barrier releases once all live threads have arrived, which is
        // exactly this state.
        if (atBarrier > 0) {
            for (ThreadCtx &ctx : threads)
                if (ctx.state == ThreadState::AtBarrier)
                    ctx.state = ThreadState::Running;
        }
    }

    // FNV-1a over every register of every thread, tid order.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; byte++) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const ThreadCtx &ctx : threads)
        for (int r = 0; r < kNumRegs; r++)
            mix(static_cast<std::uint64_t>(ctx.regs[r]));
    res.regHash = h;
    res.ok = true;
    return res;
}

} // namespace dws
