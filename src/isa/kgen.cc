#include "isa/kgen.hh"

#include <algorithm>
#include <sstream>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace dws {

namespace {

/**
 * Register roles (see kgen.hh for the global discipline):
 *   r2 = masked tid (the thread's slot index, init once at entry)
 *   r3 = accumulator (re-seeded at each phase start, stored at end)
 *   r4 = address temp, r5 = load temp, r6 = condition temp
 *   r8+2d / r9+2d = loop counter / bound at nesting depth d
 */
struct Gen
{
    KgenOptions opt;
    Rng rng;
    std::ostringstream os;
    int labelCount = 0;
    int phase = 0;
    std::uint64_t slots = 0;

    explicit
    Gen(const KgenOptions &o) : opt(o), rng(o.seed ? o.seed : 1)
    {
        opt.phases = std::clamp(opt.phases, 1, 8);
        opt.stmts = std::clamp(opt.stmts, 1, 16);
        opt.maxDepth = std::clamp(opt.maxDepth, 0, 3);
        opt.slotBits = std::clamp(opt.slotBits, 1, 10);
        int w = 8;
        while (w < opt.inWords && w < 4096)
            w *= 2;
        opt.inWords = w;
        slots = std::uint64_t(1) << opt.slotBits;
    }

    std::uint64_t pick(std::uint64_t n) { return rng.nextBounded(n); }

    std::uint64_t
    phaseBase(int p) const
    {
        return (std::uint64_t(opt.inWords) + std::uint64_t(p) * slots) *
               kWordBytes;
    }

    std::uint64_t memBytes() const { return phaseBase(opt.phases); }

    std::string lbl() { return "B" + std::to_string(labelCount++); }
    void emit(const std::string &s) { os << "    " << s << "\n"; }
    void label(const std::string &l) { os << l << ":\n"; }

    static std::string
    reg(int n)
    {
        return "r" + std::to_string(n);
    }

    void
    accAlu()
    {
        switch (pick(6)) {
          case 0: emit("add r3, r3, r2"); break;
          case 1: emit("sub r3, r3, r2"); break;
          case 2: emit("xor r3, r3, r2"); break;
          case 3:
            emit("addi r3, r3, " + std::to_string(pick(1000)));
            break;
          case 4:
            emit("muli r3, r3, " + std::to_string(3 + 2 * pick(5)));
            break;
          default:
            emit("shri r3, r3, " + std::to_string(1 + pick(3)));
            break;
        }
    }

    void
    loadCombine()
    {
        // Sources: the read-only input region, or any region written
        // by an earlier phase (separated from us by a barrier).
        const std::uint64_t src = pick(std::uint64_t(phase) + 1);
        const bool fromInput = src == 0;
        const std::uint64_t mask =
                fromInput ? std::uint64_t(opt.inWords) - 1 : slots - 1;
        const std::uint64_t base =
                fromInput ? 0 : phaseBase(static_cast<int>(src) - 1);
        const std::string idx = pick(2) ? "r3" : "r2";
        emit("andi r4, " + idx + ", " + std::to_string(mask));
        emit("shli r4, r4, 3");
        if (base)
            emit("ld r5, [r4 + " + std::to_string(base) + "]");
        else
            emit("ld r5, [r4]");
        switch (pick(3)) {
          case 0:  emit("add r3, r3, r5"); break;
          case 1:  emit("xor r3, r3, r5"); break;
          default: emit("max r3, r3, r5"); break;
        }
    }

    void
    store()
    {
        emit("shli r4, r2, 3");
        emit("st [r4 + " + std::to_string(phaseBase(phase)) + "], r3");
    }

    void
    cond()
    {
        switch (pick(4)) {
          case 0: emit("andi r6, r3, 1"); break;
          case 1: emit("andi r6, r2, 1"); break;
          case 2:
            emit("slti r6, r2, " + std::to_string(1 + pick(slots - 1)));
            break;
          default:
            emit("slti r6, r3, " + std::to_string(pick(512)));
            break;
        }
    }

    void
    ifElse(int depth)
    {
        cond();
        const std::string then = lbl(), join = lbl();
        emit("br r6, " + then);
        block(depth + 1, static_cast<int>(pick(2)));
        emit("jmp " + join);
        label(then);
        block(depth + 1, 1 + static_cast<int>(pick(2)));
        label(join);
    }

    void
    loop(int depth)
    {
        const std::string rc = reg(8 + 2 * depth), rb = reg(9 + 2 * depth);
        emit("movi " + rc + ", 0");
        if (pick(2)) {
            // Divergent trip count: 1..4 iterations by masked tid.
            emit("andi " + rb + ", r2, 3");
            emit("addi " + rb + ", " + rb + ", 1");
        } else {
            emit("movi " + rb + ", " + std::to_string(1 + pick(3)));
        }
        const std::string head = lbl();
        label(head);
        block(depth + 1, 1 + static_cast<int>(pick(2)));
        emit("addi " + rc + ", " + rc + ", 1");
        emit("slt r6, " + rc + ", " + rb);
        emit("br r6, " + head);
    }

    void
    stmt(int depth)
    {
        const std::uint64_t r = pick(100);
        if (depth < opt.maxDepth && r < 15)
            ifElse(depth);
        else if (depth < opt.maxDepth && r < 30)
            loop(depth);
        else if (r < 55)
            loadCombine();
        else if (r < 65)
            store();
        else
            accAlu();
    }

    void
    block(int depth, int n)
    {
        for (int i = 0; i < n; i++)
            stmt(depth);
    }

    std::string
    run()
    {
        const std::string name =
                opt.name.empty() ? "gen" + std::to_string(opt.seed)
                                 : opt.name;
        os << ".kernel " << name << "\n";
        os << ".subdiv 50\n";
        os << ".membytes " << memBytes() << "\n";
        os << ".fill 0 " << opt.inWords << " " << (opt.seed ? opt.seed : 1)
           << " 65535\n\n";
        emit("andi r2, r0, " + std::to_string(slots - 1));
        for (phase = 0; phase < opt.phases; phase++) {
            os << "; phase " << phase << "\n";
            emit("movi r3, " + std::to_string(pick(256)));
            block(0, opt.stmts);
            store();
            if (phase + 1 < opt.phases)
                emit("bar");
        }
        emit("halt");
        return os.str();
    }
};

} // namespace

std::string
generateKernel(const KgenOptions &opt)
{
    return Gen(opt).run();
}

} // namespace dws
