#include "isa/instr.hh"

#include "sim/logging.hh"

namespace dws {

std::int64_t
evalAlu(Op op, std::int64_t a, std::int64_t b, std::int64_t imm)
{
    using U = std::uint64_t;
    switch (op) {
      case Op::Nop:  return 0;
      case Op::Add:  return static_cast<std::int64_t>(U(a) + U(b));
      case Op::Sub:  return static_cast<std::int64_t>(U(a) - U(b));
      case Op::Mul:  return static_cast<std::int64_t>(U(a) * U(b));
      case Op::Div:  return b == 0 ? 0 : a / b;
      case Op::Rem:  return b == 0 ? 0 : a % b;
      case Op::And:  return a & b;
      case Op::Or:   return a | b;
      case Op::Xor:  return a ^ b;
      case Op::Shl:  return static_cast<std::int64_t>(U(a) << (U(b) & 63));
      case Op::Shr:  return a >> (U(b) & 63);
      case Op::Slt:  return a < b;
      case Op::Sle:  return a <= b;
      case Op::Seq:  return a == b;
      case Op::Sne:  return a != b;
      case Op::Min:  return a < b ? a : b;
      case Op::Max:  return a > b ? a : b;
      case Op::Addi: return static_cast<std::int64_t>(U(a) + U(imm));
      case Op::Muli: return static_cast<std::int64_t>(U(a) * U(imm));
      case Op::Andi: return a & imm;
      case Op::Shli: return static_cast<std::int64_t>(U(a) << (U(imm) & 63));
      case Op::Shri: return a >> (U(imm) & 63);
      case Op::Slti: return a < imm;
      case Op::Movi: return imm;
      case Op::Mov:  return a;
      default:
        panic("evalAlu on non-ALU opcode %s", opName(op));
    }
}

bool
opReadsRa(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Movi:
      case Op::Jmp:
      case Op::Bar:
      case Op::Halt:
      case Op::NumOps:
        return false;
      default:
        return true;
    }
}

bool
opReadsRb(Op op)
{
    // Three-register ALU forms plus the store's data operand.
    return (op >= Op::Add && op <= Op::Max) || op == Op::St;
}

bool
opWritesRd(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::St:
      case Op::Br:
      case Op::Jmp:
      case Op::Bar:
      case Op::Halt:
      case Op::NumOps:
        return false;
      default:
        return true;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:  return "nop";
      case Op::Add:  return "add";
      case Op::Sub:  return "sub";
      case Op::Mul:  return "mul";
      case Op::Div:  return "div";
      case Op::Rem:  return "rem";
      case Op::And:  return "and";
      case Op::Or:   return "or";
      case Op::Xor:  return "xor";
      case Op::Shl:  return "shl";
      case Op::Shr:  return "shr";
      case Op::Slt:  return "slt";
      case Op::Sle:  return "sle";
      case Op::Seq:  return "seq";
      case Op::Sne:  return "sne";
      case Op::Min:  return "min";
      case Op::Max:  return "max";
      case Op::Addi: return "addi";
      case Op::Muli: return "muli";
      case Op::Andi: return "andi";
      case Op::Shli: return "shli";
      case Op::Shri: return "shri";
      case Op::Slti: return "slti";
      case Op::Movi: return "movi";
      case Op::Mov:  return "mov";
      case Op::Ld:   return "ld";
      case Op::St:   return "st";
      case Op::Br:   return "br";
      case Op::Jmp:  return "jmp";
      case Op::Bar:  return "bar";
      case Op::Halt: return "halt";
      case Op::NumOps: break;
    }
    return "???";
}

Op
opFromName(const std::string &name)
{
    for (int i = 0; i < static_cast<int>(Op::NumOps); i++) {
        const Op op = static_cast<Op>(i);
        if (name == opName(op))
            return op;
    }
    return Op::NumOps;
}

} // namespace dws
