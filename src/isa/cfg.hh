/**
 * @file
 * Instruction-level CFG analysis: post-dominator computation and the
 * static branch-subdivision heuristic.
 *
 * The paper manually instrumented application code with post-dominators
 * "due to the lack of compiler support" (Section 3.3) and manually
 * selected subdividable branches with the 50-instruction heuristic
 * (Section 4.3), noting "in practice this process would be automated by
 * the compiler". This pass is that automation.
 */

#ifndef DWS_ISA_CFG_HH
#define DWS_ISA_CFG_HH

#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

namespace dws {

/** One natural loop of the instruction-level CFG. */
struct NaturalLoop
{
    /** Loop header: the unique entry point of the loop. */
    Pc header = 0;
    /** Sources of the back edges into the header. */
    std::vector<Pc> latches;
    /** Per-pc loop membership (header and latches included). */
    std::vector<bool> body;

    /** @return true if pc is inside the loop. */
    bool
    contains(Pc pc) const
    {
        return pc >= 0 && pc < static_cast<Pc>(body.size()) &&
               body[static_cast<size_t>(pc)];
    }
};

/** Post-dominator analysis over a Program's instruction-level CFG. */
class CfgAnalysis
{
  public:
    /**
     * Analyze a program in place: fills brInfo (immediate post-dominator
     * and post-block length per conditional branch) and sets the
     * kFlagSubdividable flag on qualifying branches.
     *
     * @param prog            the program to annotate
     * @param subdivThreshold max post-dominator block length for a branch
     *                        to be subdividable (paper: 50)
     */
    static void analyze(Program &prog, int subdivThreshold);

    /**
     * Compute the immediate post-dominator of every instruction.
     * Index kPcExit is represented by the value kPcExit.
     *
     * @param instrs instruction sequence
     * @return per-pc immediate post-dominator (kPcExit when exit)
     */
    static std::vector<Pc> immediatePostDominators(
            const std::vector<Instr> &instrs);

    /**
     * @return the length of the straight-line basic block starting at pc
     *         (counting up to and including the first control-flow
     *         instruction or branch target boundary).
     */
    static int basicBlockLength(const std::vector<Instr> &instrs, Pc pc);

    /** @return the CFG successors of the instruction at pc. */
    static std::vector<Pc> successors(const std::vector<Instr> &instrs,
                                      Pc pc);

    /**
     * Compute the immediate dominator of every instruction (forward
     * Cooper-Harvey-Kennedy from entry pc 0). Entry and unreachable
     * instructions report kPcExit.
     */
    static std::vector<Pc> immediateDominators(
            const std::vector<Instr> &instrs);

    /**
     * Find every natural loop: a back edge u->h where h dominates u,
     * plus all nodes that reach u without passing through h. Back
     * edges sharing a header are merged into one loop, so the result
     * has one entry per distinct header, ordered by header pc.
     */
    static std::vector<NaturalLoop> naturalLoops(
            const std::vector<Instr> &instrs);
};

} // namespace dws

#endif // DWS_ISA_CFG_HH
