/**
 * @file
 * Disassembly of IR programs into the textual kernel format.
 *
 * The program listing is assembler-exact: feeding it back through
 * `assemble()` (isa/asm.hh) reconstructs a bit-identical Program,
 * including instruction flags and branch metadata. Branch facts that
 * used to live in `;` comments (subdividable, ipdom, post-block length)
 * are emitted as checked `!key[=value]` annotations instead.
 */

#ifndef DWS_ISA_DISASM_HH
#define DWS_ISA_DISASM_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace dws {

/**
 * @return a one-line disassembly of a single instruction; branch and
 *         jump targets are rendered as absolute `@pc` references since
 *         no label context exists.
 */
std::string disasm(const Instr &in);

/**
 * @return the full program as kernel text: `.kernel`/`.subdiv` header
 *         plus a labeled listing. Satisfies assemble(disasm(p)) == p.
 */
std::string disasm(const Program &prog);

/**
 * Same listing with an additional `.membytes` directive so the output
 * is directly runnable via `dws_sim --kernel FILE`.
 */
std::string disasm(const Program &prog, std::uint64_t memBytes);

} // namespace dws

#endif // DWS_ISA_DISASM_HH
