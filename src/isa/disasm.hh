/**
 * @file
 * Human-readable disassembly of IR programs, for debugging and tests.
 */

#ifndef DWS_ISA_DISASM_HH
#define DWS_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace dws {

/** @return a one-line disassembly of a single instruction. */
std::string disasm(const Instr &in);

/**
 * @return the full program listing, one instruction per line, annotated
 *         with branch post-dominators and subdivision flags.
 */
std::string disasm(const Program &prog);

} // namespace dws

#endif // DWS_ISA_DISASM_HH
