/**
 * @file
 * A Program: a fixed sequence of IR instructions plus the control-flow
 * metadata the WPU's re-convergence hardware needs.
 */

#ifndef DWS_ISA_PROGRAM_HH
#define DWS_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace dws {

/** Re-convergence metadata of one conditional branch. */
struct BranchInfo
{
    /**
     * PC of the branch's immediate post-dominator, i.e. the point at
     * which the conventional re-convergence stack re-unites both paths.
     * kPcExit when the only post-dominator is program exit.
     */
    Pc ipdom = kPcExit;
    /**
     * Length in instructions of the basic block starting at the
     * post-dominator (block "F" in the paper's Figure 6), used by the
     * Section 4.3 subdivision heuristic.
     */
    int postBlockLen = 0;
    /**
     * Verdict of the static divergence analysis: false means the branch
     * condition is provably uniform across the lanes of any SIMD group,
     * so the branch can never split a warp (kFlagSubdividable is
     * withheld and runtime divergence would be an analysis bug).
     */
    bool mayDiverge = true;

    bool
    operator==(const BranchInfo &o) const
    {
        return ipdom == o.ipdom && postBlockLen == o.postBlockLen &&
               mayDiverge == o.mayDiverge;
    }
    bool operator!=(const BranchInfo &o) const { return !(*this == o); }
};

/** An executable kernel program. */
class Program
{
  public:
    Program() = default;

    /**
     * Build a program from raw instructions and run the CFG analysis
     * (computes post-dominators and marks subdividable branches).
     *
     * @param instrs          instruction sequence; entry PC is 0
     * @param name            human-readable kernel name
     * @param subdivThreshold Section 4.3 heuristic bound (instructions)
     */
    Program(std::vector<Instr> instrs, std::string name,
            int subdivThreshold = 50);

    /** @return number of instructions. */
    int size() const { return static_cast<int>(code.size()); }

    /** @return the instruction at pc (bounds-checked in debug). */
    const Instr &at(Pc pc) const { return code[static_cast<size_t>(pc)]; }

    /** @return metadata for the branch at pc (must be a Br). */
    const BranchInfo &branchInfo(Pc pc) const;

    /** @return the kernel's name. */
    const std::string &name() const { return progName; }

    /** @return byte "address" of an instruction, for the I-cache. */
    Addr instrAddr(Pc pc) const
    {
        return static_cast<Addr>(pc) * kInstrBytes;
    }

    /** @return all instructions (for tests and the disassembler). */
    const std::vector<Instr> &instructions() const { return code; }

    /** @return the Section 4.3 bound the CFG analysis was run with. */
    int subdivThreshold() const { return threshold; }

    /**
     * Bit-exact structural equality: instructions (including flags),
     * name, subdivision threshold and per-branch metadata all match.
     * This is what the assembler/disassembler round-trip guarantees.
     */
    bool operator==(const Program &o) const;
    bool operator!=(const Program &o) const { return !(*this == o); }

  private:
    friend class CfgAnalysis;

    std::vector<Instr> code;
    std::vector<BranchInfo> brInfo; ///< indexed by pc; valid for Br only
    std::string progName;
    int threshold = 50; ///< subdivThreshold the analysis ran with
};

} // namespace dws

#endif // DWS_ISA_PROGRAM_HH
