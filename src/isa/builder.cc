#include "isa/builder.hh"

#include <cstdio>
#include <utility>

#include "analysis/verifier.hh"
#include "sim/logging.hh"

namespace dws {

KernelBuilder::Label
KernelBuilder::newLabel()
{
    labelPcs.push_back(kPcUnknown);
    return static_cast<Label>(labelPcs.size()) - 1;
}

void
KernelBuilder::bind(Label l)
{
    if (l < 0 || l >= static_cast<Label>(labelPcs.size()))
        panic("bind of unknown label %d", l);
    if (labelPcs[static_cast<size_t>(l)] != kPcUnknown)
        panic("label %d bound twice", l);
    labelPcs[static_cast<size_t>(l)] = here();
}

void
KernelBuilder::emit3(Op op, int rd, int ra, int rb)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.ra = static_cast<std::uint8_t>(ra);
    in.rb = static_cast<std::uint8_t>(rb);
    code.push_back(in);
}

void
KernelBuilder::emitImm(Op op, int rd, int ra, std::int64_t imm)
{
    Instr in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.ra = static_cast<std::uint8_t>(ra);
    in.imm = imm;
    code.push_back(in);
}

void
KernelBuilder::st(int ra, int rb, std::int64_t byteOff)
{
    Instr in;
    in.op = Op::St;
    in.ra = static_cast<std::uint8_t>(ra);
    in.rb = static_cast<std::uint8_t>(rb);
    in.imm = byteOff;
    code.push_back(in);
}

void
KernelBuilder::br(int ra, Label l)
{
    Instr in;
    in.op = Op::Br;
    in.ra = static_cast<std::uint8_t>(ra);
    in.target = 0;
    fixups.emplace_back(here(), l);
    code.push_back(in);
}

void
KernelBuilder::jmp(Label l)
{
    Instr in;
    in.op = Op::Jmp;
    in.target = 0;
    fixups.emplace_back(here(), l);
    code.push_back(in);
}

std::optional<Program>
KernelBuilder::tryBuild(std::string name, std::vector<Diagnostic> &diags,
                        int subdivThreshold)
{
    for (const auto &[pc, label] : fixups) {
        const Pc target = labelPcs[static_cast<size_t>(label)];
        if (target == kPcUnknown) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "unbound label %d referenced here", label);
            diags.push_back(Diagnostic{.severity = Severity::Error,
                                       .pc = pc,
                                       .pass = "builder",
                                       .message = buf});
            continue;
        }
        code[static_cast<size_t>(pc)].target = target;
    }
    if (hasErrors(diags))
        return std::nullopt;

    std::vector<Diagnostic> verdicts = Verifier::verify(code);
    diags.insert(diags.end(), verdicts.begin(), verdicts.end());
    if (hasErrors(diags))
        return std::nullopt;

    Program prog(std::move(code), std::move(name), subdivThreshold);

    // Cross-check the cached CFG analysis against the independent
    // dataflow recomputation in the verifier.
    verdicts = Verifier::verify(prog);
    diags.insert(diags.end(), verdicts.begin(), verdicts.end());
    if (hasErrors(diags))
        return std::nullopt;
    return prog;
}

Program
KernelBuilder::build(std::string name, int subdivThreshold)
{
    std::vector<Diagnostic> diags;
    const std::string kernelName = name;
    std::optional<Program> prog =
            tryBuild(std::move(name), diags, subdivThreshold);
    if (!prog) {
        for (const Diagnostic &d : diags)
            std::fprintf(stderr, "kernel '%s': %s\n", kernelName.c_str(),
                         toString(d).c_str());
        fatal("kernel '%s' failed verification with %d error(s)",
              kernelName.c_str(),
              countSeverity(diags, Severity::Error));
    }
    return std::move(*prog);
}

} // namespace dws
