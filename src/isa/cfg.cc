#include "isa/cfg.hh"

#include <algorithm>

#include "analysis/divergence.hh"
#include "sim/logging.hh"

namespace dws {

std::vector<Pc>
CfgAnalysis::successors(const std::vector<Instr> &instrs, Pc pc)
{
    const Instr &in = instrs[static_cast<size_t>(pc)];
    const Pc n = static_cast<Pc>(instrs.size());
    std::vector<Pc> out;
    switch (in.op) {
      case Op::Halt:
        break;
      case Op::Jmp:
        if (in.target < n)
            out.push_back(in.target);
        break;
      case Op::Br:
        if (pc + 1 < n)
            out.push_back(pc + 1);
        if (in.target < n)
            out.push_back(in.target);
        break;
      default:
        if (pc + 1 < n)
            out.push_back(pc + 1);
        break;
    }
    return out;
}

namespace {

/**
 * Intersect two nodes in the (post)dominator tree using the classic
 * Cooper-Harvey-Kennedy two-finger walk over postorder numbers.
 */
int
intersect(const std::vector<int> &idom, const std::vector<int> &poNum,
          int a, int b)
{
    while (a != b) {
        while (poNum[a] < poNum[b])
            a = idom[a];
        while (poNum[b] < poNum[a])
            b = idom[b];
    }
    return a;
}

} // namespace

std::vector<Pc>
CfgAnalysis::immediatePostDominators(const std::vector<Instr> &instrs)
{
    const int n = static_cast<int>(instrs.size());
    const int exitNode = n; // virtual exit

    // Build CFG successor lists, with off-end fallthrough and Halt edges
    // to the virtual exit node.
    std::vector<std::vector<int>> succ(n + 1);
    std::vector<std::vector<int>> pred(n + 1);
    for (int pc = 0; pc < n; pc++) {
        std::vector<Pc> s = successors(instrs, pc);
        const Instr &in = instrs[static_cast<size_t>(pc)];
        if (s.empty() || (in.op != Op::Jmp && in.op != Op::Halt &&
                          pc + 1 >= n)) {
            // Halt, or fall-through past the end of the program.
        }
        if (in.op == Op::Halt) {
            succ[pc].push_back(exitNode);
        } else {
            for (Pc t : s)
                succ[pc].push_back(t);
            const bool falls = (in.op != Op::Jmp);
            if (falls && pc + 1 >= n)
                succ[pc].push_back(exitNode);
            if (in.op == Op::Br && in.target >= n)
                succ[pc].push_back(exitNode);
            if (in.op == Op::Jmp && in.target >= n)
                succ[pc].push_back(exitNode);
        }
        for (int t : succ[pc])
            pred[t].push_back(pc);
    }

    // Postorder of the *reverse* CFG rooted at the exit node. In the
    // reverse graph the successor of a node is its CFG predecessor.
    std::vector<int> poNum(n + 1, -1);
    std::vector<int> order; // nodes in postorder
    {
        std::vector<int> stack{exitNode};
        std::vector<int> childIdx(n + 1, 0);
        std::vector<bool> onStack(n + 1, false);
        std::vector<bool> visited(n + 1, false);
        visited[exitNode] = true;
        onStack[exitNode] = true;
        while (!stack.empty()) {
            int v = stack.back();
            if (childIdx[v] < static_cast<int>(pred[v].size())) {
                int w = pred[v][childIdx[v]++];
                if (!visited[w]) {
                    visited[w] = true;
                    stack.push_back(w);
                }
            } else {
                poNum[v] = static_cast<int>(order.size());
                order.push_back(v);
                stack.pop_back();
            }
        }
    }

    // Cooper-Harvey-Kennedy on the reverse graph.
    std::vector<int> idom(n + 1, -1);
    idom[exitNode] = exitNode;
    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in reverse postorder of the reverse graph.
        for (int i = static_cast<int>(order.size()) - 1; i >= 0; i--) {
            const int u = order[i];
            if (u == exitNode)
                continue;
            // Predecessors of u in the reverse graph = CFG successors.
            int newIdom = -1;
            for (int p : succ[u]) {
                if (poNum[p] < 0 || idom[p] < 0)
                    continue; // unreachable from exit / not yet processed
                newIdom = (newIdom < 0)
                        ? p : intersect(idom, poNum, newIdom, p);
            }
            if (newIdom >= 0 && idom[u] != newIdom) {
                idom[u] = newIdom;
                changed = true;
            }
        }
    }

    std::vector<Pc> result(n, kPcExit);
    for (int pc = 0; pc < n; pc++) {
        if (idom[pc] < 0 || idom[pc] == exitNode)
            result[pc] = kPcExit;
        else
            result[pc] = static_cast<Pc>(idom[pc]);
    }
    return result;
}

std::vector<Pc>
CfgAnalysis::immediateDominators(const std::vector<Instr> &instrs)
{
    const int n = static_cast<int>(instrs.size());
    std::vector<Pc> result(static_cast<size_t>(n), kPcExit);
    if (n == 0)
        return result;

    std::vector<std::vector<int>> succ(static_cast<size_t>(n));
    std::vector<std::vector<int>> pred(static_cast<size_t>(n));
    for (int pc = 0; pc < n; pc++) {
        for (Pc t : successors(instrs, pc)) {
            succ[static_cast<size_t>(pc)].push_back(t);
            pred[static_cast<size_t>(t)].push_back(pc);
        }
    }

    // Postorder of the forward CFG rooted at entry.
    std::vector<int> poNum(static_cast<size_t>(n), -1);
    std::vector<int> order;
    {
        std::vector<int> stack{0};
        std::vector<int> childIdx(static_cast<size_t>(n), 0);
        std::vector<bool> visited(static_cast<size_t>(n), false);
        visited[0] = true;
        while (!stack.empty()) {
            const int v = stack.back();
            auto &ci = childIdx[static_cast<size_t>(v)];
            if (ci < static_cast<int>(succ[static_cast<size_t>(v)].size())) {
                const int w = succ[static_cast<size_t>(v)]
                                  [static_cast<size_t>(ci++)];
                if (!visited[static_cast<size_t>(w)]) {
                    visited[static_cast<size_t>(w)] = true;
                    stack.push_back(w);
                }
            } else {
                poNum[static_cast<size_t>(v)] =
                        static_cast<int>(order.size());
                order.push_back(v);
                stack.pop_back();
            }
        }
    }

    std::vector<int> idom(static_cast<size_t>(n), -1);
    idom[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = static_cast<int>(order.size()) - 1; i >= 0; i--) {
            const int u = order[static_cast<size_t>(i)];
            if (u == 0)
                continue;
            int newIdom = -1;
            for (int p : pred[static_cast<size_t>(u)]) {
                if (poNum[static_cast<size_t>(p)] < 0 ||
                    idom[static_cast<size_t>(p)] < 0)
                    continue;
                newIdom = (newIdom < 0)
                        ? p : intersect(idom, poNum, newIdom, p);
            }
            if (newIdom >= 0 && idom[u] != newIdom) {
                idom[u] = newIdom;
                changed = true;
            }
        }
    }

    for (int pc = 1; pc < n; pc++) {
        if (idom[static_cast<size_t>(pc)] >= 0)
            result[static_cast<size_t>(pc)] =
                    static_cast<Pc>(idom[static_cast<size_t>(pc)]);
    }
    return result;
}

std::vector<NaturalLoop>
CfgAnalysis::naturalLoops(const std::vector<Instr> &instrs)
{
    const int n = static_cast<int>(instrs.size());
    std::vector<NaturalLoop> loops;
    if (n == 0)
        return loops;

    const std::vector<Pc> idom = immediateDominators(instrs);
    auto dominates = [&](Pc a, Pc b) {
        // Walk b's dominator chain up to entry looking for a.
        while (true) {
            if (a == b)
                return true;
            if (b == 0 || idom[static_cast<size_t>(b)] == kPcExit)
                return false;
            b = idom[static_cast<size_t>(b)];
        }
    };

    std::vector<std::vector<Pc>> pred(static_cast<size_t>(n));
    for (Pc pc = 0; pc < n; pc++)
        for (Pc t : successors(instrs, pc))
            pred[static_cast<size_t>(t)].push_back(pc);

    // Collect back edges grouped by header.
    std::vector<std::vector<Pc>> latchesOf(static_cast<size_t>(n));
    for (Pc u = 0; u < n; u++) {
        if (idom[static_cast<size_t>(u)] == kPcExit && u != 0)
            continue; // unreachable
        for (Pc h : successors(instrs, u))
            if (dominates(h, u))
                latchesOf[static_cast<size_t>(h)].push_back(u);
    }

    for (Pc h = 0; h < n; h++) {
        if (latchesOf[static_cast<size_t>(h)].empty())
            continue;
        NaturalLoop loop;
        loop.header = h;
        loop.latches = latchesOf[static_cast<size_t>(h)];
        loop.body.assign(static_cast<size_t>(n), false);
        loop.body[static_cast<size_t>(h)] = true;
        // Natural-loop body: everything reaching a latch backwards
        // without passing through the header.
        std::vector<Pc> work;
        for (Pc l : loop.latches) {
            if (!loop.body[static_cast<size_t>(l)]) {
                loop.body[static_cast<size_t>(l)] = true;
                work.push_back(l);
            }
        }
        while (!work.empty()) {
            const Pc v = work.back();
            work.pop_back();
            for (Pc p : pred[static_cast<size_t>(v)]) {
                if (!loop.body[static_cast<size_t>(p)]) {
                    loop.body[static_cast<size_t>(p)] = true;
                    work.push_back(p);
                }
            }
        }
        loops.push_back(std::move(loop));
    }
    return loops;
}

int
CfgAnalysis::basicBlockLength(const std::vector<Instr> &instrs, Pc pc)
{
    const int n = static_cast<int>(instrs.size());
    if (pc < 0 || pc >= n)
        return 0;

    // Block leaders: entry, branch/jump targets, and instructions
    // following control flow.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (int i = 0; i < n; i++) {
        const Instr &in = instrs[static_cast<size_t>(i)];
        if (in.op == Op::Br || in.op == Op::Jmp) {
            if (in.target >= 0 && in.target < n)
                leader[static_cast<size_t>(in.target)] = true;
        }
        if (in.isControl() && i + 1 < n)
            leader[static_cast<size_t>(i) + 1] = true;
    }

    int len = 0;
    for (int i = pc; i < n; i++) {
        if (i > pc && leader[static_cast<size_t>(i)])
            break;
        len++;
        if (instrs[static_cast<size_t>(i)].isControl())
            break;
    }
    return len;
}

void
CfgAnalysis::analyze(Program &prog, int subdivThreshold)
{
    auto &code = prog.code;
    const int n = static_cast<int>(code.size());
    prog.brInfo.assign(static_cast<size_t>(n), BranchInfo{});
    if (n == 0)
        return;

    const std::vector<Pc> ipdom = immediatePostDominators(code);
    const DivergenceReport divergence = DivergenceAnalysis::analyze(code);
    for (int pc = 0; pc < n; pc++) {
        Instr &in = code[static_cast<size_t>(pc)];
        if (in.op != Op::Br)
            continue;
        BranchInfo &bi = prog.brInfo[static_cast<size_t>(pc)];
        bi.ipdom = ipdom[static_cast<size_t>(pc)];
        bi.postBlockLen = (bi.ipdom == kPcExit)
                ? subdivThreshold + 1 // exit: treat as "long" post block
                : basicBlockLength(code, bi.ipdom);
        bi.mayDiverge = divergence.mayDiverge(pc);
        // Subdividable = short post block (Section 4.3) AND able to
        // diverge at all: a uniform branch never splits a group, so
        // spending WST capacity on it would be pure waste.
        if (bi.postBlockLen <= subdivThreshold && bi.mayDiverge)
            in.flags |= kFlagSubdividable;
    }
}

} // namespace dws
