#include "isa/asm.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/verifier.hh"
#include "mem/memory.hh"
#include "sim/parse.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

struct Token
{
    enum Kind { Ident, Number, Punct } kind = Ident;
    std::string text{};
};

/** Split one comment-stripped line into tokens. */
bool
tokenizeLine(const std::string &line, std::vector<Token> &toks,
             std::string &err)
{
    size_t i = 0;
    while (i < line.size()) {
        const char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.') {
            size_t j = i + 1;
            while (j < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(line[j])) ||
                    line[j] == '_' || line[j] == '.')) {
                j++;
            }
            toks.push_back({Token::Ident, line.substr(i, j - i)});
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '-' && i + 1 < line.size() &&
                    std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
            size_t j = i + 1;
            while (j < line.size() &&
                   std::isalnum(static_cast<unsigned char>(line[j]))) {
                j++;
            }
            toks.push_back({Token::Number, line.substr(i, j - i)});
            i = j;
        } else if (std::strchr(",[]+:=!@", c) != nullptr) {
            toks.push_back({Token::Punct, std::string(1, c)});
            i++;
        } else {
            err = std::string("unexpected character '") + c + "'";
            return false;
        }
    }
    return true;
}

/** A pc reference that may still be symbolic. */
struct PcRef
{
    std::string label{}; ///< empty when absolute
    Pc absolute = 0;
    bool isEnd = false; ///< `@end` (annotation-only): kPcExit
};

/** Branch annotations to check after analysis. */
struct BrAssert
{
    int line = 0;
    bool subdividable = false;
    bool uniform = false;
    bool hasIpdom = false;
    PcRef ipdom{};
    bool hasPostblock = false;
    std::int64_t postblock = 0;
};

/** Cursor over one instruction line's tokens. */
struct Cursor
{
    const std::vector<Token> &toks;
    size_t pos = 1; // mnemonic already consumed
    std::string err{};

    bool done() const { return pos >= toks.size(); }

    bool
    punct(const char *p)
    {
        if (pos < toks.size() && toks[pos].kind == Token::Punct &&
            toks[pos].text == p) {
            pos++;
            return true;
        }
        return false;
    }

    bool
    expectPunct(const char *p)
    {
        if (punct(p))
            return true;
        if (err.empty())
            err = std::string("expected '") + p + "'" + found();
        return false;
    }

    std::string
    found() const
    {
        if (pos >= toks.size())
            return " at end of line";
        return ", found '" + toks[pos].text + "'";
    }

    bool
    expectReg(std::uint8_t &out)
    {
        if (pos < toks.size() && toks[pos].kind == Token::Ident &&
            toks[pos].text.size() >= 2 && toks[pos].text[0] == 'r') {
            const auto n = parseUint64(toks[pos].text.substr(1));
            if (n) {
                if (*n >= kNumRegs) {
                    err = "register " + toks[pos].text +
                          " out of range (max r" +
                          std::to_string(kNumRegs - 1) + ")";
                    return false;
                }
                out = static_cast<std::uint8_t>(*n);
                pos++;
                return true;
            }
        }
        if (err.empty())
            err = "expected register" + found();
        return false;
    }

    bool
    expectImm(std::int64_t &out)
    {
        if (pos < toks.size() && toks[pos].kind == Token::Number) {
            const auto v = parseInt64(toks[pos].text);
            if (!v) {
                err = "immediate '" + toks[pos].text +
                      "' is not a valid 64-bit integer";
                return false;
            }
            out = *v;
            pos++;
            return true;
        }
        if (err.empty())
            err = "expected immediate" + found();
        return false;
    }

    /** A label identifier, `@pc`, or (if allowEnd) `@end`. */
    bool
    expectPcRef(PcRef &out, bool allowEnd)
    {
        if (punct("@")) {
            if (allowEnd && pos < toks.size() &&
                toks[pos].kind == Token::Ident && toks[pos].text == "end") {
                out = PcRef{"", 0, true};
                pos++;
                return true;
            }
            if (pos < toks.size() && toks[pos].kind == Token::Number) {
                const auto v = parseInt64(toks[pos].text);
                if (!v || *v < 0 || *v > kMaxPcRef) {
                    err = "absolute pc '@" + toks[pos].text +
                          "' out of range";
                    return false;
                }
                out = PcRef{"", static_cast<Pc>(*v), false};
                pos++;
                return true;
            }
            err = "expected pc after '@'" + found();
            return false;
        }
        if (pos < toks.size() && toks[pos].kind == Token::Ident) {
            out = PcRef{toks[pos].text, 0, false};
            pos++;
            return true;
        }
        if (err.empty())
            err = "expected label or @pc" + found();
        return false;
    }

    static constexpr std::int64_t kMaxPcRef = 1 << 20;
};

struct Assembler
{
    std::vector<AsmDiag> diags{};
    AsmKernel out{};
    bool sawKernel = false, sawSubdiv = false, sawMemBytes = false,
         sawThreads = false;

    std::vector<Instr> instrs{};
    std::vector<int> instrLine{};
    std::map<std::string, Pc> labels{};
    std::map<std::string, int> labelLine{};
    /** Per-instruction unresolved target (Br/Jmp only). */
    std::map<int, std::pair<PcRef, int>> targetRefs{};
    std::vector<BrAssert> brAsserts{};

    void
    error(int line, const std::string &msg)
    {
        diags.push_back(AsmDiag{line, msg});
    }

    void parseLine(const std::string &raw, int line);
    void parseDirective(const std::string &raw,
                        const std::vector<Token> &toks, int line);
    void parseInstr(const std::vector<Token> &toks, int line);
    bool resolvePcRef(const PcRef &ref, int line, const char *what,
                      Pc &out);
    std::optional<AsmKernel> finish();
};

void
Assembler::parseLine(const std::string &raw, int line)
{
    // Strip comment and tokenize.
    std::string text = raw;
    const size_t semi = text.find(';');
    if (semi != std::string::npos)
        text.erase(semi);

    std::vector<Token> toks;
    std::string err;
    if (!tokenizeLine(text, toks, err)) {
        error(line, err);
        return;
    }
    if (toks.empty())
        return;

    if (toks[0].kind == Token::Ident && toks[0].text[0] == '.') {
        parseDirective(text, toks, line);
        return;
    }

    // Label definition: `name:` alone on a line.
    if (toks.size() == 2 && toks[0].kind == Token::Ident &&
        toks[1].kind == Token::Punct && toks[1].text == ":") {
        const std::string &name = toks[0].text;
        if (labels.count(name)) {
            error(line, "duplicate label '" + name + "' (first defined "
                        "on line " + std::to_string(labelLine[name]) + ")");
            return;
        }
        labels[name] = static_cast<Pc>(instrs.size());
        labelLine[name] = line;
        return;
    }

    parseInstr(toks, line);
}

void
Assembler::parseDirective(const std::string &raw,
                          const std::vector<Token> &toks, int line)
{
    const std::string &dir = toks[0].text;

    const auto numberArgs = [&](size_t lo, size_t hi) -> bool {
        if (toks.size() - 1 < lo || toks.size() - 1 > hi) {
            error(line, dir + ": wrong number of arguments");
            return false;
        }
        for (size_t i = 1; i < toks.size(); i++) {
            if (toks[i].kind != Token::Number) {
                error(line, dir + ": expected number, found '" +
                            toks[i].text + "'");
                return false;
            }
        }
        return true;
    };
    const auto u64At = [&](size_t i, std::uint64_t &v) -> bool {
        const auto p = parseUint64(toks[i].text);
        if (!p) {
            error(line, dir + ": '" + toks[i].text +
                        "' is not a valid unsigned 64-bit value");
            return false;
        }
        v = *p;
        return true;
    };

    if (dir == ".kernel") {
        // The name is the rest of the raw line, whitespace-trimmed.
        if (sawKernel) {
            error(line, "duplicate .kernel directive");
            return;
        }
        size_t start = raw.find(".kernel") + std::strlen(".kernel");
        size_t end = raw.size();
        while (start < end &&
               std::isspace(static_cast<unsigned char>(raw[start])))
            start++;
        while (end > start &&
               std::isspace(static_cast<unsigned char>(raw[end - 1])))
            end--;
        if (start >= end) {
            error(line, ".kernel: missing name");
            return;
        }
        out.name = raw.substr(start, end - start);
        sawKernel = true;
    } else if (dir == ".subdiv") {
        if (sawSubdiv) {
            error(line, "duplicate .subdiv directive");
            return;
        }
        if (!numberArgs(1, 1))
            return;
        const auto v = parseInt64InRange(toks[1].text.c_str(), 0, 100000);
        if (!v) {
            error(line, ".subdiv: expected a value in [0, 100000], got '" +
                        toks[1].text + "'");
            return;
        }
        out.subdivThreshold = static_cast<int>(*v);
        sawSubdiv = true;
    } else if (dir == ".membytes") {
        if (sawMemBytes) {
            error(line, "duplicate .membytes directive");
            return;
        }
        if (!numberArgs(1, 1) || !u64At(1, out.memBytes))
            return;
        sawMemBytes = true;
    } else if (dir == ".threads") {
        if (sawThreads) {
            error(line, "duplicate .threads directive");
            return;
        }
        if (!numberArgs(1, 1))
            return;
        const auto v = parseInt64InRange(toks[1].text.c_str(), 1,
                                         1 << 24);
        if (!v) {
            error(line, ".threads: expected a value in [1, 16777216], "
                        "got '" + toks[1].text + "'");
            return;
        }
        out.threads = *v;
        sawThreads = true;
    } else if (dir == ".data") {
        if (toks.size() < 3) {
            error(line, ".data: expected ADDR followed by at least one "
                        "word");
            return;
        }
        AsmData seg;
        if (toks[1].kind != Token::Number || !u64At(1, seg.addr))
            return;
        if (seg.addr % kWordBytes != 0) {
            error(line, ".data: address must be 8-byte aligned");
            return;
        }
        for (size_t i = 2; i < toks.size(); i++) {
            if (toks[i].kind != Token::Number) {
                error(line, ".data: expected number, found '" +
                            toks[i].text + "'");
                return;
            }
            // Words may be written signed or unsigned.
            if (const auto sv = parseInt64(toks[i].text)) {
                seg.words.push_back(*sv);
            } else if (const auto uv = parseUint64(toks[i].text)) {
                seg.words.push_back(static_cast<std::int64_t>(*uv));
            } else {
                error(line, ".data: '" + toks[i].text +
                            "' is not a valid 64-bit word");
                return;
            }
        }
        out.data.push_back(std::move(seg));
    } else if (dir == ".fill") {
        if (!numberArgs(3, 4))
            return;
        AsmFill seg;
        if (!u64At(1, seg.addr) || !u64At(2, seg.numWords) ||
            !u64At(3, seg.seed))
            return;
        if (toks.size() > 4 && !u64At(4, seg.mask))
            return;
        if (seg.addr % kWordBytes != 0) {
            error(line, ".fill: address must be 8-byte aligned");
            return;
        }
        if (seg.numWords > (std::uint64_t(1) << 32)) {
            error(line, ".fill: word count too large");
            return;
        }
        out.fills.push_back(seg);
    } else {
        error(line, "unknown directive '" + dir + "'");
    }
}

void
Assembler::parseInstr(const std::vector<Token> &toks, int line)
{
    if (toks[0].kind != Token::Ident) {
        error(line, "expected opcode, found '" + toks[0].text + "'");
        return;
    }
    const Op op = opFromName(toks[0].text);
    if (op == Op::NumOps) {
        error(line, "unknown opcode '" + toks[0].text + "'");
        return;
    }

    Cursor c{toks};
    Instr in;
    in.op = op;
    const int idx = static_cast<int>(instrs.size());
    bool ok = true;

    switch (op) {
      case Op::Nop:
      case Op::Bar:
      case Op::Halt:
        break;
      case Op::Movi:
        ok = c.expectReg(in.rd) && c.expectPunct(",") && c.expectImm(in.imm);
        break;
      case Op::Mov:
        ok = c.expectReg(in.rd) && c.expectPunct(",") && c.expectReg(in.ra);
        break;
      case Op::Addi: case Op::Muli: case Op::Andi:
      case Op::Shli: case Op::Shri: case Op::Slti:
        ok = c.expectReg(in.rd) && c.expectPunct(",") &&
             c.expectReg(in.ra) && c.expectPunct(",") && c.expectImm(in.imm);
        break;
      case Op::Ld:
        ok = c.expectReg(in.rd) && c.expectPunct(",") &&
             c.expectPunct("[") && c.expectReg(in.ra);
        if (ok && c.punct("+"))
            ok = c.expectImm(in.imm);
        ok = ok && c.expectPunct("]");
        break;
      case Op::St:
        ok = c.expectPunct("[") && c.expectReg(in.ra);
        if (ok && c.punct("+"))
            ok = c.expectImm(in.imm);
        ok = ok && c.expectPunct("]") && c.expectPunct(",") &&
             c.expectReg(in.rb);
        break;
      case Op::Br: {
        PcRef tgt;
        ok = c.expectReg(in.ra) && c.expectPunct(",") &&
             c.expectPcRef(tgt, false);
        if (ok)
            targetRefs[idx] = {tgt, line};
        // Optional checked annotations.
        BrAssert ba;
        ba.line = line;
        bool any = false;
        while (ok && c.punct("!")) {
            if (c.done() || c.toks[c.pos].kind != Token::Ident) {
                c.err = "expected annotation name after '!'";
                ok = false;
                break;
            }
            const std::string key = c.toks[c.pos].text;
            c.pos++;
            if (key == "subdividable") {
                ba.subdividable = true;
            } else if (key == "uniform") {
                ba.uniform = true;
            } else if (key == "ipdom") {
                ok = c.expectPunct("=") && c.expectPcRef(ba.ipdom, true);
                ba.hasIpdom = ok;
            } else if (key == "postblock") {
                ok = c.expectPunct("=") && c.expectImm(ba.postblock);
                ba.hasPostblock = ok;
            } else {
                c.err = "unknown branch annotation '!" + key + "'";
                ok = false;
            }
            any = true;
        }
        if (ok && any)
            brAsserts.push_back(ba);
        break;
      }
      case Op::Jmp: {
        PcRef tgt;
        ok = c.expectPcRef(tgt, false);
        if (ok)
            targetRefs[idx] = {tgt, line};
        break;
      }
      default: // three-register ALU
        ok = c.expectReg(in.rd) && c.expectPunct(",") &&
             c.expectReg(in.ra) && c.expectPunct(",") && c.expectReg(in.rb);
        break;
    }

    if (!ok) {
        error(line, c.err.empty() ? "malformed instruction" : c.err);
        return;
    }
    if (!c.done()) {
        error(line, "trailing tokens" + c.found());
        return;
    }
    instrs.push_back(in);
    instrLine.push_back(line);
}

bool
Assembler::resolvePcRef(const PcRef &ref, int line, const char *what,
                        Pc &outPc)
{
    if (ref.isEnd) {
        outPc = kPcExit;
        return true;
    }
    if (!ref.label.empty()) {
        const auto it = labels.find(ref.label);
        if (it == labels.end()) {
            error(line, std::string(what) + ": undefined label '" +
                        ref.label + "'");
            return false;
        }
        outPc = it->second;
        return true;
    }
    if (ref.absolute > static_cast<Pc>(instrs.size())) {
        error(line, std::string(what) + ": absolute pc @" +
                    std::to_string(ref.absolute) +
                    " is outside the program");
        return false;
    }
    outPc = ref.absolute;
    return true;
}

std::optional<AsmKernel>
Assembler::finish()
{
    if (instrs.empty() && diags.empty())
        error(0, "program has no instructions");

    // Resolve symbolic targets; annotation pc refs resolve later so a
    // bad target and a bad annotation on one line both get reported.
    for (auto &[idx, refLine] : targetRefs) {
        Pc pc = 0;
        if (resolvePcRef(refLine.first, refLine.second, "branch target",
                         pc)) {
            instrs[static_cast<size_t>(idx)].target = pc;
        }
    }

    if (!diags.empty())
        return std::nullopt;

    // Safe now: all targets are within [0, size], which the Program
    // constructor accepts (the verifier below still rejects target ==
    // size, reported as a diagnostic rather than a process abort).
    out.program = Program(instrs, out.name.empty() ? "kernel" : out.name,
                          out.subdivThreshold);
    if (out.name.empty())
        out.name = out.program.name();

    for (const Diagnostic &d : Verifier::verify(out.program)) {
        if (d.severity != Severity::Error)
            continue;
        const int line =
                (d.pc >= 0 && d.pc < static_cast<Pc>(instrLine.size()))
                        ? instrLine[static_cast<size_t>(d.pc)]
                        : 0;
        error(line, "verifier: " + d.message);
    }
    if (!diags.empty())
        return std::nullopt;

    // Check branch annotations against the recomputed analysis facts.
    for (const BrAssert &ba : brAsserts) {
        // Locate the branch this assertion came from via its line.
        Pc pc = kPcExit;
        for (size_t i = 0; i < instrLine.size(); i++) {
            if (instrLine[i] == ba.line) {
                pc = static_cast<Pc>(i);
                break;
            }
        }
        if (pc == kPcExit || out.program.at(pc).op != Op::Br)
            continue;
        const BranchInfo &bi = out.program.branchInfo(pc);
        if (ba.subdividable && !out.program.at(pc).subdividable()) {
            error(ba.line, "annotation !subdividable: analysis says this "
                           "branch cannot subdivide (postblock=" +
                           std::to_string(bi.postBlockLen) +
                           (bi.mayDiverge ? "" : ", uniform") + ")");
        }
        if (ba.uniform && bi.mayDiverge) {
            error(ba.line, "annotation !uniform: divergence analysis "
                           "cannot prove this branch uniform");
        }
        if (ba.hasIpdom) {
            Pc want = kPcExit;
            if (resolvePcRef(ba.ipdom, ba.line, "!ipdom", want) &&
                want != bi.ipdom) {
                error(ba.line, "annotation !ipdom=" +
                               (want == kPcExit ? std::string("@end")
                                                : std::to_string(want)) +
                               ": analysis computed ipdom=" +
                               (bi.ipdom == kPcExit
                                        ? std::string("@end")
                                        : std::to_string(bi.ipdom)));
            }
        }
        if (ba.hasPostblock && ba.postblock != bi.postBlockLen) {
            error(ba.line, "annotation !postblock=" +
                           std::to_string(ba.postblock) +
                           ": analysis computed postblock=" +
                           std::to_string(bi.postBlockLen));
        }
    }

    // The declared memory must cover every data/fill segment; infer the
    // size when the file declares none.
    std::uint64_t extent = 0;
    for (const AsmData &d : out.data)
        extent = std::max(extent,
                          d.addr + d.words.size() * std::uint64_t(kWordBytes));
    for (const AsmFill &f : out.fills)
        extent = std::max(extent, f.addr + f.numWords * kWordBytes);
    if (!sawMemBytes) {
        out.memBytes = extent;
    } else if (out.memBytes < extent) {
        error(0, ".membytes " + std::to_string(out.memBytes) +
                 " does not cover data/fill segments (need " +
                 std::to_string(extent) + " bytes)");
    }

    if (!diags.empty())
        return std::nullopt;
    return std::move(out);
}

} // namespace

std::string
toString(const AsmDiag &d)
{
    if (d.line <= 0)
        return d.message;
    return "line " + std::to_string(d.line) + ": " + d.message;
}

void
AsmKernel::initMemory(Memory &mem) const
{
    for (const AsmData &d : data) {
        for (size_t i = 0; i < d.words.size(); i++)
            mem.write(d.addr + i * kWordBytes, d.words[i]);
    }
    for (const AsmFill &f : fills) {
        Rng rng(f.seed);
        for (std::uint64_t i = 0; i < f.numWords; i++) {
            mem.write(f.addr + i * kWordBytes,
                      static_cast<std::int64_t>(rng.next() & f.mask));
        }
    }
}

std::optional<AsmKernel>
assemble(const std::string &text, std::vector<AsmDiag> &diags)
{
    Assembler a;
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line))
        a.parseLine(line, ++lineNo);
    auto result = a.finish();
    diags.insert(diags.end(), a.diags.begin(), a.diags.end());
    return result;
}

std::optional<AsmKernel>
assembleFile(const std::string &path, std::vector<AsmDiag> &diags)
{
    std::ifstream is(path);
    if (!is) {
        diags.push_back(AsmDiag{0, "cannot open '" + path + "'"});
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return assemble(buf.str(), diags);
}

} // namespace dws
