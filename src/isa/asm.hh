/**
 * @file
 * Text assembler for the kernel IR.
 *
 * Parses the `.dws` kernel format emitted by `disasm(Program)`:
 *
 *     ; comment (to end of line)
 *     .kernel NAME          ; kernel name (rest of line)
 *     .subdiv N             ; Section 4.3 subdivision threshold
 *     .membytes N           ; size of the flat data memory in bytes
 *     .threads N            ; suggested launch thread count (optional)
 *     .data ADDR W0 W1 ...  ; initial memory words at byte address ADDR
 *     .fill ADDR NW SEED [MASK] ; NW seeded pseudo-random words (& MASK)
 *
 *     label:
 *         movi r2, 0
 *         addi r3, r0, 5
 *         ld   r5, [r4 + 8]
 *         st   [r4], r3
 *         br   r6, label !subdividable !ipdom=join !postblock=3
 *         jmp  done
 *
 * Branch/jump targets are labels or absolute `@pc` references. The
 * `!key[=value]` branch annotations are *checked assertions*: the
 * assembler reruns the CFG/divergence analysis (by constructing the
 * Program) and reports an error if an annotation disagrees with the
 * recomputed metadata. Annotations that are absent are simply not
 * checked, so hand-written kernels may omit them entirely.
 *
 * All diagnostics carry 1-based source line numbers; assembly never
 * aborts the process on malformed input.
 */

#ifndef DWS_ISA_ASM_HH
#define DWS_ISA_ASM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace dws {

class Memory;

/** One assembler finding, anchored to a source line. */
struct AsmDiag
{
    /** 1-based line number; 0 when the finding is file-wide. */
    int line = 0;
    std::string message{};
};

/** @return "line N: message" (line part omitted when 0). */
std::string toString(const AsmDiag &d);

/** A literal `.data` segment. */
struct AsmData
{
    std::uint64_t addr = 0;
    std::vector<std::int64_t> words{};
};

/** A seeded `.fill` segment: words[i] = Rng(seed).next() & mask. */
struct AsmFill
{
    std::uint64_t addr = 0;
    std::uint64_t numWords = 0;
    std::uint64_t seed = 1;
    std::uint64_t mask = 0xffff;
};

/** An assembled kernel: the program plus its memory image recipe. */
struct AsmKernel
{
    Program program{};
    std::string name{};
    int subdivThreshold = 50;
    /**
     * Declared (or inferred from data/fill segments) data memory size.
     * 0 means the file declared nothing and has no segments; such a
     * kernel can be analyzed but not sensibly executed.
     */
    std::uint64_t memBytes = 0;
    /** Suggested launch thread count; 0 when unspecified. */
    std::int64_t threads = 0;
    std::vector<AsmData> data{};
    std::vector<AsmFill> fills{};

    /** Apply the .data/.fill segments to a memory image. */
    void initMemory(Memory &mem) const;
};

/**
 * Assemble kernel text.
 *
 * On success returns the kernel and leaves `diags` empty. On failure
 * returns nullopt with at least one diagnostic; parsing continues past
 * recoverable errors so several problems can be reported at once.
 * Verifier errors (structural IR problems) also fail assembly.
 */
std::optional<AsmKernel> assemble(const std::string &text,
                                  std::vector<AsmDiag> &diags);

/** Assemble a `.dws` file; unreadable files yield a diagnostic. */
std::optional<AsmKernel> assembleFile(const std::string &path,
                                      std::vector<AsmDiag> &diags);

} // namespace dws

#endif // DWS_ISA_ASM_HH
