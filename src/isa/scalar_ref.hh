/**
 * @file
 * Golden scalar reference interpreter for the kernel IR.
 *
 * Executes a program one thread at a time, with no warps, no timing
 * model and no re-convergence machinery — just the architectural
 * semantics: zero-initialized registers, r0 = tid, r1 = thread count,
 * `evalAlu` arithmetic, aligned 64-bit memory accesses and a global
 * barrier that releases once every non-halted thread arrives.
 *
 * Because well-formed kernels only communicate across barriers, any
 * simulator configuration (conventional stack, every DWS scheme, slip)
 * must leave memory in exactly the state this interpreter computes.
 * That makes it the differential oracle for generated and hand-written
 * kernels alike: run the reference on a copy of the initial memory,
 * run the full simulator, and compare images word for word.
 */

#ifndef DWS_ISA_SCALAR_REF_HH
#define DWS_ISA_SCALAR_REF_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace dws {

class Memory;

/** Outcome of a scalar reference run. */
struct ScalarRefResult
{
    bool ok = false;
    /** Failure description (empty on success). */
    std::string error{};
    /** Total instructions executed across all threads. */
    std::uint64_t instrs = 0;
    /** FNV-1a hash of every thread's final register file, tid order. */
    std::uint64_t regHash = 0;
};

/**
 * Run the program to completion for numThreads threads, mutating mem.
 *
 * @param maxInstrs total instruction budget across all threads; runs
 *        exceeding it fail with an error (runaway-loop backstop).
 */
ScalarRefResult runScalarRef(const Program &prog, Memory &mem,
                             std::int64_t numThreads,
                             std::uint64_t maxInstrs = std::uint64_t(1)
                                                       << 28);

} // namespace dws

#endif // DWS_ISA_SCALAR_REF_HH
