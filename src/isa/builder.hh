/**
 * @file
 * KernelBuilder: an assembler-style API for authoring IR programs.
 *
 * Labels may be referenced before they are bound; build() patches all
 * forward references and runs the CFG analysis.
 */

#ifndef DWS_ISA_BUILDER_HH
#define DWS_ISA_BUILDER_HH

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "isa/program.hh"

namespace dws {

/** Incrementally builds a Program. */
class KernelBuilder
{
  public:
    /** Opaque label handle. */
    using Label = int;

    /** @return a fresh, unbound label. */
    Label newLabel();

    /** Bind a label to the current emission point. */
    void bind(Label l);

    /** @return the pc the next emitted instruction will occupy. */
    Pc here() const { return static_cast<Pc>(code.size()); }

    // --- three-register ALU ---------------------------------------
    void add(int rd, int ra, int rb) { emit3(Op::Add, rd, ra, rb); }
    void sub(int rd, int ra, int rb) { emit3(Op::Sub, rd, ra, rb); }
    void mul(int rd, int ra, int rb) { emit3(Op::Mul, rd, ra, rb); }
    void div(int rd, int ra, int rb) { emit3(Op::Div, rd, ra, rb); }
    void rem(int rd, int ra, int rb) { emit3(Op::Rem, rd, ra, rb); }
    void and_(int rd, int ra, int rb) { emit3(Op::And, rd, ra, rb); }
    void or_(int rd, int ra, int rb) { emit3(Op::Or, rd, ra, rb); }
    void xor_(int rd, int ra, int rb) { emit3(Op::Xor, rd, ra, rb); }
    void shl(int rd, int ra, int rb) { emit3(Op::Shl, rd, ra, rb); }
    void shr(int rd, int ra, int rb) { emit3(Op::Shr, rd, ra, rb); }
    void slt(int rd, int ra, int rb) { emit3(Op::Slt, rd, ra, rb); }
    void sle(int rd, int ra, int rb) { emit3(Op::Sle, rd, ra, rb); }
    void seq(int rd, int ra, int rb) { emit3(Op::Seq, rd, ra, rb); }
    void sne(int rd, int ra, int rb) { emit3(Op::Sne, rd, ra, rb); }
    void min(int rd, int ra, int rb) { emit3(Op::Min, rd, ra, rb); }
    void max(int rd, int ra, int rb) { emit3(Op::Max, rd, ra, rb); }

    // --- register-immediate ALU ------------------------------------
    void addi(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Addi, rd, ra, imm); }
    void muli(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Muli, rd, ra, imm); }
    void andi(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Andi, rd, ra, imm); }
    void shli(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Shli, rd, ra, imm); }
    void shri(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Shri, rd, ra, imm); }
    void slti(int rd, int ra, std::int64_t imm)
    { emitImm(Op::Slti, rd, ra, imm); }
    void movi(int rd, std::int64_t imm) { emitImm(Op::Movi, rd, 0, imm); }
    void mov(int rd, int ra) { emit3(Op::Mov, rd, ra, 0); }

    // --- memory -----------------------------------------------------
    /** rd = mem[ra + byteOff] */
    void ld(int rd, int ra, std::int64_t byteOff = 0)
    { emitImm(Op::Ld, rd, ra, byteOff); }
    /** mem[ra + byteOff] = rb */
    void st(int ra, int rb, std::int64_t byteOff = 0);

    // --- control ------------------------------------------------------
    /** if (ra != 0) goto l */
    void br(int ra, Label l);
    void jmp(Label l);
    void bar() { code.push_back(Instr{.op = Op::Bar}); }
    void halt() { code.push_back(Instr{.op = Op::Halt}); }
    void nop() { code.push_back(Instr{.op = Op::Nop}); }

    /**
     * Finalize into a Program. All labels referenced by emitted branches
     * must be bound, and the program must pass the static verifier
     * (analysis/verifier.hh): in particular the final instruction may
     * not fall through past the end of code. Exits with the collected
     * diagnostics on any error.
     *
     * @param name            kernel name
     * @param subdivThreshold branch-subdivision heuristic bound
     */
    Program build(std::string name, int subdivThreshold = 50);

    /**
     * Non-fatal variant of build(): patch labels, run the verifier and
     * report what it found instead of exiting.
     *
     * @param name            kernel name
     * @param diags           out: all diagnostics (errors and warnings)
     * @param subdivThreshold branch-subdivision heuristic bound
     * @return the Program, or nullopt if any diagnostic is an error
     */
    std::optional<Program> tryBuild(std::string name,
                                    std::vector<Diagnostic> &diags,
                                    int subdivThreshold = 50);

  private:
    void emit3(Op op, int rd, int ra, int rb);
    void emitImm(Op op, int rd, int ra, std::int64_t imm);

    std::vector<Instr> code;
    std::vector<Pc> labelPcs;            ///< bound pc or kPcUnknown
    std::vector<std::pair<Pc, Label>> fixups;
};

} // namespace dws

#endif // DWS_ISA_BUILDER_HH
