/**
 * @file
 * The kernel IR: a compact scalar register-machine instruction set.
 *
 * The paper runs Alpha binaries on MV5; we replace that with this IR,
 * which preserves everything the WPU model cares about: unit-latency ALU
 * ops, loads/stores with per-thread (gather/scatter) addresses,
 * conditional branches with immediate-post-dominator re-convergence, a
 * global barrier, and thread termination. Each thread has kNumRegs 64-bit
 * integer registers; at launch r0 = global thread id and r1 = total
 * thread count.
 */

#ifndef DWS_ISA_INSTR_HH
#define DWS_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace dws {

/** Operation codes of the kernel IR. */
enum class Op : std::uint8_t {
    Nop,

    // Three-register ALU: rd = ra <op> rb. All unit latency (paper 3.3).
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Slt,  ///< rd = (ra < rb)
    Sle,  ///< rd = (ra <= rb)
    Seq,  ///< rd = (ra == rb)
    Sne,  ///< rd = (ra != rb)
    Min, Max,

    // Register-immediate ALU: rd = ra <op> imm.
    Addi, Muli, Andi, Shli, Shri, Slti,

    Movi, ///< rd = imm
    Mov,  ///< rd = ra

    // Memory: 64-bit word loads/stores, per-thread addresses.
    Ld,   ///< rd = mem[ra + imm]
    St,   ///< mem[ra + imm] = rb

    // Control flow.
    Br,   ///< if (ra != 0) goto target
    Jmp,  ///< goto target
    Bar,  ///< global barrier across all kernel threads
    Halt, ///< thread terminates

    NumOps,
};

/** Instruction flag bits. */
enum InstrFlags : std::uint16_t {
    /**
     * Branch selected by the static heuristic of Section 4.3 as allowed
     * to subdivide a warp (post-dominator followed by a basic block of
     * at most subdivMaxPostBlock instructions).
     */
    kFlagSubdividable = 1 << 0,
};

/** One decoded IR instruction. */
struct Instr
{
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    Pc target = 0;          ///< branch/jump destination
    std::int64_t imm = 0;   ///< immediate operand / address offset
    std::uint16_t flags = 0;

    bool isBranch() const { return op == Op::Br; }
    bool isMem() const { return op == Op::Ld || op == Op::St; }
    bool isControl() const
    {
        return op == Op::Br || op == Op::Jmp || op == Op::Bar ||
               op == Op::Halt;
    }
    bool subdividable() const { return flags & kFlagSubdividable; }

    bool
    operator==(const Instr &o) const
    {
        return op == o.op && rd == o.rd && ra == o.ra && rb == o.rb &&
               target == o.target && imm == o.imm && flags == o.flags;
    }
    bool operator!=(const Instr &o) const { return !(*this == o); }
};

/** @return true if instructions with this opcode read register ra. */
bool opReadsRa(Op op);

/** @return true if instructions with this opcode read register rb. */
bool opReadsRb(Op op);

/** @return true if instructions with this opcode write register rd. */
bool opWritesRd(Op op);

/**
 * Evaluate a (non-memory, non-control) ALU operation.
 *
 * Division and remainder by zero yield zero so that data-dependent
 * kernels can never trap.
 *
 * @param op  the ALU opcode
 * @param a   value of ra
 * @param b   value of rb
 * @param imm immediate operand
 * @return the value written to rd
 */
std::int64_t evalAlu(Op op, std::int64_t a, std::int64_t b,
                     std::int64_t imm);

/** @return the mnemonic for an opcode. */
const char *opName(Op op);

/**
 * Inverse of opName: look an opcode up by its mnemonic.
 * @return Op::NumOps when the mnemonic is unknown.
 */
Op opFromName(const std::string &name);

} // namespace dws

#endif // DWS_ISA_INSTR_HH
