#include "isa/program.hh"

#include <utility>

#include "isa/cfg.hh"
#include "sim/logging.hh"

namespace dws {

Program::Program(std::vector<Instr> instrs, std::string name,
                 int subdivThreshold)
    : code(std::move(instrs)), progName(std::move(name)),
      threshold(subdivThreshold)
{
    for (size_t pc = 0; pc < code.size(); pc++) {
        const Instr &in = code[pc];
        if ((in.op == Op::Br || in.op == Op::Jmp) &&
            (in.target < 0 ||
             in.target > static_cast<Pc>(code.size()))) {
            fatal("program '%s': pc %zu has out-of-range target %d",
                  progName.c_str(), pc, in.target);
        }
    }
    CfgAnalysis::analyze(*this, subdivThreshold);
}

bool
Program::operator==(const Program &o) const
{
    if (progName != o.progName || threshold != o.threshold ||
        code != o.code) {
        return false;
    }
    for (Pc pc = 0; pc < size(); pc++) {
        if (at(pc).op != Op::Br)
            continue;
        if (branchInfo(pc) != o.branchInfo(pc))
            return false;
    }
    return true;
}

const BranchInfo &
Program::branchInfo(Pc pc) const
{
    if (pc < 0 || pc >= size() || at(pc).op != Op::Br)
        panic("branchInfo(%d) on non-branch in '%s'", pc, progName.c_str());
    return brInfo[static_cast<size_t>(pc)];
}

} // namespace dws
