#include "serve/retry.hh"

namespace dws {

namespace {

/** splitmix64: full-period scrambler, good enough for jitter. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint32_t
RetryPolicy::delayMs(int attempt, std::uint64_t salt) const
{
    if (attempt < 0)
        attempt = 0;
    std::uint64_t base = baseDelayMs;
    for (int i = 0; i < attempt && base < maxDelayMs; i++)
        base <<= 1;
    if (base > maxDelayMs)
        base = maxDelayMs;
    if (base == 0)
        return 0;
    const std::uint64_t half = base / 2;
    const std::uint64_t r =
            mix(mix(seed ^ salt) + static_cast<std::uint64_t>(attempt));
    // (base/2, base]: never zero, never above the envelope.
    return static_cast<std::uint32_t>(half + 1 +
                                      r % (base - half));
}

} // namespace dws
