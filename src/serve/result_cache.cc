#include "serve/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "serve/cache_key.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/stats.hh"

namespace fs = std::filesystem;

namespace dws {

namespace {

constexpr const char *kEntryHeader = "dwsrec v1";
constexpr const char *kEntrySuffix = ".dwsr";

/** Split on '\n', dropping a trailing empty segment. */
std::vector<std::string>
entryLines(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

ResultCache::ResultCache(std::string dir, std::size_t capEntries)
    : dirPath(std::move(dir)), capEntries(capEntries)
{
}

std::string
ResultCache::entryPath(std::uint64_t key) const
{
    return dirPath + "/" + keyHex(key) + kEntrySuffix;
}

std::string
ResultCache::encode(const Entry &entry)
{
    std::string s(kEntryHeader);
    s += '\n';
    s += "kernel=" + entry.kernel + '\n';
    s += "scale=" + entry.scale + '\n';
    s += "policy=" + entry.policy + '\n';
    s += "cycles=" + std::to_string(entry.cycles) + '\n';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "energy_nj=%.17g\n", entry.energyNj);
    s += buf;
    std::snprintf(buf, sizeof(buf), "wall_ms=%.17g\n", entry.wallMs);
    s += buf;
    s += "fingerprint=" + entry.fingerprint + '\n';
    return s;
}

bool
ResultCache::decode(const std::string &text, Entry &out)
{
    // The last line must be `sum=<hex>` over everything before it.
    const std::size_t sumAt = text.rfind("sum=");
    if (sumAt == std::string::npos || sumAt == 0 ||
        text[sumAt - 1] != '\n')
        return false;
    std::string sumTok = text.substr(sumAt + 4);
    while (!sumTok.empty() && sumTok.back() == '\n')
        sumTok.pop_back();
    const auto sum = parseUint64(("0x" + sumTok).c_str());
    if (!sum ||
        *sum != fnv1a(static_cast<const void *>(text.data()), sumAt))
        return false;

    Entry e;
    bool sawFingerprint = false;
    const std::vector<std::string> lines =
            entryLines(text.substr(0, sumAt));
    if (lines.empty() || lines[0] != kEntryHeader)
        return false;
    for (std::size_t i = 1; i < lines.size(); i++) {
        const std::size_t eq = lines[i].find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = lines[i].substr(0, eq);
        const std::string val = lines[i].substr(eq + 1);
        if (key == "kernel") {
            e.kernel = val;
        } else if (key == "scale") {
            e.scale = val;
        } else if (key == "policy") {
            e.policy = val;
        } else if (key == "cycles") {
            const auto v = parseUint64(val);
            if (!v)
                return false;
            e.cycles = *v;
        } else if (key == "energy_nj" || key == "wall_ms") {
            const auto v = parseFiniteDouble(val.c_str());
            if (!v)
                return false;
            (key == "energy_nj" ? e.energyNj : e.wallMs) = *v;
        } else if (key == "fingerprint") {
            e.fingerprint = val;
            sawFingerprint = true;
        } else {
            return false;
        }
    }
    // The fingerprint is the payload: an entry without a parsable one
    // cannot restore a RunStats and is useless (treated as corrupt).
    RunStats probe;
    if (!sawFingerprint || !RunStats::parseFingerprint(e.fingerprint,
                                                       probe))
        return false;
    out = std::move(e);
    return true;
}

bool
ResultCache::open(std::string &err)
{
    std::lock_guard<std::mutex> lock(mtx);
    std::error_code ec;
    fs::create_directories(dirPath, ec);
    if (ec) {
        err = "cannot create cache directory '" + dirPath +
              "': " + ec.message();
        return false;
    }
    // Index resident entries; recency is seeded from mtime so the LRU
    // order survives a daemon restart (oldest evicted first).
    struct Found
    {
        std::uint64_t key;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    for (const auto &de : fs::directory_iterator(dirPath, ec)) {
        const std::string name = de.path().filename().string();
        // A daemon killed between write and rename leaves a *.tmp
        // orphan that would otherwise accumulate forever; retire it.
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            std::error_code rec;
            fs::remove(de.path(), rec);
            continue;
        }
        if (name.size() != 16 + 5 ||
            name.substr(16) != kEntrySuffix)
            continue; // strangers are not entries
        const auto key = parseUint64(("0x" + name.substr(0, 16)).c_str());
        if (!key)
            continue;
        std::error_code fec;
        const auto size = de.file_size(fec);
        const auto mtime = de.last_write_time(fec);
        if (fec)
            continue;
        found.push_back(Found{*key, size, mtime});
    }
    if (ec) {
        err = "cannot scan cache directory '" + dirPath +
              "': " + ec.message();
        return false;
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime;
              });
    for (const Found &f : found) {
        lru.push_front(f.key); // newest ends up at the front
        index[f.key] = Resident{f.size, lru.begin()};
        stats.entries++;
        stats.bytes += f.size;
    }
    err.clear();
    return true;
}

void
ResultCache::touch(std::uint64_t key)
{
    auto it = index.find(key);
    if (it == index.end())
        return;
    lru.splice(lru.begin(), lru, it->second.lruIt);
}

bool
ResultCache::lookup(std::uint64_t key, Entry &out)
{
    std::lock_guard<std::mutex> lock(mtx);
    const auto it = index.find(key);
    if (it == index.end()) {
        stats.misses++;
        return false;
    }
    std::ifstream f(entryPath(key), std::ios::binary);
    std::ostringstream body;
    if (f.is_open())
        body << f.rdbuf();
    Entry e;
    if (!f.is_open() || !decode(body.str(), e)) {
        // Corrupt (or vanished) entry: drop it so the cell is
        // re-simulated and the next insert rewrites it cleanly.
        stats.corrupt++;
        stats.misses++;
        stats.entries--;
        stats.bytes -= it->second.sizeBytes;
        lru.erase(it->second.lruIt);
        index.erase(it);
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        return false;
    }
    stats.hits++;
    touch(key);
    out = std::move(e);
    return true;
}

void
ResultCache::evictIfNeeded()
{
    while (capEntries != 0 && index.size() > capEntries) {
        const std::uint64_t victim = lru.back();
        const auto it = index.find(victim);
        stats.evicted++;
        stats.entries--;
        stats.bytes -= it->second.sizeBytes;
        lru.pop_back();
        index.erase(it);
        std::error_code ec;
        fs::remove(entryPath(victim), ec);
    }
}

void
ResultCache::insert(std::uint64_t key, const Entry &entry)
{
    std::string body = encode(entry);
    body += "sum=" + keyHex(fnv1a(body)) + '\n';

    std::lock_guard<std::mutex> lock(mtx);
    const std::string path = entryPath(key);
    const std::string tmp = path + ".tmp";
    {
        // POSIX I/O instead of ofstream: the tmp file is fsync'd
        // before the rename, so a crash can leave an orphaned *.tmp
        // (swept at open()) but never a committed entry with missing
        // bytes.
        const int fd = ::open(tmp.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) {
            warn("result cache: cannot write '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            return;
        }
        std::size_t at = 0;
        bool ok = true;
        while (at < body.size()) {
            const ssize_t n = ::write(fd, body.data() + at,
                                      body.size() - at);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ok = false;
                break;
            }
            at += static_cast<std::size_t>(n);
        }
        if (ok && ::fsync(fd) != 0)
            ok = false;
        ::close(fd);
        if (!ok) {
            warn("result cache: short write to '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot commit '%s': %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return;
    }
    const auto it = index.find(key);
    if (it != index.end()) {
        stats.bytes -= it->second.sizeBytes;
        it->second.sizeBytes = body.size();
        stats.bytes += body.size();
        touch(key);
    } else {
        lru.push_front(key);
        index[key] = Resident{body.size(), lru.begin()};
        stats.entries++;
        stats.bytes += body.size();
    }
    stats.inserted++;
    evictIfNeeded();
}

std::uint64_t
ResultCache::flush()
{
    std::lock_guard<std::mutex> lock(mtx);
    std::uint64_t removed = 0;
    for (const auto &[key, res] : index) {
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        removed++;
    }
    index.clear();
    lru.clear();
    stats.entries = 0;
    stats.bytes = 0;
    return removed;
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return stats;
}

} // namespace dws
