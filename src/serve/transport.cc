#include "serve/transport.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dws {

namespace {

using Clock = std::chrono::steady_clock;

/** Monotonic deadline; negative ms means "never". */
struct Deadline
{
    explicit Deadline(int ms)
        : forever(ms < 0),
          at(forever ? Clock::time_point() :
                       Clock::now() + std::chrono::milliseconds(ms))
    {}

    /** Remaining time as a poll() timeout: -1 forever, >= 0 bounded. */
    int
    pollMs() const
    {
        if (forever)
            return -1;
        const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(at - Clock::now()).count();
        return left <= 0 ? 0 : static_cast<int>(left);
    }

    bool
    passed() const
    {
        return !forever && Clock::now() >= at;
    }

    bool forever;
    Clock::time_point at;
};

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** poll() one fd for `events` under a deadline; EINTR restarts with
 *  the remaining time, never the full timeout. @return true when the
 *  fd is ready, false when the deadline passed or poll failed. */
bool
pollFor(int fd, short events, const Deadline &dl)
{
    for (;;) {
        struct pollfd p = {fd, events, 0};
        const int r = ::poll(&p, 1, dl.pollMs());
        if (r > 0)
            return true;
        if (r == 0)
            return false;
        if (errno != EINTR)
            return false;
        if (dl.passed())
            return false;
    }
}

std::string
errnoStr()
{
    return std::strerror(errno);
}

} // namespace

std::string
ServeAddr::spec() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

bool
parseServeAddr(const std::string &spec, ServeAddr &out, std::string &err)
{
    std::string rest = spec;
    bool forcedTcp = false;
    if (rest.rfind("unix:", 0) == 0) {
        out.kind = ServeAddr::Kind::Unix;
        out.path = rest.substr(5);
        if (out.path.empty()) {
            err = "empty unix socket path in '" + spec + "'";
            return false;
        }
        return true;
    }
    if (rest.rfind("tcp:", 0) == 0) {
        forcedTcp = true;
        rest = rest.substr(4);
    }
    if (!forcedTcp && rest.find('/') != std::string::npos) {
        out.kind = ServeAddr::Kind::Unix;
        out.path = rest;
        return true;
    }
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
        if (forcedTcp) {
            err = "tcp address '" + spec + "' is not HOST:PORT";
            return false;
        }
        // No '/', no port: treat as a relative Unix socket path.
        out.kind = ServeAddr::Kind::Unix;
        out.path = rest;
        if (out.path.empty()) {
            err = "empty serve address";
            return false;
        }
        return true;
    }
    const std::string portStr = rest.substr(colon + 1);
    char *end = nullptr;
    const long port = std::strtol(portStr.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
        if (forcedTcp) {
            err = "bad port '" + portStr + "' in '" + spec + "'";
            return false;
        }
        out.kind = ServeAddr::Kind::Unix;
        out.path = rest;
        return true;
    }
    out.kind = ServeAddr::Kind::Tcp;
    out.host = rest.substr(0, colon);
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

int
listenOn(const ServeAddr &addr, std::string &err,
         std::uint16_t *boundPort)
{
    if (addr.kind == ServeAddr::Kind::Unix) {
        if (addr.path.size() >= sizeof(sockaddr_un::sun_path)) {
            err = "socket path too long: " + addr.path;
            return -1;
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            err = "socket(AF_UNIX): " + errnoStr();
            return -1;
        }
        ::unlink(addr.path.c_str());
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof sa.sun_path - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa), sizeof sa) !=
                    0 ||
            ::listen(fd, 64) != 0 || !setNonBlocking(fd)) {
            err = "bind/listen " + addr.spec() + ": " + errnoStr();
            ::close(fd);
            return -1;
        }
        return fd;
    }

    struct addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    const std::string portStr = std::to_string(addr.port);
    const char *node = addr.host.empty() ? nullptr : addr.host.c_str();
    const int gai = ::getaddrinfo(node, portStr.c_str(), &hints, &res);
    if (gai != 0) {
        err = "resolve " + addr.spec() + ": " + ::gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0 && setNonBlocking(fd))
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        err = "bind/listen " + addr.spec() + ": " + errnoStr();
        return -1;
    }
    if (boundPort != nullptr) {
        sockaddr_storage ss{};
        socklen_t len = sizeof ss;
        *boundPort = addr.port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss),
                          &len) == 0) {
            if (ss.ss_family == AF_INET)
                *boundPort = ntohs(
                        reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            else if (ss.ss_family == AF_INET6)
                *boundPort = ntohs(
                        reinterpret_cast<sockaddr_in6 *>(&ss)
                                ->sin6_port);
        }
    }
    return fd;
}

namespace {

/** Finish a nonblocking connect() under a deadline. */
bool
finishConnect(int fd, const Deadline &dl, std::string &err)
{
    if (!pollFor(fd, POLLOUT, dl)) {
        err = "connect timed out";
        return false;
    }
    int soErr = 0;
    socklen_t len = sizeof soErr;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) != 0) {
        err = errnoStr();
        return false;
    }
    if (soErr != 0) {
        err = std::strerror(soErr);
        return false;
    }
    return true;
}

} // namespace

int
connectToAddr(const ServeAddr &addr, int timeoutMs, std::string &err)
{
    const Deadline dl(timeoutMs);
    if (addr.kind == ServeAddr::Kind::Unix) {
        if (addr.path.size() >= sizeof(sockaddr_un::sun_path)) {
            err = addr.spec() + ": socket path too long";
            return -1;
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            err = addr.spec() + ": socket: " + errnoStr();
            return -1;
        }
        setNonBlocking(fd);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof sa.sun_path - 1);
        int r;
        do {
            r = ::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                          sizeof sa);
        } while (r != 0 && errno == EINTR);
        if (r != 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
            std::string why;
            if (finishConnect(fd, dl, why))
                r = 0;
            else {
                err = addr.spec() + ": " + why;
                ::close(fd);
                return -1;
            }
        }
        if (r != 0) {
            err = addr.spec() + ": " + errnoStr();
            ::close(fd);
            return -1;
        }
        return fd;
    }

    struct addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    const std::string portStr = std::to_string(addr.port);
    const int gai = ::getaddrinfo(addr.host.c_str(), portStr.c_str(),
                                  &hints, &res);
    if (gai != 0) {
        err = addr.spec() + ": resolve: " + ::gai_strerror(gai);
        return -1;
    }
    std::string lastErr = "no addresses";
    int fd = -1;
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = "socket: " + errnoStr();
            continue;
        }
        setNonBlocking(fd);
        int r;
        do {
            r = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        } while (r != 0 && errno == EINTR);
        if (r != 0 && errno == EINPROGRESS) {
            std::string why;
            if (finishConnect(fd, dl, why))
                r = 0;
            else
                lastErr = why;
        } else if (r != 0) {
            lastErr = errnoStr();
        }
        if (r == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        err = addr.spec() + ": " + lastErr;
        return -1;
    }
    return fd;
}

int
acceptConn(int listenFd)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            setNonBlocking(fd);
            const int one = 1;
            // Harmless ENOTSUP on a Unix-domain socket.
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            return fd;
        }
        if (errno == EINTR)
            continue;
        return -1;
    }
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

bool
constantTimeEq(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    unsigned diff = 0;
    for (std::size_t i = 0; i < a.size(); i++)
        diff |= static_cast<unsigned char>(a[i]) ^
                static_cast<unsigned char>(b[i]);
    return diff == 0;
}

FrameIo
readFrameDeadline(int fd, ServeFrame &out, int idleMs, int frameMs,
                  std::uint16_t *versionSeen)
{
    // The idle deadline governs the wait for the first byte of the
    // frame; from that byte on, the frame deadline applies (slow-loris
    // defense: a trickling peer cannot hold the connection open by
    // sending one byte per idle period).
    const Deadline idle(idleMs);
    bool started = false;
    Deadline frame(frameMs); // re-armed at the first byte
    const auto src = [&](std::uint8_t *buf,
                         std::size_t n) -> ssize_t {
        std::size_t got = 0;
        while (got < n) {
            const Deadline &dl = started ? frame : idle;
            const ssize_t r = ::recv(fd, buf + got, n - got, 0);
            if (r > 0) {
                if (!started) {
                    started = true;
                    frame = Deadline(frameMs);
                }
                got += static_cast<std::size_t>(r);
                continue;
            }
            if (r == 0)
                return static_cast<ssize_t>(got);
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                return -1;
            if (!pollFor(fd, POLLIN, dl))
                return started ? -3 : -2;
        }
        return static_cast<ssize_t>(got);
    };
    return readFrameFrom(src, out, versionSeen);
}

FrameIo
writeFrameDeadline(int fd, FrameType type,
                   const std::vector<std::uint8_t> &payload,
                   int deadlineMs)
{
    if (payload.size() > kMaxFramePayload)
        return FrameIo::IoError;
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    const Deadline dl(deadlineMs);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t r = ::send(fd, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (r > 0) {
            sent += static_cast<std::size_t>(r);
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
            return FrameIo::IoError;
        if (!pollFor(fd, POLLOUT, dl))
            return FrameIo::TimedOut;
    }
    return FrameIo::Ok;
}

} // namespace dws
