/**
 * @file
 * Content-addressed result-cache keys for the sweep service.
 *
 * A cached simulation result is addressed by one 64-bit FNV-1a hash
 * over everything that determines the result bit-exactly:
 *
 *   - the kernel identity: the registered name for built-in kernels
 *     (their code is part of the simulator binary, which the build
 *     fingerprint covers), or the hash of the `.dws` file bytes for IR
 *     kernels (so editing the file invalidates its cells);
 *   - the kernel input scale;
 *   - the canonical SystemConfig serialization (SystemConfig::cacheKey,
 *     which includes the expanded HierarchySpec, the policy, seed and
 *     fault spec);
 *   - the simulator build fingerprint, so results simulated by a
 *     semantically different simulator are never served.
 *
 * The same config-hash material keys the sweep journal, so `--resume`
 * and the serve cache agree on what "the same cell" means.
 */

#ifndef DWS_SERVE_CACHE_KEY_HH
#define DWS_SERVE_CACHE_KEY_HH

#include <cstdint>
#include <string>

#include "kernels/kernel.hh"
#include "sim/config.hh"

namespace dws {

/**
 * @return a fingerprint of the simulator build: the cache schema
 *         version plus the compiler identification. Bump
 *         kServeSchemaVersion whenever simulation semantics change so
 *         stale caches turn into misses instead of wrong answers.
 */
std::string serveBuildFingerprint();

/** @return "tiny" or "default". */
const char *kernelScaleName(KernelScale scale);

/**
 * @return the identity string of a kernel argument: "builtin:NAME" for
 *         registered kernels, "ir:<fnv1a of file bytes>" for IR files.
 *         Empty with a message in `err` when the argument names
 *         neither (unknown kernel, unreadable file).
 */
std::string kernelIdentity(const std::string &kernel, std::string &err);

/**
 * @return the full key material of one (kernel, config, scale) cell;
 *         hash with fnv1a() for the content address.
 */
std::string resultKeyText(const std::string &kernelId, KernelScale scale,
                          const std::string &configKey);

/** @return the 64-bit content address of one cell. */
std::uint64_t resultKey(const std::string &kernelId, KernelScale scale,
                        const std::string &configKey);

/** @return `key` as a fixed-width lowercase hex string. */
std::string keyHex(std::uint64_t key);

/**
 * @return the journal/config hash of one sweep cell: fnv1a over the
 *         config's canonical serialization and the scale. Shared by
 *         SweepExecutor::journalKey and the serve layer.
 */
std::uint64_t jobConfigHash(const SystemConfig &cfg, KernelScale scale);

} // namespace dws

#endif // DWS_SERVE_CACHE_KEY_HH
