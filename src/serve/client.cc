#include "serve/client.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/executor.hh"

namespace dws {

ServeClient::~ServeClient()
{
    close();
}

ServeClient::ServeClient(ServeClient &&other) noexcept : fd(other.fd)
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd = other.fd;
        other.fd = -1;
    }
    return *this;
}

void
ServeClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
ServeClient::connectTo(const std::string &socketPath, std::string &err)
{
    close();
    if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        err = "socket path too long: " + socketPath;
        return false;
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        err = "connect('" + socketPath + "'): " + std::strerror(errno);
        close();
        return false;
    }
    err.clear();
    return true;
}

bool
ServeClient::roundTrip(FrameType type,
                       const std::vector<std::uint8_t> &payload,
                       FrameType expect, ServeFrame &reply, std::string &err)
{
    if (fd < 0) {
        err = "not connected";
        return false;
    }
    if (!writeFrame(fd, type, payload)) {
        err = "serve: request write failed (daemon gone?)";
        close();
        return false;
    }
    const FrameIo io = readFrame(fd, reply);
    if (io != FrameIo::Ok) {
        err = std::string("serve: reply read failed (") +
              frameIoName(io) + ")";
        close();
        return false;
    }
    if (reply.type == FrameType::Error) {
        std::string message;
        if (!decodeError(reply.payload, message))
            message = "(malformed error frame)";
        err = "serve: daemon refused: " + message;
        close();
        return false;
    }
    if (reply.type != expect) {
        err = "serve: unexpected reply frame type " +
              std::to_string(static_cast<int>(reply.type));
        close();
        return false;
    }
    err.clear();
    return true;
}

bool
ServeClient::submitBatch(const std::vector<ServeJob> &jobs,
                         std::vector<ServeResult> &results,
                         std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::SubmitBatch, encodeSubmitBatch(jobs),
                   FrameType::SubmitReply, reply, err))
        return false;
    if (!decodeSubmitReply(reply.payload, results) ||
        results.size() != jobs.size()) {
        err = "serve: malformed SubmitReply payload";
        close();
        return false;
    }
    return true;
}

bool
ServeClient::status(ServeStatus &out, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::Status, {}, FrameType::StatusReply, reply,
                   err))
        return false;
    if (!decodeStatusReply(reply.payload, out)) {
        err = "serve: malformed StatusReply payload";
        close();
        return false;
    }
    return true;
}

bool
ServeClient::cacheStats(ServeCacheCounters &out, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::CacheStats, {}, FrameType::CacheStatsReply,
                   reply, err))
        return false;
    if (!decodeCacheStatsReply(reply.payload, out)) {
        err = "serve: malformed CacheStatsReply payload";
        close();
        return false;
    }
    return true;
}

bool
ServeClient::flushCache(std::uint64_t &removed, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::Flush, {}, FrameType::FlushReply, reply,
                   err))
        return false;
    if (!decodeFlushReply(reply.payload, removed)) {
        err = "serve: malformed FlushReply payload";
        close();
        return false;
    }
    return true;
}

bool
ServeClient::shutdownServer(std::string &err)
{
    ServeFrame reply;
    const bool ok = roundTrip(FrameType::Shutdown, {},
                              FrameType::ShutdownReply, reply, err);
    close();
    return ok;
}

ServeJob
makeServeJob(const SweepJob &job)
{
    ServeJob out;
    out.kernel = job.kernel;
    out.label = job.label;
    out.scale = job.scale == KernelScale::Tiny ? 0 : 1;
    out.configKey = job.cfg.cacheKey();
    return out;
}

} // namespace dws
