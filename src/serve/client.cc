#include "serve/client.hh"

#include <unistd.h>
#include <utility>

#include "harness/executor.hh"

namespace dws {

const char *
rpcStatusName(RpcStatus s)
{
    switch (s) {
      case RpcStatus::Ok:            return "ok";
      case RpcStatus::ConnectFailed: return "connect-failed";
      case RpcStatus::Busy:          return "busy";
      case RpcStatus::TimedOut:      return "timed-out";
      case RpcStatus::ProtocolError: return "protocol-error";
      case RpcStatus::Refused:       return "refused";
    }
    return "?";
}

ServeClient::~ServeClient()
{
    close();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : opts(std::move(other.opts)), fd(other.fd),
      status_(other.status_), busyHintMs(other.busyHintMs)
{
    other.fd = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        opts = std::move(other.opts);
        fd = other.fd;
        status_ = other.status_;
        busyHintMs = other.busyHintMs;
        other.fd = -1;
    }
    return *this;
}

void
ServeClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
ServeClient::connectTo(const std::string &spec, std::string &err)
{
    ServeAddr addr;
    if (!parseServeAddr(spec, addr, err)) {
        status_ = RpcStatus::ConnectFailed;
        return false;
    }
    return connectTo(addr, err);
}

bool
ServeClient::connectTo(const ServeAddr &addr, std::string &err)
{
    close();
    fd = connectToAddr(addr, opts.connectTimeoutMs, err);
    if (fd < 0) {
        status_ = RpcStatus::ConnectFailed;
        return false;
    }
    if (!opts.authToken.empty()) {
        ServeFrame reply;
        if (!roundTrip(FrameType::Auth, encodeAuth(opts.authToken),
                       FrameType::AuthReply, reply, err)) {
            status_ = RpcStatus::ConnectFailed;
            return false;
        }
        bool accepted = false;
        if (!decodeAuthReply(reply.payload, accepted) || !accepted) {
            err = addr.spec() + ": auth token rejected";
            status_ = RpcStatus::ConnectFailed;
            close();
            return false;
        }
    }
    status_ = RpcStatus::Ok;
    err.clear();
    return true;
}

bool
ServeClient::roundTrip(FrameType type,
                       const std::vector<std::uint8_t> &payload,
                       FrameType expect, ServeFrame &reply,
                       std::string &err)
{
    if (fd < 0) {
        err = "not connected";
        status_ = RpcStatus::ConnectFailed;
        return false;
    }
    const FrameIo wr =
            writeFrameDeadline(fd, type, payload, opts.rpcTimeoutMs);
    if (wr != FrameIo::Ok) {
        err = std::string("serve: request write failed (") +
              frameIoName(wr) + ")";
        status_ = wr == FrameIo::TimedOut ? RpcStatus::TimedOut :
                                            RpcStatus::ProtocolError;
        close();
        return false;
    }
    const FrameIo io = readFrameDeadline(fd, reply, opts.rpcTimeoutMs,
                                         opts.rpcTimeoutMs);
    if (io != FrameIo::Ok) {
        err = std::string("serve: reply read failed (") +
              frameIoName(io) + ")";
        status_ = (io == FrameIo::TimedOut ||
                   io == FrameIo::IdleTimeout) ?
                          RpcStatus::TimedOut :
                          RpcStatus::ProtocolError;
        close();
        return false;
    }
    if (reply.type == FrameType::Busy) {
        std::string message;
        std::uint32_t hint = 0;
        if (!decodeBusy(reply.payload, message, hint))
            message = "(malformed busy frame)";
        err = "serve: daemon busy: " + message;
        busyHintMs = hint;
        status_ = RpcStatus::Busy;
        // Backpressure, not a broken stream: keep the connection.
        return false;
    }
    if (reply.type == FrameType::Error) {
        std::string message;
        if (!decodeError(reply.payload, message))
            message = "(malformed error frame)";
        err = "serve: daemon refused: " + message;
        status_ = RpcStatus::Refused;
        close();
        return false;
    }
    if (reply.type != expect) {
        err = "serve: unexpected reply frame type " +
              std::to_string(static_cast<int>(reply.type));
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    status_ = RpcStatus::Ok;
    err.clear();
    return true;
}

bool
ServeClient::submitBatch(const std::vector<ServeJob> &jobs,
                         std::vector<ServeResult> &results,
                         std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::SubmitBatch, encodeSubmitBatch(jobs),
                   FrameType::SubmitReply, reply, err))
        return false;
    if (!decodeSubmitReply(reply.payload, results) ||
        results.size() != jobs.size()) {
        err = "serve: malformed SubmitReply payload";
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    return true;
}

bool
ServeClient::status(ServeStatus &out, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::Status, {}, FrameType::StatusReply, reply,
                   err))
        return false;
    if (!decodeStatusReply(reply.payload, out)) {
        err = "serve: malformed StatusReply payload";
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    return true;
}

bool
ServeClient::health(ServeHealth &out, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::Health, {}, FrameType::HealthReply, reply,
                   err))
        return false;
    if (!decodeHealthReply(reply.payload, out)) {
        err = "serve: malformed HealthReply payload";
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    return true;
}

bool
ServeClient::cacheStats(ServeCacheCounters &out, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::CacheStats, {}, FrameType::CacheStatsReply,
                   reply, err))
        return false;
    if (!decodeCacheStatsReply(reply.payload, out)) {
        err = "serve: malformed CacheStatsReply payload";
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    return true;
}

bool
ServeClient::flushCache(std::uint64_t &removed, std::string &err)
{
    ServeFrame reply;
    if (!roundTrip(FrameType::Flush, {}, FrameType::FlushReply, reply,
                   err))
        return false;
    if (!decodeFlushReply(reply.payload, removed)) {
        err = "serve: malformed FlushReply payload";
        status_ = RpcStatus::ProtocolError;
        close();
        return false;
    }
    return true;
}

bool
ServeClient::shutdownServer(std::string &err)
{
    ServeFrame reply;
    const bool ok = roundTrip(FrameType::Shutdown, {},
                              FrameType::ShutdownReply, reply, err);
    close();
    return ok;
}

ServeJob
makeServeJob(const SweepJob &job)
{
    ServeJob out;
    out.kernel = job.kernel;
    out.label = job.label;
    out.scale = job.scale == KernelScale::Tiny ? 0 : 1;
    out.configKey = job.cfg.cacheKey();
    return out;
}

} // namespace dws
