/**
 * @file
 * Bounded retry with deterministic jittered exponential backoff
 * (DESIGN.md §17). The delay for a given (seed, salt, attempt) is a
 * pure function — no wall clock, no global RNG — so tests and the
 * chaos campaign can assert exact schedules, and two clients with
 * different salts (e.g. their PIDs) never thundering-herd in step.
 *
 * Delay for attempt k (0-based count of *failures so far*):
 *
 *   base = baseDelayMs << k, capped at maxDelayMs
 *   delay = base/2 + uniform(0, base/2]   ("equal jitter")
 *
 * so the delay is always in (base/2, base], preserving the exponential
 * envelope while decorrelating concurrent clients.
 */

#ifndef DWS_SERVE_RETRY_HH
#define DWS_SERVE_RETRY_HH

#include <cstdint>

namespace dws {

/** Retry schedule of one logical RPC. */
struct RetryPolicy
{
    /** Total tries including the first (1 = no retry). */
    int maxAttempts = 4;
    /** First-retry backoff base in milliseconds. */
    std::uint32_t baseDelayMs = 50;
    /** Upper bound on the exponential base. */
    std::uint32_t maxDelayMs = 2000;
    /** Jitter seed; same (seed, salt, attempt) -> same delay. */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;

    /**
     * @param attempt  failures so far (0 -> delay before 2nd try)
     * @param salt     per-client decorrelator (PID, connection id, …)
     * @return the jittered backoff in ms, in (base/2, base]
     */
    std::uint32_t delayMs(int attempt, std::uint64_t salt) const;
};

} // namespace dws

#endif // DWS_SERVE_RETRY_HH
