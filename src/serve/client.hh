/**
 * @file
 * Client side of the sweep service (DESIGN.md §16).
 *
 * ServeClient wraps one connection to a dws_serve daemon: connect to
 * the Unix-domain socket, speak the frame protocol (serve/protocol.hh),
 * and expose each request/reply pair as a blocking call. Benches use it
 * through SweepExecutor::setServe (one client per worker thread);
 * tools/dws_client uses it directly for status/stats/flush/shutdown and
 * for rendering figure tables from served cells.
 */

#ifndef DWS_SERVE_CLIENT_HH
#define DWS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace dws {

struct SweepJob;

/** One blocking connection to a dws_serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /**
     * Connect to the daemon at `socketPath`.
     * @return false with a message in `err` when the socket cannot be
     *         reached (no daemon, wrong path, permission).
     */
    bool connectTo(const std::string &socketPath, std::string &err);

    /** @return true while the connection is usable. */
    bool connected() const { return fd >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /**
     * Submit a batch and wait for the matching SubmitReply.
     * @return true and fill `results` (submission order, one per job);
     *         false with `err` on any protocol or transport failure —
     *         the connection is closed and must be re-established.
     */
    bool submitBatch(const std::vector<ServeJob> &jobs,
                     std::vector<ServeResult> &results, std::string &err);

    /** Fetch the daemon status snapshot. */
    bool status(ServeStatus &out, std::string &err);

    /** Fetch the result-cache counters. */
    bool cacheStats(ServeCacheCounters &out, std::string &err);

    /** Flush the result cache. @return removed count in `removed`. */
    bool flushCache(std::uint64_t &removed, std::string &err);

    /**
     * Ask the daemon to shut down. The daemon replies first, then
     * stops accepting; this client is closed afterwards either way.
     */
    bool shutdownServer(std::string &err);

  private:
    /** Send `type`+`payload`, read one frame, expect `expect`. */
    bool roundTrip(FrameType type,
                   const std::vector<std::uint8_t> &payload,
                   FrameType expect, ServeFrame &reply, std::string &err);

    int fd = -1;
};

/**
 * @return `job` converted to its wire form: kernel/label verbatim,
 *         scale as u8, config as SystemConfig::cacheKey().
 */
ServeJob makeServeJob(const SweepJob &job);

} // namespace dws

#endif // DWS_SERVE_CLIENT_HH
