/**
 * @file
 * Client side of the sweep service (DESIGN.md §16–17).
 *
 * ServeClient wraps one connection to a dws_serve daemon: connect to a
 * Unix-domain or TCP endpoint (serve/transport.hh), speak the frame
 * protocol, and expose each request/reply pair as a blocking call with
 * explicit deadlines. Benches use it through SweepExecutor::setServe
 * (one client per worker thread, with retry/backoff and local
 * fallback); tools/dws_client uses it directly.
 *
 * Failure discipline: every RPC classifies its failure in lastStatus().
 * A Busy reply leaves the connection OPEN (the server refused the
 * request but the stream is intact — retry on it after the hint in
 * busyRetryAfterMs()); every other failure closes the connection, and
 * idempotent requests (cache-keyed job submission) are safe to replay
 * on a fresh one.
 */

#ifndef DWS_SERVE_CLIENT_HH
#define DWS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/transport.hh"

namespace dws {

struct SweepJob;

/** How the last RPC on a ServeClient ended. */
enum class RpcStatus {
    Ok,
    /** connect()/resolve/auth-handshake failure — daemon unreachable. */
    ConnectFailed,
    /** Server refused with Busy; the connection is still open. */
    Busy,
    /** The RPC missed its deadline (half-open or stalled peer). */
    TimedOut,
    /** Transport/framing failure: bad frame, unexpected type, EOF. */
    ProtocolError,
    /** Server answered Error and closed (version/auth/bad request). */
    Refused,
};

/** @return printable RpcStatus name for diagnostics. */
const char *rpcStatusName(RpcStatus s);

/** Connection/deadline knobs of one ServeClient. */
struct ClientOptions
{
    /** Bound on connect()+auth; < 0 waits forever. */
    int connectTimeoutMs = 5000;
    /** Per-RPC bound (request write + reply read); < 0 forever. */
    int rpcTimeoutMs = 300000;
    /** Pre-shared token; empty skips the Auth handshake. */
    std::string authToken;
};

/** One blocking connection to a dws_serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    explicit ServeClient(ClientOptions o) : opts(std::move(o)) {}
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /** Options take effect at the next connectTo()/RPC. */
    void setOptions(ClientOptions o) { opts = std::move(o); }
    const ClientOptions &options() const { return opts; }

    /**
     * Connect to the daemon at `spec` (unix:PATH, tcp:HOST:PORT, a
     * bare path, or HOST:PORT — see parseServeAddr), then run the
     * Auth handshake when an authToken is set.
     * @return false with the target address and errno string in `err`.
     */
    bool connectTo(const std::string &spec, std::string &err);
    bool connectTo(const ServeAddr &addr, std::string &err);

    /** @return true while the connection is usable. */
    bool connected() const { return fd >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /** Classification of the most recent RPC/connect failure. */
    RpcStatus lastStatus() const { return status_; }
    /** Server's retry-after hint from the last Busy reply (ms). */
    std::uint32_t busyRetryAfterMs() const { return busyHintMs; }

    /**
     * Submit a batch and wait for the matching SubmitReply.
     * @return true and fill `results` (submission order, one per job);
     *         false with `err` otherwise. On Busy the connection stays
     *         open; on any other failure it is closed.
     */
    bool submitBatch(const std::vector<ServeJob> &jobs,
                     std::vector<ServeResult> &results, std::string &err);

    /** Fetch the daemon status snapshot. */
    bool status(ServeStatus &out, std::string &err);

    /** Fetch the overload/health snapshot. */
    bool health(ServeHealth &out, std::string &err);

    /** Fetch the result-cache counters. */
    bool cacheStats(ServeCacheCounters &out, std::string &err);

    /** Flush the result cache. @return removed count in `removed`. */
    bool flushCache(std::uint64_t &removed, std::string &err);

    /**
     * Ask the daemon to shut down. The daemon replies first, then
     * stops accepting; this client is closed afterwards either way.
     */
    bool shutdownServer(std::string &err);

  private:
    /** Send `type`+`payload`, read one frame, expect `expect`. */
    bool roundTrip(FrameType type,
                   const std::vector<std::uint8_t> &payload,
                   FrameType expect, ServeFrame &reply, std::string &err);

    ClientOptions opts;
    int fd = -1;
    RpcStatus status_ = RpcStatus::Ok;
    std::uint32_t busyHintMs = 0;
};

/**
 * @return `job` converted to its wire form: kernel/label verbatim,
 *         scale as u8, config as SystemConfig::cacheKey().
 */
ServeJob makeServeJob(const SweepJob &job);

} // namespace dws

#endif // DWS_SERVE_CLIENT_HH
