#include "serve/cache_key.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "kernels/irfile.hh"

namespace dws {

/**
 * Result-cache schema version. Part of every cache key: bump it when
 * simulation semantics, RunStats::fingerprint() or the canonical
 * config serialization change, so entries written by an older
 * simulator become misses instead of wrong answers.
 */
static constexpr int kServeSchemaVersion = 1;

std::string
serveBuildFingerprint()
{
    std::string id = "dws-serve-schema-" +
                     std::to_string(kServeSchemaVersion);
#ifdef __VERSION__
    id += " compiler:" __VERSION__;
#endif
    return keyHex(fnv1a(id));
}

const char *
kernelScaleName(KernelScale scale)
{
    return scale == KernelScale::Tiny ? "tiny" : "default";
}

std::string
kernelIdentity(const std::string &kernel, std::string &err)
{
    const auto &known = kernelNames();
    if (std::find(known.begin(), known.end(), kernel) != known.end()) {
        err.clear();
        return "builtin:" + kernel;
    }
    if (!looksLikeIrFile(kernel)) {
        err = "unknown kernel '" + kernel + "'";
        return "";
    }
    std::ifstream f(kernel, std::ios::binary);
    if (!f.is_open()) {
        err = "cannot read kernel file '" + kernel + "'";
        return "";
    }
    std::ostringstream body;
    body << f.rdbuf();
    err.clear();
    return "ir:" + keyHex(fnv1a(body.str()));
}

std::string
resultKeyText(const std::string &kernelId, KernelScale scale,
              const std::string &configKey)
{
    std::string s = "dwskey v1\n";
    s += "build=" + serveBuildFingerprint() + '\n';
    s += "kernel=" + kernelId + '\n';
    s += "scale=";
    s += kernelScaleName(scale);
    s += '\n';
    s += configKey;
    return s;
}

std::uint64_t
resultKey(const std::string &kernelId, KernelScale scale,
          const std::string &configKey)
{
    return fnv1a(resultKeyText(kernelId, scale, configKey));
}

std::string
keyHex(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)key);
    return buf;
}

std::uint64_t
jobConfigHash(const SystemConfig &cfg, KernelScale scale)
{
    return fnv1a(std::string(kernelScaleName(scale)),
                 fnv1a(cfg.cacheKey()));
}

} // namespace dws
