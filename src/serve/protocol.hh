/**
 * @file
 * Versioned, length-prefixed binary frame protocol of the sweep
 * service (DESIGN.md §16).
 *
 * Every message is one frame on a Unix-domain or TCP stream socket:
 *
 *   offset  size  field
 *        0     4  magic "DWSV" (0x44575356, little-endian u32)
 *        4     2  protocol version (kServeVersion)
 *        6     2  frame type (FrameType)
 *        8     4  payload length in bytes (<= kMaxFramePayload)
 *       12     4  checksum: low 32 bits of FNV-1a over header bytes
 *                 [4,12) followed by the payload — a frame whose bytes
 *                 were corrupted in transit is *detected* (BadChecksum)
 *                 rather than decoded into plausible garbage
 *       16     N  payload
 *
 * Payloads are built with WireWriter/WireReader: little-endian
 * fixed-width integers, doubles as their IEEE-754 bit pattern, strings
 * as u32 length + bytes. The reader is bounds-checked: any over-read
 * poisons it (ok() == false) instead of touching memory out of range,
 * so a malformed payload can never crash the daemon.
 *
 * The request/reply vocabulary (task/reply records batched per frame,
 * after the PIM-base task_base/driver batching exemplar):
 *
 *   SubmitBatch  N jobs in one frame -> SubmitReply with N results in
 *                submission order (each flagged cache-hit or simulated)
 *   Status       -> StatusReply (workers, jobs served, cache dir, build)
 *   CacheStats   -> CacheStatsReply (entries/bytes/hits/misses/...)
 *   Flush        -> FlushReply (entries removed)
 *   Shutdown     -> ShutdownReply, then the daemon exits its loop
 *   Auth         pre-shared token -> AuthReply; on a daemon started
 *                with a token, an unauthenticated connection may only
 *                Auth and Status (DESIGN.md §17)
 *   Health       -> HealthReply (connections, in-flight jobs,
 *                admission headroom, drain state, cache counters)
 *   Busy         server -> client: overload backpressure — the request
 *                was *refused*, not dropped; carries a retry-after
 *                hint. The connection stays open (retry on it).
 *   Error        server -> client: version mismatch or a request the
 *                server refuses; the connection closes after it
 */

#ifndef DWS_SERVE_PROTOCOL_HH
#define DWS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace dws {

/** "DWSV" little-endian. */
constexpr std::uint32_t kServeMagic = 0x56535744u;
/** Protocol version; a mismatching client gets Error and a close.
 *  v2: 16-byte header with a payload checksum, Auth/Health/Busy. */
constexpr std::uint16_t kServeVersion = 2;
/** Upper bound on one frame's payload (sanity cap, not a target). */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;
/** Bytes of the v2 frame header. */
constexpr std::size_t kFrameHeaderBytes = 16;

/** Frame type tags (u16 on the wire). */
enum class FrameType : std::uint16_t {
    SubmitBatch = 1,
    SubmitReply = 2,
    Status = 3,
    StatusReply = 4,
    CacheStats = 5,
    CacheStatsReply = 6,
    Flush = 7,
    FlushReply = 8,
    Shutdown = 9,
    ShutdownReply = 10,
    Error = 11,
    Auth = 12,
    AuthReply = 13,
    Busy = 14,
    Health = 15,
    HealthReply = 16,
};

/** One decoded frame of the serve protocol. */
struct ServeFrame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

/** Why readFrame() did not produce a frame. */
enum class FrameIo {
    Ok,
    /** Clean EOF on the frame boundary (peer closed politely). */
    Eof,
    /** Stream ended inside a header or payload. */
    Truncated,
    /** Header magic is not kServeMagic — not our protocol. */
    BadMagic,
    /** Magic ok, version is not kServeVersion. */
    BadVersion,
    /** Length prefix exceeds kMaxFramePayload. */
    Oversized,
    /** Header/payload bytes do not match the header checksum. */
    BadChecksum,
    /** read()/write() failed (errno-level). */
    IoError,
    /** No byte arrived within the idle deadline (deadline I/O only). */
    IdleTimeout,
    /** A started frame/write missed its deadline (deadline I/O only). */
    TimedOut,
};

/** @return printable FrameIo name for diagnostics. */
const char *frameIoName(FrameIo r);

/**
 * Read one frame from `fd` (blocking, EINTR-safe).
 * On BadVersion the header was fully read and `versionSeen` reports
 * the peer's version so the server can answer with Error before
 * closing.
 */
FrameIo readFrame(int fd, ServeFrame &out, std::uint16_t *versionSeen = nullptr);

/** Write one frame to `fd`. @return false on any write failure. */
bool writeFrame(int fd, FrameType type,
                const std::vector<std::uint8_t> &payload);

/**
 * @return the complete wire bytes of one frame (sealed v2 header +
 *         payload) — for tests and byte-level tooling that need to
 *         mutate a frame before sending it.
 */
std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      const std::vector<std::uint8_t> &payload);

/**
 * Frame parse over an arbitrary byte source, so the blocking and the
 * deadline transports share one header/checksum state machine. The
 * source must behave like a read-exactly loop: return n on success,
 * 0 on clean EOF before any byte, a short count when the stream ends
 * mid-object, -1 on I/O error, -2 when the idle deadline passed before
 * the first byte, -3 when a frame deadline passed mid-frame.
 */
FrameIo readFrameFrom(
        const std::function<ssize_t(std::uint8_t *, std::size_t)> &src,
        ServeFrame &out, std::uint16_t *versionSeen = nullptr);

/** Append-only little-endian payload builder. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }
    void u16(std::uint16_t v) { le(v, 2); }
    void u32(std::uint32_t v) { le(v, 4); }
    void u64(std::uint64_t v) { le(v, 8); }
    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    void
    le(std::uint64_t v, int n)
    {
        for (int i = 0; i < n; i++)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked payload reader. Every accessor returns a value only
 * while ok(); the first out-of-range read latches ok() false and
 * yields zeros/empties from then on.
 */
class WireReader
{
  public:
    explicit WireReader(const std::vector<std::uint8_t> &payload)
        : data(payload.data()), size(payload.size())
    {}

    std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
    std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
    std::uint64_t u64() { return le(8); }
    double
    f64()
    {
        const std::uint64_t bits = le(8);
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!good || size - at < n) {
            good = false;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(data + at), n);
        at += n;
        return s;
    }

    /** @return true while every read so far was in range. */
    bool ok() const { return good; }
    /** @return true when ok() and the whole payload was consumed. */
    bool done() const { return good && at == size; }

  private:
    std::uint64_t
    le(int n)
    {
        if (!good || size - at < static_cast<std::size_t>(n)) {
            good = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < n; i++)
            v |= static_cast<std::uint64_t>(data[at + i]) << (8 * i);
        at += static_cast<std::size_t>(n);
        return v;
    }

    const std::uint8_t *data;
    std::size_t size;
    std::size_t at = 0;
    bool good = true;
};

// --------------------------------------------------------------------
// Typed payload records shared by server and client
// --------------------------------------------------------------------

/** One job of a SubmitBatch frame. */
struct ServeJob
{
    /** Registered kernel name or a .dws file path (daemon-resolved). */
    std::string kernel;
    /** Row label carried into the daemon's records. */
    std::string label;
    /** KernelScale as u8 (0 tiny, 1 default). */
    std::uint8_t scale = 1;
    /** SystemConfig::cacheKey() canonical serialization. */
    std::string configKey;
};

/** One result of a SubmitReply frame, in submission order. */
struct ServeResult
{
    /** simOutcomeName() of the cell ("ok" when healthy). */
    std::string outcome = "ok";
    /** Abort/validation/dispatch error message (empty when ok). */
    std::string error;
    /** Policy name of the executed config. */
    std::string policy;
    std::uint64_t cycles = 0;
    double energyNj = 0.0;
    /** Daemon-side wall time: the original simulation for a miss,
     *  the lookup for a hit. */
    double wallMs = 0.0;
    /** True when the result came from the cache, not a simulation. */
    bool cached = false;
    /** RunStats::fingerprint() (empty unless outcome "ok"). */
    std::string fingerprint;

    bool ok() const { return outcome == "ok"; }
};

/** StatusReply payload. */
struct ServeStatus
{
    std::uint32_t workers = 0;
    std::uint64_t batches = 0;
    std::uint64_t jobs = 0;
    std::string cacheDir;
    std::string buildFingerprint;
};

/** CacheStatsReply payload. */
struct ServeCacheCounters
{
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserted = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t evicted = 0;
    std::string dir;
};

/** HealthReply payload (DESIGN.md §17 overload control). */
struct ServeHealth
{
    /** Open connections (including the one asking). */
    std::uint32_t activeConns = 0;
    /** Jobs admitted and not yet finished, fleet-wide. */
    std::uint32_t inFlightJobs = 0;
    /** Admission cap (inFlight + batch > cap -> Busy). */
    std::uint32_t admissionCap = 0;
    /** Nonzero once the daemon refuses new work (drain mode). */
    std::uint8_t draining = 0;
    /** Batches refused with Busy since start. */
    std::uint64_t busyRejected = 0;
    std::uint64_t batches = 0;
    std::uint64_t jobs = 0;
    ServeCacheCounters cache;
};

/** Encode/decode SubmitBatch (u32 count + records). */
std::vector<std::uint8_t> encodeSubmitBatch(
        const std::vector<ServeJob> &jobs);
bool decodeSubmitBatch(const std::vector<std::uint8_t> &payload,
                       std::vector<ServeJob> &out);

/** Encode/decode SubmitReply (u32 count + records). */
std::vector<std::uint8_t> encodeSubmitReply(
        const std::vector<ServeResult> &results);
bool decodeSubmitReply(const std::vector<std::uint8_t> &payload,
                       std::vector<ServeResult> &out);

std::vector<std::uint8_t> encodeStatusReply(const ServeStatus &s);
bool decodeStatusReply(const std::vector<std::uint8_t> &payload,
                       ServeStatus &out);

std::vector<std::uint8_t> encodeCacheStatsReply(
        const ServeCacheCounters &c);
bool decodeCacheStatsReply(const std::vector<std::uint8_t> &payload,
                           ServeCacheCounters &out);

/** Error frame: one string. */
std::vector<std::uint8_t> encodeError(const std::string &message);
bool decodeError(const std::vector<std::uint8_t> &payload,
                 std::string &out);

/** FlushReply: u64 removed-entry count. */
std::vector<std::uint8_t> encodeFlushReply(std::uint64_t removed);
bool decodeFlushReply(const std::vector<std::uint8_t> &payload,
                      std::uint64_t &out);

/** Auth: the pre-shared token. */
std::vector<std::uint8_t> encodeAuth(const std::string &token);
bool decodeAuth(const std::vector<std::uint8_t> &payload,
                std::string &out);

/** AuthReply: u8 accepted flag. */
std::vector<std::uint8_t> encodeAuthReply(bool ok);
bool decodeAuthReply(const std::vector<std::uint8_t> &payload,
                     bool &ok);

/** Busy: reason string + retry-after hint in milliseconds. */
std::vector<std::uint8_t> encodeBusy(const std::string &message,
                                     std::uint32_t retryAfterMs);
bool decodeBusy(const std::vector<std::uint8_t> &payload,
                std::string &message, std::uint32_t &retryAfterMs);

std::vector<std::uint8_t> encodeHealthReply(const ServeHealth &h);
bool decodeHealthReply(const std::vector<std::uint8_t> &payload,
                       ServeHealth &out);

} // namespace dws

#endif // DWS_SERVE_PROTOCOL_HH
