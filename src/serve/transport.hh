/**
 * @file
 * Transport layer of the sweep service (DESIGN.md §17): one address
 * abstraction over Unix-domain and TCP stream sockets, plus
 * deadline-bounded framed I/O so neither side of a connection can be
 * parked forever by a slow, dead or half-open peer.
 *
 * Address specs (parseServeAddr):
 *
 *   unix:/run/dws.sock   explicit Unix-domain socket
 *   /run/dws.sock        any spec containing '/' is a Unix path
 *   tcp:host:port        explicit TCP
 *   host:port            HOST:PORT with a numeric port is TCP
 *
 * All fds produced here are O_NONBLOCK; I/O readiness is awaited with
 * poll() under an explicit deadline, and every read/write loop is
 * EINTR- and partial-transfer-correct. TCP listeners get SO_REUSEADDR,
 * TCP connections get TCP_NODELAY (the protocol is request/reply with
 * small frames; Nagle only adds latency).
 */

#ifndef DWS_SERVE_TRANSPORT_HH
#define DWS_SERVE_TRANSPORT_HH

#include <cstdint>
#include <string>

#include "serve/protocol.hh"

namespace dws {

/** One parsed service address: a Unix socket path or a TCP endpoint. */
struct ServeAddr
{
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    /** Unix-domain socket path (Kind::Unix). */
    std::string path;
    /** Host name or numeric address (Kind::Tcp). */
    std::string host;
    /** TCP port; 0 asks the kernel for an ephemeral port. */
    std::uint16_t port = 0;

    /** @return the canonical spec string ("unix:…" / "tcp:host:port"). */
    std::string spec() const;
};

/**
 * Parse an address spec (grammar in the file header).
 * @return false with a message in `err` on a malformed spec.
 */
bool parseServeAddr(const std::string &spec, ServeAddr &out,
                    std::string &err);

/**
 * Bind + listen on `addr` (a stale Unix socket file is replaced; TCP
 * listeners are SO_REUSEADDR). The returned fd is O_NONBLOCK.
 * @param boundPort with a TCP addr of port 0, receives the kernel-
 *                  assigned port (may be null)
 * @return the listen fd, or -1 with a message in `err`.
 */
int listenOn(const ServeAddr &addr, std::string &err,
             std::uint16_t *boundPort = nullptr);

/**
 * Connect to `addr` with a bounded wait (nonblocking connect + poll).
 * The returned fd is O_NONBLOCK, TCP_NODELAY for TCP.
 * @return the connected fd, or -1 with the target address and errno
 *         string in `err`.
 */
int connectToAddr(const ServeAddr &addr, int timeoutMs, std::string &err);

/**
 * Accept one connection from a nonblocking listen fd (EINTR/EAGAIN
 * handled by the caller's poll loop). The returned fd is O_NONBLOCK.
 * @return the fd, or -1 with errno preserved.
 */
int acceptConn(int listenFd);

/**
 * Ignore SIGPIPE process-wide: a write to a dead peer must surface as
 * an error return at the call site, never kill the process. Idempotent;
 * call early in every binary that touches the serve layer.
 */
void ignoreSigpipe();

/**
 * @return true iff `a` == `b`, in time dependent only on the lengths —
 *         never on the position of the first mismatch — so the auth
 *         token cannot be guessed byte-by-byte from response timing.
 */
bool constantTimeEq(const std::string &a, const std::string &b);

/**
 * Read one frame with deadlines (fd must be O_NONBLOCK).
 *
 * @param idleMs   bound on waiting for the FIRST byte (the connection
 *                 sitting idle between requests); < 0 waits forever
 * @param frameMs  bound from the first byte to the complete frame —
 *                 the slow-loris defense: a peer trickling a header
 *                 one byte a minute is cut off; < 0 waits forever
 * @return FrameIo::IdleTimeout when no byte arrived within idleMs,
 *         FrameIo::TimedOut when a started frame missed frameMs,
 *         otherwise as readFrame().
 */
FrameIo readFrameDeadline(int fd, ServeFrame &out, int idleMs,
                          int frameMs, std::uint16_t *versionSeen = nullptr);

/**
 * Write one frame within `deadlineMs` (fd must be O_NONBLOCK; < 0
 * waits forever). Partial writes are resumed; a peer that stops
 * draining its socket cannot park the writer past the deadline.
 * @return FrameIo::Ok, TimedOut, or IoError.
 */
FrameIo writeFrameDeadline(int fd, FrameType type,
                           const std::vector<std::uint8_t> &payload,
                           int deadlineMs);

} // namespace dws

#endif // DWS_SERVE_TRANSPORT_HH
