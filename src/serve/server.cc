#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/executor.hh"
#include "serve/cache_key.hh"
#include "sim/logging.hh"

namespace dws {

namespace {

KernelScale
scaleFromWire(std::uint8_t v)
{
    return v == 0 ? KernelScale::Tiny : KernelScale::Default;
}

ServeResult
errorResult(std::string message)
{
    ServeResult r;
    r.outcome = "panic";
    r.error = std::move(message);
    return r;
}

} // namespace

ServeDaemon::ServeDaemon(Options options) : opts(std::move(options)) {}

ServeDaemon::~ServeDaemon()
{
    stop();
}

bool
ServeDaemon::start(std::string &err)
{
    resultCache = std::make_unique<ResultCache>(opts.cacheDir,
                                                opts.cacheCapEntries);
    if (!resultCache->open(err))
        return false;
    executor = std::make_unique<SweepExecutor>(opts.jobs);
    // The daemon is long-lived: per-job Records would grow without
    // bound, and nothing reads them (results travel in the replies).
    executor->setKeepRecords(false);

    if (opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        err = "socket path too long: " + opts.socketPath;
        return false;
    }
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        err = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    // A stale socket file from a dead daemon would fail bind() with
    // EADDRINUSE; a live daemon holds the listen socket, so replacing
    // the file only ever retires a corpse.
    ::unlink(opts.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        err = "bind('" + opts.socketPath + "'): " +
              std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::listen(listenFd, 64) != 0) {
        err = std::string("listen(): ") + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    acceptThread = std::thread([this] { acceptLoop(); });
    err.clear();
    return true;
}

void
ServeDaemon::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket closed: stopping
        }
        std::lock_guard<std::mutex> lock(mtx);
        if (stopRequested) {
            ::close(fd);
            return;
        }
        connFds.insert(fd);
        connThreads.emplace_back(
                [this, fd] { serveConnection(fd); });
    }
}

void
ServeDaemon::serveConnection(int fd)
{
    bool shuttingDown = false;
    for (;;) {
        ServeFrame frame;
        std::uint16_t version = 0;
        const FrameIo io = readFrame(fd, frame, &version);
        if (io == FrameIo::BadVersion) {
            writeFrame(fd, FrameType::Error,
                       encodeError("protocol version " +
                                   std::to_string(version) +
                                   " not supported (daemon speaks " +
                                   std::to_string(kServeVersion) +
                                   ")"));
            break;
        }
        if (io != FrameIo::Ok) {
            // Eof is a polite close; everything else poisons only
            // this connection — the daemon keeps serving.
            if (io != FrameIo::Eof)
                warn("serve: dropping connection (%s frame)",
                     frameIoName(io));
            break;
        }
        bool alive = true;
        switch (frame.type) {
          case FrameType::SubmitBatch: {
            std::vector<ServeJob> jobs;
            if (!decodeSubmitBatch(frame.payload, jobs)) {
                writeFrame(fd, FrameType::Error,
                           encodeError("malformed SubmitBatch payload"));
                alive = false;
                break;
            }
            const std::vector<ServeResult> results = runBatch(jobs);
            // A client that vanished mid-batch only loses its reply:
            // the cells above are already simulated and cached.
            alive = writeFrame(fd, FrameType::SubmitReply,
                               encodeSubmitReply(results));
            break;
          }
          case FrameType::Status:
            alive = writeFrame(fd, FrameType::StatusReply,
                               encodeStatusReply(status()));
            break;
          case FrameType::CacheStats: {
            const ResultCache::Counters c = resultCache->counters();
            ServeCacheCounters out;
            out.entries = c.entries;
            out.bytes = c.bytes;
            out.hits = c.hits;
            out.misses = c.misses;
            out.inserted = c.inserted;
            out.corrupt = c.corrupt;
            out.evicted = c.evicted;
            out.dir = resultCache->dir();
            alive = writeFrame(fd, FrameType::CacheStatsReply,
                               encodeCacheStatsReply(out));
            break;
          }
          case FrameType::Flush:
            alive = writeFrame(fd, FrameType::FlushReply,
                               encodeFlushReply(resultCache->flush()));
            break;
          case FrameType::Shutdown:
            writeFrame(fd, FrameType::ShutdownReply, {});
            shuttingDown = true;
            alive = false;
            break;
          default:
            writeFrame(fd, FrameType::Error,
                       encodeError("unexpected frame type"));
            alive = false;
            break;
        }
        if (!alive)
            break;
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(mtx);
        connFds.erase(fd);
    }
    if (shuttingDown)
        requestStop();
}

std::vector<ServeResult>
ServeDaemon::runBatch(const std::vector<ServeJob> &jobs)
{
    batchesServed.fetch_add(1, std::memory_order_relaxed);
    jobsServed.fetch_add(jobs.size(), std::memory_order_relaxed);

    struct Pending
    {
        std::uint64_t key = 0;
        std::future<JobResult> future;
        std::string policyFallback;
    };
    std::vector<ServeResult> results(jobs.size());
    std::vector<std::pair<std::size_t, Pending>> misses;

    for (std::size_t i = 0; i < jobs.size(); i++) {
        const ServeJob &job = jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        std::string err;
        const std::string kid = kernelIdentity(job.kernel, err);
        if (kid.empty()) {
            results[i] = errorResult("serve: " + err);
            continue;
        }
        const KernelScale scale = scaleFromWire(job.scale);
        const std::uint64_t key =
                resultKey(kid, scale, job.configKey);

        ResultCache::Entry hit;
        if (resultCache->lookup(key, hit)) {
            ServeResult &r = results[i];
            r.outcome = "ok";
            r.policy = hit.policy;
            r.cycles = hit.cycles;
            r.energyNj = hit.energyNj;
            r.cached = true;
            r.fingerprint = hit.fingerprint;
            r.wallMs = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
            continue;
        }

        SystemConfig cfg;
        if (!SystemConfig::parseCacheKey(job.configKey, cfg, err)) {
            results[i] = errorResult("serve: bad config: " + err);
            continue;
        }
        const std::string invalid =
                cfg.hierarchy().validate(cfg.numWpus);
        if (!invalid.empty()) {
            results[i] = errorResult("serve: bad config: " + invalid);
            continue;
        }
        Pending p;
        p.key = key;
        p.policyFallback = cfg.policy.name();
        p.future = executor->submit(
                SweepJob{job.kernel, cfg, scale, job.label});
        misses.emplace_back(i, std::move(p));
    }

    for (auto &[i, pending] : misses) {
        JobResult jr = pending.future.get();
        ServeResult &r = results[i];
        r.outcome = simOutcomeName(jr.outcome);
        r.error = jr.error;
        r.policy = jr.ok() ? jr.run.policy : pending.policyFallback;
        r.cycles = jr.run.stats.cycles;
        r.energyNj = jr.run.stats.energyNj;
        r.wallMs = jr.wallMs;
        r.cached = false;
        if (jr.ok()) {
            r.fingerprint = jr.run.stats.fingerprint();
            ResultCache::Entry e;
            e.kernel = jobs[i].kernel;
            e.scale = kernelScaleName(scaleFromWire(jobs[i].scale));
            e.policy = r.policy;
            e.cycles = r.cycles;
            e.energyNj = r.energyNj;
            e.wallMs = r.wallMs;
            e.fingerprint = r.fingerprint;
            resultCache->insert(pending.key, e);
        }
    }
    return results;
}

ServeStatus
ServeDaemon::status() const
{
    ServeStatus s;
    s.workers = executor
                        ? static_cast<std::uint32_t>(executor->jobs())
                        : 0;
    s.batches = batchesServed.load(std::memory_order_relaxed);
    s.jobs = jobsServed.load(std::memory_order_relaxed);
    s.cacheDir = resultCache ? resultCache->dir() : opts.cacheDir;
    s.buildFingerprint = serveBuildFingerprint();
    return s;
}

void
ServeDaemon::requestStop()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (stopRequested)
        return;
    stopRequested = true;
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR);
    stopCv.notify_all();
}

void
ServeDaemon::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    stopCv.wait(lock, [this] { return stopRequested; });
}

void
ServeDaemon::stop()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopped)
            return;
        stopped = true;
        // Unblock connection threads parked in readFrame(); their
        // in-flight simulations still run to completion (and populate
        // the cache) before the executor is torn down below.
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread.joinable())
        acceptThread.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mtx);
        threads.swap(connThreads);
    }
    for (std::thread &t : threads)
        t.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opts.socketPath.c_str());
    }
    executor.reset();
}

} // namespace dws
