#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/executor.hh"
#include "serve/cache_key.hh"
#include "sim/logging.hh"

namespace dws {

namespace {

KernelScale
scaleFromWire(std::uint8_t v)
{
    return v == 0 ? KernelScale::Tiny : KernelScale::Default;
}

ServeResult
errorResult(std::string message)
{
    ServeResult r;
    r.outcome = "panic";
    r.error = std::move(message);
    return r;
}

/** Busy retry hint: refusals under transient pressure suggest a short
 *  wait; a drain is permanent, so steer the client to fallback fast. */
constexpr std::uint32_t kBusyRetryHintMs = 200;

} // namespace

ServeDaemon::ServeDaemon(Options options) : opts(std::move(options)) {}

ServeDaemon::~ServeDaemon()
{
    stop();
}

bool
ServeDaemon::start(std::string &err)
{
    ignoreSigpipe();
    if (opts.socketPath.empty() && opts.tcpListen.empty()) {
        err = "serve: no endpoint configured (socket path or TCP)";
        return false;
    }
    resultCache = std::make_unique<ResultCache>(opts.cacheDir,
                                                opts.cacheCapEntries);
    if (!resultCache->open(err))
        return false;
    executor = std::make_unique<SweepExecutor>(opts.jobs);
    // The daemon is long-lived: per-job Records would grow without
    // bound, and nothing reads them (results travel in the replies).
    executor->setKeepRecords(false);

    if (!opts.socketPath.empty()) {
        ServeAddr addr;
        addr.kind = ServeAddr::Kind::Unix;
        addr.path = opts.socketPath;
        // A stale socket file from a dead daemon would fail bind()
        // with EADDRINUSE; a live daemon holds the listen socket, so
        // replacing the file only ever retires a corpse.
        unixListenFd = listenOn(addr, err);
        if (unixListenFd < 0)
            return false;
    }
    if (!opts.tcpListen.empty()) {
        ServeAddr addr;
        std::string spec = opts.tcpListen;
        if (spec.rfind("tcp:", 0) != 0)
            spec = "tcp:" + spec;
        if (!parseServeAddr(spec, addr, err) ||
            addr.kind != ServeAddr::Kind::Tcp) {
            if (err.empty())
                err = "serve: bad TCP listen spec '" + opts.tcpListen +
                      "'";
            stop();
            return false;
        }
        tcpHost = addr.host.empty() ? "127.0.0.1" : addr.host;
        tcpListenFd = listenOn(addr, err, &tcpBoundPort);
        if (tcpListenFd < 0) {
            stop();
            return false;
        }
    }
    if (::pipe(stopPipe) != 0) {
        err = std::string("pipe(): ") + std::strerror(errno);
        stop();
        return false;
    }
    acceptThread = std::thread([this] { acceptLoop(); });
    err.clear();
    return true;
}

std::string
ServeDaemon::tcpEndpoint() const
{
    if (tcpListenFd < 0)
        return "";
    return "tcp:" + tcpHost + ":" + std::to_string(tcpBoundPort);
}

void
ServeDaemon::acceptLoop()
{
    for (;;) {
        struct pollfd fds[3];
        int listenFds[3] = {-1, -1, -1};
        nfds_t n = 0;
        fds[n++] = {stopPipe[0], POLLIN, 0};
        if (unixListenFd >= 0) {
            listenFds[n] = unixListenFd;
            fds[n++] = {unixListenFd, POLLIN, 0};
        }
        if (tcpListenFd >= 0) {
            listenFds[n] = tcpListenFd;
            fds[n++] = {tcpListenFd, POLLIN, 0};
        }
        const int r = ::poll(fds, n, -1);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[0].revents != 0)
            return; // stop requested
        reapFinishedThreads();
        for (nfds_t i = 1; i < n; i++) {
            if ((fds[i].revents & POLLIN) == 0)
                continue;
            for (;;) {
                const int fd = acceptConn(listenFds[i]);
                if (fd < 0)
                    break; // EAGAIN: drained this listener
                handleAccepted(fd);
            }
        }
    }
}

void
ServeDaemon::handleAccepted(int fd)
{
    std::unique_lock<std::mutex> lock(mtx);
    if (stopRequested) {
        ::close(fd);
        return;
    }
    if (connFds.size() >= opts.maxConns) {
        lock.unlock();
        busyRejected.fetch_add(1, std::memory_order_relaxed);
        // Refused, not dropped: the excess client learns why and when
        // to retry instead of watching a silent close. The write runs
        // on the accept thread, so its deadline is kept short.
        writeFrameDeadline(fd, FrameType::Busy,
                           encodeBusy("connection limit reached",
                                      kBusyRetryHintMs),
                           1000);
        ::close(fd);
        return;
    }
    connFds.insert(fd);
    connThreads.emplace_back();
    const auto self = std::prev(connThreads.end());
    *self = std::thread([this, fd, self] { serveConnection(fd, self); });
}

void
ServeDaemon::reapFinishedThreads()
{
    std::vector<std::list<std::thread>::iterator> done;
    {
        std::lock_guard<std::mutex> lock(mtx);
        done.swap(finishedThreads);
    }
    for (auto it : done) {
        if (it->joinable())
            it->join();
        std::lock_guard<std::mutex> lock(mtx);
        connThreads.erase(it);
    }
}

void
ServeDaemon::serveConnection(int fd,
                             std::list<std::thread>::iterator self)
{
    using Clock = std::chrono::steady_clock;
    bool shuttingDown = false;
    bool authed = opts.authToken.empty();
    auto rateWindow = Clock::now();
    std::size_t framesInWindow = 0;
    const auto reply = [&](FrameType t,
                           const std::vector<std::uint8_t> &payload) {
        return writeFrameDeadline(fd, t, payload,
                                  opts.writeDeadlineMs) == FrameIo::Ok;
    };
    for (;;) {
        ServeFrame frame;
        std::uint16_t version = 0;
        const FrameIo io = readFrameDeadline(
                fd, frame, opts.idleTimeoutMs, opts.frameDeadlineMs,
                &version);
        if (io == FrameIo::BadVersion) {
            reply(FrameType::Error,
                  encodeError("protocol version " +
                              std::to_string(version) +
                              " not supported (daemon speaks " +
                              std::to_string(kServeVersion) + ")"));
            break;
        }
        if (io != FrameIo::Ok) {
            // Eof is a polite close and IdleTimeout a quiet reap;
            // everything else poisons only this connection — the
            // daemon keeps serving.
            if (io != FrameIo::Eof && io != FrameIo::IdleTimeout)
                warn("serve: dropping connection (%s frame)",
                     frameIoName(io));
            break;
        }
        if (opts.maxFramesPerSec != 0) {
            const auto now = Clock::now();
            if (now - rateWindow >= std::chrono::seconds(1)) {
                rateWindow = now;
                framesInWindow = 0;
            }
            if (++framesInWindow > opts.maxFramesPerSec) {
                reply(FrameType::Error,
                      encodeError("frame rate limit exceeded"));
                break;
            }
        }
        if (!authed && frame.type != FrameType::Auth &&
            frame.type != FrameType::Status) {
            reply(FrameType::Error,
                  encodeError("authentication required"));
            break;
        }
        bool alive = true;
        switch (frame.type) {
          case FrameType::Auth: {
            std::string token;
            if (!decodeAuth(frame.payload, token)) {
                reply(FrameType::Error,
                      encodeError("malformed Auth payload"));
                alive = false;
                break;
            }
            const bool ok = opts.authToken.empty() ||
                            constantTimeEq(token, opts.authToken);
            alive = reply(FrameType::AuthReply, encodeAuthReply(ok)) &&
                    ok;
            if (ok)
                authed = true;
            break;
          }
          case FrameType::SubmitBatch: {
            std::vector<ServeJob> jobs;
            if (!decodeSubmitBatch(frame.payload, jobs)) {
                reply(FrameType::Error,
                      encodeError("malformed SubmitBatch payload"));
                alive = false;
                break;
            }
            if (jobs.size() > opts.maxJobsPerBatch) {
                reply(FrameType::Error,
                      encodeError("batch exceeds max jobs per batch (" +
                                  std::to_string(opts.maxJobsPerBatch) +
                                  ")"));
                alive = false;
                break;
            }
            if (draining.load(std::memory_order_relaxed)) {
                busyRejected.fetch_add(1, std::memory_order_relaxed);
                alive = reply(FrameType::Busy,
                              encodeBusy("draining", 0));
                break;
            }
            {
                std::lock_guard<std::mutex> lock(mtx);
                if (inFlightJobs + jobs.size() > opts.admissionCap) {
                    busyRejected.fetch_add(1,
                                           std::memory_order_relaxed);
                    alive = reply(
                            FrameType::Busy,
                            encodeBusy("admission queue full",
                                       kBusyRetryHintMs));
                    break;
                }
                inFlightJobs += jobs.size();
            }
            const std::vector<ServeResult> results = runBatch(jobs);
            {
                std::lock_guard<std::mutex> lock(mtx);
                inFlightJobs -= jobs.size();
            }
            drainCv.notify_all();
            // A client that vanished mid-batch only loses its reply:
            // the cells above are already simulated and cached.
            alive = reply(FrameType::SubmitReply,
                          encodeSubmitReply(results));
            break;
          }
          case FrameType::Status:
            alive = reply(FrameType::StatusReply,
                          encodeStatusReply(status()));
            break;
          case FrameType::Health:
            alive = reply(FrameType::HealthReply,
                          encodeHealthReply(health()));
            break;
          case FrameType::CacheStats: {
            const ResultCache::Counters c = resultCache->counters();
            ServeCacheCounters out;
            out.entries = c.entries;
            out.bytes = c.bytes;
            out.hits = c.hits;
            out.misses = c.misses;
            out.inserted = c.inserted;
            out.corrupt = c.corrupt;
            out.evicted = c.evicted;
            out.dir = resultCache->dir();
            alive = reply(FrameType::CacheStatsReply,
                          encodeCacheStatsReply(out));
            break;
          }
          case FrameType::Flush:
            alive = reply(FrameType::FlushReply,
                          encodeFlushReply(resultCache->flush()));
            break;
          case FrameType::Shutdown:
            reply(FrameType::ShutdownReply, {});
            shuttingDown = true;
            alive = false;
            break;
          default:
            reply(FrameType::Error,
                  encodeError("unexpected frame type"));
            alive = false;
            break;
        }
        if (!alive)
            break;
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(mtx);
        connFds.erase(fd);
        finishedThreads.push_back(self);
    }
    if (shuttingDown)
        requestStop();
}

std::vector<ServeResult>
ServeDaemon::runBatch(const std::vector<ServeJob> &jobs)
{
    batchesServed.fetch_add(1, std::memory_order_relaxed);
    jobsServed.fetch_add(jobs.size(), std::memory_order_relaxed);

    struct Pending
    {
        std::uint64_t key = 0;
        std::future<JobResult> future;
        std::string policyFallback;
    };
    std::vector<ServeResult> results(jobs.size());
    std::vector<std::pair<std::size_t, Pending>> misses;

    for (std::size_t i = 0; i < jobs.size(); i++) {
        const ServeJob &job = jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        std::string err;
        const std::string kid = kernelIdentity(job.kernel, err);
        if (kid.empty()) {
            results[i] = errorResult("serve: " + err);
            continue;
        }
        const KernelScale scale = scaleFromWire(job.scale);
        const std::uint64_t key =
                resultKey(kid, scale, job.configKey);

        ResultCache::Entry hit;
        if (resultCache->lookup(key, hit)) {
            ServeResult &r = results[i];
            r.outcome = "ok";
            r.policy = hit.policy;
            r.cycles = hit.cycles;
            r.energyNj = hit.energyNj;
            r.cached = true;
            r.fingerprint = hit.fingerprint;
            r.wallMs = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
            continue;
        }

        SystemConfig cfg;
        if (!SystemConfig::parseCacheKey(job.configKey, cfg, err)) {
            results[i] = errorResult("serve: bad config: " + err);
            continue;
        }
        const std::string invalid =
                cfg.hierarchy().validate(cfg.numWpus);
        if (!invalid.empty()) {
            results[i] = errorResult("serve: bad config: " + invalid);
            continue;
        }
        Pending p;
        p.key = key;
        p.policyFallback = cfg.policy.name();
        p.future = executor->submit(
                SweepJob{job.kernel, cfg, scale, job.label});
        misses.emplace_back(i, std::move(p));
    }

    for (auto &[i, pending] : misses) {
        JobResult jr = pending.future.get();
        ServeResult &r = results[i];
        r.outcome = simOutcomeName(jr.outcome);
        r.error = jr.error;
        r.policy = jr.ok() ? jr.run.policy : pending.policyFallback;
        r.cycles = jr.run.stats.cycles;
        r.energyNj = jr.run.stats.energyNj;
        r.wallMs = jr.wallMs;
        r.cached = false;
        if (jr.ok()) {
            r.fingerprint = jr.run.stats.fingerprint();
            ResultCache::Entry e;
            e.kernel = jobs[i].kernel;
            e.scale = kernelScaleName(scaleFromWire(jobs[i].scale));
            e.policy = r.policy;
            e.cycles = r.cycles;
            e.energyNj = r.energyNj;
            e.wallMs = r.wallMs;
            e.fingerprint = r.fingerprint;
            resultCache->insert(pending.key, e);
        }
    }
    return results;
}

ServeStatus
ServeDaemon::status() const
{
    ServeStatus s;
    s.workers = executor
                        ? static_cast<std::uint32_t>(executor->jobs())
                        : 0;
    s.batches = batchesServed.load(std::memory_order_relaxed);
    s.jobs = jobsServed.load(std::memory_order_relaxed);
    s.cacheDir = resultCache ? resultCache->dir() : opts.cacheDir;
    s.buildFingerprint = serveBuildFingerprint();
    return s;
}

ServeHealth
ServeDaemon::health() const
{
    ServeHealth h;
    {
        std::lock_guard<std::mutex> lock(mtx);
        h.activeConns = static_cast<std::uint32_t>(connFds.size());
        h.inFlightJobs = static_cast<std::uint32_t>(inFlightJobs);
    }
    h.admissionCap = static_cast<std::uint32_t>(opts.admissionCap);
    h.draining = draining.load(std::memory_order_relaxed) ? 1 : 0;
    h.busyRejected = busyRejected.load(std::memory_order_relaxed);
    h.batches = batchesServed.load(std::memory_order_relaxed);
    h.jobs = jobsServed.load(std::memory_order_relaxed);
    if (resultCache) {
        const ResultCache::Counters c = resultCache->counters();
        h.cache.entries = c.entries;
        h.cache.bytes = c.bytes;
        h.cache.hits = c.hits;
        h.cache.misses = c.misses;
        h.cache.inserted = c.inserted;
        h.cache.corrupt = c.corrupt;
        h.cache.evicted = c.evicted;
        h.cache.dir = resultCache->dir();
    }
    return h;
}

void
ServeDaemon::beginDrain()
{
    draining.store(true, std::memory_order_relaxed);
}

void
ServeDaemon::drainAndStop()
{
    beginDrain();
    {
        std::unique_lock<std::mutex> lock(mtx);
        drainCv.wait(lock, [this] {
            return inFlightJobs == 0 || stopRequested;
        });
    }
    stop();
}

void
ServeDaemon::requestStop()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (stopRequested)
        return;
    stopRequested = true;
    if (stopPipe[1] >= 0) {
        const char byte = 1;
        ssize_t rc;
        do {
            rc = ::write(stopPipe[1], &byte, 1);
        } while (rc < 0 && errno == EINTR);
    }
    stopCv.notify_all();
    drainCv.notify_all();
}

void
ServeDaemon::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    stopCv.wait(lock, [this] { return stopRequested; });
}

bool
ServeDaemon::waitFor(int ms)
{
    std::unique_lock<std::mutex> lock(mtx);
    return stopCv.wait_for(lock, std::chrono::milliseconds(ms),
                           [this] { return stopRequested; });
}

void
ServeDaemon::stop()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopped)
            return;
        stopped = true;
        // Unblock connection threads parked in readFrameDeadline();
        // their in-flight simulations still run to completion (and
        // populate the cache) before the executor is torn down below.
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread.joinable())
        acceptThread.join();
    std::list<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mtx);
        threads.swap(connThreads);
        finishedThreads.clear();
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    if (unixListenFd >= 0) {
        ::close(unixListenFd);
        unixListenFd = -1;
        ::unlink(opts.socketPath.c_str());
    }
    if (tcpListenFd >= 0) {
        ::close(tcpListenFd);
        tcpListenFd = -1;
    }
    for (int &fd : stopPipe) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    executor.reset();
}

} // namespace dws
