/**
 * @file
 * Content-addressed, disk-persistent result cache for the sweep
 * service (DESIGN.md §16).
 *
 * One entry per (kernel, config, scale, build) content address
 * (serve/cache_key.hh): a small checksummed text file holding the full
 * journaled result of the cell — outcome, cycles, energy and the
 * complete RunStats fingerprint, from which the exact RunStats is
 * rebuilt without re-simulating. The simulator is deterministic, so a
 * hit is bit-identical to a fresh run.
 *
 * Durability rules:
 *   - writes are atomic: entry bodies land in a `.tmp` sibling first
 *     and are rename()d into place, so a crashed or concurrent daemon
 *     never leaves a half-written entry under a live key;
 *   - every entry carries an FNV-1a checksum of its body; a corrupt or
 *     truncated entry is detected at lookup, counted, deleted and
 *     treated as a miss (the cell is re-simulated, never served);
 *   - an LRU entry cap bounds the directory (hits refresh recency;
 *     inserts past the cap evict the coldest entry).
 *
 * Only SimOutcome::Ok results are cached: failures are kept out so a
 * transient host problem (watchdog timeout) is never replayed as a
 * permanent answer.
 */

#ifndef DWS_SERVE_RESULT_CACHE_HH
#define DWS_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace dws {

/** Disk-persistent content-addressed store of completed sweep cells. */
class ResultCache
{
  public:
    /** One cached cell (everything a served Record needs). */
    struct Entry
    {
        std::string kernel;
        std::string scale;
        std::string policy;
        std::uint64_t cycles = 0;
        double energyNj = 0.0;
        /** Wall time of the original (cold) simulation, in ms. */
        double wallMs = 0.0;
        /** RunStats::fingerprint() — the complete result. */
        std::string fingerprint;
    };

    /** Monotonic counters since open(). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserted = 0;
        std::uint64_t corrupt = 0;
        std::uint64_t evicted = 0;
        /** Entries currently resident. */
        std::uint64_t entries = 0;
        /** Bytes currently resident (entry bodies). */
        std::uint64_t bytes = 0;
    };

    /**
     * @param dir        cache directory (created by open())
     * @param capEntries LRU size cap; 0 means unbounded
     */
    ResultCache(std::string dir, std::size_t capEntries = 4096);

    /**
     * Create the directory if needed and index the entries already on
     * disk (recency seeded from file mtimes, oldest first).
     * @return false with a message in `err` when the directory cannot
     *         be created or scanned.
     */
    bool open(std::string &err);

    /**
     * Look `key` up.
     * @return true and fill `out` on a verified hit. A missing entry
     *         is a miss; an entry whose checksum or format does not
     *         verify is counted corrupt, deleted and reported as a
     *         miss so the caller re-simulates.
     */
    bool lookup(std::uint64_t key, Entry &out);

    /**
     * Insert (or overwrite) the entry for `key` atomically
     * (write-temp-then-rename). Evicts the least-recently-used entry
     * when the cap is exceeded.
     */
    void insert(std::uint64_t key, const Entry &entry);

    /** Remove every entry. @return number of entries removed. */
    std::uint64_t flush();

    /** @return a snapshot of the counters. */
    Counters counters() const;

    /** @return the cache directory. */
    const std::string &dir() const { return dirPath; }

    /** @return the on-disk path of `key`'s entry. */
    std::string entryPath(std::uint64_t key) const;

  private:
    /** Serialize an entry body (sans checksum line). */
    static std::string encode(const Entry &entry);
    /** @return true when `body` parses and verifies into `out`. */
    static bool decode(const std::string &text, Entry &out);
    void evictIfNeeded();
    void touch(std::uint64_t key);

    std::string dirPath;
    std::size_t capEntries;

    mutable std::mutex mtx;
    struct Resident
    {
        std::uint64_t sizeBytes = 0;
        /** Position in `lru` (front = most recently used). */
        std::list<std::uint64_t>::iterator lruIt;
    };
    std::unordered_map<std::uint64_t, Resident> index;
    std::list<std::uint64_t> lru;
    Counters stats;
};

} // namespace dws

#endif // DWS_SERVE_RESULT_CACHE_HH
