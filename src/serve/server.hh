/**
 * @file
 * The sweep-service daemon (DESIGN.md §16–17).
 *
 * One long-lived process owns a SweepExecutor worker pool and a
 * disk-persistent content-addressed ResultCache, and serves batched
 * simulation jobs to any number of clients over a Unix-domain socket
 * and/or a TCP endpoint (serve/transport.hh). A SubmitBatch frame
 * carries N jobs; each is content-addressed (serve/cache_key.hh) and
 * either answered from the cache — bit-identical to a fresh run, the
 * simulator being deterministic — or simulated on the pool and
 * inserted, so every client after the first gets the cell at near-zero
 * marginal cost.
 *
 * Robustness (§17): each connection is served on its own thread under
 * explicit deadlines — an idle connection is reaped, a trickling
 * (slow-loris) frame is cut off, and a reply write to a non-draining
 * peer is abandoned at its deadline. A garbage, truncated, corrupted
 * (BadChecksum), oversized or version-mismatched frame closes only
 * that connection. Overload is *refused, never queued unbounded*: past
 * the connection cap or the admission cap the daemon answers Busy with
 * a retry-after hint instead of hanging or dropping the request. With
 * an auth token set, an unauthenticated connection may only Auth and
 * Status. beginDrain()/drainAndStop() implement clean SIGTERM
 * handling: refuse new work, finish in-flight jobs, then stop.
 */

#ifndef DWS_SERVE_SERVER_HH
#define DWS_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/transport.hh"

namespace dws {

class SweepExecutor;

/** Long-lived simulation service over Unix-domain/TCP sockets. */
class ServeDaemon
{
  public:
    struct Options
    {
        /** Unix-domain socket path (empty = no Unix listener). */
        std::string socketPath;
        /** TCP listen spec "HOST:PORT" (empty = no TCP listener;
         *  port 0 binds an ephemeral port, see tcpEndpoint()). */
        std::string tcpListen;
        /** Pre-shared auth token (empty = no auth required). */
        std::string authToken;
        /** Result-cache directory (created if missing). */
        std::string cacheDir = ".dws_serve_cache";
        /** Worker threads; <= 0 selects SweepExecutor::defaultJobs(). */
        int jobs = 0;
        /** Result-cache LRU entry cap; 0 = unbounded. */
        std::size_t cacheCapEntries = 4096;
        /** Connection cap; excess connections get Busy + close. */
        std::size_t maxConns = 64;
        /** Bound on jobs admitted and not yet finished; a batch that
         *  would exceed it gets Busy (connection stays open). */
        std::size_t admissionCap = 256;
        /** Hard bound on jobs in one SubmitBatch frame. */
        std::size_t maxJobsPerBatch = 4096;
        /** Per-connection frames/second cap; 0 = unlimited. */
        std::size_t maxFramesPerSec = 1000;
        /** Reap a connection idle past this; < 0 = never. */
        int idleTimeoutMs = 300000;
        /** Slow-loris bound: first byte -> complete frame. */
        int frameDeadlineMs = 10000;
        /** Bound on writing one reply to a slow reader. */
        int writeDeadlineMs = 30000;
    };

    explicit ServeDaemon(Options opts);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Open the cache, bind + listen on every configured endpoint and
     * start accepting.
     * @return false with a message in `err` on any setup failure.
     */
    bool start(std::string &err);

    /** Block until a Shutdown frame arrives or stop() is called. */
    void wait();

    /** As wait(), but give up after `ms`. @return true when stopping. */
    bool waitFor(int ms);

    /** Stop accepting, unblock connections, join every thread. */
    void stop();

    /** Refuse new work from now on (SubmitBatch -> Busy "draining");
     *  Status/Health/Shutdown still answered. Idempotent. */
    void beginDrain();

    /** beginDrain(), wait for in-flight jobs to finish, then stop().
     *  The clean-SIGTERM path of dws_serve. */
    void drainAndStop();

    /** @return the result cache (valid after start()). */
    ResultCache &cache() { return *resultCache; }

    /** @return "tcp:HOST:PORT" with the actually-bound port, or ""
     *          when no TCP listener is configured (valid after
     *          start(); the way tests learn an ephemeral port). */
    std::string tcpEndpoint() const;

    /** @return a snapshot of the daemon counters. */
    ServeStatus status() const;

    /** @return the overload/health snapshot behind HealthReply. */
    ServeHealth health() const;

    /**
     * Execute one decoded batch: cache hits answered directly, misses
     * simulated on the pool and inserted. Public so tests can drive
     * the dispatch path without a socket.
     */
    std::vector<ServeResult> runBatch(const std::vector<ServeJob> &jobs);

  private:
    void acceptLoop();
    void handleAccepted(int fd);
    void serveConnection(int fd, std::list<std::thread>::iterator self);
    void reapFinishedThreads();
    void requestStop();

    Options opts;
    std::unique_ptr<ResultCache> resultCache;
    std::unique_ptr<SweepExecutor> executor;

    int unixListenFd = -1;
    int tcpListenFd = -1;
    std::uint16_t tcpBoundPort = 0;
    std::string tcpHost;
    int stopPipe[2] = {-1, -1};
    std::thread acceptThread;

    mutable std::mutex mtx;
    std::condition_variable stopCv;
    std::condition_variable drainCv;
    bool stopRequested = false;
    bool stopped = false;
    std::list<std::thread> connThreads;
    std::vector<std::list<std::thread>::iterator> finishedThreads;
    std::unordered_set<int> connFds;
    std::size_t inFlightJobs = 0;

    std::atomic<bool> draining{false};
    std::atomic<std::uint64_t> batchesServed{0};
    std::atomic<std::uint64_t> jobsServed{0};
    std::atomic<std::uint64_t> busyRejected{0};
};

} // namespace dws

#endif // DWS_SERVE_SERVER_HH
