/**
 * @file
 * The sweep-service daemon (DESIGN.md §16).
 *
 * One long-lived process owns a SweepExecutor worker pool and a
 * disk-persistent content-addressed ResultCache, and serves batched
 * simulation jobs to any number of clients over a Unix-domain socket
 * (serve/protocol.hh). A SubmitBatch frame carries N jobs; each is
 * content-addressed (serve/cache_key.hh) and either answered from the
 * cache — bit-identical to a fresh run, the simulator being
 * deterministic — or simulated on the pool and inserted, so every
 * client after the first gets the cell at near-zero marginal cost.
 *
 * Robustness: each connection is served on its own thread; a garbage,
 * truncated, oversized or version-mismatched frame closes only that
 * connection (version mismatches are answered with an Error frame
 * first); a client that disconnects mid-batch abandons only its reply —
 * the submitted jobs still complete and populate the cache, so nothing
 * leaks and the next client hits warm entries.
 */

#ifndef DWS_SERVE_SERVER_HH
#define DWS_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/protocol.hh"
#include "serve/result_cache.hh"

namespace dws {

class SweepExecutor;

/** Long-lived simulation service over a Unix-domain socket. */
class ServeDaemon
{
  public:
    struct Options
    {
        /** Unix-domain socket path (a stale file is replaced). */
        std::string socketPath;
        /** Result-cache directory (created if missing). */
        std::string cacheDir = ".dws_serve_cache";
        /** Worker threads; <= 0 selects SweepExecutor::defaultJobs(). */
        int jobs = 0;
        /** Result-cache LRU entry cap; 0 = unbounded. */
        std::size_t cacheCapEntries = 4096;
    };

    explicit ServeDaemon(Options opts);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Open the cache, bind + listen on the socket and start accepting.
     * @return false with a message in `err` on any setup failure.
     */
    bool start(std::string &err);

    /** Block until a Shutdown frame arrives or stop() is called. */
    void wait();

    /** Stop accepting, unblock connections, join every thread. */
    void stop();

    /** @return the result cache (valid after start()). */
    ResultCache &cache() { return *resultCache; }

    /** @return a snapshot of the daemon counters. */
    ServeStatus status() const;

    /**
     * Execute one decoded batch: cache hits answered directly, misses
     * simulated on the pool and inserted. Public so tests can drive
     * the dispatch path without a socket.
     */
    std::vector<ServeResult> runBatch(const std::vector<ServeJob> &jobs);

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void requestStop();

    Options opts;
    std::unique_ptr<ResultCache> resultCache;
    std::unique_ptr<SweepExecutor> executor;

    int listenFd = -1;
    std::thread acceptThread;

    mutable std::mutex mtx;
    std::condition_variable stopCv;
    bool stopRequested = false;
    bool stopped = false;
    std::vector<std::thread> connThreads;
    std::unordered_set<int> connFds;

    std::atomic<std::uint64_t> batchesServed{0};
    std::atomic<std::uint64_t> jobsServed{0};
};

} // namespace dws

#endif // DWS_SERVE_SERVER_HH
