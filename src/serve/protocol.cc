#include "serve/protocol.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace dws {

namespace {

/**
 * Read exactly `n` bytes (EINTR-safe).
 * @return n on success, 0 on clean EOF before any byte, -1 on error,
 *         or the short count when the stream ended mid-object.
 */
ssize_t
readFull(int fd, void *buf, std::size_t n)
{
    std::size_t got = 0;
    auto *p = static_cast<std::uint8_t *>(buf);
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0)
            return static_cast<ssize_t>(got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

/** Write exactly `n` bytes; MSG_NOSIGNAL keeps a dead peer from
 *  delivering SIGPIPE to the daemon. */
bool
writeFull(int fd, const void *buf, std::size_t n)
{
    std::size_t sent = 0;
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (sent < n) {
        const ssize_t r =
                ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

void
putLe(std::uint8_t *p, std::uint64_t v, int n)
{
    for (int i = 0; i < n; i++)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getLe(const std::uint8_t *p, int n)
{
    std::uint64_t v = 0;
    for (int i = 0; i < n; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Low 32 bits of FNV-1a over header bytes [4,12) then the payload. */
std::uint32_t
frameChecksum(const std::uint8_t *hdr, const std::uint8_t *payload,
              std::size_t payloadLen)
{
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](const std::uint8_t *p, std::size_t n) {
        for (std::size_t i = 0; i < n; i++) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    mix(hdr + 4, 8);
    if (payloadLen != 0)
        mix(payload, payloadLen);
    return static_cast<std::uint32_t>(h);
}

/** Result-to-FrameIo mapping shared by every source-driven read. */
FrameIo
sourceErr(ssize_t r)
{
    if (r == -3)
        return FrameIo::TimedOut;
    if (r == -2)
        return FrameIo::IdleTimeout;
    return FrameIo::IoError;
}

} // namespace

const char *
frameIoName(FrameIo r)
{
    switch (r) {
      case FrameIo::Ok:          return "ok";
      case FrameIo::Eof:         return "eof";
      case FrameIo::Truncated:   return "truncated";
      case FrameIo::BadMagic:    return "bad-magic";
      case FrameIo::BadVersion:  return "bad-version";
      case FrameIo::Oversized:   return "oversized";
      case FrameIo::BadChecksum: return "bad-checksum";
      case FrameIo::IoError:     return "io-error";
      case FrameIo::IdleTimeout: return "idle-timeout";
      case FrameIo::TimedOut:    return "timed-out";
    }
    return "?";
}

FrameIo
readFrameFrom(const std::function<ssize_t(std::uint8_t *, std::size_t)> &src,
              ServeFrame &out, std::uint16_t *versionSeen)
{
    // The header is read in two halves: magic+version+type first, so a
    // peer speaking an older (shorter-header) protocol version gets
    // BadVersion instead of this side blocking on bytes that will
    // never arrive.
    std::uint8_t hdr[kFrameHeaderBytes];
    ssize_t got = src(hdr, 8);
    if (got == 0)
        return FrameIo::Eof;
    if (got < 0)
        return sourceErr(got);
    if (got < 8)
        return FrameIo::Truncated;
    if (getLe(hdr, 4) != kServeMagic)
        return FrameIo::BadMagic;
    const auto version = static_cast<std::uint16_t>(getLe(hdr + 4, 2));
    if (versionSeen)
        *versionSeen = version;
    if (version != kServeVersion)
        return FrameIo::BadVersion;
    got = src(hdr + 8, 8);
    if (got < 0)
        return sourceErr(got);
    if (got < 8)
        return FrameIo::Truncated;
    const std::uint64_t len = getLe(hdr + 8, 4);
    if (len > kMaxFramePayload)
        return FrameIo::Oversized;
    out.type = static_cast<FrameType>(getLe(hdr + 6, 2));
    out.payload.resize(len);
    if (len != 0) {
        const ssize_t body = src(out.payload.data(), len);
        if (body < 0)
            return sourceErr(body);
        if (static_cast<std::uint64_t>(body) < len)
            return FrameIo::Truncated;
    }
    const auto sum = static_cast<std::uint32_t>(getLe(hdr + 12, 4));
    if (sum != frameChecksum(hdr, out.payload.data(), len))
        return FrameIo::BadChecksum;
    return FrameIo::Ok;
}

FrameIo
readFrame(int fd, ServeFrame &out, std::uint16_t *versionSeen)
{
    return readFrameFrom(
            [fd](std::uint8_t *buf, std::size_t n) {
                return readFull(fd, buf, n);
            },
            out, versionSeen);
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
    std::uint8_t *hdr = frame.data();
    putLe(hdr, kServeMagic, 4);
    putLe(hdr + 4, kServeVersion, 2);
    putLe(hdr + 6, static_cast<std::uint16_t>(type), 2);
    putLe(hdr + 8, payload.size(), 4);
    putLe(hdr + 12, frameChecksum(hdr, payload.data(), payload.size()),
          4);
    if (!payload.empty())
        std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                    payload.size());
    return frame;
}

bool
writeFrame(int fd, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    return writeFull(fd, frame.data(), frame.size());
}

// --------------------------------------------------------------------
// Typed payloads
// --------------------------------------------------------------------

std::vector<std::uint8_t>
encodeSubmitBatch(const std::vector<ServeJob> &jobs)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(jobs.size()));
    for (const ServeJob &j : jobs) {
        w.str(j.kernel);
        w.str(j.label);
        w.u8(j.scale);
        w.str(j.configKey);
    }
    return w.take();
}

bool
decodeSubmitBatch(const std::vector<std::uint8_t> &payload,
                  std::vector<ServeJob> &out)
{
    WireReader r(payload);
    const std::uint32_t n = r.u32();
    out.clear();
    for (std::uint32_t i = 0; i < n && r.ok(); i++) {
        ServeJob j;
        j.kernel = r.str();
        j.label = r.str();
        j.scale = r.u8();
        j.configKey = r.str();
        out.push_back(std::move(j));
    }
    return r.done() && out.size() == n;
}

std::vector<std::uint8_t>
encodeSubmitReply(const std::vector<ServeResult> &results)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(results.size()));
    for (const ServeResult &res : results) {
        w.str(res.outcome);
        w.str(res.error);
        w.str(res.policy);
        w.u64(res.cycles);
        w.f64(res.energyNj);
        w.f64(res.wallMs);
        w.u8(res.cached ? 1 : 0);
        w.str(res.fingerprint);
    }
    return w.take();
}

bool
decodeSubmitReply(const std::vector<std::uint8_t> &payload,
                  std::vector<ServeResult> &out)
{
    WireReader r(payload);
    const std::uint32_t n = r.u32();
    out.clear();
    for (std::uint32_t i = 0; i < n && r.ok(); i++) {
        ServeResult res;
        res.outcome = r.str();
        res.error = r.str();
        res.policy = r.str();
        res.cycles = r.u64();
        res.energyNj = r.f64();
        res.wallMs = r.f64();
        res.cached = r.u8() != 0;
        res.fingerprint = r.str();
        out.push_back(std::move(res));
    }
    return r.done() && out.size() == n;
}

std::vector<std::uint8_t>
encodeStatusReply(const ServeStatus &s)
{
    WireWriter w;
    w.u32(s.workers);
    w.u64(s.batches);
    w.u64(s.jobs);
    w.str(s.cacheDir);
    w.str(s.buildFingerprint);
    return w.take();
}

bool
decodeStatusReply(const std::vector<std::uint8_t> &payload,
                  ServeStatus &out)
{
    WireReader r(payload);
    out.workers = r.u32();
    out.batches = r.u64();
    out.jobs = r.u64();
    out.cacheDir = r.str();
    out.buildFingerprint = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeCacheStatsReply(const ServeCacheCounters &c)
{
    WireWriter w;
    w.u64(c.entries);
    w.u64(c.bytes);
    w.u64(c.hits);
    w.u64(c.misses);
    w.u64(c.inserted);
    w.u64(c.corrupt);
    w.u64(c.evicted);
    w.str(c.dir);
    return w.take();
}

bool
decodeCacheStatsReply(const std::vector<std::uint8_t> &payload,
                      ServeCacheCounters &out)
{
    WireReader r(payload);
    out.entries = r.u64();
    out.bytes = r.u64();
    out.hits = r.u64();
    out.misses = r.u64();
    out.inserted = r.u64();
    out.corrupt = r.u64();
    out.evicted = r.u64();
    out.dir = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeError(const std::string &message)
{
    WireWriter w;
    w.str(message);
    return w.take();
}

bool
decodeError(const std::vector<std::uint8_t> &payload, std::string &out)
{
    WireReader r(payload);
    out = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeFlushReply(std::uint64_t removed)
{
    WireWriter w;
    w.u64(removed);
    return w.take();
}

bool
decodeFlushReply(const std::vector<std::uint8_t> &payload,
                 std::uint64_t &out)
{
    WireReader r(payload);
    out = r.u64();
    return r.done();
}

std::vector<std::uint8_t>
encodeAuth(const std::string &token)
{
    WireWriter w;
    w.str(token);
    return w.take();
}

bool
decodeAuth(const std::vector<std::uint8_t> &payload, std::string &out)
{
    WireReader r(payload);
    out = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeAuthReply(bool ok)
{
    WireWriter w;
    w.u8(ok ? 1 : 0);
    return w.take();
}

bool
decodeAuthReply(const std::vector<std::uint8_t> &payload, bool &ok)
{
    WireReader r(payload);
    ok = r.u8() != 0;
    return r.done();
}

std::vector<std::uint8_t>
encodeBusy(const std::string &message, std::uint32_t retryAfterMs)
{
    WireWriter w;
    w.str(message);
    w.u32(retryAfterMs);
    return w.take();
}

bool
decodeBusy(const std::vector<std::uint8_t> &payload,
           std::string &message, std::uint32_t &retryAfterMs)
{
    WireReader r(payload);
    message = r.str();
    retryAfterMs = r.u32();
    return r.done();
}

std::vector<std::uint8_t>
encodeHealthReply(const ServeHealth &h)
{
    WireWriter w;
    w.u32(h.activeConns);
    w.u32(h.inFlightJobs);
    w.u32(h.admissionCap);
    w.u8(h.draining);
    w.u64(h.busyRejected);
    w.u64(h.batches);
    w.u64(h.jobs);
    w.u64(h.cache.entries);
    w.u64(h.cache.bytes);
    w.u64(h.cache.hits);
    w.u64(h.cache.misses);
    w.u64(h.cache.inserted);
    w.u64(h.cache.corrupt);
    w.u64(h.cache.evicted);
    w.str(h.cache.dir);
    return w.take();
}

bool
decodeHealthReply(const std::vector<std::uint8_t> &payload,
                  ServeHealth &out)
{
    WireReader r(payload);
    out.activeConns = r.u32();
    out.inFlightJobs = r.u32();
    out.admissionCap = r.u32();
    out.draining = r.u8();
    out.busyRejected = r.u64();
    out.batches = r.u64();
    out.jobs = r.u64();
    out.cache.entries = r.u64();
    out.cache.bytes = r.u64();
    out.cache.hits = r.u64();
    out.cache.misses = r.u64();
    out.cache.inserted = r.u64();
    out.cache.corrupt = r.u64();
    out.cache.evicted = r.u64();
    out.cache.dir = r.str();
    return r.done();
}

} // namespace dws
