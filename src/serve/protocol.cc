#include "serve/protocol.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace dws {

namespace {

/**
 * Read exactly `n` bytes (EINTR-safe).
 * @return n on success, 0 on clean EOF before any byte, -1 on error,
 *         or the short count when the stream ended mid-object.
 */
ssize_t
readFull(int fd, void *buf, std::size_t n)
{
    std::size_t got = 0;
    auto *p = static_cast<std::uint8_t *>(buf);
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0)
            return static_cast<ssize_t>(got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        got += static_cast<std::size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

/** Write exactly `n` bytes; MSG_NOSIGNAL keeps a dead peer from
 *  delivering SIGPIPE to the daemon. */
bool
writeFull(int fd, const void *buf, std::size_t n)
{
    std::size_t sent = 0;
    const auto *p = static_cast<const std::uint8_t *>(buf);
    while (sent < n) {
        const ssize_t r =
                ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

constexpr std::size_t kHeaderBytes = 12;

void
putLe(std::uint8_t *p, std::uint64_t v, int n)
{
    for (int i = 0; i < n; i++)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getLe(const std::uint8_t *p, int n)
{
    std::uint64_t v = 0;
    for (int i = 0; i < n; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

const char *
frameIoName(FrameIo r)
{
    switch (r) {
      case FrameIo::Ok:         return "ok";
      case FrameIo::Eof:        return "eof";
      case FrameIo::Truncated:  return "truncated";
      case FrameIo::BadMagic:   return "bad-magic";
      case FrameIo::BadVersion: return "bad-version";
      case FrameIo::Oversized:  return "oversized";
      case FrameIo::IoError:    return "io-error";
    }
    return "?";
}

FrameIo
readFrame(int fd, ServeFrame &out, std::uint16_t *versionSeen)
{
    std::uint8_t hdr[kHeaderBytes];
    const ssize_t got = readFull(fd, hdr, sizeof hdr);
    if (got == 0)
        return FrameIo::Eof;
    if (got < 0)
        return FrameIo::IoError;
    if (static_cast<std::size_t>(got) < sizeof hdr)
        return FrameIo::Truncated;
    if (getLe(hdr, 4) != kServeMagic)
        return FrameIo::BadMagic;
    const auto version = static_cast<std::uint16_t>(getLe(hdr + 4, 2));
    if (versionSeen)
        *versionSeen = version;
    if (version != kServeVersion)
        return FrameIo::BadVersion;
    const std::uint64_t len = getLe(hdr + 8, 4);
    if (len > kMaxFramePayload)
        return FrameIo::Oversized;
    out.type = static_cast<FrameType>(getLe(hdr + 6, 2));
    out.payload.resize(len);
    if (len != 0) {
        const ssize_t body = readFull(fd, out.payload.data(), len);
        if (body < 0)
            return FrameIo::IoError;
        if (static_cast<std::uint64_t>(body) < len)
            return FrameIo::Truncated;
    }
    return FrameIo::Ok;
}

bool
writeFrame(int fd, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    std::uint8_t hdr[kHeaderBytes];
    putLe(hdr, kServeMagic, 4);
    putLe(hdr + 4, kServeVersion, 2);
    putLe(hdr + 6, static_cast<std::uint16_t>(type), 2);
    putLe(hdr + 8, payload.size(), 4);
    if (!writeFull(fd, hdr, sizeof hdr))
        return false;
    return payload.empty() ||
           writeFull(fd, payload.data(), payload.size());
}

// --------------------------------------------------------------------
// Typed payloads
// --------------------------------------------------------------------

std::vector<std::uint8_t>
encodeSubmitBatch(const std::vector<ServeJob> &jobs)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(jobs.size()));
    for (const ServeJob &j : jobs) {
        w.str(j.kernel);
        w.str(j.label);
        w.u8(j.scale);
        w.str(j.configKey);
    }
    return w.take();
}

bool
decodeSubmitBatch(const std::vector<std::uint8_t> &payload,
                  std::vector<ServeJob> &out)
{
    WireReader r(payload);
    const std::uint32_t n = r.u32();
    out.clear();
    for (std::uint32_t i = 0; i < n && r.ok(); i++) {
        ServeJob j;
        j.kernel = r.str();
        j.label = r.str();
        j.scale = r.u8();
        j.configKey = r.str();
        out.push_back(std::move(j));
    }
    return r.done() && out.size() == n;
}

std::vector<std::uint8_t>
encodeSubmitReply(const std::vector<ServeResult> &results)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(results.size()));
    for (const ServeResult &res : results) {
        w.str(res.outcome);
        w.str(res.error);
        w.str(res.policy);
        w.u64(res.cycles);
        w.f64(res.energyNj);
        w.f64(res.wallMs);
        w.u8(res.cached ? 1 : 0);
        w.str(res.fingerprint);
    }
    return w.take();
}

bool
decodeSubmitReply(const std::vector<std::uint8_t> &payload,
                  std::vector<ServeResult> &out)
{
    WireReader r(payload);
    const std::uint32_t n = r.u32();
    out.clear();
    for (std::uint32_t i = 0; i < n && r.ok(); i++) {
        ServeResult res;
        res.outcome = r.str();
        res.error = r.str();
        res.policy = r.str();
        res.cycles = r.u64();
        res.energyNj = r.f64();
        res.wallMs = r.f64();
        res.cached = r.u8() != 0;
        res.fingerprint = r.str();
        out.push_back(std::move(res));
    }
    return r.done() && out.size() == n;
}

std::vector<std::uint8_t>
encodeStatusReply(const ServeStatus &s)
{
    WireWriter w;
    w.u32(s.workers);
    w.u64(s.batches);
    w.u64(s.jobs);
    w.str(s.cacheDir);
    w.str(s.buildFingerprint);
    return w.take();
}

bool
decodeStatusReply(const std::vector<std::uint8_t> &payload,
                  ServeStatus &out)
{
    WireReader r(payload);
    out.workers = r.u32();
    out.batches = r.u64();
    out.jobs = r.u64();
    out.cacheDir = r.str();
    out.buildFingerprint = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeCacheStatsReply(const ServeCacheCounters &c)
{
    WireWriter w;
    w.u64(c.entries);
    w.u64(c.bytes);
    w.u64(c.hits);
    w.u64(c.misses);
    w.u64(c.inserted);
    w.u64(c.corrupt);
    w.u64(c.evicted);
    w.str(c.dir);
    return w.take();
}

bool
decodeCacheStatsReply(const std::vector<std::uint8_t> &payload,
                      ServeCacheCounters &out)
{
    WireReader r(payload);
    out.entries = r.u64();
    out.bytes = r.u64();
    out.hits = r.u64();
    out.misses = r.u64();
    out.inserted = r.u64();
    out.corrupt = r.u64();
    out.evicted = r.u64();
    out.dir = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeError(const std::string &message)
{
    WireWriter w;
    w.str(message);
    return w.take();
}

bool
decodeError(const std::vector<std::uint8_t> &payload, std::string &out)
{
    WireReader r(payload);
    out = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeFlushReply(std::uint64_t removed)
{
    WireWriter w;
    w.u64(removed);
    return w.take();
}

bool
decodeFlushReply(const std::vector<std::uint8_t> &payload,
                 std::uint64_t &out)
{
    WireReader r(payload);
    out = r.u64();
    return r.done();
}

} // namespace dws
