/**
 * @file
 * Runtime invariant checker over the DWS machinery.
 *
 * The warp-subdivision state machine distributes one warp's lanes over
 * live splits, re-convergence frames, parked barrier arrivals, slip
 * entries and the halted set. Any bookkeeping bug shows up as a lane
 * that is double-driven or silently lost — usually many thousands of
 * cycles before the resulting deadlock or wrong output. The checker
 * audits the full structure at a configurable cadence
 * (SystemConfig::checkInvariants, `dws_sim --check-invariants[=N]`):
 *
 *  - lane conservation: halted + slipped + split masks/frames + barrier
 *    state cover exactly the warp's lanes
 *  - mask disjointness across a warp's live splits
 *  - re-convergence stack balance: a group's mask equals its top
 *    frame's mask minus off lanes; frame masks stay inside the warp
 *  - WST occupancy matches live + parked groups, within capacity
 *  - scheduler slot accounting matches group slot flags; the slot wait
 *    queue holds only live, slotless groups, each at most once
 *  - MSHR entry-leak detection (an entry past its fill time means a
 *    release event was lost)
 *  - lost-wake detection (a WaitMem group with no pending lanes past
 *    its readyAt lost its wake event and would sleep forever)
 *  - cache tag uniqueness (two valid ways of one set with equal tags
 *    shadow each other's MESI state)
 *  - static divergence soundness: no branch predicted uniform may ever
 *    be observed divergent
 *
 * Violations carry cycle/warp/pc context. Wpu::tick aborts with
 * SimOutcome::InvariantViolation on the first violation (recoverable
 * under the sweep harness, sim/abort.hh); tests call
 * InvariantChecker::auditWpu directly.
 */

#ifndef DWS_ANALYSIS_INVARIANTS_HH
#define DWS_ANALYSIS_INVARIANTS_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace dws {

class Wpu;
struct SimdGroup;
struct Warp;

/** One runtime invariant violation. */
struct Violation
{
    Cycle cycle = 0;
    WpuId wpu = -1;
    WarpId warp = -1;  ///< -1 if not warp-specific
    GroupId group = -1; ///< -1 if not group-specific
    Pc pc = kPcExit;    ///< pc of the offending group, if any
    std::string message;
};

/** @return one-line rendering with cycle/wpu/warp/group/pc context. */
std::string toString(const Violation &v);

/** Debug-mode audit of a WPU's warp-subdivision state. */
class InvariantChecker
{
  public:
    /**
     * Audit every warp, group, barrier, the WST, the scheduler and the
     * WPU's MSHR files.
     *
     * @param wpu the WPU to audit (read-only)
     * @param now current cycle (for MSHR-leak detection and context)
     * @return all violations found (empty when the state is sound)
     */
    static std::vector<Violation> auditWpu(const Wpu &wpu, Cycle now);

  private:
    struct AuditCtx;
    static void auditGroup(AuditCtx &ctx, const SimdGroup *g);
    static void auditWarp(AuditCtx &ctx, const Warp &warp);
};

} // namespace dws

#endif // DWS_ANALYSIS_INVARIANTS_HH
