/**
 * @file
 * Static IR verifier: a structural lint over kernel programs.
 *
 * The WPU model trusts its input program completely — an out-of-range
 * branch target or a fall-through past the end of code corrupts the
 * re-convergence machinery in ways that surface many cycles later. The
 * verifier front-loads those failures: KernelBuilder::build() runs it on
 * every kernel, and `dws_lint` exposes it on the command line.
 *
 * Checks (Errors unless noted):
 *  - non-empty program, all opcodes valid, register indices < kNumRegs
 *  - branch/jump targets inside the program
 *  - no reachable instruction falls through past the end of code
 *  - every reachable instruction can reach a Halt
 *  - unreachable instructions (Warning)
 *  - registers read before any definition on some path (Warning; the
 *    register file is zero-initialized, so this is legal but suspicious)
 *  - CfgAnalysis::immediatePostDominators agrees with an independent
 *    iterative set-based post-dominator dataflow (Program overload)
 */

#ifndef DWS_ANALYSIS_VERIFIER_HH
#define DWS_ANALYSIS_VERIFIER_HH

#include <vector>

#include "analysis/diagnostic.hh"
#include "isa/program.hh"

namespace dws {

/** Structural verifier over kernel IR. */
class Verifier
{
  public:
    /** Run the structural checks on a raw instruction sequence. */
    static std::vector<Diagnostic> verify(const std::vector<Instr> &code);

    /**
     * Run the structural checks plus cross-validation of the program's
     * cached branch metadata: brInfo.ipdom must match both the
     * Cooper-Harvey-Kennedy result and an independent iterative
     * post-dominator-set dataflow.
     */
    static std::vector<Diagnostic> verify(const Program &prog);

    /**
     * Immediate post-dominators recomputed by plain iterative dataflow
     * over post-dominator *sets* (no dominator-tree tricks). Quadratic
     * and simple on purpose: it is the independent referee for the
     * production CHK implementation in CfgAnalysis.
     *
     * @return per-pc immediate post-dominator, kPcExit when the virtual
     *         exit node is the only strict post-dominator (or the
     *         instruction cannot reach exit at all)
     */
    static std::vector<Pc> ipdomByDataflow(const std::vector<Instr> &code);
};

} // namespace dws

#endif // DWS_ANALYSIS_VERIFIER_HH
