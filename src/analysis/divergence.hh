/**
 * @file
 * Static divergence analysis: classify each conditional branch as
 * uniform (all lanes of a group always agree) or potentially divergent.
 *
 * This is the compiler pass the paper assumes exists ("in practice this
 * process would be automated by the compiler", Section 4.3), in the
 * style of Ocelot's DivergenceAnalysis: taint propagation over the
 * def-use graph seeded from the thread-id register, extended with
 * control-dependence taint (a write inside the influence region of a
 * divergent branch can differ across lanes even if its operands are
 * uniform, because lanes from both paths later share one group) and
 * loop-carried taint (re-convergence after a loop exit, and PC-based
 * merging of run-ahead warp-splits, re-unite lanes that executed
 * different iteration counts, so induction variables of loops that can
 * split are per-lane values).
 *
 * The lattice is deliberately conservative so the "uniform" verdict is
 * sound: only values derived from immediates and r1 (the thread count)
 * through deterministic ALU ops, outside any divergent influence
 * region, are uniform. Loads are always divergent (memory is shared
 * mutable state), and registers never written stay divergent (their
 * zero initial value is uniform, but treating them as divergent keeps
 * hand-annotated test kernels subdividable). A branch on a uniform
 * register can never split a group, so CfgAnalysis only sets
 * kFlagSubdividable on branches this pass marks divergent.
 */

#ifndef DWS_ANALYSIS_DIVERGENCE_HH
#define DWS_ANALYSIS_DIVERGENCE_HH

#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace dws {

/** Result of the static divergence analysis over one program. */
struct DivergenceReport
{
    /**
     * Per-pc verdict; meaningful only where the instruction is a Br.
     * True if the branch condition may differ across the lanes of one
     * SIMD group.
     */
    std::vector<bool> branchMayDiverge;

    /** Number of conditional branches classified uniform. */
    int uniformBranches = 0;

    /** Number of conditional branches classified potentially divergent. */
    int divergentBranches = 0;

    /** @return verdict for the branch at pc (true if out of range). */
    bool mayDiverge(Pc pc) const
    {
        if (pc < 0 || pc >= static_cast<Pc>(branchMayDiverge.size()))
            return true;
        return branchMayDiverge[static_cast<size_t>(pc)];
    }
};

/**
 * Optional refinements of the taint analysis. The defaults reproduce
 * the classic conservative analysis that drives warp subdivision
 * (CfgAnalysis reads it to set kFlagSubdividable); the refinements are
 * for clients that need precision instead of the paper's annotation
 * semantics, e.g. the barrier-divergence prover.
 */
struct DivergenceOptions
{
    /**
     * Assume global barriers synchronize: warp-splits cannot cross a
     * Bar, so a loop whose every cycle passes through one keeps all
     * threads at equal iteration counts and its induction variables
     * stay uniform. Sound only together with a check that every
     * barrier is reached under uniform control flow (assume-guarantee,
     * discharged by BarrierAnalysis).
     */
    bool barrierSync = false;

    /**
     * Treat never-written registers as uniform. Their value is the
     * zero-initialized register file, identical in every lane; the
     * default analysis deliberately calls them divergent to keep
     * hand-annotated test kernels subdividable.
     */
    bool zeroInitUniform = false;
};

/** Ocelot-style taint analysis over the instruction-level CFG. */
class DivergenceAnalysis
{
  public:
    /** Classify every conditional branch in the program. */
    static DivergenceReport analyze(const std::vector<Instr> &code,
                                    const DivergenceOptions &opts = {});
};

} // namespace dws

#endif // DWS_ANALYSIS_DIVERGENCE_HH
