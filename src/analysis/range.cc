#include "analysis/range.hh"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>

namespace dws {

namespace {

using I128 = __int128;

constexpr std::int64_t kNegInf = Interval::kNegInf;
constexpr std::int64_t kPosInf = Interval::kPosInf;

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

std::string
boundStr(std::int64_t b)
{
    if (b == kNegInf)
        return "-inf";
    if (b == kPosInf)
        return "+inf";
    return std::to_string(b);
}

std::string
ivStr(const Interval &iv)
{
    return "[" + boundStr(iv.lo) + ", " + boundStr(iv.hi) + "]";
}

/** Clamp a 128-bit bound to int64; clamping hits the infinity sentinel. */
std::int64_t
satBound(I128 v)
{
    if (v <= I128(kNegInf))
        return kNegInf;
    if (v >= I128(kPosInf))
        return kPosInf;
    return static_cast<std::int64_t>(v);
}

/** a + b where a may be an infinity sentinel and b is a small step. */
std::int64_t
satStep(std::int64_t a, std::int64_t b)
{
    if (a == kNegInf || a == kPosInf)
        return a;
    return satBound(I128(a) + I128(b));
}

/** @return v only if the exact 128-bit value fits in int64. */
bool
fits(I128 v, std::int64_t &out)
{
    if (v < I128(INT64_MIN) || v > I128(INT64_MAX))
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

/**
 * Interval addition under wraparound semantics: the result is only
 * meaningful when every attainable sum stays inside int64, which
 * requires both operands bounded and both 128-bit corner sums in range.
 */
Interval
addIv(const Interval &a, const Interval &b)
{
    // Each bound survives independently: a half-bounded operand (e.g.
    // a widened loop counter [0, +inf]) keeps its finite side.
    Interval r = Interval::full();
    std::int64_t v;
    if (a.boundedLo() && b.boundedLo() &&
        fits(I128(a.lo) + I128(b.lo), v))
        r.lo = v;
    if (a.boundedHi() && b.boundedHi() &&
        fits(I128(a.hi) + I128(b.hi), v))
        r.hi = v;
    return r;
}

Interval
subIv(const Interval &a, const Interval &b)
{
    Interval r = Interval::full();
    std::int64_t v;
    if (a.boundedLo() && b.boundedHi() &&
        fits(I128(a.lo) - I128(b.hi), v))
        r.lo = v;
    if (a.boundedHi() && b.boundedLo() &&
        fits(I128(a.hi) - I128(b.lo), v))
        r.hi = v;
    return r;
}

Interval
mulIv(const Interval &a, const Interval &b)
{
    if (a == Interval::constant(0) || b == Interval::constant(0))
        return Interval::constant(0);
    if (!a.bounded() || !b.bounded())
        return Interval::full();
    const I128 c[4] = {I128(a.lo) * b.lo, I128(a.lo) * b.hi,
                       I128(a.hi) * b.lo, I128(a.hi) * b.hi};
    I128 lo128 = c[0], hi128 = c[0];
    for (const I128 v : c) {
        lo128 = std::min(lo128, v);
        hi128 = std::max(hi128, v);
    }
    std::int64_t lo, hi;
    if (!fits(lo128, lo) || !fits(hi128, hi))
        return Interval::full();
    return Interval{lo, hi};
}

/** Truncating division; the ISA defines x/0 == 0. */
Interval
divIv(const Interval &a, const Interval &b)
{
    if (b == Interval::constant(0))
        return Interval::constant(0);
    if (b.lo < 1)
        return Interval::full(); // divisor may be 0 or negative
    // b >= 1: |a/b| <= |a|, so division never wraps.
    std::int64_t lo, hi;
    if (a.lo == kNegInf)
        lo = kNegInf;
    else if (a.lo >= 0)
        lo = b.boundedHi() ? a.lo / b.hi : 0;
    else
        lo = a.lo / b.lo;
    if (a.hi == kPosInf)
        hi = kPosInf;
    else if (a.hi >= 0)
        hi = a.hi / b.lo;
    else
        hi = b.boundedHi() ? a.hi / b.hi : 0;
    return Interval{lo, hi};
}

/** Remainder; the ISA defines x%0 == 0. */
Interval
remIv(const Interval &a, const Interval &b)
{
    if (b == Interval::constant(0))
        return Interval::constant(0);
    if (b.lo >= 1 && a.lo >= 0)
        return Interval{0, std::min(satStep(b.hi, -1), a.hi)};
    return Interval::full();
}

Interval
andIv(const Interval &a, const Interval &b)
{
    // A bitwise AND with one provably non-negative operand clears the
    // sign bit and cannot exceed that operand.
    if (a.lo >= 0 && b.lo >= 0)
        return Interval{0, std::min(a.hi, b.hi)};
    if (a.lo >= 0)
        return Interval{0, a.hi};
    if (b.lo >= 0)
        return Interval{0, b.hi};
    return Interval::full();
}

/** Shared bound for OR and XOR: below the next power of two. */
Interval
orXorIv(const Interval &a, const Interval &b)
{
    if (a.lo < 0 || b.lo < 0)
        return Interval::full();
    if (!a.boundedHi() || !b.boundedHi())
        return Interval{0, kPosInf};
    const std::uint64_t m =
            static_cast<std::uint64_t>(std::max(a.hi, b.hi));
    const int k = std::bit_width(m);
    std::int64_t hi;
    if (!fits((I128(1) << k) - 1, hi))
        return Interval{0, kPosInf};
    return Interval{0, hi};
}

Interval
shlIv(const Interval &a, const Interval &b)
{
    // The hardware masks the shift amount with 63; a wider static range
    // would alias, so only in-range shifts of non-negative values are
    // representable without wrap.
    if (b.lo < 0 || b.hi > 63 || a.lo < 0 || !a.boundedHi())
        return Interval::full();
    std::int64_t lo, hi;
    if (!fits(I128(a.lo) << b.lo, lo) || !fits(I128(a.hi) << b.hi, hi))
        return Interval::full();
    return Interval{lo, hi};
}

Interval
shrIv(const Interval &a, const Interval &b)
{
    if (b.lo < 0 || b.hi > 63)
        return Interval::full();
    std::int64_t lo, hi;
    if (a.lo == kNegInf) {
        lo = kNegInf;
    } else {
        lo = std::min(a.lo >> b.lo, a.lo >> b.hi);
    }
    if (a.hi == kPosInf) {
        hi = kPosInf;
    } else {
        hi = std::max(a.hi >> b.lo, a.hi >> b.hi);
    }
    return Interval{lo, hi};
}

Interval
minIv(const Interval &a, const Interval &b)
{
    return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval
maxIv(const Interval &a, const Interval &b)
{
    return Interval{std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/** The value-range abstract domain over the register file. */
struct RangeDomain
{
    using State = RegFileState;

    const InstrCfg *cfg = nullptr;
    std::int64_t numThreads = 0; ///< 0 = statically unknown

    State
    boundary() const
    {
        State s;
        s.bottom = false;
        for (auto &r : s.regs)
            r.iv = Interval::constant(0); // register file zeroed at launch
        AbsVal tid;
        tid.iv = numThreads > 0 ? Interval{0, numThreads - 1}
                                : Interval{0, kPosInf};
        tid.nt = NtBound{1, -1}; // tid <= NT - 1
        s.regs[0] = tid;
        AbsVal nt;
        nt.iv = numThreads > 0 ? Interval::constant(numThreads)
                               : Interval{1, kPosInf};
        nt.isNt = true;
        s.regs[1] = nt;
        return s;
    }

    /** The engine's optimistic initial value: unreached. */
    State top() const { return State{}; }

    static AbsVal
    joinVal(const AbsVal &a, const AbsVal &b)
    {
        AbsVal r;
        r.iv = Interval{std::min(a.iv.lo, b.iv.lo),
                        std::max(a.iv.hi, b.iv.hi)};
        if (a.nt && b.nt)
            r.nt = NtBound{std::max(a.nt->c, b.nt->c),
                           std::max(a.nt->d, b.nt->d)};
        if (a.pred && b.pred && *a.pred == *b.pred)
            r.pred = a.pred;
        r.isNt = a.isNt && b.isNt;
        return r;
    }

    bool
    join(State &into, const State &from) const
    {
        if (from.bottom)
            return false;
        if (into.bottom) {
            into = from;
            return true;
        }
        bool changed = false;
        for (int r = 0; r < kNumRegs; r++) {
            AbsVal j = joinVal(into.regs[static_cast<size_t>(r)],
                               from.regs[static_cast<size_t>(r)]);
            if (!(j == into.regs[static_cast<size_t>(r)])) {
                into.regs[static_cast<size_t>(r)] = j;
                changed = true;
            }
        }
        return changed;
    }

    /** Threshold widening: an unstable bound drops to 0, then to inf. */
    void
    widen(State &into, const State &from) const
    {
        if (from.bottom)
            return;
        if (into.bottom) {
            into = from;
            return;
        }
        for (int r = 0; r < kNumRegs; r++) {
            AbsVal &a = into.regs[static_cast<size_t>(r)];
            const AbsVal &b = from.regs[static_cast<size_t>(r)];
            if (b.iv.lo < a.iv.lo)
                a.iv.lo = b.iv.lo >= 0 ? 0 : kNegInf;
            if (b.iv.hi > a.iv.hi)
                a.iv.hi = kPosInf;
            if (!(a.nt == b.nt))
                a.nt.reset();
            if (!(a.pred == b.pred))
                a.pred.reset();
            a.isNt = a.isNt && b.isNt;
        }
    }

    /** Write rd and invalidate predicate facts that mention it. */
    static void
    define(State &s, std::uint8_t rd, AbsVal v)
    {
        if (rd >= kNumRegs)
            return;
        if (v.pred &&
            (v.pred->lhs == rd || (!v.pred->rhsIsImm && v.pred->rhs == rd)))
            v.pred.reset(); // fact would reference the overwritten value
        s.regs[rd] = std::move(v);
        for (int r = 0; r < kNumRegs; r++) {
            if (r == rd)
                continue;
            auto &p = s.regs[static_cast<size_t>(r)].pred;
            if (p && (p->lhs == rd || (!p->rhsIsImm && p->rhs == rd)))
                p.reset();
        }
    }

    /** Abstract a compare; remembers the predicate for branch refinement. */
    static AbsVal
    compare(Op cmp, const AbsVal &a, const AbsVal &b, std::uint8_t ra,
            std::uint8_t rb, bool rhsIsImm, std::int64_t imm)
    {
        AbsVal r;
        r.iv = Interval{0, 1};

        // Decide statically when the operand intervals are disjoint
        // or ordered.
        const Interval &x = a.iv, &y = b.iv;
        switch (cmp) {
          case Op::Slt:
            if (x.boundedHi() && y.boundedLo() && x.hi < y.lo)
                r.iv = Interval::constant(1);
            else if (x.boundedLo() && y.boundedHi() && x.lo >= y.hi)
                r.iv = Interval::constant(0);
            break;
          case Op::Sle:
            if (x.boundedHi() && y.boundedLo() && x.hi <= y.lo)
                r.iv = Interval::constant(1);
            else if (x.boundedLo() && y.boundedHi() && x.lo > y.hi)
                r.iv = Interval::constant(0);
            break;
          case Op::Seq:
          case Op::Sne: {
            std::int64_t decided = -1;
            if (x.isConstant() && x == y)
                decided = 1;
            else if ((x.boundedHi() && y.boundedLo() && x.hi < y.lo) ||
                     (x.boundedLo() && y.boundedHi() && x.lo > y.hi))
                decided = 0;
            if (decided >= 0)
                r.iv = Interval::constant(cmp == Op::Seq ? decided
                                                         : 1 - decided);
            break;
          }
          default:
            break;
        }

        // seq/sne against a provably-zero register forwards (negated)
        // an existing predicate fact: the builder's NOT idiom.
        if ((cmp == Op::Seq || cmp == Op::Sne) && !rhsIsImm) {
            const AbsVal *fact = nullptr;
            if (b.iv == Interval::constant(0) && a.pred)
                fact = &a;
            else if (a.iv == Interval::constant(0) && b.pred)
                fact = &b;
            if (fact) {
                r.pred = fact->pred;
                if (cmp == Op::Seq)
                    r.pred->negated = !r.pred->negated;
                return r;
            }
        }

        PredFact p;
        p.cmp = cmp;
        p.lhs = ra;
        p.rhs = rb;
        p.imm = imm;
        p.rhsIsImm = rhsIsImm;
        r.pred = p;
        return r;
    }

    // GCC's -Wmaybe-uninitialized misfires on the by-value AbsVal
    // returns below: it tracks the disengaged optional's payload, which
    // is never read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
    void
    transfer(Pc, const Instr &in, State &s) const
    {
        if (s.bottom)
            return;
        const auto val = [&](std::uint8_t r) -> const AbsVal & {
            return s.regs[r < kNumRegs ? r : 0];
        };
        const auto immVal = [&] {
            AbsVal v;
            v.iv = Interval::constant(in.imm);
            return v;
        };

        // Propagate the NT-scaled bound `v <= c*NT + d` through an
        // additive or multiplicative constant. Soundness under wrap
        // needs the operand's stored value provably non-negative: an
        // upward wrap then leaves the stored result below the
        // mathematical bound, and a downward wrap cannot happen.
        const auto ntAdd = [](const AbsVal &a, std::int64_t k,
                              AbsVal &res) {
            std::int64_t d;
            if (a.nt && a.iv.lo >= 0 && fits(I128(a.nt->d) + k, d))
                res.nt = NtBound{a.nt->c, d};
        };
        const auto ntMul = [](const AbsVal &a, std::int64_t k,
                              AbsVal &res) {
            std::int64_t c, d;
            if (a.nt && a.iv.lo >= 0 && k >= 0 &&
                fits(I128(a.nt->c) * k, c) && fits(I128(a.nt->d) * k, d))
                res.nt = NtBound{c, d};
        };

        AbsVal res;
        switch (in.op) {
          case Op::Add:
          case Op::Addi: {
            const AbsVal &a = val(in.ra);
            const AbsVal b = in.op == Op::Add ? val(in.rb) : immVal();
            res.iv = addIv(a.iv, b.iv);
            if (b.iv.isConstant())
                ntAdd(a, b.iv.lo, res);
            else if (a.iv.isConstant())
                ntAdd(b, a.iv.lo, res);
            break;
          }
          case Op::Sub:
            res.iv = subIv(val(in.ra).iv, val(in.rb).iv);
            if (val(in.rb).iv.isConstant())
                ntAdd(val(in.ra), -val(in.rb).iv.lo, res);
            break;
          case Op::Mul:
          case Op::Muli: {
            const AbsVal &a = val(in.ra);
            const AbsVal b = in.op == Op::Mul ? val(in.rb) : immVal();
            res.iv = mulIv(a.iv, b.iv);
            if (b.iv.isConstant())
                ntMul(a, b.iv.lo, res);
            else if (a.iv.isConstant())
                ntMul(b, a.iv.lo, res);
            break;
          }
          case Op::Div: {
            const AbsVal &a = val(in.ra);
            const AbsVal &b = val(in.rb);
            res.iv = divIv(a.iv, b.iv);
            // a <= c*NT + d and a >= 0 divided by r1 (== NT >= 1):
            // result <= c + d (d >= 0) or c - 1 (d < 0).
            std::int64_t hi;
            if (b.isNt && a.nt && a.iv.lo >= 0 &&
                fits(I128(a.nt->c) + (a.nt->d >= 0 ? a.nt->d : -1), hi)) {
                res.iv.hi = std::min(res.iv.hi, hi);
                res.iv.lo = std::max(res.iv.lo, std::int64_t{0});
            }
            break;
          }
          case Op::Rem:
            res.iv = remIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::And:
            res.iv = andIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::Andi:
            res.iv = andIv(val(in.ra).iv, Interval::constant(in.imm));
            break;
          case Op::Or:
          case Op::Xor:
            res.iv = orXorIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::Shl:
            res.iv = shlIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::Shli:
            res.iv = shlIv(val(in.ra).iv, Interval::constant(in.imm));
            ntMul(val(in.ra),
                  in.imm >= 0 && in.imm <= 62
                          ? (std::int64_t{1} << in.imm)
                          : std::int64_t{-1},
                  res);
            break;
          case Op::Shr:
            res.iv = shrIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::Shri:
            res.iv = shrIv(val(in.ra).iv, Interval::constant(in.imm));
            break;
          case Op::Slt:
          case Op::Sle:
          case Op::Seq:
          case Op::Sne:
            res = compare(in.op, val(in.ra), val(in.rb), in.ra, in.rb,
                          false, 0);
            break;
          case Op::Slti: {
            const AbsVal rhs = immVal();
            res = compare(Op::Slt, val(in.ra), rhs, in.ra, 0, true,
                          in.imm);
            break;
          }
          case Op::Min: {
            const AbsVal &a = val(in.ra), &b = val(in.rb);
            res.iv = minIv(a.iv, b.iv);
            // min(a, b) <= a, so either operand's NT bound carries over.
            res.nt = a.nt ? a.nt : b.nt;
            break;
          }
          case Op::Max:
            res.iv = maxIv(val(in.ra).iv, val(in.rb).iv);
            break;
          case Op::Movi:
            res.iv = Interval::constant(in.imm);
            break;
          case Op::Mov:
            res = val(in.ra);
            break;
          case Op::Ld:
            res.iv = Interval::full(); // memory contents are unknown
            break;
          case Op::Nop:
          case Op::St:
          case Op::Br:
          case Op::Jmp:
          case Op::Bar:
          case Op::Halt:
          case Op::NumOps:
            return; // no register effect
        }
        define(s, in.rd, std::move(res));
    }
#pragma GCC diagnostic pop

    /** Narrow both compare operands with the (possibly negated) fact. */
    static void
    applyFact(State &s, const PredFact &f, bool truth)
    {
        Interval rhs = f.rhsIsImm ? Interval::constant(f.imm)
                                  : s.regs[f.rhs].iv;
        Interval &lhs = s.regs[f.lhs].iv;

        Op cmp = f.cmp;
        if (!truth) {
            // !(a < b) == (b <= a) etc: swap sides and flip.
            switch (cmp) {
              case Op::Slt: cmp = Op::Sle; std::swap(lhs.lo, rhs.lo);
                            std::swap(lhs.hi, rhs.hi); break;
              case Op::Sle: cmp = Op::Slt; std::swap(lhs.lo, rhs.lo);
                            std::swap(lhs.hi, rhs.hi); break;
              case Op::Seq: cmp = Op::Sne; break;
              case Op::Sne: cmp = Op::Seq; break;
              default: return;
            }
        }
        const bool swapped = !truth && (f.cmp == Op::Slt ||
                                        f.cmp == Op::Sle);

        switch (cmp) {
          case Op::Slt:
            lhs.hi = std::min(lhs.hi, satStep(rhs.hi, -1));
            rhs.lo = std::max(rhs.lo, satStep(lhs.lo, 1));
            break;
          case Op::Sle:
            lhs.hi = std::min(lhs.hi, rhs.hi);
            rhs.lo = std::max(rhs.lo, lhs.lo);
            break;
          case Op::Seq:
            lhs.lo = rhs.lo = std::max(lhs.lo, rhs.lo);
            lhs.hi = rhs.hi = std::min(lhs.hi, rhs.hi);
            break;
          case Op::Sne:
            if (rhs.isConstant()) {
                if (lhs.lo == rhs.lo)
                    lhs.lo = satStep(lhs.lo, 1);
                if (lhs.hi == rhs.lo)
                    lhs.hi = satStep(lhs.hi, -1);
            }
            if (lhs.isConstant()) {
                if (rhs.lo == lhs.lo)
                    rhs.lo = satStep(rhs.lo, 1);
                if (rhs.hi == lhs.lo)
                    rhs.hi = satStep(rhs.hi, -1);
            }
            break;
          default:
            break;
        }

        if (swapped) {
            std::swap(lhs.lo, rhs.lo);
            std::swap(lhs.hi, rhs.hi);
        }
        if (!f.rhsIsImm)
            s.regs[f.rhs].iv = rhs;
        if (lhs.empty() || rhs.empty())
            s.bottom = true;
    }

    /** Conditional-branch refinement along one outgoing edge. */
    void
    edge(Pc from, Pc to, State &s) const
    {
        if (s.bottom)
            return;
        const Instr &in = cfg->code()[static_cast<size_t>(from)];
        if (in.op != Op::Br || in.ra >= kNumRegs || in.target == from + 1)
            return;
        const bool taken = to == in.target;
        AbsVal &c = s.regs[in.ra];

        if (c.pred)
            applyFact(s, *c.pred, taken != c.pred->negated);
        if (s.bottom)
            return;

        if (taken) { // c != 0
            if (c.iv == Interval::constant(0)) {
                s.bottom = true;
            } else if (c.iv.lo == 0) {
                c.iv.lo = 1;
            } else if (c.iv.hi == 0) {
                c.iv.hi = -1;
            }
        } else { // c == 0
            if (!c.iv.contains(0) || c.isNt) {
                s.bottom = true; // r1 >= 1: a zero r1 is unreachable
            } else {
                c.iv = Interval::constant(0);
            }
        }
    }
};

} // namespace

const char *
memVerdictName(MemVerdict v)
{
    switch (v) {
      case MemVerdict::Proved:      return "proved";
      case MemVerdict::Unproved:    return "unproved";
      case MemVerdict::OutOfBounds: return "out-of-bounds";
    }
    return "???";
}

RangeResult
RangeAnalysis::analyze(const std::vector<Instr> &code,
                       std::uint64_t memBytes, std::int64_t numThreads)
{
    RangeResult result;
    const InstrCfg cfg(code);
    const RangeDomain dom{&cfg, numThreads};

    // Widen at targets of retreating edges (covers irreducible loops).
    FixpointOptions opts;
    opts.widenPoints.assign(code.size(), false);
    for (Pc u = 0; u < cfg.size(); u++) {
        if (!cfg.reachable(u))
            continue;
        for (Pc v : cfg.succs(u))
            if (cfg.rpoIndex(v) <= cfg.rpoIndex(u))
                opts.widenPoints[static_cast<size_t>(v)] = true;
    }

    auto in = runForward(cfg, dom, opts);

    // Two decreasing sweeps recover the bounds widening destroyed.
    for (int sweep = 0; sweep < 2; sweep++) {
        for (Pc pc : cfg.rpo()) {
            RegFileState next =
                    pc == 0 ? dom.boundary() : RegFileState{};
            for (Pc p : cfg.preds(pc)) {
                if (!cfg.reachable(p) ||
                    in[static_cast<size_t>(p)].bottom)
                    continue;
                RegFileState out = in[static_cast<size_t>(p)];
                dom.transfer(p, code[static_cast<size_t>(p)], out);
                dom.edge(p, pc, out);
                dom.join(next, out);
            }
            in[static_cast<size_t>(pc)] = std::move(next);
        }
    }

    // Judge every reachable memory access against the declared memory.
    const std::int64_t limit =
            memBytes >= static_cast<std::uint64_t>(kWordBytes)
                    ? satBound(I128(memBytes) - kWordBytes)
                    : -1;
    for (Pc pc = 0; pc < cfg.size(); pc++) {
        const Instr &instr = code[static_cast<size_t>(pc)];
        if (!instr.isMem() || !cfg.reachable(pc) ||
            in[static_cast<size_t>(pc)].bottom)
            continue;
        const RegFileState &s = in[static_cast<size_t>(pc)];
        MemAccessClaim claim;
        claim.pc = pc;
        claim.isStore = instr.op == Op::St;
        claim.addr = addIv(s.regs[instr.ra < kNumRegs ? instr.ra : 0].iv,
                           Interval::constant(instr.imm));
        const char *kind = claim.isStore ? "store" : "load";
        if (memBytes == 0) {
            claim.verdict = MemVerdict::Unproved;
        } else if (claim.addr.hi < 0 ||
                   (claim.addr.boundedLo() && claim.addr.lo > limit)) {
            claim.verdict = MemVerdict::OutOfBounds;
        } else if (claim.addr.lo >= 0 && claim.addr.boundedHi() &&
                   claim.addr.hi <= limit) {
            claim.verdict = MemVerdict::Proved;
        } else {
            claim.verdict = MemVerdict::Unproved;
        }

        switch (claim.verdict) {
          case MemVerdict::Proved:
            result.proved++;
            break;
          case MemVerdict::Unproved:
            result.unproved++;
            result.diags.push_back(Diagnostic{
                    .severity = Severity::Note,
                    .pc = pc,
                    .pass = "range",
                    .message = format(
                            "cannot prove %s address in %s stays inside "
                            "memory of %llu bytes", kind,
                            ivStr(claim.addr).c_str(),
                            static_cast<unsigned long long>(memBytes))});
            break;
          case MemVerdict::OutOfBounds:
            result.violations++;
            result.diags.push_back(Diagnostic{
                    .severity = Severity::Error,
                    .pc = pc,
                    .pass = "range",
                    .message = format(
                            "out-of-bounds %s: address in %s is always "
                            "outside memory of %llu bytes", kind,
                            ivStr(claim.addr).c_str(),
                            static_cast<unsigned long long>(memBytes))});
            break;
        }
        result.accesses.push_back(claim);
    }

    decorate(result.diags, code);
    result.states = std::move(in);
    return result;
}

} // namespace dws
