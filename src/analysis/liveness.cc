#include "analysis/liveness.hh"

#include <cstdarg>
#include <cstdio>
#include <iterator>

namespace dws {

namespace {

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

/** Registers an instruction reads. */
RegSet
useMask(const Instr &in)
{
    RegSet m = 0;
    if (opReadsRa(in.op) && in.ra < kNumRegs)
        m |= RegSet(1) << in.ra;
    if (opReadsRb(in.op) && in.rb < kNumRegs)
        m |= RegSet(1) << in.rb;
    return m;
}

/** Register an instruction writes (0 if none). */
RegSet
defMask(const Instr &in)
{
    if (opWritesRd(in.op) && in.rd < kNumRegs)
        return RegSet(1) << in.rd;
    return 0;
}

/** Backward may-analysis: live registers. */
struct LivenessDomain
{
    using State = RegSet;

    State boundary() const { return 0; }
    State top() const { return 0; }

    bool
    join(State &into, const State &from) const
    {
        const State joined = into | from;
        const bool changed = joined != into;
        into = joined;
        return changed;
    }

    void
    transfer(Pc, const Instr &in, State &s) const
    {
        s &= ~defMask(in);
        s |= useMask(in);
    }
};

/** Forward may-analysis: reaching definition sites, as a bitset. */
struct ReachingDomain
{
    using State = std::vector<std::uint64_t>;

    int numInstrs = 0;
    int words = 0;
    /** Per-register bitset of that register's definition sites. */
    std::vector<State> killOf;

    explicit
    ReachingDomain(const InstrCfg &cfg)
        : numInstrs(cfg.size()),
          words((cfg.size() + kNumRegs + 63) / 64),
          killOf(kNumRegs,
                 State(static_cast<size_t>((cfg.size() + kNumRegs + 63) /
                                           64),
                       0))
    {
        for (Pc pc = 0; pc < numInstrs; pc++) {
            const Instr &in = cfg.code()[static_cast<size_t>(pc)];
            if (opWritesRd(in.op) && in.rd < kNumRegs)
                set(killOf[in.rd], pc);
        }
        for (int r = 0; r < kNumRegs; r++)
            set(killOf[static_cast<size_t>(r)], numInstrs + r);
    }

    static void
    set(State &s, int bit)
    {
        s[static_cast<size_t>(bit) / 64] |= std::uint64_t(1) << (bit % 64);
    }

    State top() const { return State(static_cast<size_t>(words), 0); }

    State
    boundary() const
    {
        // Every register starts with its launch pseudo-definition.
        State s = top();
        for (int r = 0; r < kNumRegs; r++)
            set(s, numInstrs + r);
        return s;
    }

    bool
    join(State &into, const State &from) const
    {
        bool changed = false;
        for (int w = 0; w < words; w++) {
            const std::uint64_t joined =
                    into[static_cast<size_t>(w)] |
                    from[static_cast<size_t>(w)];
            if (joined != into[static_cast<size_t>(w)]) {
                into[static_cast<size_t>(w)] = joined;
                changed = true;
            }
        }
        return changed;
    }

    void
    transfer(Pc pc, const Instr &in, State &s) const
    {
        if (!opWritesRd(in.op) || in.rd >= kNumRegs)
            return;
        const State &kill = killOf[in.rd];
        for (int w = 0; w < words; w++)
            s[static_cast<size_t>(w)] &= ~kill[static_cast<size_t>(w)];
        set(s, pc);
    }
};

} // namespace

bool
ReachingDefsInfo::reaches(Pc pc, int site) const
{
    const auto &s = in[static_cast<size_t>(pc)];
    return (s[static_cast<size_t>(site) / 64] >> (site % 64)) & 1;
}

bool
ReachingDefsInfo::launchDefReaches(Pc pc, int reg) const
{
    return reaches(pc, numInstrs + reg);
}

std::vector<RegSet>
ReachingDefsInfo::mustInitialized() const
{
    std::vector<RegSet> out(in.size(), 0);
    for (Pc pc = 0; pc < static_cast<Pc>(in.size()); pc++) {
        RegSet m = 0;
        for (int r = 0; r < kNumRegs; r++)
            if (!launchDefReaches(pc, r))
                m |= RegSet(1) << r;
        // r0 (tid) and r1 (thread count) are written at launch.
        m |= RegSet(1) << 0;
        m |= RegSet(1) << 1;
        out[static_cast<size_t>(pc)] = m;
    }
    return out;
}

LivenessInfo
computeLiveness(const InstrCfg &cfg)
{
    const LivenessDomain dom;
    LivenessInfo info;
    info.liveOut = runBackward(cfg, dom);
    info.liveIn.resize(info.liveOut.size());
    for (Pc pc = 0; pc < cfg.size(); pc++) {
        RegSet s = info.liveOut[static_cast<size_t>(pc)];
        dom.transfer(pc, cfg.code()[static_cast<size_t>(pc)], s);
        info.liveIn[static_cast<size_t>(pc)] = s;
    }
    return info;
}

ReachingDefsInfo
computeReachingDefs(const InstrCfg &cfg)
{
    const ReachingDomain dom(cfg);
    ReachingDefsInfo info;
    info.in = runForward(cfg, dom);
    info.numInstrs = cfg.size();
    return info;
}

std::vector<Diagnostic>
uninitReadDiagnostics(const InstrCfg &cfg)
{
    std::vector<Diagnostic> diags;
    const ReachingDefsInfo reach = computeReachingDefs(cfg);

    // A register without any reachable write site is the deliberate
    // zero-register idiom, not a missed initialization: only registers
    // that are written *somewhere* can be uninitialized on *some* path.
    RegSet everWritten = 0;
    for (Pc pc = 0; pc < cfg.size(); pc++)
        if (cfg.reachable(pc))
            everWritten |= defMask(cfg.code()[static_cast<size_t>(pc)]);

    for (Pc pc = 0; pc < cfg.size(); pc++) {
        if (!cfg.reachable(pc))
            continue;
        const Instr &in = cfg.code()[static_cast<size_t>(pc)];

        // Maybe-uninitialized reads (launch pseudo-def still reaches).
        auto warnUninit = [&](std::uint8_t r) {
            if (r >= kNumRegs || r == 0 || r == 1)
                return;
            if (((everWritten >> r) & 1) == 0)
                return;
            if (reach.launchDefReaches(pc, r))
                diags.push_back(Diagnostic{
                        .severity = Severity::Warning,
                        .pc = pc,
                        .pass = "init",
                        .message = format(
                                "register r%d may be read before it is "
                                "written (reads zero)", r)});
        };
        if (opReadsRa(in.op))
            warnUninit(in.ra);
        if (opReadsRb(in.op))
            warnUninit(in.rb);
    }
    decorate(diags, cfg.code());
    return diags;
}

std::vector<Diagnostic>
deadStoreDiagnostics(const InstrCfg &cfg)
{
    std::vector<Diagnostic> diags;
    const LivenessInfo live = computeLiveness(cfg);

    for (Pc pc = 0; pc < cfg.size(); pc++) {
        if (!cfg.reachable(pc))
            continue;
        const Instr &in = cfg.code()[static_cast<size_t>(pc)];

        // Dead stores: definition never observed.
        const RegSet def = defMask(in);
        if (def == 0 ||
            (live.liveOut[static_cast<size_t>(pc)] & def) != 0)
            continue;
        if (in.op == Op::Ld) {
            diags.push_back(Diagnostic{
                    .severity = Severity::Note,
                    .pc = pc,
                    .pass = "deadstore",
                    .message = format(
                            "loaded value in r%d is never used (access "
                            "kept for its memory side effects)",
                            in.rd)});
        } else {
            diags.push_back(Diagnostic{
                    .severity = Severity::Warning,
                    .pc = pc,
                    .pass = "deadstore",
                    .message = format(
                            "dead store: r%d is overwritten or unread "
                            "on every path from here", in.rd)});
        }
    }
    decorate(diags, cfg.code());
    return diags;
}

std::vector<Diagnostic>
livenessDiagnostics(const InstrCfg &cfg)
{
    std::vector<Diagnostic> diags = uninitReadDiagnostics(cfg);
    std::vector<Diagnostic> dead = deadStoreDiagnostics(cfg);
    diags.insert(diags.end(), std::make_move_iterator(dead.begin()),
                 std::make_move_iterator(dead.end()));
    return diags;
}

} // namespace dws
