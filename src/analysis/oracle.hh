/**
 * @file
 * Dynamic cross-validation oracle for the static-analysis claims.
 *
 * The StaticReport (analysis/report.hh) is a set of machine-checkable
 * promises about every execution of a program:
 *
 *  - mustInit[pc]: registers proven written on every path from entry
 *    to pc. A thread reading such a register without having written it
 *    contradicts the reaching-definitions pass.
 *  - accesses: per-Ld/St byte-address intervals. A lane computing an
 *    address outside its instruction's proven interval contradicts the
 *    value-range pass.
 *  - barrierUniform[pc]: Bar instructions proven to execute under
 *    uniform control. All threads must then arrive at the same
 *    sequence of such barriers, the same number of times.
 *  - loops (StaticallyBounded): per-thread worst-case trip counts. A
 *    thread iterating a loop more often contradicts the loop-bound
 *    pass.
 *
 * The WPU execution path calls the on*() hooks when an oracle is
 * attached (SystemConfig::checkOracle); the hooks are purely
 * observational and never change simulation results. A contradiction
 * panics by default — it is a soundness bug in a static pass, the
 * analysis equivalent of a failed invariant audit — or is recorded
 * when collect mode is on (tests assert on the recorded strings).
 */

#ifndef DWS_ANALYSIS_ORACLE_HH
#define DWS_ANALYSIS_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "isa/instr.hh"
#include "sim/types.hh"

namespace dws {

/** Validates static-analysis claims against a real execution. */
class ExecutionOracle
{
  public:
    /**
     * @param code       the program the report was computed over
     * @param report     the static claims to validate
     * @param numThreads launch thread count (sizes per-thread state);
     *                   must match the AnalysisInput the report used
     */
    ExecutionOracle(const std::vector<Instr> &code, StaticReport report,
                    int numThreads);

    // --- execution hooks (called by Wpu; observational only) -------
    /** Thread `tid` executes the instruction at `pc`. */
    void onIssue(Pc pc, ThreadId tid);
    /** Thread `tid` touches byte address `addr` at the Ld/St at `pc`. */
    void onMemAccess(Pc pc, ThreadId tid, bool isStore, Addr addr);
    /** Thread `tid` arrives at the Bar at `pc`. */
    void onBarrier(Pc pc, ThreadId tid);
    /** End-of-run checks (barrier-round completeness). */
    void finish();

    // --- test / reporting interface --------------------------------
    /** Record contradictions instead of panicking (tests). */
    void setCollect(bool on) { collect_ = on; }
    /** Contradictions recorded in collect mode. */
    const std::vector<std::string> &contradictions() const
    {
        return contradictions_;
    }
    /** Number of individual claim checks performed so far. */
    std::uint64_t checksPerformed() const { return checks_; }
    /** The static report being validated. */
    const StaticReport &report() const { return report_; }

  private:
    struct BoundedLoop
    {
        Pc header = 0;
        std::int64_t maxTrips = 0;
        /** Per-pc: is this a latch (back-edge source) of the loop? */
        std::vector<bool> isLatch;
        /** Per-thread consecutive trips through the header. */
        std::vector<std::int64_t> trips;
    };

    void contradict(const char *fmt, ...)
            __attribute__((format(printf, 2, 3)));

    std::vector<Instr> code_;
    StaticReport report_;
    int numThreads_ = 0;

    /** Claim availability (empty report sections disable a check). */
    bool hasInit_ = false;
    bool hasBarrier_ = false;

    /** Per-thread registers actually written (r0/r1 set at launch). */
    std::vector<RegSet> written_;
    /** Per-thread previously issued pc (kPcUnknown before the first). */
    std::vector<Pc> prevPc_;
    /** pc -> index into report_.accesses (-1 = no claim). */
    std::vector<int> accessAt_;
    /** pc -> index into loops_ (-1 = not a bounded-loop header). */
    std::vector<int> headerLoop_;
    std::vector<BoundedLoop> loops_;
    /** Per-thread count of uniform-barrier arrivals. */
    std::vector<std::int64_t> barRound_;
    /** Barrier pc of each global round, in arrival order. */
    std::vector<Pc> roundPc_;

    bool collect_ = false;
    std::uint64_t checks_ = 0;
    std::vector<std::string> contradictions_;
};

} // namespace dws

#endif // DWS_ANALYSIS_ORACLE_HH
