#include "analysis/loopbound.hh"

#include <algorithm>
#include <array>
#include <cstdio>

namespace dws {

namespace {

using I128 = __int128;

/** Continuation relation of the loop: ind REL bound keeps looping. */
enum class Rel { Lt, Le, Gt, Ge, Eq, Ne, None };

Rel
negateRel(Rel r)
{
    switch (r) {
      case Rel::Lt: return Rel::Ge;
      case Rel::Le: return Rel::Gt;
      case Rel::Gt: return Rel::Le;
      case Rel::Ge: return Rel::Lt;
      case Rel::Eq: return Rel::Ne;
      case Rel::Ne: return Rel::Eq;
      case Rel::None: break;
    }
    return Rel::None;
}

/** Mirror the relation when the induction register is the rhs. */
Rel
mirrorRel(Rel r)
{
    switch (r) {
      case Rel::Lt: return Rel::Gt;
      case Rel::Le: return Rel::Ge;
      case Rel::Gt: return Rel::Lt;
      case Rel::Ge: return Rel::Le;
      default: return r;
    }
}

Rel
relOfCmp(Op cmp)
{
    switch (cmp) {
      case Op::Slt: return Rel::Lt;
      case Op::Sle: return Rel::Le;
      case Op::Seq: return Rel::Eq;
      case Op::Sne: return Rel::Ne;
      default: return Rel::None;
    }
}

} // namespace

const char *
loopBoundKindName(LoopBoundKind k)
{
    switch (k) {
      case LoopBoundKind::StaticallyBounded: return "static";
      case LoopBoundKind::InputBounded:      return "input-bounded";
      case LoopBoundKind::Unknown:           return "unknown";
    }
    return "???";
}

LoopBoundResult
LoopBoundAnalysis::analyze(const std::vector<Instr> &code,
                           const RangeResult &ranges)
{
    LoopBoundResult result;
    const int n = static_cast<int>(code.size());

    for (const NaturalLoop &loop : CfgAnalysis::naturalLoops(code)) {
        LoopBound lb;
        lb.loop = loop;

        // Registers written inside the body, and their single writer
        // (kPcUnknown when written more than once).
        std::array<Pc, kNumRegs> writer;
        writer.fill(kPcExit); // never written
        bool hasExit = false;
        std::vector<Pc> exitBranches;
        for (Pc pc = 0; pc < n; pc++) {
            if (!loop.contains(pc))
                continue;
            const Instr &in = code[static_cast<size_t>(pc)];
            if (opWritesRd(in.op) && in.rd < kNumRegs)
                writer[in.rd] =
                        writer[in.rd] == kPcExit ? pc : kPcUnknown;
            const auto succs = CfgAnalysis::successors(code, pc);
            if (succs.empty())
                hasExit = true; // Halt terminates the thread
            bool leaves = false, stays = false;
            for (Pc s : succs)
                (loop.contains(s) ? stays : leaves) = true;
            if (leaves)
                hasExit = true;
            if (in.op == Op::Br && leaves && stays)
                exitBranches.push_back(pc);
        }

        if (!hasExit) {
            lb.kind = LoopBoundKind::Unknown;
            result.diags.push_back(Diagnostic{
                    .severity = Severity::Warning,
                    .pc = loop.header,
                    .pass = "loopbound",
                    .message = "loop has no exit: a thread that enters "
                               "can never leave it"});
            result.unknown++;
            result.loops.push_back(lb);
            continue;
        }

        // Look for the canonical counted-loop shape on an exit branch.
        for (Pc br : exitBranches) {
            if (static_cast<size_t>(br) >= ranges.states.size())
                break;
            const RegFileState &s =
                    ranges.states[static_cast<size_t>(br)];
            if (s.bottom)
                continue;
            const Instr &bi = code[static_cast<size_t>(br)];
            if (bi.ra >= kNumRegs || !s.regs[bi.ra].pred)
                continue;
            const PredFact &fact = *s.regs[bi.ra].pred;

            const bool targetInside = loop.contains(bi.target);
            // Branch value != 0 takes the target; the loop continues
            // along the in-loop edge.
            const bool contTruth = targetInside != fact.negated;

            // Which compare side is the in-loop induction register?
            const bool lhsWritten =
                    fact.lhs < kNumRegs &&
                    writer[fact.lhs] != kPcExit;
            const bool rhsWritten =
                    !fact.rhsIsImm && fact.rhs < kNumRegs &&
                    writer[fact.rhs] != kPcExit;
            int ind = -1;
            Interval bound;
            if (lhsWritten && !rhsWritten) {
                ind = fact.lhs;
                bound = fact.rhsIsImm ? Interval::constant(fact.imm)
                                      : s.regs[fact.rhs].iv;
            } else if (rhsWritten && !lhsWritten && !fact.rhsIsImm) {
                ind = fact.rhs;
                bound = s.regs[fact.lhs].iv;
            } else {
                continue;
            }

            Rel rel = relOfCmp(fact.cmp);
            if (ind == fact.rhs && !fact.rhsIsImm)
                rel = mirrorRel(rel);
            if (!contTruth)
                rel = negateRel(rel);

            // The induction register must have exactly one in-body
            // writer: ind = ind +/- constant.
            const Pc w = writer[static_cast<size_t>(ind)];
            if (w == kPcUnknown ||
                static_cast<size_t>(w) >= ranges.states.size())
                continue;
            const Instr &wi = code[static_cast<size_t>(w)];
            std::int64_t step = 0;
            if (wi.op == Op::Addi && wi.ra == ind) {
                step = wi.imm;
            } else if ((wi.op == Op::Add || wi.op == Op::Sub) &&
                       wi.ra == ind && wi.rb < kNumRegs) {
                const Interval &k =
                        ranges.states[static_cast<size_t>(w)]
                                .regs[wi.rb].iv;
                if (!k.isConstant())
                    continue;
                step = wi.op == Op::Add ? k.lo : -k.lo;
            } else {
                continue;
            }
            if (step == 0)
                continue;

            lb.inductionReg = ind;
            lb.exitBranch = br;

            const Interval &hdr =
                    ranges.states[static_cast<size_t>(loop.header)]
                            .regs[static_cast<size_t>(ind)].iv;
            I128 trips = -1;
            bool shape = false;
            if ((rel == Rel::Lt || rel == Rel::Le) && step > 0) {
                shape = true;
                // No wrap while iterating: peak value < bound + step.
                if (hdr.boundedLo() && bound.boundedHi() &&
                    I128(bound.hi) + step <= I128(INT64_MAX)) {
                    const I128 span = I128(bound.hi) - hdr.lo;
                    trips = rel == Rel::Lt ? (span + step - 1) / step
                                           : span / step + 1;
                }
            } else if ((rel == Rel::Gt || rel == Rel::Ge) && step < 0) {
                shape = true;
                if (hdr.boundedHi() && bound.boundedLo() &&
                    I128(bound.lo) + step >= I128(INT64_MIN)) {
                    const I128 span = I128(hdr.hi) - bound.lo;
                    trips = rel == Rel::Gt ? (span - step - 1) / -step
                                           : span / -step + 1;
                }
            } else if (rel == Rel::Ne && (step == 1 || step == -1)) {
                // Equality exits terminate but wraparound makes any
                // static trip bound depend on the runtime start value.
                shape = true;
            }
            if (!shape)
                continue;

            if (trips >= 0 && trips <= I128(INT64_MAX)) {
                lb.kind = LoopBoundKind::StaticallyBounded;
                lb.maxTrips = std::max<std::int64_t>(
                        0, static_cast<std::int64_t>(trips));
            } else {
                lb.kind = LoopBoundKind::InputBounded;
            }
            break;
        }

        char msg[160];
        switch (lb.kind) {
          case LoopBoundKind::StaticallyBounded:
            result.staticallyBounded++;
            std::snprintf(msg, sizeof(msg),
                          "loop is statically bounded: at most %lld "
                          "iterations per thread (induction r%d)",
                          static_cast<long long>(lb.maxTrips),
                          lb.inductionReg);
            break;
          case LoopBoundKind::InputBounded:
            result.inputBounded++;
            std::snprintf(msg, sizeof(msg),
                          "loop is input-bounded via r%d: terminates, "
                          "but the trip count depends on runtime values",
                          lb.inductionReg);
            break;
          case LoopBoundKind::Unknown:
            result.unknown++;
            std::snprintf(msg, sizeof(msg),
                          "loop has no provable trip bound");
            break;
        }
        result.diags.push_back(Diagnostic{
                .severity = Severity::Note,
                .pc = loop.header,
                .pass = "loopbound",
                .message = msg});
        result.loops.push_back(lb);
    }

    decorate(result.diags, code);
    return result;
}

} // namespace dws
