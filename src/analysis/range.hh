/**
 * @file
 * Interval value-range analysis over the kernel registers, with the
 * static in-bounds proofs for every memory access.
 *
 * The abstract value per register is an integer interval extended with
 * two relational facts that the blocked-task-range idiom every kernel
 * uses (rLo = tid*total/nthreads) makes necessary:
 *
 *  - an *NT-scaled upper bound* `val <= c*r1 + d` (r1 is the launch
 *    thread count, >= 1). r0 starts with `r0 <= 1*r1 - 1`; the bound
 *    survives addition of constants and multiplication by non-negative
 *    constants, and a division by r1 collapses it to the plain finite
 *    interval [0, c+max(d,-1)] — which is how `tid*total/nthreads`
 *    proves <= total even though neither tid nor nthreads is bounded.
 *
 *  - a *predicate fact* on compare results (slt/sle/seq/sne/slti)
 *    remembering which registers were compared, so a conditional
 *    branch refines both operands' intervals along each outgoing edge
 *    (`i < bound` caps the induction variable inside a loop body).
 *    A seq/sne against a provably-zero register negates/forwards the
 *    fact, matching the builder's `seq(r, r, zero)` NOT idiom.
 *
 * Widening at retreating-edge targets keeps the fixpoint finite; two
 * decreasing (narrowing) sweeps afterwards recover bounds the widening
 * destroyed. All arithmetic is evaluated in 128 bits and any bound
 * that could exceed the 64-bit register range becomes unbounded, so
 * the claims stay sound under the ISA's wraparound semantics.
 *
 * Every interval this pass publishes is a *claim* checked by the
 * dynamic oracle (analysis/oracle.hh): if a simulated register or
 * address ever leaves its proven interval, the oracle panics.
 */

#ifndef DWS_ANALYSIS_RANGE_HH
#define DWS_ANALYSIS_RANGE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostic.hh"

namespace dws {

/** An integer interval with +-infinity sentinels. */
struct Interval
{
    static constexpr std::int64_t kNegInf = INT64_MIN;
    static constexpr std::int64_t kPosInf = INT64_MAX;

    std::int64_t lo = kNegInf;
    std::int64_t hi = kPosInf;

    static Interval full() { return Interval{kNegInf, kPosInf}; }
    static Interval constant(std::int64_t v) { return Interval{v, v}; }

    bool boundedLo() const { return lo != kNegInf; }
    bool boundedHi() const { return hi != kPosInf; }
    bool bounded() const { return boundedLo() && boundedHi(); }
    bool empty() const { return lo > hi; }
    bool isConstant() const { return lo == hi; }

    bool
    contains(std::int64_t v) const
    {
        return v >= lo && v <= hi;
    }

    bool
    operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/** Upper bound `value <= c*r1 + d` (valid only while r1 >= 1 holds). */
struct NtBound
{
    std::int64_t c = 0;
    std::int64_t d = 0;

    bool
    operator==(const NtBound &o) const
    {
        return c == o.c && d == o.d;
    }
};

/** Remembered compare: this register holds `lhs <cmp> rhs` (0/1). */
struct PredFact
{
    Op cmp = Op::Slt;     ///< Slt, Sle, Seq or Sne
    std::uint8_t lhs = 0; ///< left operand register
    std::uint8_t rhs = 0; ///< right operand register (when !rhsIsImm)
    std::int64_t imm = 0; ///< right operand immediate (when rhsIsImm)
    bool rhsIsImm = false;
    bool negated = false; ///< fact is the logical NOT of the compare

    bool
    operator==(const PredFact &o) const
    {
        return cmp == o.cmp && lhs == o.lhs && rhs == o.rhs &&
               imm == o.imm && rhsIsImm == o.rhsIsImm &&
               negated == o.negated;
    }
};

/** Abstract value of one register. */
struct AbsVal
{
    Interval iv = Interval::full();
    std::optional<NtBound> nt;   ///< value <= c*r1 + d
    std::optional<PredFact> pred;
    bool isNt = false;           ///< value == r1 exactly

    bool
    operator==(const AbsVal &o) const
    {
        return iv == o.iv && nt == o.nt && pred == o.pred &&
               isNt == o.isNt;
    }
};

/** Abstract register file (one dataflow state). */
struct RegFileState
{
    /** Unreached: joins as the identity, transfers stay bottom. */
    bool bottom = true;
    std::array<AbsVal, kNumRegs> regs;

    bool
    operator==(const RegFileState &o) const
    {
        if (bottom != o.bottom)
            return false;
        return bottom || regs == o.regs;
    }
};

/** Static verdict for one memory access. */
enum class MemVerdict : std::uint8_t {
    /** Address interval proven inside [0, memBytes-wordBytes]. */
    Proved,
    /** Interval too wide (or unbounded) to decide either way. */
    Unproved,
    /** Address interval provably disjoint from valid memory. */
    OutOfBounds,
};

/** @return "proved", "unproved" or "out-of-bounds". */
const char *memVerdictName(MemVerdict v);

/** Static address claim for one Ld/St instruction. */
struct MemAccessClaim
{
    Pc pc = 0;
    bool isStore = false;
    /** Proven byte-address interval (may be unbounded on either side). */
    Interval addr;
    MemVerdict verdict = MemVerdict::Unproved;
};

/** Full result of the range analysis over one program. */
struct RangeResult
{
    /** One claim per reachable Ld/St, in pc order. */
    std::vector<MemAccessClaim> accesses;
    /** OutOfBounds errors and Unproved notes. */
    std::vector<Diagnostic> diags;
    /** Narrowed per-pc in states (for the loop-bound pass). */
    std::vector<RegFileState> states;
    int proved = 0;
    int unproved = 0;
    int violations = 0;
};

/** Interval value-range analysis with in-bounds proofs. */
class RangeAnalysis
{
  public:
    /**
     * Analyze one program against a declared memory size.
     *
     * @param code       the instruction sequence
     * @param memBytes   declared kernel memory size (0 = unknown: every
     *                   access with a finite interval is Unproved)
     * @param numThreads launch thread count when statically known
     *                   (0 = unknown: r1 is only known to be >= 1, and
     *                   most multiplicative address arithmetic becomes
     *                   Unproved because 64-bit wraparound cannot be
     *                   excluded)
     */
    static RangeResult analyze(const std::vector<Instr> &code,
                               std::uint64_t memBytes,
                               std::int64_t numThreads = 0);
};

} // namespace dws

#endif // DWS_ANALYSIS_RANGE_HH
