/**
 * @file
 * Barrier-divergence prover in the style of GPUVerify's barrier
 * invariant checking, adapted to this IR's global barrier.
 *
 * The simulated Bar is a *global* barrier: every live thread of the
 * kernel must arrive before any proceeds, and the WPU panics if two
 * warp groups sit at different barrier pcs. A barrier reached under
 * divergent control flow is therefore a kernel bug (some threads
 * skip the barrier or arrive a different number of times, and the
 * machine deadlocks or panics).
 *
 * The proof obligation per Bar: the barrier must not lie inside the
 * influence region of any potentially-divergent branch — the region
 * between a branch and its immediate post-dominator, where control
 * flow has not yet re-converged.
 *
 * Divergence facts come from DivergenceAnalysis in its *refined* mode
 * (zero-initialized registers are uniform; barrier-carrying loops keep
 * threads at equal iteration counts). That second refinement assumes
 * exactly what this pass proves — barriers synchronize — which is the
 * standard assume-guarantee circle: assume all barriers are uniform,
 * derive branch verdicts, then check every barrier against those
 * verdicts. If any check fails the assumption is withdrawn for the
 * report (the barrier is flagged); if all succeed the assumption is
 * discharged inductively, because the first dynamically-reached
 * barrier only depends on branches upstream of it.
 *
 * The default (conservative) divergence verdicts are NOT used here on
 * purpose: they would flag every barrier-in-loop kernel (e.g. Merge's
 * pass loop), whose correctness rests precisely on the barrier
 * keeping iteration counts equal.
 */

#ifndef DWS_ANALYSIS_BARRIER_HH
#define DWS_ANALYSIS_BARRIER_HH

#include <vector>

#include "analysis/diagnostic.hh"

namespace dws {

/** Result of the barrier-divergence check over one program. */
struct BarrierCheckResult
{
    /** Errors for barriers reachable under divergent control flow. */
    std::vector<Diagnostic> diags;

    /** Per-pc flag: true if the Bar at pc is proven uniform. */
    std::vector<bool> barrierUniform;

    /** Reachable Bar instructions examined. */
    int barriers = 0;

    /** Barriers proven to execute under re-converged control flow. */
    int provedUniform = 0;
};

/** GPUVerify-style barrier divergence check. */
class BarrierAnalysis
{
  public:
    static BarrierCheckResult analyze(const std::vector<Instr> &code);
};

} // namespace dws

#endif // DWS_ANALYSIS_BARRIER_HH
