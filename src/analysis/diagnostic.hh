/**
 * @file
 * Structured diagnostics emitted by the static analyses (verifier,
 * divergence, liveness, range, barrier and loop-bound passes) and
 * shared by their front ends (KernelBuilder, dws_lint).
 *
 * Every finding carries its anchor instruction index, the basic-block
 * id of that instruction, the emitting pass and a disassembly snippet,
 * so the same diagnostic renders identically from every front end and
 * machine consumers (`dws_lint --json`) get full location data.
 */

#ifndef DWS_ANALYSIS_DIAGNOSTIC_HH
#define DWS_ANALYSIS_DIAGNOSTIC_HH

#include <string>
#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace dws {

/** How bad a finding is. */
enum class Severity : std::uint8_t {
    /** The program is malformed; it must not be executed. */
    Error,
    /** Suspicious but executable (e.g. a register read before def). */
    Warning,
    /** Informational fact (e.g. a loop classified input-bounded). */
    Note,
};

/** @return "error", "warning" or "note". */
const char *severityName(Severity s);

/** One finding of a static analysis pass. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Instruction the finding is anchored to; kPcExit if program-wide. */
    Pc pc = kPcExit;
    /** Basic-block index of pc; -1 until decorate() fills it in. */
    int block = -1;
    /** Short name of the emitting pass ("verifier", "range", ...). */
    std::string pass{};
    std::string message{};
    /** Disassembly of the anchor instruction; decorate() fills it in. */
    std::string snippet{};
};

/**
 * @return "error @pc N (block B): message  [disasm]" suitable for
 *         one-line printing; location and snippet parts are omitted
 *         when absent.
 */
std::string toString(const Diagnostic &d);

/**
 * Fill in the location fields every pass would otherwise compute by
 * hand: the basic-block id of each diagnostic's anchor pc and a
 * disassembly snippet of that instruction. Idempotent; diagnostics
 * anchored at kPcExit (program-wide) are left untouched.
 */
void decorate(std::vector<Diagnostic> &diags,
              const std::vector<Instr> &code);

/** @return per-pc basic-block index (leaders start new blocks). */
std::vector<int> blockIds(const std::vector<Instr> &code);

/** @return true if any diagnostic has Error severity. */
bool hasErrors(const std::vector<Diagnostic> &diags);

/** @return number of diagnostics with the given severity. */
int countSeverity(const std::vector<Diagnostic> &diags, Severity s);

} // namespace dws

#endif // DWS_ANALYSIS_DIAGNOSTIC_HH
