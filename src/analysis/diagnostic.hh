/**
 * @file
 * Structured diagnostics emitted by the static analyses (verifier,
 * divergence analysis) and shared by their front ends (KernelBuilder,
 * dws_lint).
 */

#ifndef DWS_ANALYSIS_DIAGNOSTIC_HH
#define DWS_ANALYSIS_DIAGNOSTIC_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace dws {

/** How bad a finding is. */
enum class Severity : std::uint8_t {
    /** The program is malformed; it must not be executed. */
    Error,
    /** Suspicious but executable (e.g. a register read before def). */
    Warning,
};

/** @return "error" or "warning". */
const char *severityName(Severity s);

/** One finding of a static analysis pass. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Instruction the finding is anchored to; kPcExit if program-wide. */
    Pc pc = kPcExit;
    std::string message;
};

/** @return "error @pc N: message" suitable for one-line printing. */
std::string toString(const Diagnostic &d);

/** @return true if any diagnostic has Error severity. */
bool hasErrors(const std::vector<Diagnostic> &diags);

/** @return number of diagnostics with the given severity. */
int countSeverity(const std::vector<Diagnostic> &diags, Severity s);

} // namespace dws

#endif // DWS_ANALYSIS_DIAGNOSTIC_HH
