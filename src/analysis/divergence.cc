#include "analysis/divergence.hh"

#include <deque>

#include "isa/cfg.hh"

namespace dws {

namespace {

using RegMask = std::uint32_t;
static_assert(kNumRegs <= 32, "RegMask too narrow for register file");

/**
 * Mark every pc inside the influence region of the divergent branch at
 * brPc: all instructions reachable from either successor without
 * passing through the branch's immediate post-dominator. Writes in that
 * region are control-tainted.
 */
void
taintInfluenceRegion(const std::vector<Instr> &code, Pc brPc, Pc ipdom,
                     std::vector<bool> &tainted)
{
    std::deque<Pc> work;
    std::vector<bool> seen(code.size(), false);
    for (Pc s : CfgAnalysis::successors(code, brPc)) {
        if (s != ipdom && !seen[static_cast<size_t>(s)]) {
            seen[static_cast<size_t>(s)] = true;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        const Pc pc = work.front();
        work.pop_front();
        tainted[static_cast<size_t>(pc)] = true;
        for (Pc s : CfgAnalysis::successors(code, pc)) {
            if (s != ipdom && !seen[static_cast<size_t>(s)]) {
                seen[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
}

/** Divergence of the value an instruction writes, given the in-state. */
bool
resultDiverges(const Instr &in, RegMask divIn, bool controlTaint)
{
    if (controlTaint)
        return true;
    if (in.op == Op::Ld)
        return true; // shared mutable memory: never provably uniform
    bool div = false;
    if (opReadsRa(in.op))
        div = div || ((divIn >> in.ra) & 1);
    if (opReadsRb(in.op))
        div = div || ((divIn >> in.rb) & 1);
    return div;
}

/**
 * Loop-carried taint. Warp-splits born inside a loop — from memory
 * divergence, or from a divergent branch whose exits re-converge at the
 * post-dominator — can later re-unite lanes that executed *different
 * numbers of iterations* (stack re-convergence past a loop exit and
 * PC-based merging both do this). A value carried around such a loop
 * through a def-use cycle then differs across the re-united lanes even
 * though every individual operation has uniform operands, so those
 * definitions must be forced divergent.
 *
 * Only loops containing a split source (a memory access or a branch
 * currently known divergent) can mix iteration counts; loops of pure
 * uniform ALU code keep their lanes in lockstep and their induction
 * variables stay uniform.
 *
 * @return per-pc "definition is loop-variant" flags
 */
std::vector<bool>
loopVariantDefs(const std::vector<Instr> &code,
                const std::vector<bool> &branchDivergent,
                bool barrierSync)
{
    const int n = static_cast<int>(code.size());

    // reach[u][v]: v reachable from u through at least one CFG edge.
    std::vector<std::vector<bool>> reach(
            static_cast<size_t>(n),
            std::vector<bool>(static_cast<size_t>(n), false));
    for (int u = 0; u < n; u++) {
        std::deque<Pc> work;
        auto &r = reach[static_cast<size_t>(u)];
        for (Pc s : CfgAnalysis::successors(code, u)) {
            if (!r[static_cast<size_t>(s)]) {
                r[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
        while (!work.empty()) {
            const Pc pc = work.front();
            work.pop_front();
            for (Pc s : CfgAnalysis::successors(code, pc)) {
                if (!r[static_cast<size_t>(s)]) {
                    r[static_cast<size_t>(s)] = true;
                    work.push_back(s);
                }
            }
        }
    }

    // Under barrierSync, only cycles that avoid every Bar can mix
    // iteration counts: a global barrier blocks until all threads
    // arrive, so nobody starts iteration k+1 of a barrier-carrying
    // loop before everybody finished iteration k. barFree[u]: u lies
    // on a cycle of non-Bar instructions.
    std::vector<bool> barFree(static_cast<size_t>(n), !barrierSync);
    if (barrierSync) {
        std::vector<std::vector<bool>> reachNb(
                static_cast<size_t>(n),
                std::vector<bool>(static_cast<size_t>(n), false));
        for (int u = 0; u < n; u++) {
            if (code[static_cast<size_t>(u)].op == Op::Bar)
                continue;
            std::deque<Pc> work;
            auto &r = reachNb[static_cast<size_t>(u)];
            auto push = [&](Pc from) {
                for (Pc s : CfgAnalysis::successors(code, from)) {
                    if (code[static_cast<size_t>(s)].op != Op::Bar &&
                        !r[static_cast<size_t>(s)]) {
                        r[static_cast<size_t>(s)] = true;
                        work.push_back(s);
                    }
                }
            };
            push(u);
            while (!work.empty()) {
                const Pc pc = work.front();
                work.pop_front();
                push(pc);
            }
        }
        for (int u = 0; u < n; u++)
            barFree[static_cast<size_t>(u)] =
                    code[static_cast<size_t>(u)].op != Op::Bar &&
                    reachNb[static_cast<size_t>(u)][static_cast<size_t>(u)];
    }
    auto sameCycle = [&](int a, int b) {
        return a == b ? reach[static_cast<size_t>(a)]
                             [static_cast<size_t>(a)]
                      : (reach[static_cast<size_t>(a)]
                              [static_cast<size_t>(b)] &&
                         reach[static_cast<size_t>(b)]
                              [static_cast<size_t>(a)]);
    };

    // Nodes whose loop (SCC) contains a split source.
    std::vector<bool> mixing(static_cast<size_t>(n), false);
    for (int u = 0; u < n; u++) {
        if (!reach[static_cast<size_t>(u)][static_cast<size_t>(u)] ||
            !barFree[static_cast<size_t>(u)])
            continue;
        for (int v = 0; v < n && !mixing[static_cast<size_t>(u)]; v++) {
            if (!sameCycle(u, v))
                continue;
            const Instr &iv = code[static_cast<size_t>(v)];
            if (iv.isMem() ||
                (iv.op == Op::Br && branchDivergent[static_cast<size_t>(v)]))
                mixing[static_cast<size_t>(u)] = true;
        }
    }

    // Def-use edges between instructions of one mixing loop, ignoring
    // kills (sound over-approximation).
    auto duEdge = [&](int j, int i) {
        if (!mixing[static_cast<size_t>(j)] ||
            !mixing[static_cast<size_t>(i)] || !sameCycle(j, i))
            return false;
        const Instr &def = code[static_cast<size_t>(j)];
        const Instr &use = code[static_cast<size_t>(i)];
        if (!opWritesRd(def.op))
            return false;
        return (opReadsRa(use.op) && use.ra == def.rd) ||
               (opReadsRb(use.op) && use.rb == def.rd);
    };
    std::vector<std::vector<bool>> du(
            static_cast<size_t>(n),
            std::vector<bool>(static_cast<size_t>(n), false));
    for (int j = 0; j < n; j++)
        for (int i = 0; i < n; i++)
            if (duEdge(j, i))
                du[static_cast<size_t>(j)][static_cast<size_t>(i)] = true;
    for (int k = 0; k < n; k++)
        for (int a = 0; a < n; a++) {
            if (!du[static_cast<size_t>(a)][static_cast<size_t>(k)])
                continue;
            for (int b = 0; b < n; b++)
                if (du[static_cast<size_t>(k)][static_cast<size_t>(b)])
                    du[static_cast<size_t>(a)][static_cast<size_t>(b)] =
                            true;
        }

    // Loop-variant = on a def-use cycle (the iteration-to-iteration
    // chain, e.g. i = i + 1), or fed by one within the loop.
    std::vector<bool> variant(static_cast<size_t>(n), false);
    for (int i = 0; i < n; i++) {
        if (du[static_cast<size_t>(i)][static_cast<size_t>(i)]) {
            variant[static_cast<size_t>(i)] = true;
            continue;
        }
        for (int j = 0; j < n; j++) {
            if (du[static_cast<size_t>(j)][static_cast<size_t>(j)] &&
                du[static_cast<size_t>(j)][static_cast<size_t>(i)]) {
                variant[static_cast<size_t>(i)] = true;
                break;
            }
        }
    }
    return variant;
}

} // namespace

DivergenceReport
DivergenceAnalysis::analyze(const std::vector<Instr> &code,
                            const DivergenceOptions &opts)
{
    const int n = static_cast<int>(code.size());
    DivergenceReport rep;
    rep.branchMayDiverge.assign(static_cast<size_t>(n), false);
    if (n == 0)
        return rep;

    const std::vector<Pc> ipdom =
            CfgAnalysis::immediatePostDominators(code);

    // Entry state: r0 (tid) is the divergence seed; r1 (thread count)
    // is uniform; everything else is conservatively divergent so that
    // never-written condition registers stay divergent — unless the
    // client asked for the precise zero-init semantics.
    const RegMask entry = opts.zeroInitUniform ? RegMask(1)
                                               : ~(RegMask(1) << 1);

    // Outer fixpoint over control and loop-carried taint: branch
    // verdicts extend taint regions and loop-variant defs, which flip
    // more branches divergent. All three only grow, so this terminates.
    std::vector<bool> tainted(static_cast<size_t>(n), false);
    std::vector<bool> variant(static_cast<size_t>(n), false);
    std::vector<RegMask> in(static_cast<size_t>(n), 0);
    while (true) {
        // Forward union dataflow of per-register divergence.
        in.assign(static_cast<size_t>(n), 0);
        in[0] = entry;
        bool changed = true;
        while (changed) {
            changed = false;
            for (Pc pc = 0; pc < n; pc++) {
                const Instr &ins = code[static_cast<size_t>(pc)];
                RegMask out = in[static_cast<size_t>(pc)];
                if (opWritesRd(ins.op) && ins.rd < kNumRegs) {
                    const RegMask bit = RegMask(1) << ins.rd;
                    if (resultDiverges(ins, out,
                                       tainted[static_cast<size_t>(pc)] ||
                                       variant[static_cast<size_t>(pc)]))
                        out |= bit;
                    else
                        out &= ~bit;
                }
                for (Pc s : CfgAnalysis::successors(code, pc)) {
                    const RegMask joined =
                            in[static_cast<size_t>(s)] | out;
                    if (joined != in[static_cast<size_t>(s)]) {
                        in[static_cast<size_t>(s)] = joined;
                        changed = true;
                    }
                }
            }
        }

        // Re-derive both taint sources from the current branch verdicts.
        std::vector<bool> branchDivergent(static_cast<size_t>(n), false);
        std::vector<bool> nextTainted(static_cast<size_t>(n), false);
        for (Pc pc = 0; pc < n; pc++) {
            const Instr &ins = code[static_cast<size_t>(pc)];
            if (ins.op != Op::Br)
                continue;
            if ((in[static_cast<size_t>(pc)] >> ins.ra) & 1) {
                branchDivergent[static_cast<size_t>(pc)] = true;
                taintInfluenceRegion(code, pc,
                                     ipdom[static_cast<size_t>(pc)],
                                     nextTainted);
            }
        }
        std::vector<bool> nextVariant =
                loopVariantDefs(code, branchDivergent, opts.barrierSync);
        if (nextTainted == tainted && nextVariant == variant)
            break;
        tainted = std::move(nextTainted);
        variant = std::move(nextVariant);
    }

    for (Pc pc = 0; pc < n; pc++) {
        const Instr &ins = code[static_cast<size_t>(pc)];
        if (ins.op != Op::Br)
            continue;
        const bool div = (in[static_cast<size_t>(pc)] >> ins.ra) & 1;
        rep.branchMayDiverge[static_cast<size_t>(pc)] = div;
        if (div)
            rep.divergentBranches++;
        else
            rep.uniformBranches++;
    }
    return rep;
}

} // namespace dws
