/**
 * @file
 * One-call front end over every static-analysis pass, and the combined
 * report dws_lint prints, serializes to JSON, and the dynamic oracle
 * (analysis/oracle.hh) cross-validates at simulation time.
 *
 * Passes, in order:
 *   verifier  - structural validity + post-dominator cross-check
 *   init      - maybe-uninitialized register reads (reaching defs)
 *   deadstore - definitions no path ever observes (liveness)
 *   range     - interval analysis + static in/out-of-bounds proofs
 *   barrier   - GPUVerify-style barrier-divergence check
 *   loopbound - natural-loop trip-count classification
 *
 * Every diagnostic carries its pass name, pc, basic-block id and a
 * disassembly snippet. The *claims* sections (mustInit, accesses,
 * barrierUniform, loops) are the machine-checkable facts the oracle
 * compares against real executions: a run that contradicts any of them
 * is a soundness bug in the corresponding pass.
 */

#ifndef DWS_ANALYSIS_REPORT_HH
#define DWS_ANALYSIS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "analysis/diagnostic.hh"
#include "analysis/liveness.hh"
#include "analysis/loopbound.hh"
#include "analysis/range.hh"

namespace dws {

class JsonWriter;
class Program;

/** What the analyzer should assume about the launch. */
struct AnalysisInput
{
    /** Declared kernel memory size in bytes (0 = unknown). */
    std::uint64_t memBytes = 0;
    /** Launch thread count (0 = unknown; r1 only known >= 1). */
    std::int64_t numThreads = 0;
};

/** Merged result of all static passes over one program. */
struct StaticReport
{
    /** All diagnostics, sorted by pc then pass, decorated. */
    std::vector<Diagnostic> diags;

    // --- Claims the dynamic oracle validates ---------------------
    /** Per-pc registers proven written on every path from entry. */
    std::vector<RegSet> mustInit;
    /** Per-access static address intervals and verdicts. */
    std::vector<MemAccessClaim> accesses;
    /** Per-pc flag: Bar proven to execute under uniform control. */
    std::vector<bool> barrierUniform;
    /** Natural loops with their trip-count classification. */
    std::vector<LoopBound> loops;

    // --- Pass statistics -----------------------------------------
    int provedAccesses = 0;
    int unprovedAccesses = 0;
    int oobAccesses = 0;
    int barriers = 0;
    int uniformBarriers = 0;
    int staticLoops = 0;
    int inputLoops = 0;
    int unknownLoops = 0;

    int errors() const { return countSeverity(diags, Severity::Error); }
    int warnings() const
    {
        return countSeverity(diags, Severity::Warning);
    }
    int notes() const { return countSeverity(diags, Severity::Note); }

    /** Lint-clean: no errors and no warnings (notes are fine). */
    bool clean() const { return errors() == 0 && warnings() == 0; }
};

/** Run every static pass over one program. */
class StaticAnalyzer
{
  public:
    static StaticReport analyze(const std::vector<Instr> &code,
                                const AnalysisInput &input);

    /**
     * Same, plus the Program-level verifier leg (cached-ipdom
     * cross-check) that needs more than the raw instruction list.
     */
    static StaticReport analyze(const Program &prog,
                                const AnalysisInput &input);
};

/**
 * Serialize a report as one JSON object:
 * {kernel, instrs, clean, errors, warnings, notes, stats{...},
 *  diagnostics:[{severity, pass, pc, block, message, snippet}...]}.
 */
void writeReportJson(std::ostream &os, const StaticReport &report,
                     const std::string &kernelName, int numInstrs,
                     int indent = 2);

/** Same, into an already-open writer (dws_lint's per-kernel array). */
void writeReportJson(JsonWriter &w, const StaticReport &report,
                     const std::string &kernelName, int numInstrs);

} // namespace dws

#endif // DWS_ANALYSIS_REPORT_HH
