/**
 * @file
 * Liveness and reaching-definitions analyses on the dataflow framework,
 * and the diagnostics they yield: maybe-uninitialized register reads
 * and dead stores.
 *
 * Reaching definitions models kernel launch as one pseudo-definition
 * per register (the register file is zero-initialized; r0/r1 carry the
 * thread id and thread count). A register read that the launch
 * pseudo-def can still reach is a read that observes the initial value
 * on some path — legal (it reads zero) but almost always a bug in
 * authored kernels, so it is a Warning for every register other than
 * r0/r1 — provided the register has at least one reachable write site.
 * A register the program never writes anywhere is the deliberate
 * zero-register idiom (the builder's `seq r, r, zero` NOT, stores of
 * constant zero) and is not flagged: there is no "forgot to run the
 * initializer on this path" bug to find. The same facts give the
 * "proven initialized on all paths" claims the dynamic oracle
 * (analysis/oracle.hh) cross-validates.
 *
 * Liveness (backward, may) yields dead-store diagnostics: an ALU
 * definition whose target register is not live afterwards is a Warning;
 * a load whose result register is dead is only a Note, because in this
 * simulator the memory access itself is architecturally meaningful
 * (it occupies MSHRs and warms caches) even if the value is unused.
 */

#ifndef DWS_ANALYSIS_LIVENESS_HH
#define DWS_ANALYSIS_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostic.hh"

namespace dws {

/** Bitmask over the architectural registers. */
using RegSet = std::uint32_t;
static_assert(kNumRegs <= 32, "RegSet too narrow for register file");

/** Result of the backward liveness analysis. */
struct LivenessInfo
{
    /** Registers live immediately after each pc executes. */
    std::vector<RegSet> liveOut;
    /** Registers live immediately before each pc executes. */
    std::vector<RegSet> liveIn;
};

/** Result of the forward reaching-definitions analysis. */
struct ReachingDefsInfo
{
    /**
     * Per-pc bitset over definition sites reaching the instruction.
     * Site ids: pc for instruction definitions, size()+r for the
     * launch pseudo-definition of register r.
     */
    std::vector<std::vector<std::uint64_t>> in;

    /** @return true if def site `site` reaches pc. */
    bool reaches(Pc pc, int site) const;

    /** @return true if the launch pseudo-def of reg still reaches pc. */
    bool launchDefReaches(Pc pc, int reg) const;

    /**
     * @return per-pc mask of registers written on *every* path from
     * the entry (the complement of launchDefReaches). These are the
     * "initialized on all paths" claims the dynamic oracle validates.
     * r0 and r1 are defined at launch and always present.
     */
    std::vector<RegSet> mustInitialized() const;

  private:
    friend ReachingDefsInfo computeReachingDefs(const InstrCfg &cfg);
    int numInstrs = 0;
};

/** Run the backward liveness analysis. */
LivenessInfo computeLiveness(const InstrCfg &cfg);

/** Run the forward reaching-definitions analysis. */
ReachingDefsInfo computeReachingDefs(const InstrCfg &cfg);

/** Maybe-uninitialized reads (Warning), pass "init". */
std::vector<Diagnostic> uninitReadDiagnostics(const InstrCfg &cfg);

/** Dead stores (Warning; dead load results: Note), pass "deadstore". */
std::vector<Diagnostic> deadStoreDiagnostics(const InstrCfg &cfg);

/**
 * Diagnostics from both analyses over one program: maybe-uninitialized
 * reads (Warning) and dead stores (Warning; dead load results: Note).
 */
std::vector<Diagnostic> livenessDiagnostics(const InstrCfg &cfg);

} // namespace dws

#endif // DWS_ANALYSIS_LIVENESS_HH
