#include "analysis/report.hh"

#include <algorithm>
#include <iterator>
#include <ostream>

#include "analysis/barrier.hh"
#include "analysis/verifier.hh"
#include "isa/program.hh"
#include "sim/json_writer.hh"

namespace dws {

namespace {

void
append(std::vector<Diagnostic> &into, std::vector<Diagnostic> &&from)
{
    into.insert(into.end(), std::make_move_iterator(from.begin()),
                std::make_move_iterator(from.end()));
}

/**
 * True when the CFG can be built at all: opcodes decodable, registers
 * in range, branch targets inside the program. Other verifier errors
 * (no halt, fall-through) do not invalidate the dataflow passes.
 */
bool
cfgTrustworthy(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    if (n == 0)
        return false;
    for (const Instr &in : code) {
        if (in.op >= Op::NumOps)
            return false;
        if (opWritesRd(in.op) && in.rd >= kNumRegs)
            return false;
        if (opReadsRa(in.op) && in.ra >= kNumRegs)
            return false;
        if (opReadsRb(in.op) && in.rb >= kNumRegs)
            return false;
        if ((in.op == Op::Br || in.op == Op::Jmp) &&
            (in.target < 0 || in.target >= n))
            return false;
    }
    return true;
}

StaticReport
analyzeWithVerifier(const std::vector<Instr> &code,
                    const AnalysisInput &input,
                    std::vector<Diagnostic> &&verifierDiags)
{
    StaticReport report;
    report.diags = std::move(verifierDiags);

    // A structurally broken program (bad targets, bad registers) has
    // no trustworthy CFG; the dataflow passes would crash or lie.
    if (cfgTrustworthy(code)) {
        const InstrCfg cfg(code);
        append(report.diags, deadStoreDiagnostics(cfg));
        report.mustInit = computeReachingDefs(cfg).mustInitialized();

        RangeResult ranges =
                RangeAnalysis::analyze(code, input.memBytes,
                                       input.numThreads);
        append(report.diags, std::move(ranges.diags));
        report.accesses = std::move(ranges.accesses);
        report.provedAccesses = ranges.proved;
        report.unprovedAccesses = ranges.unproved;
        report.oobAccesses = ranges.violations;

        BarrierCheckResult barriers = BarrierAnalysis::analyze(code);
        append(report.diags, std::move(barriers.diags));
        report.barrierUniform = std::move(barriers.barrierUniform);
        report.barriers = barriers.barriers;
        report.uniformBarriers = barriers.provedUniform;

        LoopBoundResult loops = LoopBoundAnalysis::analyze(code, ranges);
        append(report.diags, std::move(loops.diags));
        report.loops = std::move(loops.loops);
        report.staticLoops = loops.staticallyBounded;
        report.inputLoops = loops.inputBounded;
        report.unknownLoops = loops.unknown;
    }

    decorate(report.diags, code);
    std::stable_sort(report.diags.begin(), report.diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         return a.pass < b.pass;
                     });
    return report;
}

} // namespace

StaticReport
StaticAnalyzer::analyze(const std::vector<Instr> &code,
                        const AnalysisInput &input)
{
    // Verifier::verify(code) already includes the "init" pass.
    return analyzeWithVerifier(code, input, Verifier::verify(code));
}

StaticReport
StaticAnalyzer::analyze(const Program &prog, const AnalysisInput &input)
{
    return analyzeWithVerifier(prog.instructions(), input,
                               Verifier::verify(prog));
}

void
writeReportJson(std::ostream &os, const StaticReport &report,
                const std::string &kernelName, int numInstrs, int indent)
{
    JsonWriter w(os, indent);
    writeReportJson(w, report, kernelName, numInstrs);
    os << "\n";
}

void
writeReportJson(JsonWriter &w, const StaticReport &report,
                const std::string &kernelName, int numInstrs)
{
    w.beginObject();
    w.field("kernel", kernelName);
    w.field("instrs", numInstrs);
    w.field("clean", report.clean());
    w.field("errors", report.errors());
    w.field("warnings", report.warnings());
    w.field("notes", report.notes());

    w.key("stats");
    w.beginObject();
    w.field("accesses_proved", report.provedAccesses);
    w.field("accesses_unproved", report.unprovedAccesses);
    w.field("accesses_out_of_bounds", report.oobAccesses);
    w.field("barriers", report.barriers);
    w.field("barriers_uniform", report.uniformBarriers);
    w.field("loops_static", report.staticLoops);
    w.field("loops_input_bounded", report.inputLoops);
    w.field("loops_unknown", report.unknownLoops);
    w.endObject();

    w.key("loops");
    w.beginArray();
    for (const LoopBound &lb : report.loops) {
        w.beginObject();
        w.field("header", lb.loop.header);
        w.field("kind", loopBoundKindName(lb.kind));
        if (lb.kind == LoopBoundKind::StaticallyBounded)
            w.field("max_trips", lb.maxTrips);
        if (lb.inductionReg >= 0)
            w.field("induction_reg", lb.inductionReg);
        w.endObject();
    }
    w.endArray();

    w.key("diagnostics");
    w.beginArray();
    for (const Diagnostic &d : report.diags) {
        w.beginObject();
        w.field("severity", severityName(d.severity));
        w.field("pass", d.pass);
        w.field("pc", d.pc);
        w.field("block", d.block);
        w.field("message", d.message);
        w.field("snippet", d.snippet);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace dws
