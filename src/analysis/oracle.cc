#include "analysis/oracle.hh"

#include <cstdarg>
#include <cstdio>

#include "sim/logging.hh"

namespace dws {

ExecutionOracle::ExecutionOracle(const std::vector<Instr> &code,
                                 StaticReport report, int numThreads)
    : code_(code), report_(std::move(report)), numThreads_(numThreads)
{
    const size_t n = code_.size();
    const size_t nt = static_cast<size_t>(numThreads_);

    hasInit_ = report_.mustInit.size() == n;
    hasBarrier_ = report_.barrierUniform.size() == n;

    // r0 (tid) and r1 (thread count) are written by the launch code.
    written_.assign(nt, (RegSet(1) << 0) | (RegSet(1) << 1));
    prevPc_.assign(nt, kPcUnknown);
    barRound_.assign(nt, 0);

    accessAt_.assign(n, -1);
    for (size_t i = 0; i < report_.accesses.size(); i++) {
        const Pc pc = report_.accesses[i].pc;
        if (pc >= 0 && pc < static_cast<Pc>(n))
            accessAt_[static_cast<size_t>(pc)] = static_cast<int>(i);
    }

    headerLoop_.assign(n, -1);
    for (const LoopBound &lb : report_.loops) {
        if (lb.kind != LoopBoundKind::StaticallyBounded)
            continue;
        if (lb.loop.header < 0 || lb.loop.header >= static_cast<Pc>(n))
            continue;
        BoundedLoop bl;
        bl.header = lb.loop.header;
        bl.maxTrips = lb.maxTrips;
        bl.isLatch.assign(n, false);
        for (Pc latch : lb.loop.latches)
            if (latch >= 0 && latch < static_cast<Pc>(n))
                bl.isLatch[static_cast<size_t>(latch)] = true;
        bl.trips.assign(nt, 0);
        headerLoop_[static_cast<size_t>(bl.header)] =
                static_cast<int>(loops_.size());
        loops_.push_back(std::move(bl));
    }
}

void
ExecutionOracle::contradict(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (collect_) {
        contradictions_.push_back(buf);
        return;
    }
    panic("static-analysis oracle: execution contradicts a proven "
          "claim — %s", buf);
}

void
ExecutionOracle::onIssue(Pc pc, ThreadId tid)
{
    if (pc < 0 || pc >= static_cast<Pc>(code_.size()) || tid < 0 ||
        tid >= numThreads_)
        return;
    const Instr &in = code_[static_cast<size_t>(pc)];
    RegSet &written = written_[static_cast<size_t>(tid)];

    // Claim 1: registers in mustInit[pc] were written on EVERY path
    // from entry, so this thread — which took one such path — must
    // have written them.
    if (hasInit_) {
        const RegSet must = report_.mustInit[static_cast<size_t>(pc)];
        const auto checkRead = [&](std::uint8_t r) {
            if (r >= kNumRegs)
                return;
            checks_++;
            if (((must >> r) & 1) != 0 && ((written >> r) & 1) == 0)
                contradict("thread %d reads r%d at pc %d, proven "
                           "initialized on all paths, without ever "
                           "writing it", tid, r, pc);
        };
        if (opReadsRa(in.op))
            checkRead(in.ra);
        if (opReadsRb(in.op))
            checkRead(in.rb);
    }
    if (opWritesRd(in.op) && in.rd < kNumRegs)
        written |= RegSet(1) << in.rd;

    // Claim 4: a statically bounded loop iterates at most maxTrips
    // times per thread per entry. An iteration is a back-edge
    // traversal (previous pc was a latch); reaching the header from
    // anywhere else is a fresh entry and resets the counter. The exit
    // test's final header visit is thus not miscounted as a trip.
    const int li = headerLoop_[static_cast<size_t>(pc)];
    if (li >= 0) {
        BoundedLoop &bl = loops_[static_cast<size_t>(li)];
        const Pc prev = prevPc_[static_cast<size_t>(tid)];
        std::int64_t &trips = bl.trips[static_cast<size_t>(tid)];
        if (prev >= 0 && bl.isLatch[static_cast<size_t>(prev)]) {
            trips++;
            checks_++;
            if (trips > bl.maxTrips)
                contradict("thread %d iterated the loop at pc %d %lld "
                           "times; the loop-bound pass proved at most "
                           "%lld iterations", tid, pc, (long long)trips,
                           (long long)bl.maxTrips);
        } else {
            trips = 0;
        }
    }
    prevPc_[static_cast<size_t>(tid)] = pc;
}

void
ExecutionOracle::onMemAccess(Pc pc, ThreadId tid, bool isStore,
                             Addr addr)
{
    if (pc < 0 || pc >= static_cast<Pc>(code_.size()))
        return;
    const int idx = accessAt_[static_cast<size_t>(pc)];
    if (idx < 0) {
        // The range pass claims one entry per *reachable* Ld/St, so an
        // executed access with no claim means the pass believed this pc
        // unreachable — itself a soundness contradiction.
        if (!report_.accesses.empty()) {
            checks_++;
            contradict("thread %d executed the %s at pc %d, which the "
                       "range pass treated as unreachable", tid,
                       isStore ? "store" : "load", pc);
        }
        return;
    }
    const MemAccessClaim &claim =
            report_.accesses[static_cast<size_t>(idx)];
    checks_++;
    if (claim.isStore != isStore)
        contradict("access kind mismatch at pc %d: claim says %s, "
                   "execution performed a %s", pc,
                   claim.isStore ? "store" : "load",
                   isStore ? "store" : "load");
    // The claim interval bounds the signed value ra+imm; a bounded
    // interval also proves the addition did not wrap, so casting the
    // hardware address back to signed recovers that value.
    const std::int64_t sval = static_cast<std::int64_t>(addr);
    checks_++;
    if (!claim.addr.contains(sval))
        contradict("thread %d %s address %lld at pc %d outside the "
                   "proven interval [%lld, %lld] (verdict %s)", tid,
                   isStore ? "stores to" : "loads from",
                   (long long)sval, pc, (long long)claim.addr.lo,
                   (long long)claim.addr.hi,
                   memVerdictName(claim.verdict));
}

void
ExecutionOracle::onBarrier(Pc pc, ThreadId tid)
{
    if (!hasBarrier_ || pc < 0 ||
        pc >= static_cast<Pc>(code_.size()) || tid < 0 ||
        tid >= numThreads_)
        return;
    // Claim 3: a barrier proven uniform executes under uniform control,
    // so every thread's k-th uniform-barrier arrival is at the same pc.
    if (!report_.barrierUniform[static_cast<size_t>(pc)])
        return;
    const std::int64_t round = barRound_[static_cast<size_t>(tid)]++;
    checks_++;
    if (round >= static_cast<std::int64_t>(roundPc_.size())) {
        roundPc_.push_back(pc);
    } else if (roundPc_[static_cast<size_t>(round)] != pc) {
        contradict("thread %d arrived at the barrier at pc %d in round "
                   "%lld, but the round was opened at pc %d (barriers "
                   "proven uniform must be reached in lockstep)", tid,
                   pc, (long long)round,
                   roundPc_[static_cast<size_t>(round)]);
    }
}

void
ExecutionOracle::finish()
{
    // Uniform control means every thread executes every proven-uniform
    // barrier: at the end of the run all threads must have completed
    // the same number of rounds.
    if (!hasBarrier_)
        return;
    const std::int64_t rounds =
            static_cast<std::int64_t>(roundPc_.size());
    for (ThreadId tid = 0; tid < numThreads_; tid++) {
        checks_++;
        if (barRound_[static_cast<size_t>(tid)] != rounds)
            contradict("thread %d completed %lld uniform-barrier "
                       "rounds; the run had %lld", tid,
                       (long long)barRound_[static_cast<size_t>(tid)],
                       (long long)rounds);
    }
}

} // namespace dws
