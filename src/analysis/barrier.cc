#include "analysis/barrier.hh"

#include <cstdio>
#include <deque>

#include "analysis/dataflow.hh"
#include "analysis/divergence.hh"
#include "isa/cfg.hh"

namespace dws {

BarrierCheckResult
BarrierAnalysis::analyze(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    BarrierCheckResult result;
    result.barrierUniform.assign(static_cast<size_t>(n), false);
    if (n == 0)
        return result;

    DivergenceOptions opts;
    opts.barrierSync = true;
    opts.zeroInitUniform = true;
    const DivergenceReport div = DivergenceAnalysis::analyze(code, opts);
    const std::vector<Pc> ipdom =
            CfgAnalysis::immediatePostDominators(code);
    const InstrCfg cfg(code);

    // guiltyBranch[pc]: a divergent branch whose influence region
    // (between the branch and its immediate post-dominator, where
    // control flow has not re-converged) contains pc.
    std::vector<Pc> guiltyBranch(static_cast<size_t>(n), kPcUnknown);
    for (Pc br = 0; br < n; br++) {
        if (code[static_cast<size_t>(br)].op != Op::Br ||
            !cfg.reachable(br) || !div.mayDiverge(br))
            continue;
        const Pc reconv = ipdom[static_cast<size_t>(br)];
        std::deque<Pc> work;
        std::vector<bool> seen(static_cast<size_t>(n), false);
        for (Pc s : cfg.succs(br)) {
            if (s != reconv && !seen[static_cast<size_t>(s)]) {
                seen[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
        while (!work.empty()) {
            const Pc pc = work.front();
            work.pop_front();
            if (guiltyBranch[static_cast<size_t>(pc)] == kPcUnknown)
                guiltyBranch[static_cast<size_t>(pc)] = br;
            for (Pc s : cfg.succs(pc)) {
                if (s != reconv && !seen[static_cast<size_t>(s)]) {
                    seen[static_cast<size_t>(s)] = true;
                    work.push_back(s);
                }
            }
        }
    }

    for (Pc pc = 0; pc < n; pc++) {
        if (code[static_cast<size_t>(pc)].op != Op::Bar ||
            !cfg.reachable(pc))
            continue;
        result.barriers++;
        const Pc br = guiltyBranch[static_cast<size_t>(pc)];
        if (br == kPcUnknown) {
            result.barrierUniform[static_cast<size_t>(pc)] = true;
            result.provedUniform++;
            continue;
        }
        char msg[192];
        std::snprintf(msg, sizeof(msg),
                      "barrier may execute under divergent control "
                      "flow: the divergent branch at pc %d does not "
                      "re-converge before it (threads could skip the "
                      "barrier or arrive in different rounds)",
                      br);
        result.diags.push_back(Diagnostic{
                .severity = Severity::Error,
                .pc = pc,
                .pass = "barrier",
                .message = msg});
    }

    decorate(result.diags, code);
    return result;
}

} // namespace dws
