#include "analysis/dataflow.hh"

#include "analysis/diagnostic.hh"
#include "isa/cfg.hh"

namespace dws {

InstrCfg::InstrCfg(const std::vector<Instr> &code)
    : instrs(&code), n(static_cast<int>(code.size())),
      succ(code.size()), pred(code.size()), reach(code.size(), false),
      rpoIdx(code.size(), -1), blockOf(blockIds(code))
{
    for (Pc pc = 0; pc < n; pc++) {
        succ[static_cast<size_t>(pc)] = CfgAnalysis::successors(code, pc);
        for (Pc s : succ[static_cast<size_t>(pc)])
            pred[static_cast<size_t>(s)].push_back(pc);
    }

    // Reverse postorder by iterative DFS from the entry.
    if (n > 0) {
        std::vector<Pc> stack{0};
        std::vector<int> childIdx(static_cast<size_t>(n), 0);
        std::vector<Pc> postorder;
        reach[0] = true;
        while (!stack.empty()) {
            const Pc v = stack.back();
            auto &ci = childIdx[static_cast<size_t>(v)];
            if (ci < static_cast<int>(succ[static_cast<size_t>(v)].size())) {
                const Pc w = succ[static_cast<size_t>(v)]
                                 [static_cast<size_t>(ci++)];
                if (!reach[static_cast<size_t>(w)]) {
                    reach[static_cast<size_t>(w)] = true;
                    stack.push_back(w);
                }
            } else {
                postorder.push_back(v);
                stack.pop_back();
            }
        }
        rpoOrder.assign(postorder.rbegin(), postorder.rend());
        for (int i = 0; i < static_cast<int>(rpoOrder.size()); i++)
            rpoIdx[static_cast<size_t>(rpoOrder[static_cast<size_t>(i)])] =
                    i;
    }
}

} // namespace dws
