/**
 * @file
 * Loop-bound classification over the natural loops of a kernel.
 *
 * For every natural loop (CfgAnalysis::naturalLoops) the pass looks
 * for the canonical exit shape — a conditional branch leaving the loop
 * whose condition carries a predicate fact from the value-range
 * analysis, comparing a register updated by exactly one constant-step
 * add per iteration against a loop-invariant bound — and classifies:
 *
 *  - StaticallyBounded: the induction start and the bound both have
 *    finite intervals; a per-thread worst-case trip count follows.
 *    The dynamic oracle checks real executions against it.
 *  - InputBounded: the exit shape matched but an interval is
 *    unbounded, so termination depends on runtime input values.
 *  - Unknown: no exit matched the shape (Note), or the loop has no
 *    exit edge at all (Warning: threads that enter can never leave).
 */

#ifndef DWS_ANALYSIS_LOOPBOUND_HH
#define DWS_ANALYSIS_LOOPBOUND_HH

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.hh"
#include "analysis/range.hh"
#include "isa/cfg.hh"

namespace dws {

/** How much the analysis could prove about one loop's trip count. */
enum class LoopBoundKind : std::uint8_t {
    StaticallyBounded,
    InputBounded,
    Unknown,
};

/** @return "static", "input-bounded" or "unknown". */
const char *loopBoundKindName(LoopBoundKind k);

/** Classification of one natural loop. */
struct LoopBound
{
    NaturalLoop loop;
    LoopBoundKind kind = LoopBoundKind::Unknown;
    /** Worst-case trips per thread (valid when StaticallyBounded). */
    std::int64_t maxTrips = 0;
    /** Induction register (valid unless Unknown). */
    int inductionReg = -1;
    /** Exit branch pc (kPcExit when the loop has no exit at all). */
    Pc exitBranch = kPcExit;
};

/** Result of the loop-bound pass over one program. */
struct LoopBoundResult
{
    std::vector<LoopBound> loops;
    std::vector<Diagnostic> diags;
    int staticallyBounded = 0;
    int inputBounded = 0;
    int unknown = 0;
};

/** Natural-loop trip-count classifier. */
class LoopBoundAnalysis
{
  public:
    /**
     * Classify every natural loop.
     *
     * @param code   the instruction sequence
     * @param ranges value-range result for the same program (supplies
     *               the per-pc register intervals and predicate facts)
     */
    static LoopBoundResult analyze(const std::vector<Instr> &code,
                                   const RangeResult &ranges);
};

} // namespace dws

#endif // DWS_ANALYSIS_LOOPBOUND_HH
