#include "analysis/verifier.hh"

#include <cstdarg>
#include <cstdio>
#include <deque>

#include "analysis/dataflow.hh"
#include "analysis/liveness.hh"
#include "isa/cfg.hh"

namespace dws {

namespace {

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

void
report(std::vector<Diagnostic> &diags, Severity sev, Pc pc,
       std::string msg)
{
    diags.push_back(Diagnostic{.severity = sev,
                               .pc = pc,
                               .pass = "verifier",
                               .message = std::move(msg)});
}

/** In-range CFG successors (no virtual exit edges). */
std::vector<Pc>
inRangeSuccessors(const std::vector<Instr> &code, Pc pc)
{
    return CfgAnalysis::successors(code, pc);
}

/** @return per-pc "reachable from entry" over in-range edges. */
std::vector<bool>
reachableFromEntry(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    std::vector<bool> seen(static_cast<size_t>(n), false);
    if (n == 0)
        return seen;
    std::deque<Pc> work{0};
    seen[0] = true;
    while (!work.empty()) {
        const Pc pc = work.front();
        work.pop_front();
        for (Pc s : inRangeSuccessors(code, pc)) {
            if (!seen[static_cast<size_t>(s)]) {
                seen[static_cast<size_t>(s)] = true;
                work.push_back(s);
            }
        }
    }
    return seen;
}

/** @return per-pc "some path leads to a Halt" (backward reachability). */
std::vector<bool>
canReachHalt(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    std::vector<std::vector<Pc>> pred(static_cast<size_t>(n));
    std::deque<Pc> work;
    std::vector<bool> can(static_cast<size_t>(n), false);
    for (Pc pc = 0; pc < n; pc++) {
        for (Pc s : inRangeSuccessors(code, pc))
            pred[static_cast<size_t>(s)].push_back(pc);
        if (code[static_cast<size_t>(pc)].op == Op::Halt) {
            can[static_cast<size_t>(pc)] = true;
            work.push_back(pc);
        }
    }
    while (!work.empty()) {
        const Pc pc = work.front();
        work.pop_front();
        for (Pc p : pred[static_cast<size_t>(pc)]) {
            if (!can[static_cast<size_t>(p)]) {
                can[static_cast<size_t>(p)] = true;
                work.push_back(p);
            }
        }
    }
    return can;
}

/** Per-instruction structural checks: opcode, registers, targets. */
void
checkInstructions(const std::vector<Instr> &code,
                  std::vector<Diagnostic> &diags)
{
    const int n = static_cast<int>(code.size());
    for (Pc pc = 0; pc < n; pc++) {
        const Instr &in = code[static_cast<size_t>(pc)];
        if (in.op >= Op::NumOps) {
            report(diags, Severity::Error, pc,
                   format("invalid opcode %d",
                          static_cast<int>(in.op)));
            continue;
        }
        if (opWritesRd(in.op) && in.rd >= kNumRegs)
            report(diags, Severity::Error, pc,
                   format("destination register r%d out of range", in.rd));
        if (opReadsRa(in.op) && in.ra >= kNumRegs)
            report(diags, Severity::Error, pc,
                   format("source register r%d out of range", in.ra));
        if (opReadsRb(in.op) && in.rb >= kNumRegs)
            report(diags, Severity::Error, pc,
                   format("source register r%d out of range", in.rb));
        if ((in.op == Op::Br || in.op == Op::Jmp) &&
            (in.target < 0 || in.target >= n)) {
            report(diags, Severity::Error, pc,
                   format("%s target %d outside program of %d instructions",
                          opName(in.op), in.target, n));
        }
    }
}

} // namespace

std::vector<Diagnostic>
Verifier::verify(const std::vector<Instr> &code)
{
    std::vector<Diagnostic> diags;
    const int n = static_cast<int>(code.size());
    if (n == 0) {
        report(diags, Severity::Error, kPcExit, "program is empty");
        return diags;
    }

    checkInstructions(code, diags);
    if (hasErrors(diags)) {
        // Targets or opcodes are broken; CFG-based checks would lie.
        decorate(diags, code);
        return diags;
    }

    const std::vector<bool> reachable = reachableFromEntry(code);
    const std::vector<bool> reachesHalt = canReachHalt(code);

    bool sawHalt = false;
    for (Pc pc = 0; pc < n; pc++) {
        const Instr &in = code[static_cast<size_t>(pc)];
        if (in.op == Op::Halt)
            sawHalt = true;
        if (!reachable[static_cast<size_t>(pc)]) {
            report(diags, Severity::Warning, pc,
                   "instruction is unreachable");
            continue;
        }
        // A reachable non-terminator at the last pc falls off the end
        // of code (a Br's not-taken path included).
        const bool falls = in.op != Op::Jmp && in.op != Op::Halt;
        if (falls && pc + 1 >= n)
            report(diags, Severity::Error, pc,
                   format("%s at final pc falls through past the end "
                          "of code", opName(in.op)));
        if (!reachesHalt[static_cast<size_t>(pc)])
            report(diags, Severity::Error, pc,
                   "no path from this instruction reaches a halt");
    }
    if (!sawHalt)
        report(diags, Severity::Error, kPcExit,
               "program contains no halt instruction");

    // Def-before-use now rides on the shared dataflow framework; the
    // verifier keeps only the uninitialized-read half of the liveness
    // pass (dead stores are a lint concern, not a validity one).
    const InstrCfg cfg(code);
    for (Diagnostic &d : uninitReadDiagnostics(cfg))
        diags.push_back(std::move(d));
    decorate(diags, code);
    return diags;
}

std::vector<Pc>
Verifier::ipdomByDataflow(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    const int exitNode = n; // virtual exit, as in CfgAnalysis
    const int nodes = n + 1;

    // Successor lists mirroring CfgAnalysis::immediatePostDominators:
    // Halt, off-end fall-through, and out-of-range targets edge to exit.
    std::vector<std::vector<int>> succ(static_cast<size_t>(nodes));
    for (Pc pc = 0; pc < n; pc++) {
        const Instr &in = code[static_cast<size_t>(pc)];
        auto &s = succ[static_cast<size_t>(pc)];
        if (in.op == Op::Halt) {
            s.push_back(exitNode);
            continue;
        }
        for (Pc t : CfgAnalysis::successors(code, pc))
            s.push_back(t);
        if (in.op != Op::Jmp && pc + 1 >= n)
            s.push_back(exitNode);
        if ((in.op == Op::Br || in.op == Op::Jmp) && in.target >= n)
            s.push_back(exitNode);
    }

    // Post-dominance is defined only for nodes that can reach exit
    // (matches CHK, where nodes missing from the reverse-graph DFS keep
    // idom = -1). Find them by reverse BFS over the successor edges.
    std::vector<bool> reachesExit(static_cast<size_t>(nodes), false);
    {
        std::vector<std::vector<int>> pred(static_cast<size_t>(nodes));
        for (int v = 0; v < n; v++)
            for (int s : succ[static_cast<size_t>(v)])
                pred[static_cast<size_t>(s)].push_back(v);
        std::deque<int> work{exitNode};
        reachesExit[static_cast<size_t>(exitNode)] = true;
        while (!work.empty()) {
            const int v = work.front();
            work.pop_front();
            for (int p : pred[static_cast<size_t>(v)]) {
                if (!reachesExit[static_cast<size_t>(p)]) {
                    reachesExit[static_cast<size_t>(p)] = true;
                    work.push_back(p);
                }
            }
        }
    }

    // pdom[v] as a bitset over nodes. Initialize every real node to the
    // full set and shrink by intersection over successors to fixpoint.
    // Successors that cannot reach exit keep the full set and so never
    // constrain the meet, exactly like CHK skipping them.
    const int words = (nodes + 63) / 64;
    std::vector<std::uint64_t> full(static_cast<size_t>(words), 0);
    for (int v = 0; v < nodes; v++)
        full[static_cast<size_t>(v) / 64] |= std::uint64_t(1) << (v % 64);
    std::vector<std::vector<std::uint64_t>> pdom(
            static_cast<size_t>(nodes), full);
    {
        auto &set = pdom[static_cast<size_t>(exitNode)];
        set.assign(static_cast<size_t>(words), 0);
        set[static_cast<size_t>(exitNode) / 64] |=
                std::uint64_t(1) << (exitNode % 64);
    }

    bool changed = true;
    std::vector<std::uint64_t> tmp(static_cast<size_t>(words));
    while (changed) {
        changed = false;
        for (int v = 0; v < n; v++) {
            if (!reachesExit[static_cast<size_t>(v)])
                continue;
            tmp = full;
            for (int s : succ[static_cast<size_t>(v)]) {
                if (!reachesExit[static_cast<size_t>(s)])
                    continue;
                for (int w = 0; w < words; w++)
                    tmp[static_cast<size_t>(w)] &=
                            pdom[static_cast<size_t>(s)]
                                [static_cast<size_t>(w)];
            }
            tmp[static_cast<size_t>(v) / 64] |=
                    std::uint64_t(1) << (v % 64);
            if (tmp != pdom[static_cast<size_t>(v)]) {
                pdom[static_cast<size_t>(v)] = tmp;
                changed = true;
            }
        }
    }

    auto contains = [&](const std::vector<std::uint64_t> &set, int v) {
        return (set[static_cast<size_t>(v) / 64] >>
                (v % 64)) & 1;
    };
    auto popcount = [&](const std::vector<std::uint64_t> &set) {
        int c = 0;
        for (std::uint64_t w : set)
            c += __builtin_popcountll(w);
        return c;
    };

    std::vector<Pc> result(static_cast<size_t>(n), kPcExit);
    for (int v = 0; v < n; v++) {
        if (!reachesExit[static_cast<size_t>(v)])
            continue; // kPcExit, as CHK reports for such nodes
        const auto &set = pdom[static_cast<size_t>(v)];
        // The immediate post-dominator is the strict post-dominator
        // with the *largest* pdom set: sets of a node's strict
        // post-dominators are nested, and the nearest one's is biggest.
        int best = -1;
        int bestSize = -1;
        for (int p = 0; p < nodes; p++) {
            if (p == v || !contains(set, p) ||
                !reachesExit[static_cast<size_t>(p)])
                continue;
            const int size = popcount(pdom[static_cast<size_t>(p)]);
            if (size > bestSize) {
                bestSize = size;
                best = p;
            }
        }
        result[static_cast<size_t>(v)] =
                (best < 0 || best == exitNode) ? kPcExit
                                               : static_cast<Pc>(best);
    }
    return result;
}

std::vector<Diagnostic>
Verifier::verify(const Program &prog)
{
    const std::vector<Instr> &code = prog.instructions();
    std::vector<Diagnostic> diags = verify(code);
    if (hasErrors(diags))
        return diags;

    const std::vector<Pc> chk = CfgAnalysis::immediatePostDominators(code);
    const std::vector<Pc> ref = ipdomByDataflow(code);
    const int n = prog.size();
    for (Pc pc = 0; pc < n; pc++) {
        if (chk[static_cast<size_t>(pc)] != ref[static_cast<size_t>(pc)])
            report(diags, Severity::Error, pc,
                   format("post-dominator mismatch: CHK says %d, "
                          "set dataflow says %d",
                          chk[static_cast<size_t>(pc)],
                          ref[static_cast<size_t>(pc)]));
        if (code[static_cast<size_t>(pc)].op == Op::Br &&
            prog.branchInfo(pc).ipdom != ref[static_cast<size_t>(pc)])
            report(diags, Severity::Error, pc,
                   format("cached branch ipdom %d disagrees with "
                          "recomputed %d", prog.branchInfo(pc).ipdom,
                          ref[static_cast<size_t>(pc)]));
    }
    decorate(diags, code);
    return diags;
}

} // namespace dws
