#include "analysis/diagnostic.hh"

#include <cstdio>

namespace dws {

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
toString(const Diagnostic &d)
{
    char buf[64];
    if (d.pc == kPcExit)
        std::snprintf(buf, sizeof(buf), "%s: ", severityName(d.severity));
    else
        std::snprintf(buf, sizeof(buf), "%s @pc %d: ",
                      severityName(d.severity), d.pc);
    return std::string(buf) + d.message;
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    for (const Diagnostic &d : diags)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

int
countSeverity(const std::vector<Diagnostic> &diags, Severity s)
{
    int n = 0;
    for (const Diagnostic &d : diags)
        if (d.severity == s)
            n++;
    return n;
}

} // namespace dws
