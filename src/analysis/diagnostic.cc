#include "analysis/diagnostic.hh"

#include <cstdio>

#include "isa/disasm.hh"

namespace dws {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "error";
}

std::string
toString(const Diagnostic &d)
{
    char buf[96];
    if (d.pc == kPcExit)
        std::snprintf(buf, sizeof(buf), "%s: ", severityName(d.severity));
    else if (d.block >= 0)
        std::snprintf(buf, sizeof(buf), "%s @pc %d (block %d): ",
                      severityName(d.severity), d.pc, d.block);
    else
        std::snprintf(buf, sizeof(buf), "%s @pc %d: ",
                      severityName(d.severity), d.pc);
    std::string out = std::string(buf) + d.message;
    if (!d.snippet.empty())
        out += "  [" + d.snippet + "]";
    return out;
}

std::vector<int>
blockIds(const std::vector<Instr> &code)
{
    const int n = static_cast<int>(code.size());
    std::vector<bool> leader(static_cast<size_t>(n), false);
    if (n > 0)
        leader[0] = true;
    for (int i = 0; i < n; i++) {
        const Instr &in = code[static_cast<size_t>(i)];
        if ((in.op == Op::Br || in.op == Op::Jmp) && in.target >= 0 &&
            in.target < n)
            leader[static_cast<size_t>(in.target)] = true;
        if (in.isControl() && i + 1 < n)
            leader[static_cast<size_t>(i) + 1] = true;
    }
    std::vector<int> ids(static_cast<size_t>(n), -1);
    int id = -1;
    for (int i = 0; i < n; i++) {
        if (leader[static_cast<size_t>(i)])
            id++;
        ids[static_cast<size_t>(i)] = id;
    }
    return ids;
}

void
decorate(std::vector<Diagnostic> &diags, const std::vector<Instr> &code)
{
    const std::vector<int> blocks = blockIds(code);
    const int n = static_cast<int>(code.size());
    for (Diagnostic &d : diags) {
        if (d.pc == kPcExit || d.pc < 0 || d.pc >= n)
            continue;
        if (d.block < 0)
            d.block = blocks[static_cast<size_t>(d.pc)];
        if (d.snippet.empty())
            d.snippet = disasm(code[static_cast<size_t>(d.pc)]);
    }
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    for (const Diagnostic &d : diags)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

int
countSeverity(const std::vector<Diagnostic> &diags, Severity s)
{
    int n = 0;
    for (const Diagnostic &d : diags)
        if (d.severity == s)
            n++;
    return n;
}

} // namespace dws
