#include "analysis/invariants.hh"

#include <array>
#include <cstdarg>
#include <cstdio>

#include "wpu/wpu.hh"

namespace dws {

namespace {

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

struct InvariantChecker::AuditCtx
{
    const Wpu &w;
    Cycle now;
    std::vector<Violation> out;

    void
    add(WarpId warp, GroupId group, Pc pc, std::string msg)
    {
        out.push_back(Violation{now, w.id(), warp, group, pc,
                                std::move(msg)});
    }
};

void
InvariantChecker::auditGroup(AuditCtx &ctx, const SimdGroup *g)
{
    const Wpu &w = ctx.w;
    const Warp &warp = w.warps[static_cast<size_t>(g->warp)];
    const ThreadMask off = warp.halted | warp.slippedMask();

    if (g->state == GroupState::Dead) {
        ctx.add(g->warp, g->id, g->pc, "dead group still listed live");
        return;
    }
    if (g->mask == 0)
        ctx.add(g->warp, g->id, g->pc, "live group has an empty mask");
    if (g->mask & off)
        ctx.add(g->warp, g->id, g->pc,
                format("mask %llx drives halted/slipped lanes %llx",
                       (unsigned long long)g->mask,
                       (unsigned long long)(g->mask & off)));
    if (g->pc < 0 || g->pc >= w.prog.size())
        ctx.add(g->warp, g->id, g->pc,
                format("pc outside program of %d instructions",
                       w.prog.size()));
    if (g->pendingMem & ~g->mask)
        ctx.add(g->warp, g->id, g->pc,
                format("pendingMem %llx not covered by mask %llx",
                       (unsigned long long)g->pendingMem,
                       (unsigned long long)g->mask));

    // Re-convergence stack balance: the group drives exactly the live
    // lanes of its top frame. (Frame masks do NOT nest pairwise: a
    // divergent branch pushes the taken and not-taken continuations as
    // disjoint sibling frames.)
    if (g->frames.empty()) {
        ctx.add(g->warp, g->id, g->pc, "group has no frames");
    } else {
        const ThreadMask expect = g->frames.back().mask & ~off;
        if (g->mask != expect)
            ctx.add(g->warp, g->id, g->pc,
                    format("mask %llx != top frame mask %llx minus "
                           "off lanes (%llx)",
                           (unsigned long long)g->mask,
                           (unsigned long long)g->frames.back().mask,
                           (unsigned long long)expect));
        for (const Frame &f : g->frames) {
            if (f.mask & ~warp.all)
                ctx.add(g->warp, g->id, g->pc,
                        format("frame mask %llx outside warp lanes %llx",
                               (unsigned long long)f.mask,
                               (unsigned long long)warp.all));
        }
    }

    if (g->state == GroupState::Ready && !g->hasSlot &&
        !w.sched.isQueued(g->id)) {
        ctx.add(g->warp, g->id, g->pc,
                "ready group neither holds a slot nor queues for one");
    }

    // Lost wake: a memory-suspended group whose requests all completed
    // (pendingMem empty) is woken by a WakeGroup event scheduled for
    // its readyAt; the event queue drains through `now` before any
    // tick, so a group still in WaitMem strictly past that time lost
    // its wake (dropped, delayed or misrouted event) and would sleep
    // forever.
    if (g->state == GroupState::WaitMem && g->pendingMem == 0 &&
        g->readyAt < ctx.now) {
        ctx.add(g->warp, g->id, g->pc,
                format("group lost its wake: WaitMem with no pending "
                       "lanes past readyAt %llu (now %llu)",
                       (unsigned long long)g->readyAt,
                       (unsigned long long)ctx.now));
    }
}

void
InvariantChecker::auditWarp(AuditCtx &ctx, const Warp &warp)
{
    const Wpu &w = ctx.w;
    const WarpId id = warp.id;

    // Mask disjointness: each lane is driven by at most one live split.
    ThreadMask seen = 0;
    int liveCount = 0;
    for (const SimdGroup *g : w.live) {
        if (g->warp != id)
            continue;
        liveCount++;
        if (seen & g->mask)
            ctx.add(id, g->id, g->pc,
                    format("mask %llx overlaps a sibling split "
                           "(lanes %llx double-driven)",
                           (unsigned long long)g->mask,
                           (unsigned long long)(seen & g->mask)));
        seen |= g->mask;
    }

    // Lane conservation: every lane of the warp is accounted for by
    // exactly the halted set, slip entries, split masks/frames, or
    // barrier state (arrivals, expectations, continuation frames).
    ThreadMask covered = warp.halted | warp.slippedMask();
    for (const SimdGroup *g : w.live) {
        if (g->warp != id)
            continue;
        covered |= g->mask;
        for (const Frame &f : g->frames)
            covered |= f.mask;
    }
    int parked = 0;
    for (const auto &b : w.warpBarriers[static_cast<size_t>(id)]) {
        covered |= b->arrived;
        covered |= b->expected;
        for (const Frame &f : b->contFrames)
            covered |= f.mask;
        if (b->done)
            ctx.add(id, -1, b->pc,
                    "completed barrier still registered");
        if (b->arrived & ~b->expected)
            ctx.add(id, -1, b->pc,
                    format("barrier arrivals %llx exceed expected %llx",
                           (unsigned long long)b->arrived,
                           (unsigned long long)b->expected));
        if (b->expected & ~warp.all)
            ctx.add(id, -1, b->pc,
                    format("barrier expects lanes %llx outside warp",
                           (unsigned long long)(b->expected & ~warp.all)));
        parked += b->parkedSplits;
    }
    if (covered != warp.all)
        ctx.add(id, -1, kPcExit,
                format("lanes %llx unaccounted (not halted, slipped, "
                       "in a split, or at a barrier)",
                       (unsigned long long)(warp.all & ~covered)));

    // WST occupancy mirrors reality: live + parked groups per warp.
    if (w.wstTable.groups(id) != liveCount)
        ctx.add(id, -1, kPcExit,
                format("WST records %d live groups, %d exist",
                       w.wstTable.groups(id), liveCount));
    if (w.wstTable.parked(id) != parked)
        ctx.add(id, -1, kPcExit,
                format("WST records %d parked splits, barriers hold %d",
                       w.wstTable.parked(id), parked));
}

std::string
toString(const Violation &v)
{
    std::string s = format("cycle %llu wpu %d",
                           (unsigned long long)v.cycle, v.wpu);
    if (v.warp >= 0)
        s += format(" warp %d", v.warp);
    if (v.group >= 0)
        s += format(" group %d", v.group);
    if (v.pc != kPcExit)
        s += format(" pc %d", v.pc);
    return s + ": " + v.message;
}

std::vector<Violation>
InvariantChecker::auditWpu(const Wpu &w, Cycle now)
{
    AuditCtx ctx{w, now, {}};

    int halted = 0;
    for (const Warp &warp : w.warps) {
        auditWarp(ctx, warp);
        halted += popcount(warp.halted);
    }
    for (const SimdGroup *g : w.live)
        auditGroup(ctx, g);

    if (halted != w.haltedThreads)
        ctx.add(-1, -1, kPcExit,
                format("halted-thread count %d != per-warp masks (%d)",
                       w.haltedThreads, halted));

    // Scheduler slot accounting.
    int slots = 0;
    for (const SimdGroup *g : w.live)
        slots += g->hasSlot ? 1 : 0;
    if (slots != w.sched.slotsUsed())
        ctx.add(-1, -1, kPcExit,
                format("scheduler reports %d slots used, groups hold %d",
                       w.sched.slotsUsed(), slots));
    if (w.sched.slotsUsed() > w.cfg.wpu.schedSlots)
        ctx.add(-1, -1, kPcExit,
                format("scheduler slots used %d exceed capacity %d",
                       w.sched.slotsUsed(), w.cfg.wpu.schedSlots));

    // Scheduler wait-queue consistency: every queued pointer must refer
    // to a live group of this WPU (membership is checked by pointer
    // identity before any dereference, so a dangling entry is reported
    // rather than followed), appear once, and hold no slot.
    {
        std::vector<const SimdGroup *> seenQueued;
        for (const SimdGroup *q : w.sched.queued()) {
            bool live = false;
            for (const SimdGroup *g : w.live) {
                if (g == q) {
                    live = true;
                    break;
                }
            }
            if (!live) {
                ctx.add(-1, -1, kPcExit,
                        "scheduler queue holds a pointer to a group "
                        "not in the live set (dangling)");
                continue;
            }
            for (const SimdGroup *p : seenQueued) {
                if (p == q)
                    ctx.add(q->warp, q->id, q->pc,
                            "group queued for a slot twice");
            }
            seenQueued.push_back(q);
            if (q->hasSlot)
                ctx.add(q->warp, q->id, q->pc,
                        "group holds a slot yet waits in the slot "
                        "queue");
            if (q->state == GroupState::Dead)
                ctx.add(q->warp, q->id, q->pc,
                        "dead group still queued for a slot");
        }
    }

    // Ready-list consistency: the list holds exactly the live groups
    // whose (hasSlot, state) say they belong, in ascending id order,
    // with the inReadyList mirror flags in sync. Pointer identity is
    // checked against the live set before any entry is trusted.
    {
        const std::vector<SimdGroup *> &ready = w.sched.readyList();
        GroupId prevId = -1;
        std::vector<const SimdGroup *> seenReady;
        for (const SimdGroup *r : ready) {
            bool isLive = false;
            for (const SimdGroup *g : w.live) {
                if (g == r) {
                    isLive = true;
                    break;
                }
            }
            if (!isLive) {
                ctx.add(-1, -1, kPcExit,
                        "ready list holds a pointer to a group not in "
                        "the live set (dangling)");
                continue;
            }
            for (const SimdGroup *p : seenReady) {
                if (p == r)
                    ctx.add(r->warp, r->id, r->pc,
                            "group appears in the ready list twice");
            }
            seenReady.push_back(r);
            if (!r->inReadyList)
                ctx.add(r->warp, r->id, r->pc,
                        "ready-list entry has inReadyList unset");
            if (!r->hasSlot)
                ctx.add(r->warp, r->id, r->pc,
                        "ready-list entry holds no scheduler slot");
            if (r->state != GroupState::Ready &&
                r->state != GroupState::WaitRetry)
                ctx.add(r->warp, r->id, r->pc,
                        format("ready-list entry misfiled in state %s",
                               groupStateName(r->state)));
            if (r->id <= prevId)
                ctx.add(r->warp, r->id, r->pc,
                        "ready list is not ascending by group id");
            prevId = r->id;
        }
        // Completeness: every live group meeting the membership
        // predicate must be listed (checked via its mirror flag, whose
        // agreement with actual membership was verified above).
        for (const SimdGroup *g : w.live) {
            const bool want = g->hasSlot &&
                              (g->state == GroupState::Ready ||
                               g->state == GroupState::WaitRetry);
            if (want && !g->inReadyList)
                ctx.add(g->warp, g->id, g->pc,
                        "schedulable group missing from the ready list");
            if (!want && g->inReadyList)
                ctx.add(g->warp, g->id, g->pc,
                        "unschedulable group flagged inReadyList");
        }
    }

    // State census: the O(1) stateCount array the stall classifier and
    // tick gate rely on must match a recount of the live set.
    {
        std::array<int, 6> recount{};
        for (const SimdGroup *g : w.live)
            recount[static_cast<size_t>(g->state)]++;
        for (size_t s = 0; s < recount.size(); s++) {
            if (recount[s] != w.stateCount[s])
                ctx.add(-1, -1, kPcExit,
                        format("stateCount[%s] is %d, live set has %d",
                               groupStateName(
                                       static_cast<GroupState>(s)),
                               w.stateCount[s], recount[s]));
        }
    }

    // WST capacity. Adaptive slip spawns catch-up groups outside the
    // WST's control, so the bound only holds for the DWS policies.
    if (!w.policy.slip() && w.wstTable.inUse() > w.cfg.wpu.wstEntries)
        ctx.add(-1, -1, kPcExit,
                format("WST occupancy %d exceeds capacity %d",
                       w.wstTable.inUse(), w.cfg.wpu.wstEntries));

    // MSHR leaks: release events fire at the entry's fill time, and the
    // event queue drains through `now` before any tick, so an entry
    // strictly past its readyAt lost its release.
    const int l1Leaks =
            w.memsys.l1MshrFile(w.id()).overdueEntries(now);
    if (l1Leaks > 0)
        ctx.add(-1, -1, kPcExit,
                format("%d leaked L1 MSHR entries (readyAt < now)",
                       l1Leaks));
    for (int li = 0; li < w.memsys.sharedLevels(); li++) {
        for (int s = 0; s < w.memsys.sliceCount(li); s++) {
            const int leaks =
                    w.memsys.sharedMshrFile(li, s).overdueEntries(now);
            if (leaks > 0)
                ctx.add(-1, -1, kPcExit,
                        format("%d leaked %s MSHR entries "
                               "(readyAt < now)",
                               leaks,
                               w.memsys.sharedCache(li, s)
                                       .name().c_str()));
        }
    }

    // Tracer occupancy mirrors: every split/WST/MSHR mutation must
    // flow through a trace hook, so the tracer's live counters must
    // agree with the structures themselves. A drift means a mutation
    // path bypassed its hook (or the tracer double-counted).
    if (const Tracer *t = w.trace_) {
        if (t->liveGroups(w.id()) != static_cast<int>(w.live.size()))
            ctx.add(-1, -1, kPcExit,
                    format("tracer mirrors %d live groups, %zu exist",
                           t->liveGroups(w.id()), w.live.size()));
        if (t->wstInUse(w.id()) != w.wstTable.inUse())
            ctx.add(-1, -1, kPcExit,
                    format("tracer mirrors %d WST entries, table holds "
                           "%d",
                           t->wstInUse(w.id()), w.wstTable.inUse()));
        if (t->l1MshrInUse(w.id()) !=
            w.memsys.l1MshrFile(w.id()).inUse())
            ctx.add(-1, -1, kPcExit,
                    format("tracer mirrors %d L1 MSHRs, file holds %d",
                           t->l1MshrInUse(w.id()),
                           w.memsys.l1MshrFile(w.id()).inUse()));
        for (int li = 0; li < w.memsys.sharedLevels(); li++) {
            for (int s = 0; s < w.memsys.sliceCount(li); s++) {
                const int mirror = t->sharedMshrInUse(li + 1, s);
                const int held =
                        w.memsys.sharedMshrFile(li, s).inUse();
                if (mirror != held)
                    ctx.add(-1, -1, kPcExit,
                            format("tracer mirrors %d %s MSHRs, file "
                                   "holds %d",
                                   mirror,
                                   w.memsys.sharedCache(li, s)
                                           .name().c_str(),
                                   held));
            }
        }
    }

    // Tag uniqueness: find() returns the first matching way, so two
    // valid ways of a set with the same tag would silently shadow each
    // other's MESI state. Checked on this WPU's L1s plus every shared
    // level slice (the shared checks are redundant across WPUs but
    // cheap relative to the audit cadence).
    std::vector<const CacheArray *> audited = {&w.memsys.icache(w.id()),
                                               &w.memsys.dcache(w.id())};
    for (int li = 0; li < w.memsys.sharedLevels(); li++)
        for (int s = 0; s < w.memsys.sliceCount(li); s++)
            audited.push_back(&w.memsys.sharedCache(li, s));
    for (const CacheArray *c : audited) {
        const std::vector<int> dups = c->duplicateTagSets();
        if (!dups.empty())
            ctx.add(-1, -1, kPcExit,
                    format("%s: %zu sets hold duplicate tags "
                           "(first: set %d)",
                           c->name().c_str(), dups.size(), dups[0]));
    }

    // Static divergence soundness: a branch the compiler pass proved
    // uniform must never be observed divergent at runtime.
    if (w.stats.staticDivergenceMispredicts > 0)
        ctx.add(-1, -1, kPcExit,
                format("%llu branches predicted uniform diverged at "
                       "runtime",
                       (unsigned long long)
                               w.stats.staticDivergenceMispredicts));

    return std::move(ctx.out);
}

} // namespace dws
