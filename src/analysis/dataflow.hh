/**
 * @file
 * Generic dataflow-analysis framework over the instruction-level CFG.
 *
 * Two pieces:
 *
 *  - InstrCfg: a materialized CFG view of an instruction sequence
 *    (predecessor/successor lists, reverse postorder, reachability,
 *    basic-block ids) shared by every pass so the graph is built once.
 *
 *  - runForward / runBackward: worklist fixpoint engines parameterized
 *    by a *domain*. A domain supplies the lattice (a State type, a
 *    boundary value for the entry/exit, a join that returns whether
 *    anything changed) and the transfer function. Optional hooks let a
 *    domain refine the state along a specific CFG edge (conditional
 *    branch refinement) and widen at designated program points (loop
 *    headers) so infinite-height lattices still terminate.
 *
 * Domain concept (forward; backward swaps edge direction):
 *
 *   struct Domain {
 *       using State = ...;
 *       State boundary() const;              // state at the entry
 *       State top() const;                   // optimistic initial value
 *       bool join(State &into, const State &from) const;
 *       void transfer(Pc pc, const Instr &in, State &s) const;
 *       // optional:
 *       void edge(Pc from, Pc to, State &s) const;
 *       void widen(State &into, const State &from) const;
 *   };
 *
 * join() must be monotone and return true iff `into` changed. When the
 * domain defines widen(), the engine applies it instead of join() at
 * pcs named in Fixpoint::widenPoints once a pc has been visited more
 * than widenDelay times, guaranteeing termination on lattices of
 * infinite height (interval analysis).
 */

#ifndef DWS_ANALYSIS_DATAFLOW_HH
#define DWS_ANALYSIS_DATAFLOW_HH

#include <deque>
#include <vector>

#include "isa/instr.hh"
#include "sim/types.hh"

namespace dws {

/** Materialized instruction-level CFG shared by the dataflow passes. */
class InstrCfg
{
  public:
    explicit InstrCfg(const std::vector<Instr> &code);

    /** @return number of instructions. */
    int size() const { return n; }

    /** @return the instruction sequence the CFG was built from. */
    const std::vector<Instr> &code() const { return *instrs; }

    const std::vector<Pc> &succs(Pc pc) const
    {
        return succ[static_cast<size_t>(pc)];
    }

    const std::vector<Pc> &preds(Pc pc) const
    {
        return pred[static_cast<size_t>(pc)];
    }

    /** @return true if pc is reachable from the entry. */
    bool reachable(Pc pc) const
    {
        return reach[static_cast<size_t>(pc)];
    }

    /** @return pcs in reverse postorder of a DFS from the entry. */
    const std::vector<Pc> &rpo() const { return rpoOrder; }

    /** @return position of pc inside rpo() (-1 if unreachable). */
    int rpoIndex(Pc pc) const { return rpoIdx[static_cast<size_t>(pc)]; }

    /** @return per-pc basic-block index. */
    const std::vector<int> &blocks() const { return blockOf; }

  private:
    const std::vector<Instr> *instrs;
    int n = 0;
    std::vector<std::vector<Pc>> succ;
    std::vector<std::vector<Pc>> pred;
    std::vector<bool> reach;
    std::vector<Pc> rpoOrder;
    std::vector<int> rpoIdx;
    std::vector<int> blockOf;
};

/** Tuning knobs of one fixpoint run. */
struct FixpointOptions
{
    /** Pcs where widen() replaces join() (typically loop headers). */
    std::vector<bool> widenPoints;
    /** Joins at a widen point before widening kicks in. */
    int widenDelay = 3;
};

namespace detail {

template <typename D>
concept HasEdge = requires(const D d, typename D::State s) {
    d.edge(Pc{0}, Pc{0}, s);
};

template <typename D>
concept HasWiden = requires(const D d, typename D::State a,
                            const typename D::State b) {
    d.widen(a, b);
};

} // namespace detail

/**
 * Forward fixpoint: returns the per-pc *in* state (the state holding
 * immediately before the instruction executes). Unreachable pcs keep
 * top(). States flow entry -> exit along CFG edges.
 */
template <typename D>
std::vector<typename D::State>
runForward(const InstrCfg &cfg, const D &dom,
           const FixpointOptions &opts = {})
{
    using State = typename D::State;
    const int n = cfg.size();
    std::vector<State> in(static_cast<size_t>(n), dom.top());
    if (n == 0)
        return in;
    in[0] = dom.boundary();

    std::vector<int> joins(static_cast<size_t>(n), 0);
    std::vector<bool> queued(static_cast<size_t>(n), false);
    std::deque<Pc> work;
    for (Pc pc : cfg.rpo()) {
        work.push_back(pc);
        queued[static_cast<size_t>(pc)] = true;
    }

    while (!work.empty()) {
        const Pc pc = work.front();
        work.pop_front();
        queued[static_cast<size_t>(pc)] = false;

        State out = in[static_cast<size_t>(pc)];
        dom.transfer(pc, cfg.code()[static_cast<size_t>(pc)], out);
        for (Pc s : cfg.succs(pc)) {
            State onEdge = out;
            if constexpr (detail::HasEdge<D>)
                dom.edge(pc, s, onEdge);
            bool changed;
            const bool widenHere = static_cast<size_t>(s) <
                                       opts.widenPoints.size() &&
                                   opts.widenPoints[static_cast<size_t>(s)] &&
                                   joins[static_cast<size_t>(s)] >=
                                       opts.widenDelay;
            if constexpr (detail::HasWiden<D>) {
                if (widenHere) {
                    State widened = in[static_cast<size_t>(s)];
                    dom.widen(widened, onEdge);
                    changed = dom.join(in[static_cast<size_t>(s)],
                                       widened);
                } else {
                    changed = dom.join(in[static_cast<size_t>(s)],
                                       onEdge);
                }
            } else {
                (void)widenHere;
                changed = dom.join(in[static_cast<size_t>(s)], onEdge);
            }
            if (changed) {
                joins[static_cast<size_t>(s)]++;
                if (!queued[static_cast<size_t>(s)]) {
                    queued[static_cast<size_t>(s)] = true;
                    work.push_back(s);
                }
            }
        }
    }
    return in;
}

/**
 * Backward fixpoint: returns the per-pc *out* state (the state holding
 * immediately after the instruction executes; for liveness, the
 * live-out set). Instructions with no successors get boundary().
 */
template <typename D>
std::vector<typename D::State>
runBackward(const InstrCfg &cfg, const D &dom,
            const FixpointOptions &opts = {})
{
    using State = typename D::State;
    const int n = cfg.size();
    std::vector<State> out(static_cast<size_t>(n), dom.top());
    if (n == 0)
        return out;
    for (Pc pc = 0; pc < n; pc++)
        if (cfg.succs(pc).empty())
            out[static_cast<size_t>(pc)] = dom.boundary();

    std::vector<int> joins(static_cast<size_t>(n), 0);
    std::vector<bool> queued(static_cast<size_t>(n), false);
    std::deque<Pc> work;
    for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend(); ++it) {
        work.push_back(*it);
        queued[static_cast<size_t>(*it)] = true;
    }

    while (!work.empty()) {
        const Pc pc = work.front();
        work.pop_front();
        queued[static_cast<size_t>(pc)] = false;

        State s = out[static_cast<size_t>(pc)];
        dom.transfer(pc, cfg.code()[static_cast<size_t>(pc)], s);
        for (Pc p : cfg.preds(pc)) {
            State onEdge = s;
            if constexpr (detail::HasEdge<D>)
                dom.edge(pc, p, onEdge);
            bool changed;
            const bool widenHere = static_cast<size_t>(p) <
                                       opts.widenPoints.size() &&
                                   opts.widenPoints[static_cast<size_t>(p)] &&
                                   joins[static_cast<size_t>(p)] >=
                                       opts.widenDelay;
            if constexpr (detail::HasWiden<D>) {
                if (widenHere) {
                    State widened = out[static_cast<size_t>(p)];
                    dom.widen(widened, onEdge);
                    changed = dom.join(out[static_cast<size_t>(p)],
                                       widened);
                } else {
                    changed = dom.join(out[static_cast<size_t>(p)],
                                       onEdge);
                }
            } else {
                (void)widenHere;
                changed = dom.join(out[static_cast<size_t>(p)], onEdge);
            }
            if (changed) {
                joins[static_cast<size_t>(p)]++;
                if (!queued[static_cast<size_t>(p)]) {
                    queued[static_cast<size_t>(p)] = true;
                    work.push_back(p);
                }
            }
        }
    }
    return out;
}

} // namespace dws

#endif // DWS_ANALYSIS_DATAFLOW_HH
