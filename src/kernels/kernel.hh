/**
 * @file
 * The benchmark-kernel interface and registry (paper Table 2).
 *
 * Each kernel provides: an IR program (the data-parallel code every
 * thread executes, in the persistent-thread style: r0 = global thread
 * id, r1 = thread count, each thread loops over a blocked range of
 * tasks so neighboring tasks land in the same warp, per [18]), the
 * functional-memory image, and a host-side golden reference used to
 * validate simulated output bit-exactly.
 *
 * Input sizes are scaled down from the paper (which itself scaled them
 * to fit six-hour simulations) so the full evaluation runs on one core;
 * see DESIGN.md Section 4. `scale` selects a size preset.
 */

#ifndef DWS_KERNELS_KERNEL_HH
#define DWS_KERNELS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/builder.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sim/rng.hh"

namespace dws {

/** Kernel input-size presets. */
enum class KernelScale {
    Tiny,    ///< for wide parameter sweeps
    Default, ///< for headline results
};

/** Construction parameters common to all kernels. */
struct KernelParams
{
    KernelScale scale = KernelScale::Default;
    std::uint64_t seed = 12345;
    /** Branch-subdivision heuristic bound (paper Section 4.3). */
    int subdivThreshold = 50;
    /**
     * Thread count the launch will actually run (the machine's total
     * thread capacity). IR-file kernels use it to run their scalar
     * golden reference over the same thread count the simulator ran;
     * the built-in kernels ignore it. 0 means "default machine".
     */
    std::int64_t launchThreads = 0;
};

/** Abstract benchmark kernel. */
class Kernel
{
  public:
    explicit Kernel(const KernelParams &p) : params(p) {}
    virtual ~Kernel() = default;

    /** @return the benchmark's short name (FFT, Filter, ...). */
    virtual std::string name() const = 0;

    /** @return a one-line description (Table 2). */
    virtual std::string description() const = 0;

    /** @return the IR program all threads execute. */
    virtual Program buildProgram() const = 0;

    /** @return bytes of functional memory the kernel needs. */
    virtual std::uint64_t memBytes() const = 0;

    /** Fill the functional memory with the (seeded) input data. */
    virtual void initMemory(Memory &mem) const = 0;

    /**
     * Check the simulated output against the host-side golden
     * reference (bit-exact integer math).
     */
    virtual bool validate(const Memory &mem) const = 0;

  protected:
    KernelParams params;
};

/** @return the registered kernel names in paper order. */
const std::vector<std::string> &kernelNames();

/**
 * Instantiate a kernel by name.
 * @return nullptr for unknown names.
 */
std::unique_ptr<Kernel> makeKernel(const std::string &name,
                                   const KernelParams &params);

/**
 * Emit code computing this thread's blocked task range:
 *   regLo = tid * total / nthreads
 *   regHi = (tid + 1) * total / nthreads
 * Clobbers only regLo/regHi. Assumes r0 = tid, r1 = nthreads.
 */
void emitBlockRange(KernelBuilder &b, int regLo, int regHi,
                    std::int64_t total);

/** Fixed-point scale used by the numeric kernels (Q16). */
constexpr int kFxShift = 16;
constexpr std::int64_t kFxOne = std::int64_t(1) << kFxShift;

/** @return (a * b) >> kFxShift, the Q16 product (host-side golden). */
inline std::int64_t
fxMul(std::int64_t a, std::int64_t b)
{
    return (a * b) >> kFxShift;
}

} // namespace dws

#endif // DWS_KERNELS_KERNEL_HH
