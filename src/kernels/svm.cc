/**
 * @file
 * SVM: support-vector-machine kernel computation (paper Table 2, from
 * MineBench; input scaled from 100,000 x 20-D to 4,000 x 20-D).
 *
 * Each thread computes dot products of its block of sample vectors
 * against the weight vector, with a rare clipping branch (large margins
 * are compressed) that reproduces SVM's small divergent-branch
 * fraction (Table 1: 4.3%).
 */

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

constexpr std::int64_t kClipThreshold = 20000;

class SvmKernel : public Kernel
{
  public:
    explicit SvmKernel(const KernelParams &p) : Kernel(p)
    {
        // Line-aligned 16-D records: lanes working on vectors a fixed
        // stride apart contend for the same cache sets, reproducing the
        // memory-bound, divergence-heavy behavior the paper measures at
        // its 100,000-vector scale (see EXPERIMENTS.md on this
        // substitution).
        if (p.scale == KernelScale::Tiny) {
            vectors = 2048;
            dims = 16;
        } else {
            vectors = 4096;
            dims = 16;
        }
    }

    std::string name() const override { return "SVM"; }

    std::string
    description() const override
    {
        return "SVM kernel computation, " + std::to_string(vectors) +
               " vectors x " + std::to_string(dims) + "-D";
    }

    std::uint64_t
    memBytes() const override
    {
        return (std::uint64_t(vectors) * dims + dims + vectors) *
               kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t d = dims;
        const std::int64_t wBase =
                std::int64_t(vectors) * d * kWordBytes;
        const std::int64_t outBase = wBase + d * kWordBytes;

        KernelBuilder b;
        emitBlockRange(b, 2, 3, vectors);
        b.mov(4, 2);

        auto vLoop = b.newLabel();
        auto vDone = b.newLabel();
        b.bind(vLoop);
        b.sle(16, 3, 4);
        b.br(16, vDone);

        b.muli(5, 4, d * kWordBytes); // vector byte base
        b.movi(6, 0);                 // dot
        b.movi(7, 0);                 // dim
        auto dLoop = b.newLabel();
        auto dDone = b.newLabel();
        b.bind(dLoop);
        b.slti(16, 7, d);
        b.seq(16, 16, 30);
        b.br(16, dDone);
        b.muli(8, 7, kWordBytes);
        b.add(9, 8, 5);
        b.ld(10, 9, 0);              // x
        b.addi(9, 8, 0);
        b.addi(9, 9, wBase);
        b.ld(11, 9, 0);              // w
        b.mul(10, 10, 11);
        b.add(6, 6, 10);
        b.addi(7, 7, 1);
        b.jmp(dLoop);
        b.bind(dDone);

        // Rare clipping branch: compress large margins.
        auto noClip = b.newLabel();
        b.slti(16, 6, kClipThreshold + 1);
        b.br(16, noClip);
        b.addi(12, 6, -kClipThreshold);
        b.shri(12, 12, 1);
        b.movi(6, kClipThreshold);
        b.add(6, 6, 12);
        b.bind(noClip);

        b.muli(13, 4, kWordBytes);
        b.addi(13, 13, outBase);
        b.st(13, 6, 0);

        b.addi(4, 4, 1);
        b.jmp(vLoop);
        b.bind(vDone);
        b.halt();
        return b.build("SVM", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 6);
        const std::uint64_t xWords = std::uint64_t(vectors) * dims;
        for (std::uint64_t i = 0; i < xWords; i++)
            mem.writeWord(i, rng.nextRange(-100, 100));
        for (int j = 0; j < dims; j++)
            mem.writeWord(xWords + static_cast<std::uint64_t>(j),
                          rng.nextRange(-100, 100));
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 6);
        std::vector<std::int64_t> x(
                static_cast<size_t>(vectors) * dims);
        for (auto &v : x)
            v = rng.nextRange(-100, 100);
        std::vector<std::int64_t> w(static_cast<size_t>(dims));
        for (auto &v : w)
            v = rng.nextRange(-100, 100);
        const std::uint64_t outBase =
                std::uint64_t(vectors) * dims + dims;
        for (int i = 0; i < vectors; i++) {
            std::int64_t dot = 0;
            for (int j = 0; j < dims; j++)
                dot += x[static_cast<size_t>(i * dims + j)] *
                       w[static_cast<size_t>(j)];
            if (dot > kClipThreshold)
                dot = kClipThreshold + ((dot - kClipThreshold) >> 1);
            if (mem.readWord(outBase + static_cast<std::uint64_t>(i)) !=
                dot)
                return false;
        }
        return true;
    }

  private:
    int vectors;
    int dims;
};

} // namespace

std::unique_ptr<Kernel>
makeSvm(const KernelParams &p)
{
    return std::make_unique<SvmKernel>(p);
}

} // namespace dws
