/**
 * @file
 * KMeans: unsupervised classification by map-reduce distance
 * aggregation (paper Table 2, from MineBench; input scaled from
 * 10,000 x 20-D to 4,000 x 20-D).
 *
 * Map phase: each thread assigns its block of points to the nearest
 * center (the running-minimum update is a data-dependent branch) and
 * accumulates per-thread partial sums. Reduce phase: partial sums are
 * combined and centers recomputed, with kernel barriers between
 * phases. The scratch area is sized for the maximum hardware thread
 * count so one program serves every WPU configuration.
 */

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

/** Scratch is sized for this many hardware threads. */
constexpr int kMaxThreads = 4096;

class KMeansKernel : public Kernel
{
  public:
    explicit KMeansKernel(const KernelParams &p) : Kernel(p)
    {
        // Line-aligned 16-D points: lanes contend for the same cache
        // sets, reproducing the cache-pressure regime of the paper's
        // 10,000-point runs (see EXPERIMENTS.md).
        if (p.scale == KernelScale::Tiny) {
            points = 2048;
            dims = 16;
            clusters = 8;
            iters = 1;
        } else {
            points = 4096;
            dims = 16;
            clusters = 8;
            iters = 2;
        }
    }

    std::string name() const override { return "KMeans"; }

    std::string
    description() const override
    {
        return "k-means, " + std::to_string(points) + " points x " +
               std::to_string(dims) + "-D, k=" +
               std::to_string(clusters) + ", " + std::to_string(iters) +
               " iterations";
    }

    // --- memory layout (words) -----------------------------------
    std::int64_t ptWords() const { return std::int64_t(points) * dims; }
    std::int64_t centBase() const { return ptWords(); }
    std::int64_t cellsPerThread() const
    {
        return std::int64_t(clusters) * (dims + 1);
    }
    std::int64_t scratchBase() const
    {
        return centBase() + std::int64_t(clusters) * dims;
    }
    std::int64_t reduceBase() const
    {
        return scratchBase() + std::int64_t(kMaxThreads) *
               cellsPerThread();
    }

    std::uint64_t
    memBytes() const override
    {
        return static_cast<std::uint64_t>(
                (reduceBase() + cellsPerThread()) * kWordBytes);
    }

    Program
    buildProgram() const override
    {
        const std::int64_t d = dims;
        const std::int64_t k = clusters;
        const std::int64_t cpt = cellsPerThread();
        const std::int64_t centB = centBase() * kWordBytes;
        const std::int64_t scratchB = scratchBase() * kWordBytes;
        const std::int64_t reduceB = reduceBase() * kWordBytes;

        KernelBuilder b;
        // myBase = scratchB + tid * cpt * 8
        b.muli(3, 0, cpt * kWordBytes);
        b.addi(3, 3, scratchB);
        b.movi(2, 0); // iteration

        auto itLoop = b.newLabel();
        auto itDone = b.newLabel();
        b.bind(itLoop);
        b.slti(16, 2, iters);
        b.seq(16, 16, 30);
        b.br(16, itDone);

        // --- zero my partial sums ---------------------------------
        b.movi(4, 0);
        auto zLoop = b.newLabel();
        auto zDone = b.newLabel();
        b.bind(zLoop);
        b.slti(16, 4, cpt);
        b.seq(16, 16, 30);
        b.br(16, zDone);
        b.muli(17, 4, kWordBytes);
        b.add(17, 17, 3);
        b.st(17, 30, 0);
        b.addi(4, 4, 1);
        b.jmp(zLoop);
        b.bind(zDone);

        // --- map: assign my block of points -------------------------
        emitBlockRange(b, 5, 6, points);
        b.mov(7, 5);
        auto pLoop = b.newLabel();
        auto pDone = b.newLabel();
        b.bind(pLoop);
        b.sle(16, 6, 7);
        b.br(16, pDone);

        b.muli(8, 7, d * kWordBytes); // point byte base
        b.movi(10, std::int64_t(1) << 40); // best distance
        b.movi(11, 0);                     // best cluster
        b.movi(12, 0);                     // cluster loop
        auto kLoop = b.newLabel();
        auto kDone = b.newLabel();
        auto skipUpd = b.newLabel();
        b.bind(kLoop);
        b.slti(16, 12, k);
        b.seq(16, 16, 30);
        b.br(16, kDone);
        b.muli(15, 12, d * kWordBytes);
        b.addi(15, 15, centB);      // center byte base
        b.movi(13, 0);              // dist
        b.movi(14, 0);              // dim loop
        auto dLoop = b.newLabel();
        auto dDone = b.newLabel();
        b.bind(dLoop);
        b.slti(16, 14, d);
        b.seq(16, 16, 30);
        b.br(16, dDone);
        b.muli(17, 14, kWordBytes);
        b.add(18, 17, 8);
        b.ld(19, 18, 0);            // x
        b.add(18, 17, 15);
        b.ld(20, 18, 0);            // c
        b.sub(19, 19, 20);
        b.mul(19, 19, 19);
        b.add(13, 13, 19);
        b.addi(14, 14, 1);
        b.jmp(dLoop);
        b.bind(dDone);
        // running minimum (data-dependent branch)
        b.slt(16, 13, 10);
        b.seq(16, 16, 30);
        b.br(16, skipUpd);
        b.mov(10, 13);
        b.mov(11, 12);
        b.bind(skipUpd);
        b.addi(12, 12, 1);
        b.jmp(kLoop);
        b.bind(kDone);

        // accumulate point into partial[bestK]
        b.muli(21, 11, (d + 1) * kWordBytes);
        b.add(21, 21, 3);           // acc base
        b.movi(14, 0);
        auto aLoop = b.newLabel();
        auto aDone = b.newLabel();
        b.bind(aLoop);
        b.slti(16, 14, d);
        b.seq(16, 16, 30);
        b.br(16, aDone);
        b.muli(17, 14, kWordBytes);
        b.add(18, 17, 8);
        b.ld(19, 18, 0);
        b.add(18, 17, 21);
        b.ld(20, 18, 0);
        b.add(20, 20, 19);
        b.st(18, 20, 0);
        b.addi(14, 14, 1);
        b.jmp(aLoop);
        b.bind(aDone);
        b.ld(20, 21, d * kWordBytes);
        b.addi(20, 20, 1);
        b.st(21, 20, d * kWordBytes); // count++

        b.addi(7, 7, 1);
        b.jmp(pLoop);
        b.bind(pDone);
        b.bar();

        // --- reduce partial sums over threads ------------------------
        emitBlockRange(b, 5, 6, cpt);
        b.mov(4, 5);
        auto rLoop = b.newLabel();
        auto rDone = b.newLabel();
        b.bind(rLoop);
        b.sle(16, 6, 4);
        b.br(16, rDone);
        b.movi(19, 0); // sum
        b.movi(20, 0); // thread index
        auto sLoop = b.newLabel();
        auto sDone = b.newLabel();
        b.bind(sLoop);
        b.slt(16, 20, 1);
        b.seq(16, 16, 30);
        b.br(16, sDone);
        b.muli(17, 20, cpt * kWordBytes);
        b.addi(17, 17, scratchB);
        b.muli(18, 4, kWordBytes);
        b.add(17, 17, 18);
        b.ld(21, 17, 0);
        b.add(19, 19, 21);
        b.addi(20, 20, 1);
        b.jmp(sLoop);
        b.bind(sDone);
        b.muli(17, 4, kWordBytes);
        b.addi(17, 17, reduceB);
        b.st(17, 19, 0);
        b.addi(4, 4, 1);
        b.jmp(rLoop);
        b.bind(rDone);
        b.bar();

        // --- recompute centers ----------------------------------------
        emitBlockRange(b, 5, 6, k * d);
        b.mov(4, 5);
        auto uLoop = b.newLabel();
        auto uDone = b.newLabel();
        auto keepOld = b.newLabel();
        b.bind(uLoop);
        b.sle(16, 6, 4);
        b.br(16, uDone);
        b.movi(17, d);
        b.div(18, 4, 17);           // cluster
        b.rem(19, 4, 17);           // dim
        // count = reduce[cluster*(d+1) + d]
        b.muli(20, 18, (d + 1) * kWordBytes);
        b.addi(20, 20, reduceB);
        b.ld(21, 20, d * kWordBytes);
        b.seq(16, 21, 30);
        b.br(16, keepOld);
        // center = sum / count
        b.muli(22, 19, kWordBytes);
        b.add(22, 22, 20);
        b.ld(23, 22, 0);
        b.div(23, 23, 21);
        b.muli(24, 4, kWordBytes);
        b.addi(24, 24, centB);
        b.st(24, 23, 0);
        b.bind(keepOld);
        b.addi(4, 4, 1);
        b.jmp(uLoop);
        b.bind(uDone);
        b.bar();

        b.addi(2, 2, 1);
        b.jmp(itLoop);
        b.bind(itDone);
        b.halt();
        return b.build("KMeans", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 5);
        for (std::int64_t i = 0; i < ptWords(); i++)
            mem.writeWord(static_cast<std::uint64_t>(i),
                          rng.nextRange(0, 1000));
        // Initial centers: the first `clusters` points.
        for (int c = 0; c < clusters; c++)
            for (int j = 0; j < dims; j++)
                mem.writeWord(static_cast<std::uint64_t>(
                                      centBase() + c * dims + j),
                              mem.readWord(static_cast<std::uint64_t>(
                                      c * dims + j)));
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 5);
        std::vector<std::int64_t> pts(static_cast<size_t>(ptWords()));
        for (auto &v : pts)
            v = rng.nextRange(0, 1000);
        std::vector<std::int64_t> cent(
                static_cast<size_t>(clusters) * dims);
        for (int c = 0; c < clusters; c++)
            for (int j = 0; j < dims; j++)
                cent[static_cast<size_t>(c * dims + j)] =
                        pts[static_cast<size_t>(c * dims + j)];

        for (int it = 0; it < iters; it++) {
            std::vector<std::int64_t> sums(
                    static_cast<size_t>(clusters) * dims, 0);
            std::vector<std::int64_t> counts(
                    static_cast<size_t>(clusters), 0);
            for (int p = 0; p < points; p++) {
                std::int64_t best = std::int64_t(1) << 40;
                int bestK = 0;
                for (int c = 0; c < clusters; c++) {
                    std::int64_t dist = 0;
                    for (int j = 0; j < dims; j++) {
                        const std::int64_t diff =
                                pts[static_cast<size_t>(p * dims + j)] -
                                cent[static_cast<size_t>(c * dims + j)];
                        dist += diff * diff;
                    }
                    if (dist < best) {
                        best = dist;
                        bestK = c;
                    }
                }
                for (int j = 0; j < dims; j++)
                    sums[static_cast<size_t>(bestK * dims + j)] +=
                            pts[static_cast<size_t>(p * dims + j)];
                counts[static_cast<size_t>(bestK)]++;
            }
            for (int c = 0; c < clusters; c++) {
                if (counts[static_cast<size_t>(c)] == 0)
                    continue;
                for (int j = 0; j < dims; j++)
                    cent[static_cast<size_t>(c * dims + j)] =
                            sums[static_cast<size_t>(c * dims + j)] /
                            counts[static_cast<size_t>(c)];
            }
        }
        for (size_t i = 0; i < cent.size(); i++)
            if (mem.readWord(static_cast<std::uint64_t>(centBase()) + i)
                != cent[i])
                return false;
        return true;
    }

  private:
    int points;
    int dims;
    int clusters;
    int iters;
};

} // namespace

std::unique_ptr<Kernel>
makeKMeans(const KernelParams &p)
{
    return std::make_unique<KMeansKernel>(p);
}

} // namespace dws
