#include "kernels/irfile.hh"

#include <utility>

#include "isa/scalar_ref.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

namespace dws {

namespace {

class IrFileKernel : public Kernel
{
  public:
    IrFileKernel(AsmKernel ak, const KernelParams &p)
        : Kernel(p), ak(std::move(ak))
    {}

    std::string name() const override { return ak.name; }

    std::string
    description() const override
    {
        return "IR kernel loaded from text (" +
               std::to_string(ak.program.size()) + " instructions)";
    }

    Program buildProgram() const override { return ak.program; }

    std::uint64_t memBytes() const override { return ak.memBytes; }

    void initMemory(Memory &mem) const override { ak.initMemory(mem); }

    bool
    validate(const Memory &mem) const override
    {
        // Differential oracle: replay the kernel with the scalar
        // reference on a fresh copy of the initial image and require
        // an identical final image.
        std::int64_t threads = params.launchThreads;
        if (threads <= 0)
            threads = SystemConfig{}.totalThreads();
        if (ak.threads > 0 && threads > ak.threads) {
            warn("%s: running %lld threads but the file declares "
                 ".threads %lld",
                 ak.name.c_str(), (long long)threads,
                 (long long)ak.threads);
        }

        Memory golden(ak.memBytes);
        ak.initMemory(golden);
        const ScalarRefResult ref = runScalarRef(ak.program, golden,
                                                 threads);
        if (!ref.ok) {
            warn("%s: scalar reference failed: %s", ak.name.c_str(),
                 ref.error.c_str());
            return false;
        }

        if (golden.sizeBytes() > mem.sizeBytes()) {
            warn("%s: simulated memory smaller than the golden image",
                 ak.name.c_str());
            return false;
        }
        const std::uint64_t numWords = golden.sizeBytes() / kWordBytes;
        for (std::uint64_t w = 0; w < numWords; w++) {
            if (mem.readWord(w) != golden.readWord(w)) {
                warn("%s: word %llu differs: simulated %lld, scalar "
                     "reference %lld",
                     ak.name.c_str(), (unsigned long long)w,
                     (long long)mem.readWord(w),
                     (long long)golden.readWord(w));
                return false;
            }
        }
        return true;
    }

  private:
    AsmKernel ak;
};

} // namespace

bool
looksLikeIrFile(const std::string &spec)
{
    if (spec.find('/') != std::string::npos)
        return true;
    const std::string suffix = ".dws";
    return spec.size() > suffix.size() &&
           spec.compare(spec.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::unique_ptr<Kernel>
makeIrKernel(AsmKernel ak, const KernelParams &params)
{
    if (ak.memBytes == 0) {
        warn("IR kernel '%s' declares no data memory (.membytes); "
             "it cannot be executed",
             ak.name.c_str());
        return nullptr;
    }
    return std::make_unique<IrFileKernel>(std::move(ak), params);
}

std::unique_ptr<Kernel>
loadIrKernel(const std::string &path, const KernelParams &params)
{
    std::vector<AsmDiag> diags;
    auto ak = assembleFile(path, diags);
    if (!ak) {
        for (const AsmDiag &d : diags)
            warn("%s: %s", path.c_str(), toString(d).c_str());
        return nullptr;
    }
    return makeIrKernel(std::move(*ak), params);
}

} // namespace dws
