/**
 * @file
 * HotSpot: thermal simulation by an iterative 5-point-stencil PDE
 * solver (paper Table 2, from Rodinia; input scaled from 300x300 x 100
 * iterations to 192x192 x 5 iterations).
 *
 * Each iteration reads one temperature buffer and writes the other
 * (ping-pong), separated by kernel barriers. Boundary pixels are
 * copied; hot cells (power above a threshold) take an extra
 * data-dependent heating term, giving the small branch-divergence
 * fraction Table 1 reports (1.4%).
 */

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

constexpr std::int64_t kHotThreshold = 200;

class HotSpotKernel : public Kernel
{
  public:
    explicit HotSpotKernel(const KernelParams &p) : Kernel(p)
    {
        if (p.scale == KernelScale::Tiny) {
            side = 128;
            iters = 3;
        } else {
            side = 192;
            iters = 5;
        }
    }

    std::string name() const override { return "HotSpot"; }

    std::string
    description() const override
    {
        return "iterative thermal PDE solver on a " +
               std::to_string(side) + "x" + std::to_string(side) +
               " grid, " + std::to_string(iters) + " iterations";
    }

    std::uint64_t
    memBytes() const override
    {
        return std::uint64_t(3) * side * side * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t w = side;
        const std::int64_t n = std::int64_t(side) * side;
        const std::int64_t bufBytes = n * kWordBytes;
        const std::int64_t powerBase = 2 * bufBytes;
        const std::int64_t rowB = w * kWordBytes;

        KernelBuilder b;
        emitBlockRange(b, 2, 3, n);
        b.movi(4, 0); // iteration counter

        auto iterLoop = b.newLabel();
        auto iterDone = b.newLabel();
        b.bind(iterLoop);
        b.slti(5, 4, iters);
        b.seq(6, 5, 30);    // r6 = (it >= iters); r30 stays zero
        b.br(6, iterDone);

        // Buffer selection by iteration parity.
        b.andi(7, 4, 1);            // parity
        b.muli(7, 7, bufBytes);     // inOff
        b.movi(8, bufBytes);
        b.sub(8, 8, 7);             // outOff = bufBytes - inOff

        b.mov(9, 2); // idx = lo
        auto pixLoop = b.newLabel();
        auto pixDone = b.newLabel();
        auto boundary = b.newLabel();
        auto next = b.newLabel();
        b.bind(pixLoop);
        b.sle(10, 3, 9);
        b.br(10, pixDone);

        // y = idx / w, x = idx % w
        b.movi(11, w);
        b.div(12, 9, 11);   // y
        b.rem(13, 9, 11);   // x
        // boundary if y==0 | y==w-1 | x==0 | x==w-1
        b.seq(14, 12, 30);          // y == 0 (r30 = 0, set below)
        b.movi(15, w - 1);
        b.seq(16, 12, 15);
        b.or_(14, 14, 16);
        b.seq(16, 13, 30);
        b.or_(14, 14, 16);
        b.seq(16, 13, 15);
        b.or_(14, 14, 16);
        b.br(14, boundary);

        // interior: addr = idx*8 + inOff
        b.muli(17, 9, kWordBytes);
        b.add(18, 17, 7);           // in address
        b.ld(19, 18, 0);            // c
        b.ld(20, 18, -rowB);        // north
        b.ld(21, 18, +rowB);        // south
        b.ld(22, 18, -kWordBytes);  // west
        b.ld(23, 18, +kWordBytes);  // east
        b.add(20, 20, 21);
        b.add(22, 22, 23);
        b.add(20, 20, 22);          // neighbor sum
        b.muli(21, 19, 4);
        b.sub(20, 20, 21);          // sum - 4c
        b.shri(20, 20, 3);          // diffusion term
        b.add(19, 19, 20);
        // power input
        b.addi(21, 17, powerBase);
        b.ld(22, 21, 0);            // p
        b.shri(23, 22, 4);
        b.add(19, 19, 23);
        // hot cells heat faster (data-dependent branch)
        b.slti(24, 22, kHotThreshold + 1);
        b.seq(24, 24, 30);          // r24 = (p > threshold)
        auto notHot = b.newLabel();
        b.seq(25, 24, 30);
        b.br(25, notHot);
        b.shri(25, 22, 2);
        b.add(19, 19, 25);
        b.bind(notHot);
        // store to out
        b.add(26, 17, 8);
        b.st(26, 19, 0);
        b.jmp(next);

        b.bind(boundary);
        // copy old value to the out buffer
        b.muli(17, 9, kWordBytes);
        b.add(18, 17, 7);
        b.ld(19, 18, 0);
        b.add(26, 17, 8);
        b.st(26, 19, 0);

        b.bind(next);
        b.addi(9, 9, 1);
        b.jmp(pixLoop);

        b.bind(pixDone);
        b.bar();
        b.addi(4, 4, 1);
        b.jmp(iterLoop);

        b.bind(iterDone);
        b.halt();

        // r30 must be zero before first use; prepend via a wrapper is
        // not possible with this builder, so rely on registers being
        // zero-initialized at launch (they are).
        return b.build("HotSpot", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 1);
        const std::uint64_t n = std::uint64_t(side) * side;
        for (std::uint64_t i = 0; i < n; i++) {
            const std::int64_t t = rng.nextRange(300, 340);
            mem.writeWord(i, t);
            mem.writeWord(n + i, t); // both buffers start equal
        }
        const std::vector<std::int64_t> p = makePower();
        for (std::uint64_t i = 0; i < n; i++)
            mem.writeWord(2 * n + i, p[static_cast<size_t>(i)]);
    }

    /**
     * Power map: mostly cool background with a few rectangular hot
     * blocks (the physical heat sources HotSpot models). Clustering
     * keeps the hot-cell branch nearly uniform within a warp, matching
     * the paper's 1.4% divergent-branch fraction for HotSpot.
     */
    std::vector<std::int64_t>
    makePower() const
    {
        Rng rng(params.seed + 11);
        std::vector<std::int64_t> p(
                static_cast<size_t>(side) * side);
        for (auto &v : p)
            v = rng.nextRange(0, 100);
        const int blocks = 4;
        for (int b = 0; b < blocks; b++) {
            const int bw = static_cast<int>(
                    rng.nextRange(side / 8, side / 4));
            const int bh = static_cast<int>(
                    rng.nextRange(side / 8, side / 4));
            const int x0 = static_cast<int>(
                    rng.nextRange(0, side - bw - 1));
            const int y0 = static_cast<int>(
                    rng.nextRange(0, side - bh - 1));
            for (int y = y0; y < y0 + bh; y++)
                for (int x = x0; x < x0 + bw; x++)
                    p[static_cast<size_t>(y * side + x)] =
                            rng.nextRange(kHotThreshold + 1, 255);
        }
        return p;
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 1);
        const int n = side * side;
        std::vector<std::int64_t> cur(static_cast<size_t>(n));
        for (auto &v : cur)
            v = rng.nextRange(300, 340);
        const std::vector<std::int64_t> power = makePower();
        std::vector<std::int64_t> nxt = cur;
        for (int it = 0; it < iters; it++) {
            for (int y = 0; y < side; y++) {
                for (int x = 0; x < side; x++) {
                    const int i = y * side + x;
                    if (y == 0 || y == side - 1 || x == 0 ||
                        x == side - 1) {
                        nxt[static_cast<size_t>(i)] =
                                cur[static_cast<size_t>(i)];
                        continue;
                    }
                    const std::int64_t c = cur[static_cast<size_t>(i)];
                    std::int64_t sum =
                            cur[static_cast<size_t>(i - side)] +
                            cur[static_cast<size_t>(i + side)] +
                            cur[static_cast<size_t>(i - 1)] +
                            cur[static_cast<size_t>(i + 1)];
                    std::int64_t v = c + ((sum - 4 * c) >> 3) +
                                     (power[static_cast<size_t>(i)] >> 4);
                    if (power[static_cast<size_t>(i)] > kHotThreshold)
                        v += power[static_cast<size_t>(i)] >> 2;
                    nxt[static_cast<size_t>(i)] = v;
                }
            }
            std::swap(cur, nxt);
        }
        // `cur` is the buffer written by the last iteration:
        // iteration it writes buffer (it+1)&1... buffer 0 holds even
        // results after swaps. Compare against the buffer the last
        // iteration wrote: parity of iters.
        const std::uint64_t outBase =
                (iters % 2 == 1) ? std::uint64_t(n) : 0;
        for (int i = 0; i < n; i++) {
            if (mem.readWord(outBase + static_cast<std::uint64_t>(i)) !=
                cur[static_cast<size_t>(i)]) {
                return false;
            }
        }
        return true;
    }

  private:
    int side;
    int iters;
};

} // namespace

std::unique_ptr<Kernel>
makeHotSpot(const KernelParams &p)
{
    return std::make_unique<HotSpotKernel>(p);
}

} // namespace dws
