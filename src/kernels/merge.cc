/**
 * @file
 * Merge: bottom-up merge sort (paper Table 2: "Element aggregation and
 * reordering"; input scaled from 300,000 to 32,768 integers).
 *
 * log2(N) passes ping-pong between two buffers with kernel barriers in
 * between; each thread merges a blocked range of run pairs. The
 * per-element comparison branches are data dependent, giving Merge the
 * highest divergent-branch fraction in Table 1 (13.1%).
 */

#include <algorithm>

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

class MergeKernel : public Kernel
{
  public:
    explicit MergeKernel(const KernelParams &p) : Kernel(p)
    {
        logN = (p.scale == KernelScale::Tiny) ? 14 : 15;
        n = 1 << logN;
    }

    std::string name() const override { return "Merge"; }

    std::string
    description() const override
    {
        return "bottom-up merge sort of " + std::to_string(n) +
               " integers";
    }

    std::uint64_t
    memBytes() const override
    {
        return std::uint64_t(2) * n * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t nb = std::int64_t(n) * kWordBytes;

        KernelBuilder b;
        b.movi(2, 0); // pass

        auto passLoop = b.newLabel();
        auto passDone = b.newLabel();
        b.bind(passLoop);
        b.slti(16, 2, logN);
        b.seq(16, 16, 30);
        b.br(16, passDone);

        // width = 1 << pass ; tasks = (n/2) >> pass
        b.movi(3, 1);
        b.shl(3, 3, 2);
        b.movi(4, n / 2);
        b.shr(4, 4, 2);
        // blocked task range [r5, r6)
        b.mul(5, 0, 4);
        b.div(5, 5, 1);
        b.addi(6, 0, 1);
        b.mul(6, 6, 4);
        b.div(6, 6, 1);
        // src/dst buffer byte bases from pass parity
        b.andi(14, 2, 1);
        b.muli(14, 14, nb);   // srcBase
        b.movi(15, nb);
        b.sub(15, 15, 14);    // dstBase

        b.mov(7, 5); // t = lo
        auto tLoop = b.newLabel();
        auto tDone = b.newLabel();
        b.bind(tLoop);
        b.sle(16, 6, 7);
        b.br(16, tDone);

        // s = t * 2 * width ; i = s ; iEnd = s+width ; j = iEnd ;
        // jEnd = s + 2*width ; o = s
        b.mul(8, 7, 3);
        b.muli(8, 8, 2);      // s
        b.mov(9, 8);          // i
        b.add(12, 8, 3);      // iEnd
        b.mov(10, 12);        // j
        b.add(13, 12, 3);     // jEnd
        b.mov(11, 8);         // o

        // The element select is branch-free (compare + conditional-move
        // arithmetic), the way compilers predicate a merge loop; only
        // the loop bound branches. This matches Merge's Table 1 profile,
        // where most executed branches are loop control.
        auto mLoop = b.newLabel();
        auto mDone = b.newLabel();
        b.bind(mLoop);
        b.sle(16, 13, 11);    // o >= jEnd ?
        b.br(16, mDone);
        // Clamped loads; out-of-run reads are masked out by the select.
        b.movi(23, n - 1);
        b.min(17, 9, 23);
        b.muli(17, 17, kWordBytes);
        b.add(17, 17, 14);
        b.ld(18, 17, 0);      // a[i]
        b.min(19, 10, 23);
        b.muli(19, 19, kWordBytes);
        b.add(19, 19, 14);
        b.ld(20, 19, 0);      // a[j]
        // takeI = (i < iEnd) & (j >= jEnd | a[i] <= a[j])
        b.slt(24, 9, 12);
        b.sle(25, 13, 10);
        b.sle(26, 18, 20);
        b.or_(25, 25, 26);
        b.and_(24, 24, 25);
        // val = a[j] + takeI * (a[i] - a[j])
        b.sub(21, 18, 20);
        b.mul(21, 21, 24);
        b.add(21, 21, 20);
        // i += takeI ; j += 1 - takeI
        b.add(9, 9, 24);
        b.addi(26, 24, -1);
        b.sub(10, 10, 26);
        // dst[o++] = val
        b.muli(22, 11, kWordBytes);
        b.add(22, 22, 15);
        b.st(22, 21, 0);
        b.addi(11, 11, 1);
        b.jmp(mLoop);
        b.bind(mDone);

        b.addi(7, 7, 1);
        b.jmp(tLoop);
        b.bind(tDone);

        b.bar();
        b.addi(2, 2, 1);
        b.jmp(passLoop);

        b.bind(passDone);
        b.halt();
        return b.build("Merge", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 3);
        for (int i = 0; i < n; i++)
            mem.writeWord(static_cast<std::uint64_t>(i),
                          rng.nextRange(0, 1 << 20));
        for (int i = 0; i < n; i++)
            mem.writeWord(static_cast<std::uint64_t>(n + i), 0);
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 3);
        std::vector<std::int64_t> a(static_cast<size_t>(n));
        for (auto &v : a)
            v = rng.nextRange(0, 1 << 20);
        std::stable_sort(a.begin(), a.end());
        const std::uint64_t base = (logN % 2 == 1)
                ? static_cast<std::uint64_t>(n) : 0;
        for (int i = 0; i < n; i++)
            if (mem.readWord(base + static_cast<std::uint64_t>(i)) !=
                a[static_cast<size_t>(i)])
                return false;
        return true;
    }

  private:
    int logN;
    int n;
};

} // namespace

std::unique_ptr<Kernel>
makeMerge(const KernelParams &p)
{
    return std::make_unique<MergeKernel>(p);
}

} // namespace dws
