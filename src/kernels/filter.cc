/**
 * @file
 * Filter: edge detection of an input image by 3x3 Laplacian
 * convolution (paper Table 2: "Convolution. Gathering a 3-by-3
 * neighborhood"; input scaled from 500x500 to 288x288).
 *
 * No data-dependent branches: Table 1 reports 0% divergent branches
 * for Filter; all its divergence is memory divergence from the
 * neighborhood gathers.
 */

#include <cstdlib>

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

class FilterKernel : public Kernel
{
  public:
    explicit FilterKernel(const KernelParams &p) : Kernel(p)
    {
        // A non-power-of-two default keeps lanes' pixel ranges out of
        // row/cache-set phase (a 2048-byte row would alias).
        side = (p.scale == KernelScale::Tiny) ? 192 : 288;
    }

    std::string name() const override { return "Filter"; }

    std::string
    description() const override
    {
        return "3x3 Laplacian edge detection of a " +
               std::to_string(side) + "x" + std::to_string(side) +
               " grayscale image";
    }

    std::uint64_t
    memBytes() const override
    {
        return std::uint64_t(2) * side * side * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t w = side;
        const std::int64_t interior = (side - 2) * (side - 2);
        const std::int64_t inBase = 0;
        const std::int64_t outBase = std::int64_t(side) * side *
                                     kWordBytes;

        KernelBuilder b;
        // r2 = lo, r3 = hi over interior pixels
        emitBlockRange(b, 2, 3, interior);
        b.movi(30, 0); // zero

        auto loop = b.newLabel();
        auto done = b.newLabel();
        b.bind(loop);
        b.sle(4, 3, 2);       // r4 = (hi <= lo)
        b.br(4, done);

        // y = idx / (w-2) + 1 ; x = idx % (w-2) + 1
        b.movi(5, w - 2);
        b.div(6, 2, 5);       // r6 = idx / (w-2)
        b.rem(7, 2, 5);       // r7 = idx % (w-2)
        b.addi(6, 6, 1);      // y
        b.addi(7, 7, 1);      // x
        // r8 = (y*w + x)*8 + inBase  (center address)
        b.muli(8, 6, w);
        b.add(8, 8, 7);
        b.muli(8, 8, kWordBytes);
        b.addi(8, 8, inBase);

        // Gather the 3x3 neighborhood.
        const std::int64_t rowB = w * kWordBytes;
        b.ld(10, 8, 0);                 // center
        b.muli(10, 10, 8);              // 8 * center
        b.ld(11, 8, -kWordBytes);       // west
        b.ld(12, 8, +kWordBytes);       // east
        b.ld(13, 8, -rowB);             // north
        b.ld(14, 8, +rowB);             // south
        b.ld(15, 8, -rowB - kWordBytes);
        b.ld(16, 8, -rowB + kWordBytes);
        b.ld(17, 8, +rowB - kWordBytes);
        b.ld(18, 8, +rowB + kWordBytes);
        b.add(11, 11, 12);
        b.add(13, 13, 14);
        b.add(15, 15, 16);
        b.add(17, 17, 18);
        b.add(11, 11, 13);
        b.add(15, 15, 17);
        b.add(11, 11, 15);              // neighbor sum
        b.sub(10, 10, 11);              // 8c - sum
        // |v| = max(v, 0 - v)
        b.sub(19, 30, 10);
        b.max(10, 10, 19);

        // store to out[y][x]
        b.addi(20, 8, outBase - inBase);
        b.st(20, 10, 0);

        b.addi(2, 2, 1);
        b.jmp(loop);
        b.bind(done);
        b.halt();
        return b.build("Filter", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed);
        for (int i = 0; i < side * side; i++)
            mem.writeWord(static_cast<std::uint64_t>(i),
                          rng.nextRange(0, 255));
        // Output image starts zeroed (edges remain zero).
        for (int i = 0; i < side * side; i++)
            mem.writeWord(static_cast<std::uint64_t>(side * side + i), 0);
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed);
        std::vector<std::int64_t> in(
                static_cast<size_t>(side) * side);
        for (auto &v : in)
            v = rng.nextRange(0, 255);
        for (int y = 1; y < side - 1; y++) {
            for (int x = 1; x < side - 1; x++) {
                std::int64_t sum = 0;
                for (int dy = -1; dy <= 1; dy++)
                    for (int dx = -1; dx <= 1; dx++)
                        if (dy || dx)
                            sum += in[static_cast<size_t>(
                                    (y + dy) * side + x + dx)];
                std::int64_t v = 8 * in[static_cast<size_t>(
                        y * side + x)] - sum;
                if (v < 0)
                    v = -v;
                const std::int64_t got = mem.readWord(
                        static_cast<std::uint64_t>(side * side +
                                                   y * side + x));
                if (got != v)
                    return false;
            }
        }
        return true;
    }

  private:
    int side;
};

} // namespace

std::unique_ptr<Kernel>
makeFilter(const KernelParams &p)
{
    return std::make_unique<FilterKernel>(p);
}

} // namespace dws
