#include "kernels/kernel.hh"

#include "kernels/irfile.hh"
#include "sim/logging.hh"

namespace dws {

// Factories defined by the individual kernel translation units.
std::unique_ptr<Kernel> makeFft(const KernelParams &);
std::unique_ptr<Kernel> makeFilter(const KernelParams &);
std::unique_ptr<Kernel> makeHotSpot(const KernelParams &);
std::unique_ptr<Kernel> makeLu(const KernelParams &);
std::unique_ptr<Kernel> makeMerge(const KernelParams &);
std::unique_ptr<Kernel> makeShort(const KernelParams &);
std::unique_ptr<Kernel> makeKMeans(const KernelParams &);
std::unique_ptr<Kernel> makeSvm(const KernelParams &);

const std::vector<std::string> &
kernelNames()
{
    static const std::vector<std::string> names = {
        "FFT", "Filter", "HotSpot", "LU",
        "Merge", "Short", "KMeans", "SVM",
    };
    return names;
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name, const KernelParams &params)
{
    if (name == "FFT")     return makeFft(params);
    if (name == "Filter")  return makeFilter(params);
    if (name == "HotSpot") return makeHotSpot(params);
    if (name == "LU")      return makeLu(params);
    if (name == "Merge")   return makeMerge(params);
    if (name == "Short")   return makeShort(params);
    if (name == "KMeans")  return makeKMeans(params);
    if (name == "SVM")     return makeSvm(params);
    // Anything that looks like a path is loaded as a textual IR file.
    if (looksLikeIrFile(name))
        return loadIrKernel(name, params);
    return nullptr;
}

void
emitBlockRange(KernelBuilder &b, int regLo, int regHi, std::int64_t total)
{
    // regLo = tid * total / nthreads
    b.muli(regLo, 0, total);
    b.div(regLo, regLo, 1);
    // regHi = (tid + 1) * total / nthreads
    b.addi(regHi, 0, 1);
    b.muli(regHi, regHi, total);
    b.div(regHi, regHi, 1);
}

} // namespace dws
