/**
 * @file
 * LU: dense LU decomposition without pivoting on a diagonally dominant
 * Q16 fixed-point matrix (paper Table 2, from Splash2; input scaled
 * from 300x300 to 192x192).
 *
 * Right-looking elimination: step k updates the trailing rows in
 * parallel (rows blocked over threads), with a kernel barrier between
 * steps. The shrinking row range gives the loop-bound divergence and
 * alternating access patterns characteristic of LU.
 */

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

class LuKernel : public Kernel
{
  public:
    explicit LuKernel(const KernelParams &p) : Kernel(p)
    {
        dim = (p.scale == KernelScale::Tiny) ? 160 : 192;
    }

    std::string name() const override { return "LU"; }

    std::string
    description() const override
    {
        return "LU decomposition of a " + std::to_string(dim) + "x" +
               std::to_string(dim) + " Q16 matrix";
    }

    std::uint64_t
    memBytes() const override
    {
        return std::uint64_t(dim) * dim * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t m = dim;

        KernelBuilder b;
        b.movi(2, 0); // k

        auto kLoop = b.newLabel();
        auto kDone = b.newLabel();
        b.bind(kLoop);
        b.slti(8, 2, m - 1);
        b.seq(8, 8, 30);
        b.br(8, kDone);

        // rows = m-1-k ; lo = k+1 + tid*rows/nt ; hi likewise for tid+1
        b.movi(3, m - 1);
        b.sub(3, 3, 2);             // rows
        b.mul(4, 0, 3);
        b.div(4, 4, 1);
        b.add(4, 4, 2);
        b.addi(4, 4, 1);            // lo
        b.addi(5, 0, 1);
        b.mul(5, 5, 3);
        b.div(5, 5, 1);
        b.add(5, 5, 2);
        b.addi(5, 5, 1);            // hi

        // pivot address: &A[k][k]
        b.muli(9, 2, m);
        b.add(9, 9, 2);
        b.muli(9, 9, kWordBytes);   // r9 = pivot byte address
        b.ld(10, 9, 0);             // pivot value

        b.mov(6, 4); // i = lo
        auto iLoop = b.newLabel();
        auto iDone = b.newLabel();
        b.bind(iLoop);
        b.sle(11, 5, 6);
        b.br(11, iDone);

        // l = (A[i][k] << 16) / pivot; A[i][k] = l
        b.muli(12, 6, m);
        b.add(13, 12, 2);
        b.muli(13, 13, kWordBytes); // &A[i][k]
        b.ld(14, 13, 0);
        b.shli(14, 14, kFxShift);
        b.div(14, 14, 10);          // l
        b.st(13, 14, 0);

        // row base addresses for the j loop
        b.muli(15, 12, kWordBytes); // &A[i][0]
        b.muli(16, 2, m);
        b.muli(16, 16, kWordBytes); // &A[k][0]

        b.addi(7, 2, 1); // j = k+1
        auto jLoop = b.newLabel();
        auto jDone = b.newLabel();
        b.bind(jLoop);
        b.slti(17, 7, m);
        b.seq(17, 17, 30);
        b.br(17, jDone);

        b.muli(18, 7, kWordBytes);
        b.add(19, 15, 18);          // &A[i][j]
        b.add(20, 16, 18);          // &A[k][j]
        b.ld(21, 20, 0);
        b.mul(21, 21, 14);
        b.shri(21, 21, kFxShift);   // (l * A[k][j]) >> 16
        b.ld(22, 19, 0);
        b.sub(22, 22, 21);
        b.st(19, 22, 0);

        b.addi(7, 7, 1);
        b.jmp(jLoop);
        b.bind(jDone);

        b.addi(6, 6, 1);
        b.jmp(iLoop);
        b.bind(iDone);

        b.bar();
        b.addi(2, 2, 1);
        b.jmp(kLoop);

        b.bind(kDone);
        b.halt();
        return b.build("LU", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        const std::vector<std::int64_t> a = makeInput();
        for (size_t i = 0; i < a.size(); i++)
            mem.writeWord(i, a[i]);
    }

    bool
    validate(const Memory &mem) const override
    {
        std::vector<std::int64_t> a = makeInput();
        const int m = dim;
        for (int k = 0; k < m - 1; k++) {
            const std::int64_t pivot =
                    a[static_cast<size_t>(k * m + k)];
            for (int i = k + 1; i < m; i++) {
                const std::int64_t l =
                        pivot == 0
                        ? 0
                        : (a[static_cast<size_t>(i * m + k)]
                           << kFxShift) / pivot;
                a[static_cast<size_t>(i * m + k)] = l;
                for (int j = k + 1; j < m; j++) {
                    a[static_cast<size_t>(i * m + j)] -=
                            (l * a[static_cast<size_t>(k * m + j)]) >>
                            kFxShift;
                }
            }
        }
        for (size_t i = 0; i < a.size(); i++)
            if (mem.readWord(i) != a[i])
                return false;
        return true;
    }

  private:
    std::vector<std::int64_t>
    makeInput() const
    {
        Rng rng(params.seed + 2);
        std::vector<std::int64_t> a(static_cast<size_t>(dim) * dim);
        for (auto &v : a)
            v = rng.nextRange(-kFxOne / 4, kFxOne / 4);
        // Diagonal dominance keeps the fixed-point math stable.
        for (int i = 0; i < dim; i++)
            a[static_cast<size_t>(i * dim + i)] =
                    kFxOne * 4 + rng.nextRange(0, kFxOne);
        return a;
    }

    int dim;
};

} // namespace

std::unique_ptr<Kernel>
makeLu(const KernelParams &p)
{
    return std::make_unique<LuKernel>(p);
}

} // namespace dws
