/**
 * @file
 * Kernel adapter for textual IR files (`.dws`).
 *
 * Wraps an assembled kernel (isa/asm.hh) in the Kernel interface so
 * every harness entry point — dws_sim, dws_lint, the benches, the
 * sweep executor — can run IR files interchangeably with the built-in
 * benchmarks. Validation is differential: the scalar reference
 * interpreter (isa/scalar_ref.hh) replays the kernel on a pristine
 * copy of the initial memory image and the two final images must match
 * word for word.
 *
 * Unlike the built-in kernels, an IR file's `.subdiv` directive — not
 * the policy's subdivMaxPostBlock — decides which branches are marked
 * subdividable: the file is the complete, self-contained description
 * of the program, and reanalyzing it under a different threshold would
 * break the assemble/disassemble round-trip guarantee.
 */

#ifndef DWS_KERNELS_IRFILE_HH
#define DWS_KERNELS_IRFILE_HH

#include <memory>
#include <string>

#include "isa/asm.hh"
#include "kernels/kernel.hh"

namespace dws {

/**
 * @return true when a --bench/--kernel spec names an IR file rather
 *         than a registered kernel: it contains a path separator or
 *         ends in ".dws".
 */
bool looksLikeIrFile(const std::string &spec);

/**
 * Wrap an already-assembled kernel.
 * @return nullptr (with a warning) when the kernel declares no data
 *         memory, since the WPU model cannot run a memoryless program.
 */
std::unique_ptr<Kernel> makeIrKernel(AsmKernel ak,
                                     const KernelParams &params);

/**
 * Assemble an IR file and wrap it. Diagnostics are reported via
 * warn(); returns nullptr on any assembly failure.
 */
std::unique_ptr<Kernel> loadIrKernel(const std::string &path,
                                     const KernelParams &params);

} // namespace dws

#endif // DWS_KERNELS_IRFILE_HH
