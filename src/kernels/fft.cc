/**
 * @file
 * FFT: iterative radix-2 fast Fourier transform in Q16 fixed point
 * (paper Table 2, from Splash2: "Spectral methods. Butterfly
 * computation"; input scaled from 65,536 to 16,384 points).
 *
 * Bit-reversal permutation, then log2(N) butterfly stages separated by
 * kernel barriers. The strided twiddle and element accesses make FFT
 * memory-divergence heavy while its branches stay uniform (Table 1).
 */

#include <cmath>

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

class FftKernel : public Kernel
{
  public:
    explicit FftKernel(const KernelParams &p) : Kernel(p)
    {
        logN = (p.scale == KernelScale::Tiny) ? 13 : 14;
        n = 1 << logN;
    }

    std::string name() const override { return "FFT"; }

    std::string
    description() const override
    {
        return "radix-2 FFT of " + std::to_string(n) +
               " Q16 complex points";
    }

    std::uint64_t
    memBytes() const override
    {
        // re, im, twiddle-re, twiddle-im (half used), each n words.
        return std::uint64_t(4) * n * kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t nb = std::int64_t(n) * kWordBytes;
        const std::int64_t imBase = nb;
        const std::int64_t twReBase = 2 * nb;
        const std::int64_t twImBase = 3 * nb;

        KernelBuilder b;

        // --- bit-reversal permutation ---------------------------------
        emitBlockRange(b, 2, 3, n);
        b.mov(4, 2);
        auto bitLoop = b.newLabel();
        auto bitDone = b.newLabel();
        auto noSwap = b.newLabel();
        b.bind(bitLoop);
        b.sle(16, 3, 4);
        b.br(16, bitDone);
        // rev = bit-reverse(i, logN)
        b.mov(5, 4);
        b.movi(6, 0);
        b.movi(7, 0);
        auto revLoop = b.newLabel();
        auto revDone = b.newLabel();
        b.bind(revLoop);
        b.slti(16, 7, logN);
        b.seq(16, 16, 30);
        b.br(16, revDone);
        b.shli(6, 6, 1);
        b.andi(8, 5, 1);
        b.or_(6, 6, 8);
        b.shri(5, 5, 1);
        b.addi(7, 7, 1);
        b.jmp(revLoop);
        b.bind(revDone);
        // swap only when i < rev (each pair handled once)
        b.slt(16, 4, 6);
        b.seq(16, 16, 30);
        b.br(16, noSwap);
        b.muli(9, 4, kWordBytes);
        b.muli(10, 6, kWordBytes);
        b.ld(11, 9, 0);
        b.ld(12, 10, 0);
        b.st(9, 12, 0);
        b.st(10, 11, 0);
        b.ld(11, 9, imBase);
        b.ld(12, 10, imBase);
        b.st(9, 12, imBase);
        b.st(10, 11, imBase);
        b.bind(noSwap);
        b.addi(4, 4, 1);
        b.jmp(bitLoop);
        b.bind(bitDone);
        b.bar();

        // --- butterfly stages -----------------------------------------
        emitBlockRange(b, 5, 6, n / 2); // pair range, constant
        b.movi(2, 1);                   // stage s
        auto sLoop = b.newLabel();
        auto sDone = b.newLabel();
        b.bind(sLoop);
        b.slti(16, 2, logN + 1);
        b.seq(16, 16, 30);
        b.br(16, sDone);

        b.movi(8, 1);
        b.shl(8, 8, 2);     // m = 1 << s
        b.shri(9, 8, 1);    // half = m / 2
        b.movi(10, n);
        b.div(10, 10, 8);   // twiddle stride = n / m

        b.mov(4, 5);        // j = lo
        auto jLoop = b.newLabel();
        auto jDone = b.newLabel();
        b.bind(jLoop);
        b.sle(16, 6, 4);
        b.br(16, jDone);

        b.div(12, 4, 9);    // group
        b.rem(13, 4, 9);    // k
        b.mul(14, 12, 8);
        b.add(14, 14, 13);  // i1
        b.add(15, 14, 9);   // i2
        b.mul(11, 13, 10);  // twiddle index

        b.muli(26, 14, kWordBytes); // &re[i1]
        b.muli(27, 15, kWordBytes); // &re[i2]
        b.muli(28, 11, kWordBytes); // twiddle byte offset
        b.ld(18, 26, 0);            // re1
        b.ld(19, 26, imBase);       // im1
        b.ld(20, 27, 0);            // re2
        b.ld(21, 27, imBase);       // im2
        b.ld(22, 28, twReBase);     // w_re
        b.ld(23, 28, twImBase);     // w_im

        // t = w * x2 (complex, Q16)
        b.mul(24, 22, 20);
        b.mul(25, 23, 21);
        b.sub(24, 24, 25);
        b.shri(24, 24, kFxShift);   // t_re
        b.mul(25, 22, 21);
        b.mul(29, 23, 20);
        b.add(25, 25, 29);
        b.shri(25, 25, kFxShift);   // t_im

        b.sub(29, 18, 24);
        b.st(27, 29, 0);            // re2' = re1 - t_re
        b.sub(29, 19, 25);
        b.st(27, 29, imBase);       // im2' = im1 - t_im
        b.add(29, 18, 24);
        b.st(26, 29, 0);            // re1' = re1 + t_re
        b.add(29, 19, 25);
        b.st(26, 29, imBase);       // im1' = im1 + t_im

        b.addi(4, 4, 1);
        b.jmp(jLoop);
        b.bind(jDone);

        b.bar();
        b.addi(2, 2, 1);
        b.jmp(sLoop);
        b.bind(sDone);
        b.halt();
        return b.build("FFT", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 7);
        for (int i = 0; i < n; i++) {
            mem.writeWord(static_cast<std::uint64_t>(i),
                          rng.nextRange(-kFxOne, kFxOne));
            mem.writeWord(static_cast<std::uint64_t>(n + i),
                          rng.nextRange(-kFxOne, kFxOne));
        }
        const auto tw = twiddles();
        for (int i = 0; i < n / 2; i++) {
            mem.writeWord(static_cast<std::uint64_t>(2 * n + i),
                          tw[static_cast<size_t>(i)].first);
            mem.writeWord(static_cast<std::uint64_t>(3 * n + i),
                          tw[static_cast<size_t>(i)].second);
        }
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 7);
        std::vector<std::int64_t> re(static_cast<size_t>(n));
        std::vector<std::int64_t> im(static_cast<size_t>(n));
        for (int i = 0; i < n; i++) {
            re[static_cast<size_t>(i)] = rng.nextRange(-kFxOne, kFxOne);
            im[static_cast<size_t>(i)] = rng.nextRange(-kFxOne, kFxOne);
        }
        // Bit reversal.
        for (int i = 0; i < n; i++) {
            int rev = 0;
            int v = i;
            for (int bIdx = 0; bIdx < logN; bIdx++) {
                rev = (rev << 1) | (v & 1);
                v >>= 1;
            }
            if (i < rev) {
                std::swap(re[static_cast<size_t>(i)],
                          re[static_cast<size_t>(rev)]);
                std::swap(im[static_cast<size_t>(i)],
                          im[static_cast<size_t>(rev)]);
            }
        }
        const auto tw = twiddles();
        for (int s = 1; s <= logN; s++) {
            const int m = 1 << s;
            const int half = m >> 1;
            const int stride = n / m;
            for (int j = 0; j < n / 2; j++) {
                const int grp = j / half;
                const int k = j % half;
                const int i1 = grp * m + k;
                const int i2 = i1 + half;
                const auto [wre, wim] =
                        tw[static_cast<size_t>(k * stride)];
                const std::int64_t tre =
                        (wre * re[static_cast<size_t>(i2)] -
                         wim * im[static_cast<size_t>(i2)]) >> kFxShift;
                const std::int64_t tim =
                        (wre * im[static_cast<size_t>(i2)] +
                         wim * re[static_cast<size_t>(i2)]) >> kFxShift;
                re[static_cast<size_t>(i2)] =
                        re[static_cast<size_t>(i1)] - tre;
                im[static_cast<size_t>(i2)] =
                        im[static_cast<size_t>(i1)] - tim;
                re[static_cast<size_t>(i1)] += tre;
                im[static_cast<size_t>(i1)] += tim;
            }
        }
        for (int i = 0; i < n; i++) {
            if (mem.readWord(static_cast<std::uint64_t>(i)) !=
                        re[static_cast<size_t>(i)] ||
                mem.readWord(static_cast<std::uint64_t>(n + i)) !=
                        im[static_cast<size_t>(i)]) {
                return false;
            }
        }
        return true;
    }

  private:
    std::vector<std::pair<std::int64_t, std::int64_t>>
    twiddles() const
    {
        std::vector<std::pair<std::int64_t, std::int64_t>> tw(
                static_cast<size_t>(n / 2));
        for (int i = 0; i < n / 2; i++) {
            const double angle = -2.0 * M_PI * i / n;
            tw[static_cast<size_t>(i)] = {
                std::llround(std::cos(angle) * kFxOne),
                std::llround(std::sin(angle) * kFxOne),
            };
        }
        return tw;
    }

    int logN;
    int n;
};

} // namespace

std::unique_ptr<Kernel>
makeFft(const KernelParams &p)
{
    return std::make_unique<FftKernel>(p);
}

} // namespace dws
