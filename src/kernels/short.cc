/**
 * @file
 * Short: winning path search for chess by dynamic programming (paper
 * Table 2: "Neighborhood calculation based on the previous row"; input
 * scaled from 6 steps x 150,000 choices to 6 x 30,000).
 *
 * Each DP row takes the best of three neighbors from the previous row.
 * The neighbor maxima are implemented with data-dependent branches,
 * reproducing Short's very high divergent-branch fraction (Table 1:
 * 22%).
 */

#include "kernels/kernel.hh"
#include "sim/rng.hh"

namespace dws {

namespace {

class ShortKernel : public Kernel
{
  public:
    explicit ShortKernel(const KernelParams &p) : Kernel(p)
    {
        // A non-power-of-two choice count keeps the blocked per-thread
        // ranges unequal, so lanes drift out of cache-line phase and
        // memory divergence arises naturally (as it does at the paper's
        // 150,000-choice scale).
        if (p.scale == KernelScale::Tiny) {
            steps = 3;
            choices = 30000;
        } else {
            steps = 6;
            choices = 30000;
        }
    }

    std::string name() const override { return "Short"; }

    std::string
    description() const override
    {
        return "DP winning-path search, " + std::to_string(steps) +
               " steps x " + std::to_string(choices) + " choices";
    }

    std::uint64_t
    memBytes() const override
    {
        return (std::uint64_t(steps) * choices + 2u * choices) *
               kWordBytes;
    }

    Program
    buildProgram() const override
    {
        const std::int64_t c = choices;
        const std::int64_t cb = c * kWordBytes;
        const std::int64_t scoreBase =
                std::int64_t(steps) * c * kWordBytes;

        KernelBuilder b;
        emitBlockRange(b, 3, 4, c);
        b.movi(2, 1); // t

        auto rowLoop = b.newLabel();
        auto rowDone = b.newLabel();
        b.bind(rowLoop);
        b.slti(16, 2, steps + 1);
        b.seq(16, 16, 30);
        b.br(16, rowDone);

        // prev/cur score row byte bases from parity of t
        b.addi(6, 2, -1);
        b.andi(6, 6, 1);
        b.muli(6, 6, cb);
        b.addi(6, 6, scoreBase);    // prev
        b.andi(7, 2, 1);
        b.muli(7, 7, cb);
        b.addi(7, 7, scoreBase);    // cur

        b.mov(5, 3); // j = lo
        auto jLoop = b.newLabel();
        auto jDone = b.newLabel();
        auto skipL = b.newLabel();
        auto skipR = b.newLabel();
        b.bind(jLoop);
        b.sle(16, 4, 5);
        b.br(16, jDone);

        b.muli(8, 5, kWordBytes);   // j byte offset
        b.add(9, 8, 6);             // &prev[j]
        b.ld(10, 9, 0);             // best = prev[j]

        // left neighbor (branch-implemented max)
        b.seq(16, 5, 30);           // j == 0 ?
        b.br(16, skipL);
        b.ld(11, 9, -kWordBytes);
        b.sle(16, 11, 10);
        b.br(16, skipL);
        b.mov(10, 11);
        b.bind(skipL);

        // right neighbor
        b.slti(16, 5, c - 1);
        b.seq(16, 16, 30);
        b.br(16, skipR);
        b.ld(11, 9, kWordBytes);
        b.sle(16, 11, 10);
        b.br(16, skipR);
        b.mov(10, 11);
        b.bind(skipR);

        // cur[j] = best + cost[(t-1)*c + j]
        b.addi(12, 2, -1);
        b.muli(12, 12, cb);
        b.add(12, 12, 8);
        b.ld(13, 12, 0);
        b.add(10, 10, 13);
        b.add(14, 8, 7);
        b.st(14, 10, 0);

        b.addi(5, 5, 1);
        b.jmp(jLoop);
        b.bind(jDone);

        b.bar();
        b.addi(2, 2, 1);
        b.jmp(rowLoop);

        b.bind(rowDone);
        b.halt();
        return b.build("Short", params.subdivThreshold);
    }

    void
    initMemory(Memory &mem) const override
    {
        mem.resize(memBytes());
        Rng rng(params.seed + 4);
        const std::uint64_t costWords =
                std::uint64_t(steps) * choices;
        for (std::uint64_t i = 0; i < costWords; i++)
            mem.writeWord(i, rng.nextRange(0, 1000));
        for (std::uint64_t i = 0; i < 2u * choices; i++)
            mem.writeWord(costWords + i, 0);
    }

    bool
    validate(const Memory &mem) const override
    {
        Rng rng(params.seed + 4);
        std::vector<std::int64_t> cost(
                static_cast<size_t>(steps) * choices);
        for (auto &v : cost)
            v = rng.nextRange(0, 1000);
        std::vector<std::int64_t> prev(static_cast<size_t>(choices), 0);
        std::vector<std::int64_t> cur(static_cast<size_t>(choices), 0);
        for (int t = 1; t <= steps; t++) {
            for (int j = 0; j < choices; j++) {
                std::int64_t best = prev[static_cast<size_t>(j)];
                if (j > 0 && prev[static_cast<size_t>(j - 1)] > best)
                    best = prev[static_cast<size_t>(j - 1)];
                if (j < choices - 1 &&
                    prev[static_cast<size_t>(j + 1)] > best)
                    best = prev[static_cast<size_t>(j + 1)];
                cur[static_cast<size_t>(j)] =
                        best + cost[static_cast<size_t>(
                                (t - 1) * choices + j)];
            }
            std::swap(prev, cur);
        }
        // After the loop `prev` holds row `steps`, stored in the
        // parity-(steps&1) buffer.
        const std::uint64_t base =
                std::uint64_t(steps) * choices +
                std::uint64_t(steps % 2) * choices;
        for (int j = 0; j < choices; j++)
            if (mem.readWord(base + static_cast<std::uint64_t>(j)) !=
                prev[static_cast<size_t>(j)])
                return false;
        return true;
    }

  private:
    int steps;
    int choices;
};

} // namespace

std::unique_ptr<Kernel>
makeShort(const KernelParams &p)
{
    return std::make_unique<ShortKernel>(p);
}

} // namespace dws
