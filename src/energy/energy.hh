/**
 * @file
 * Event-based energy model (paper Section 3.3, "Energy is modeled in
 * four parts": Cacti for cache read/write + leakage, Wattch for the
 * seven-part pipeline energy, Orion-style crossbar, and 220 nJ per
 * DRAM access).
 *
 * We keep the same structure: per-event dynamic energies plus leakage
 * power that grows linearly with runtime. Absolute joules are
 * representative 65 nm-flavored constants, not Cacti-calibrated; the
 * figure the paper draws from this model (Figure 19) compares *relative*
 * energy of Conv vs DWS vs Slip, which is dominated by leakage x
 * runtime and activity counts and therefore survives the substitution
 * (see DESIGN.md).
 */

#ifndef DWS_ENERGY_ENERGY_HH
#define DWS_ENERGY_ENERGY_HH

#include "sim/config.hh"
#include "sim/stats.hh"

namespace dws {

/** Per-event energies (nJ) and leakage powers (nJ/cycle at 1 GHz). */
struct EnergyParams
{
    // Pipeline (Wattch-style; the paper's seven parts).
    double fetchDecodePerInstr = 0.30;  ///< fetch + decode per SIMD issue
    double aluPerLane = 0.05;           ///< integer/FP ALU op per lane
    double rfReadPerLane = 0.03;        ///< register file read per operand
    double rfWritePerLane = 0.03;       ///< register file write
    double resultBusPerLane = 0.02;     ///< result bus drive
    double clockPerCycle = 0.40;        ///< clock tree per WPU cycle

    // Caches (Cacti-style dynamic access energies).
    double l1iAccess = 0.10;
    double l1dAccess = 0.20;
    double l2Access = 1.20;
    double l3Access = 2.00;             ///< shared levels below the L2

    // Interconnect and memory.
    double xbarPerTransfer = 0.60;      ///< line transfer over crossbar
    double dramPerAccess = 220.0;       ///< paper: 220 nJ per access

    // Leakage (65 nm: a large fraction of total energy).
    double wpuLeakPerCycle = 1.00;      ///< per WPU core
    double cacheLeakPerKbCycle = 0.020; ///< per KB of cache, per cycle
};

/** Per-component energy breakdown in nanojoules. */
struct EnergyBreakdown
{
    double pipeline = 0.0;
    double caches = 0.0;
    double network = 0.0;
    double dram = 0.0;
    double leakage = 0.0;

    double total() const
    {
        return pipeline + caches + network + dram + leakage;
    }
};

/**
 * Compute the energy of a finished run from its statistics.
 *
 * @param stats run statistics (cycle counts, event counts)
 * @param cfg   the system configuration (cache sizes for leakage)
 * @param p     energy parameters
 */
EnergyBreakdown computeEnergy(const RunStats &stats,
                              const SystemConfig &cfg,
                              const EnergyParams &p = EnergyParams{});

} // namespace dws

#endif // DWS_ENERGY_ENERGY_HH
