#include "energy/energy.hh"

namespace dws {

EnergyBreakdown
computeEnergy(const RunStats &stats, const SystemConfig &cfg,
              const EnergyParams &p)
{
    EnergyBreakdown e;

    // Pipeline dynamic energy: fetch/decode once per SIMD issue, the
    // per-lane datapath once per scalar instruction (two RF reads, one
    // RF write, ALU, result bus).
    for (const auto &w : stats.wpus) {
        e.pipeline += double(w.issuedInstrs) * p.fetchDecodePerInstr;
        e.pipeline += double(w.scalarInstrs) *
                      (p.aluPerLane + 2.0 * p.rfReadPerLane +
                       p.rfWritePerLane + p.resultBusPerLane);
    }
    // Clock tree: every WPU, every cycle.
    e.pipeline += double(stats.cycles) * cfg.numWpus * p.clockPerCycle;

    // Cache dynamic energy.
    for (const auto &c : stats.icaches)
        e.caches += double(c.accesses()) * p.l1iAccess;
    for (const auto &c : stats.dcaches) {
        e.caches += double(c.accesses()) * p.l1dAccess;
        e.caches += double(c.writebacks) * p.l1dAccess;
    }
    e.caches += double(stats.mem.l2.accesses() + stats.mem.l2.writebacks) *
                p.l2Access;
    // Deeper shared levels (L3, ...) of an explicit hierarchy.
    for (const auto &c : stats.mem.deeper)
        e.caches += double(c.accesses() + c.writebacks) * p.l3Access;

    // Interconnect and DRAM.
    e.network = double(stats.mem.xbarTransfers) * p.xbarPerTransfer;
    e.dram = double(stats.mem.dramAccesses) * p.dramPerAccess;

    // Leakage grows linearly with runtime (65 nm; Section 6.5). Shared
    // capacity comes from the effective hierarchy spec so L3/sliced
    // configs leak in proportion to what they instantiate; the default
    // spec reduces to exactly mem.l2.sizeBytes.
    const double l1Kb =
            double(cfg.wpu.icache.sizeBytes + cfg.wpu.dcache.sizeBytes) /
            1024.0;
    std::uint64_t sharedBytes = 0;
    for (const auto &lvl : cfg.hierarchy().levels)
        sharedBytes += lvl.cache.sizeBytes *
                       static_cast<std::uint64_t>(lvl.slices);
    const double sharedKb = double(sharedBytes) / 1024.0;
    const double leakPerCycle =
            cfg.numWpus * (p.wpuLeakPerCycle +
                           l1Kb * p.cacheLeakPerKbCycle) +
            sharedKb * p.cacheLeakPerKbCycle;
    e.leakage = double(stats.cycles) * leakPerCycle;

    return e;
}

} // namespace dws
