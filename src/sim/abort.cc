#include "sim/abort.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dws {

namespace {

thread_local bool tlsRecoverable = false;
thread_local SimControl *tlsControl = nullptr;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list probe;
    va_copy(probe, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (len <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return buf.data();
}

} // namespace

const char *
simOutcomeName(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Ok:                 return "ok";
      case SimOutcome::ValidationFailed:   return "validation-failed";
      case SimOutcome::Panic:              return "panic";
      case SimOutcome::Deadlock:           return "deadlock";
      case SimOutcome::CycleLimit:         return "cycle-limit";
      case SimOutcome::InvariantViolation: return "invariant-violation";
      case SimOutcome::Timeout:            return "timeout";
    }
    return "?";
}

SimOutcome
simOutcomeFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(SimOutcome::Timeout); i++) {
        const SimOutcome o = static_cast<SimOutcome>(i);
        if (name == simOutcomeName(o))
            return o;
    }
    return SimOutcome::Ok;
}

int
exitCodeFor(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Ok:                 return 0;
      case SimOutcome::ValidationFailed:   return 2;
      case SimOutcome::Deadlock:           return 3;
      case SimOutcome::CycleLimit:         return 4;
      case SimOutcome::InvariantViolation: return 5;
      case SimOutcome::Panic:              return 6;
      case SimOutcome::Timeout:            return 7;
    }
    return 1;
}

ScopedRecoverableAborts::ScopedRecoverableAborts() : prev(tlsRecoverable)
{
    tlsRecoverable = true;
}

ScopedRecoverableAborts::~ScopedRecoverableAborts()
{
    tlsRecoverable = prev;
}

bool
recoverableAborts()
{
    return tlsRecoverable;
}

void
simAbort(SimOutcome o, Cycle cycle, std::string diagnostics,
         const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (tlsRecoverable)
        throw SimAbortError(o, cycle, std::move(msg),
                            std::move(diagnostics));
    if (!diagnostics.empty()) {
        std::fwrite(diagnostics.data(), 1, diagnostics.size(), stderr);
        if (diagnostics.back() != '\n')
            std::fputc('\n', stderr);
    }
    std::fprintf(stderr, "%s: %s\n", simOutcomeName(o), msg.c_str());
    if (o == SimOutcome::Panic)
        std::abort();
    std::exit(exitCodeFor(o));
}

SimControl *
threadSimControl()
{
    return tlsControl;
}

void
setThreadSimControl(SimControl *ctl)
{
    tlsControl = ctl;
}

} // namespace dws
