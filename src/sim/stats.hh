/**
 * @file
 * Statistics collected per WPU and aggregated per run.
 *
 * These counters are exactly what the paper's figures need: execution-time
 * breakdown into SIMD computation vs memory waiting (Figure 1), divergence
 * characterization (Table 1), average issued SIMD width (Sections 4.6 and
 * 5.5), per-thread miss maps (Figure 14) and the event counts that feed
 * the energy model (Figure 19).
 */

#ifndef DWS_SIM_STATS_HH
#define DWS_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dws {

/** Counters for one WPU. */
struct WpuStats
{
    /** Cycles in which an instruction was issued. */
    std::uint64_t activeCycles = 0;
    /** Cycles in which no SIMD group was ready and >=1 waited on memory. */
    std::uint64_t memStallCycles = 0;
    /** Cycles with no ready group for other reasons (barriers etc.). */
    std::uint64_t otherStallCycles = 0;
    /** Cycles after all local threads finished (tail idle). */
    std::uint64_t idleCycles = 0;

    /** SIMD instructions issued (one per sequencer issue). */
    std::uint64_t issuedInstrs = 0;
    /** Sum over issues of the number of active threads (scalar instrs). */
    std::uint64_t scalarInstrs = 0;

    /** Conditional branches executed (warp level). */
    std::uint64_t branches = 0;
    /** Conditional branches whose outcome diverged within the group. */
    std::uint64_t divergentBranches = 0;

    /** Executions of branches the static analysis called uniform. */
    std::uint64_t staticUniformBranchExecs = 0;
    /** Executions of branches the static analysis called divergent. */
    std::uint64_t staticDivergentBranchExecs = 0;
    /**
     * Executions where a statically-uniform branch diverged at runtime.
     * The analysis is sound, so any nonzero count is a bug (audited by
     * the invariant checker).
     */
    std::uint64_t staticDivergenceMispredicts = 0;

    /** SIMD memory accesses (group level). */
    std::uint64_t memAccesses = 0;
    /** Accesses where >=1 thread hit and >=1 missed the L1 D-cache. */
    std::uint64_t divergentAccesses = 0;
    /** Accesses with >=1 L1 D-cache miss. */
    std::uint64_t missAccesses = 0;

    /** Warp-splits created upon branch divergence. */
    std::uint64_t branchSplits = 0;
    /** Warp-splits created upon memory divergence. */
    std::uint64_t memSplits = 0;
    /** Splits that were denied because the WST was full. */
    std::uint64_t wstFullDenials = 0;
    /** Merges performed by PC-based re-convergence. */
    std::uint64_t pcMerges = 0;
    /** Merges performed by stack-based re-convergence. */
    std::uint64_t stackMerges = 0;

    /** Per-thread L1 D-cache miss counts (index = warp*width+lane). */
    std::vector<std::uint64_t> threadMisses;

    /** Adaptive slip: slips taken / forced re-convergences. */
    std::uint64_t slipsTaken = 0;
    std::uint64_t slipStallsAtBranch = 0;

    /** @return average SIMD width over all issued instructions. */
    double avgSimdWidth() const;
    /** @return total cycles accounted (active + stalls + idle). */
    std::uint64_t totalCycles() const;
    /** @return fraction of time the WPU stalled waiting for memory. */
    double memStallFrac() const;
};

/** Counters for one cache. */
struct CacheStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t invalidationsReceived = 0;
    std::uint64_t mshrFullEvents = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t coalescedRequests = 0;

    /** @return total accesses. */
    std::uint64_t accesses() const { return reads + writes; }
    /** @return total misses. */
    std::uint64_t misses() const { return readMisses + writeMisses; }
    /** @return miss rate in [0,1]. */
    double missRate() const;
};

/** System-level memory statistics. */
struct MemStats
{
    /** First shared level (slices summed). */
    CacheStats l2;
    /**
     * Shared levels below the first (L3, L4, ...), slices summed.
     * Empty in the default 2-level machine, so legacy fingerprints are
     * unchanged.
     */
    std::vector<CacheStats> deeper;
    std::uint64_t dramAccesses = 0;
    std::uint64_t xbarTransfers = 0;
    std::uint64_t coherenceRecalls = 0;
};

/** Aggregate results of one simulation run. */
struct RunStats
{
    Cycle cycles = 0;
    std::vector<WpuStats> wpus;
    std::vector<CacheStats> icaches;
    std::vector<CacheStats> dcaches;
    MemStats mem;
    /** Total simulated energy in nanojoules (see energy/). */
    double energyNj = 0.0;

    /** @return sum of scalar instructions over all WPUs. */
    std::uint64_t totalScalarInstrs() const;
    /** @return sum of issued SIMD instructions over all WPUs. */
    std::uint64_t totalIssuedInstrs() const;
    /** @return run-wide average issued SIMD width. */
    double avgSimdWidth() const;
    /** @return average fraction of WPU time stalled on memory. */
    double memStallFrac() const;
    /** @return short human-readable summary line. */
    std::string summary() const;

    /**
     * @return a canonical serialization of every counter (all WPUs,
     *         caches, memory, energy). Two runs are bit-identical iff
     *         their fingerprints match; the determinism tests compare
     *         `--jobs 1` and `--jobs N` runs through this.
     */
    std::string fingerprint() const;

    /**
     * Rebuild a RunStats from its fingerprint() serialization (the
     * format records every counter, so the round trip is exact:
     * parse(fp).fingerprint() == fp). Used by the sweep journal to
     * restore completed cells on `--resume` without re-simulating.
     *
     * @return false if `fp` is not a well-formed fingerprint.
     */
    static bool parseFingerprint(const std::string &fp, RunStats &out);
};

/**
 * @return harmonic mean of v (all entries must be > 0).
 * @param context optional description of what is being averaged,
 *        included in the error when a non-positive value is found so
 *        the failing stat/run is identifiable from the message.
 */
double harmonicMean(const std::vector<double> &v,
                    const char *context = nullptr);

} // namespace dws

#endif // DWS_SIM_STATS_HH
