#include "sim/stats.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace dws {

double
WpuStats::avgSimdWidth() const
{
    return issuedInstrs ? double(scalarInstrs) / double(issuedInstrs) : 0.0;
}

std::uint64_t
WpuStats::totalCycles() const
{
    return activeCycles + memStallCycles + otherStallCycles + idleCycles;
}

double
WpuStats::memStallFrac() const
{
    const std::uint64_t busy =
        activeCycles + memStallCycles + otherStallCycles;
    return busy ? double(memStallCycles) / double(busy) : 0.0;
}

double
CacheStats::missRate() const
{
    const std::uint64_t a = accesses();
    return a ? double(misses()) / double(a) : 0.0;
}

std::uint64_t
RunStats::totalScalarInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.scalarInstrs;
    return n;
}

std::uint64_t
RunStats::totalIssuedInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.issuedInstrs;
    return n;
}

double
RunStats::avgSimdWidth() const
{
    const std::uint64_t issued = totalIssuedInstrs();
    return issued ? double(totalScalarInstrs()) / double(issued) : 0.0;
}

double
RunStats::memStallFrac() const
{
    if (wpus.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &w : wpus)
        sum += w.memStallFrac();
    return sum / double(wpus.size());
}

std::string
RunStats::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu instrs=%llu width=%.2f memstall=%.1f%% "
                  "energy=%.3f mJ",
                  (unsigned long long)cycles,
                  (unsigned long long)totalScalarInstrs(), avgSimdWidth(),
                  100.0 * memStallFrac(), energyNj * 1e-6);
    return buf;
}

double
harmonicMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double denom = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            panic("harmonicMean over non-positive value %f", x);
        denom += 1.0 / x;
    }
    return double(v.size()) / denom;
}

} // namespace dws
