#include "sim/stats.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace dws {

double
WpuStats::avgSimdWidth() const
{
    return issuedInstrs ? double(scalarInstrs) / double(issuedInstrs) : 0.0;
}

std::uint64_t
WpuStats::totalCycles() const
{
    return activeCycles + memStallCycles + otherStallCycles + idleCycles;
}

double
WpuStats::memStallFrac() const
{
    const std::uint64_t busy =
        activeCycles + memStallCycles + otherStallCycles;
    return busy ? double(memStallCycles) / double(busy) : 0.0;
}

double
CacheStats::missRate() const
{
    const std::uint64_t a = accesses();
    return a ? double(misses()) / double(a) : 0.0;
}

std::uint64_t
RunStats::totalScalarInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.scalarInstrs;
    return n;
}

std::uint64_t
RunStats::totalIssuedInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.issuedInstrs;
    return n;
}

double
RunStats::avgSimdWidth() const
{
    const std::uint64_t issued = totalIssuedInstrs();
    return issued ? double(totalScalarInstrs()) / double(issued) : 0.0;
}

double
RunStats::memStallFrac() const
{
    if (wpus.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &w : wpus)
        sum += w.memStallFrac();
    return sum / double(wpus.size());
}

std::string
RunStats::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu instrs=%llu width=%.2f memstall=%.1f%% "
                  "energy=%.3f mJ",
                  (unsigned long long)cycles,
                  (unsigned long long)totalScalarInstrs(), avgSimdWidth(),
                  100.0 * memStallFrac(), energyNj * 1e-6);
    return buf;
}

namespace {

void
appendCacheStats(std::string &s, const CacheStats &c)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "r%llu w%llu rm%llu wm%llu wb%llu is%llu ir%llu "
                  "mf%llu bc%llu co%llu;",
                  (unsigned long long)c.reads,
                  (unsigned long long)c.writes,
                  (unsigned long long)c.readMisses,
                  (unsigned long long)c.writeMisses,
                  (unsigned long long)c.writebacks,
                  (unsigned long long)c.invalidationsSent,
                  (unsigned long long)c.invalidationsReceived,
                  (unsigned long long)c.mshrFullEvents,
                  (unsigned long long)c.bankConflicts,
                  (unsigned long long)c.coalescedRequests);
    s += buf;
}

} // namespace

std::string
RunStats::fingerprint() const
{
    std::string s;
    char buf[512];
    std::snprintf(buf, sizeof(buf), "cycles%llu energy%.17g|",
                  (unsigned long long)cycles, energyNj);
    s += buf;
    for (const auto &w : wpus) {
        std::snprintf(buf, sizeof(buf),
                      "a%llu ms%llu os%llu id%llu ii%llu si%llu b%llu "
                      "db%llu su%llu sd%llu sm%llu ma%llu da%llu "
                      "mi%llu bs%llu mm%llu wf%llu pm%llu km%llu "
                      "st%llu sb%llu|",
                      (unsigned long long)w.activeCycles,
                      (unsigned long long)w.memStallCycles,
                      (unsigned long long)w.otherStallCycles,
                      (unsigned long long)w.idleCycles,
                      (unsigned long long)w.issuedInstrs,
                      (unsigned long long)w.scalarInstrs,
                      (unsigned long long)w.branches,
                      (unsigned long long)w.divergentBranches,
                      (unsigned long long)w.staticUniformBranchExecs,
                      (unsigned long long)w.staticDivergentBranchExecs,
                      (unsigned long long)w.staticDivergenceMispredicts,
                      (unsigned long long)w.memAccesses,
                      (unsigned long long)w.divergentAccesses,
                      (unsigned long long)w.missAccesses,
                      (unsigned long long)w.branchSplits,
                      (unsigned long long)w.memSplits,
                      (unsigned long long)w.wstFullDenials,
                      (unsigned long long)w.pcMerges,
                      (unsigned long long)w.stackMerges,
                      (unsigned long long)w.slipsTaken,
                      (unsigned long long)w.slipStallsAtBranch);
        s += buf;
        s += "tm";
        for (auto m : w.threadMisses) {
            std::snprintf(buf, sizeof(buf), " %llu",
                          (unsigned long long)m);
            s += buf;
        }
        s += "|";
    }
    for (const auto &c : icaches)
        appendCacheStats(s, c);
    for (const auto &c : dcaches)
        appendCacheStats(s, c);
    appendCacheStats(s, mem.l2);
    std::snprintf(buf, sizeof(buf), "dram%llu xbar%llu rec%llu",
                  (unsigned long long)mem.dramAccesses,
                  (unsigned long long)mem.xbarTransfers,
                  (unsigned long long)mem.coherenceRecalls);
    s += buf;
    return s;
}

double
harmonicMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double denom = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            panic("harmonicMean over non-positive value %f", x);
        denom += 1.0 / x;
    }
    return double(v.size()) / denom;
}

} // namespace dws
