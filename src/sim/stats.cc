#include "sim/stats.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace dws {

double
WpuStats::avgSimdWidth() const
{
    return issuedInstrs ? double(scalarInstrs) / double(issuedInstrs) : 0.0;
}

std::uint64_t
WpuStats::totalCycles() const
{
    return activeCycles + memStallCycles + otherStallCycles + idleCycles;
}

double
WpuStats::memStallFrac() const
{
    const std::uint64_t busy =
        activeCycles + memStallCycles + otherStallCycles;
    return busy ? double(memStallCycles) / double(busy) : 0.0;
}

double
CacheStats::missRate() const
{
    const std::uint64_t a = accesses();
    return a ? double(misses()) / double(a) : 0.0;
}

std::uint64_t
RunStats::totalScalarInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.scalarInstrs;
    return n;
}

std::uint64_t
RunStats::totalIssuedInstrs() const
{
    std::uint64_t n = 0;
    for (const auto &w : wpus)
        n += w.issuedInstrs;
    return n;
}

double
RunStats::avgSimdWidth() const
{
    const std::uint64_t issued = totalIssuedInstrs();
    return issued ? double(totalScalarInstrs()) / double(issued) : 0.0;
}

double
RunStats::memStallFrac() const
{
    if (wpus.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &w : wpus)
        sum += w.memStallFrac();
    return sum / double(wpus.size());
}

std::string
RunStats::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu instrs=%llu width=%.2f memstall=%.1f%% "
                  "energy=%.3f mJ",
                  (unsigned long long)cycles,
                  (unsigned long long)totalScalarInstrs(), avgSimdWidth(),
                  100.0 * memStallFrac(), energyNj * 1e-6);
    return buf;
}

namespace {

void
appendCacheStats(std::string &s, const CacheStats &c)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "r%llu w%llu rm%llu wm%llu wb%llu is%llu ir%llu "
                  "mf%llu bc%llu co%llu;",
                  (unsigned long long)c.reads,
                  (unsigned long long)c.writes,
                  (unsigned long long)c.readMisses,
                  (unsigned long long)c.writeMisses,
                  (unsigned long long)c.writebacks,
                  (unsigned long long)c.invalidationsSent,
                  (unsigned long long)c.invalidationsReceived,
                  (unsigned long long)c.mshrFullEvents,
                  (unsigned long long)c.bankConflicts,
                  (unsigned long long)c.coalescedRequests);
    s += buf;
}

} // namespace

std::string
RunStats::fingerprint() const
{
    std::string s;
    char buf[512];
    std::snprintf(buf, sizeof(buf), "cycles%llu energy%.17g|",
                  (unsigned long long)cycles, energyNj);
    s += buf;
    for (const auto &w : wpus) {
        std::snprintf(buf, sizeof(buf),
                      "a%llu ms%llu os%llu id%llu ii%llu si%llu b%llu "
                      "db%llu su%llu sd%llu sm%llu ma%llu da%llu "
                      "mi%llu bs%llu mm%llu wf%llu pm%llu km%llu "
                      "st%llu sb%llu|",
                      (unsigned long long)w.activeCycles,
                      (unsigned long long)w.memStallCycles,
                      (unsigned long long)w.otherStallCycles,
                      (unsigned long long)w.idleCycles,
                      (unsigned long long)w.issuedInstrs,
                      (unsigned long long)w.scalarInstrs,
                      (unsigned long long)w.branches,
                      (unsigned long long)w.divergentBranches,
                      (unsigned long long)w.staticUniformBranchExecs,
                      (unsigned long long)w.staticDivergentBranchExecs,
                      (unsigned long long)w.staticDivergenceMispredicts,
                      (unsigned long long)w.memAccesses,
                      (unsigned long long)w.divergentAccesses,
                      (unsigned long long)w.missAccesses,
                      (unsigned long long)w.branchSplits,
                      (unsigned long long)w.memSplits,
                      (unsigned long long)w.wstFullDenials,
                      (unsigned long long)w.pcMerges,
                      (unsigned long long)w.stackMerges,
                      (unsigned long long)w.slipsTaken,
                      (unsigned long long)w.slipStallsAtBranch);
        s += buf;
        s += "tm";
        for (auto m : w.threadMisses) {
            std::snprintf(buf, sizeof(buf), " %llu",
                          (unsigned long long)m);
            s += buf;
        }
        s += "|";
    }
    for (const auto &c : icaches)
        appendCacheStats(s, c);
    for (const auto &c : dcaches)
        appendCacheStats(s, c);
    appendCacheStats(s, mem.l2);
    for (const auto &c : mem.deeper)
        appendCacheStats(s, c);
    std::snprintf(buf, sizeof(buf), "dram%llu xbar%llu rec%llu",
                  (unsigned long long)mem.dramAccesses,
                  (unsigned long long)mem.xbarTransfers,
                  (unsigned long long)mem.coherenceRecalls);
    s += buf;
    return s;
}

namespace {

/**
 * Consume one "%llu"-formatted counter prefixed by `tag` from fp at
 * offset `at`. @return true and advance `at` past the number.
 */
bool
scanTagged(const std::string &fp, size_t &at, const char *tag,
           std::uint64_t &out)
{
    const size_t tagLen = std::strlen(tag);
    if (fp.compare(at, tagLen, tag) != 0)
        return false;
    size_t pos = at + tagLen;
    if (pos >= fp.size() || !std::isdigit(static_cast<unsigned char>(fp[pos])))
        return false;
    out = 0;
    while (pos < fp.size() &&
           std::isdigit(static_cast<unsigned char>(fp[pos]))) {
        out = out * 10 + static_cast<std::uint64_t>(fp[pos] - '0');
        pos++;
    }
    at = pos;
    return true;
}

/** Consume one literal character. */
bool
scanChar(const std::string &fp, size_t &at, char c)
{
    if (at >= fp.size() || fp[at] != c)
        return false;
    at++;
    return true;
}

/** Parse one cache-stats block "r.. w.. ... co..;". */
bool
scanCacheStats(const std::string &fp, size_t &at, CacheStats &c)
{
    return scanTagged(fp, at, "r", c.reads) && scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "w", c.writes) && scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "rm", c.readMisses) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "wm", c.writeMisses) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "wb", c.writebacks) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "is", c.invalidationsSent) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "ir", c.invalidationsReceived) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "mf", c.mshrFullEvents) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "bc", c.bankConflicts) &&
           scanChar(fp, at, ' ') &&
           scanTagged(fp, at, "co", c.coalescedRequests) &&
           scanChar(fp, at, ';');
}

} // namespace

bool
RunStats::parseFingerprint(const std::string &fp, RunStats &out)
{
    out = RunStats{};
    size_t at = 0;
    if (!scanTagged(fp, at, "cycles", out.cycles))
        return false;
    {
        // energy%.17g| — let strtod consume the float.
        if (fp.compare(at, 7, " energy") != 0)
            return false;
        at += 7;
        const char *begin = fp.c_str() + at;
        char *end = nullptr;
        out.energyNj = std::strtod(begin, &end);
        if (end == begin)
            return false;
        at += static_cast<size_t>(end - begin);
        if (!scanChar(fp, at, '|'))
            return false;
    }

    // WPU blocks: "a.. ms.. ... sb..|tm m0 m1 ...|", repeated; each
    // starts with 'a' followed by a digit (cache blocks start with 'r').
    while (at + 1 < fp.size() && fp[at] == 'a' &&
           std::isdigit(static_cast<unsigned char>(fp[at + 1]))) {
        WpuStats w;
        const bool ok =
                scanTagged(fp, at, "a", w.activeCycles) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "ms", w.memStallCycles) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "os", w.otherStallCycles) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "id", w.idleCycles) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "ii", w.issuedInstrs) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "si", w.scalarInstrs) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "b", w.branches) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "db", w.divergentBranches) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "su", w.staticUniformBranchExecs) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "sd", w.staticDivergentBranchExecs) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "sm", w.staticDivergenceMispredicts) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "ma", w.memAccesses) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "da", w.divergentAccesses) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "mi", w.missAccesses) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "bs", w.branchSplits) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "mm", w.memSplits) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "wf", w.wstFullDenials) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "pm", w.pcMerges) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "km", w.stackMerges) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "st", w.slipsTaken) &&
                scanChar(fp, at, ' ') &&
                scanTagged(fp, at, "sb", w.slipStallsAtBranch) &&
                scanChar(fp, at, '|');
        if (!ok)
            return false;
        if (fp.compare(at, 2, "tm") != 0)
            return false;
        at += 2;
        while (at < fp.size() && fp[at] == ' ') {
            at++;
            std::uint64_t m = 0;
            if (at >= fp.size() ||
                !std::isdigit(static_cast<unsigned char>(fp[at])))
                return false;
            while (at < fp.size() &&
                   std::isdigit(static_cast<unsigned char>(fp[at]))) {
                m = m * 10 + static_cast<std::uint64_t>(fp[at] - '0');
                at++;
            }
            w.threadMisses.push_back(m);
        }
        if (!scanChar(fp, at, '|'))
            return false;
        out.wpus.push_back(std::move(w));
    }

    // Caches: numWpus icache blocks, numWpus dcache blocks, then L2.
    const size_t n = out.wpus.size();
    for (size_t i = 0; i < n; i++) {
        CacheStats c;
        if (!scanCacheStats(fp, at, c))
            return false;
        out.icaches.push_back(c);
    }
    for (size_t i = 0; i < n; i++) {
        CacheStats c;
        if (!scanCacheStats(fp, at, c))
            return false;
        out.dcaches.push_back(c);
    }
    if (!scanCacheStats(fp, at, out.mem.l2))
        return false;

    // Deeper shared levels (L3, ...): more cache blocks before "dram".
    // A cache block starts "r<digit>"; the tail starts "dram", so the
    // two are unambiguous.
    while (at + 1 < fp.size() && fp[at] == 'r' &&
           std::isdigit(static_cast<unsigned char>(fp[at + 1]))) {
        CacheStats c;
        if (!scanCacheStats(fp, at, c))
            return false;
        out.mem.deeper.push_back(c);
    }

    if (!scanTagged(fp, at, "dram", out.mem.dramAccesses) ||
        !scanChar(fp, at, ' ') ||
        !scanTagged(fp, at, "xbar", out.mem.xbarTransfers) ||
        !scanChar(fp, at, ' ') ||
        !scanTagged(fp, at, "rec", out.mem.coherenceRecalls))
        return false;
    return at == fp.size();
}

double
harmonicMean(const std::vector<double> &v, const char *context)
{
    if (v.empty())
        return 0.0;
    double denom = 0.0;
    for (size_t i = 0; i < v.size(); i++) {
        const double x = v[i];
        if (x <= 0.0)
            panic("harmonicMean over non-positive value %f "
                  "(entry %zu of %zu%s%s)",
                  x, i, v.size(), context ? ", " : "",
                  context ? context : "");
        denom += 1.0 / x;
    }
    return double(v.size()) / denom;
}

} // namespace dws
