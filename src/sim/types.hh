/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef DWS_SIM_TYPES_HH
#define DWS_SIM_TYPES_HH

#include <cstdint>

namespace dws {

/** Simulated clock cycle count. The whole system runs on one clock. */
using Cycle = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Program counter: index of an instruction inside a Program. */
using Pc = std::int32_t;

/** Sentinel PC used as the re-convergence point of the outermost frame. */
constexpr Pc kPcExit = -1;

/** Sentinel PC for "not yet known" (BranchLimited dynamic barriers). */
constexpr Pc kPcUnknown = -2;

/** Global thread identifier (across all WPUs). */
using ThreadId = std::int32_t;

/** Warp identifier, local to one WPU. */
using WarpId = std::int32_t;

/** SIMD group (warp-split) identifier, local to one WPU. */
using GroupId = std::int32_t;

/** Identifier of a WPU within the system. */
using WpuId = std::int32_t;

/** Number of architectural registers per scalar thread. */
constexpr int kNumRegs = 32;

/** Size in bytes of one simulated data word (registers are 64-bit). */
constexpr int kWordBytes = 8;

/** Simulated size in bytes of one encoded instruction (for I-cache). */
constexpr int kInstrBytes = 8;

} // namespace dws

#endif // DWS_SIM_TYPES_HH
