/**
 * @file
 * Validated numeric parsing for CLI flags, environment variables and
 * text-file tokens.
 *
 * std::atoi/atoll silently turn garbage into 0 and overflow into
 * undefined behavior, which is how `--jobs banana` used to mean
 * "0 workers". These helpers accept a token only if the *entire*
 * string is a number that fits the target type, and return nullopt
 * otherwise so every caller can reject bad input loudly.
 */

#ifndef DWS_SIM_PARSE_HH
#define DWS_SIM_PARSE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace dws {

/**
 * Parse a whole token as a signed 64-bit integer (decimal, or
 * hexadecimal with a 0x/0X prefix; optional leading sign).
 * @return nullopt for empty strings, trailing garbage or overflow.
 */
std::optional<std::int64_t> parseInt64(const char *s);
inline std::optional<std::int64_t>
parseInt64(const std::string &s)
{
    return parseInt64(s.c_str());
}

/** Same, for an unsigned 64-bit integer (no sign allowed). */
std::optional<std::uint64_t> parseUint64(const char *s);
inline std::optional<std::uint64_t>
parseUint64(const std::string &s)
{
    return parseUint64(s.c_str());
}

/**
 * Parse a whole token as a finite double.
 * @return nullopt for empty strings, trailing garbage, inf/nan or
 *         out-of-range magnitudes.
 */
std::optional<double> parseFiniteDouble(const char *s);

/**
 * Parse a signed integer constrained to [lo, hi].
 * @return nullopt when unparsable or outside the range.
 */
std::optional<std::int64_t> parseInt64InRange(const char *s,
                                              std::int64_t lo,
                                              std::int64_t hi);

/**
 * Parse a byte size: a non-negative integer with an optional k/m/g
 * suffix (case-insensitive, powers of 1024), e.g. "32k", "1m", "8G".
 * @return nullopt when unparsable or the scaled value overflows.
 */
std::optional<std::uint64_t> parseSizeBytes(const char *s);

/** @return true for 1, 2, 4, 8, ...; false for 0. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace dws

#endif // DWS_SIM_PARSE_HH
