/**
 * @file
 * A tiny deterministic event queue used for memory-completion timing.
 *
 * The WPU pipelines are cycle-driven (tick() once per cycle); only memory
 * request completions are event-driven. Events with equal firing cycles
 * pop in insertion order so that simulations are fully reproducible.
 */

#ifndef DWS_SIM_EVENT_QUEUE_HH
#define DWS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace dws {

/** FIFO-stable min-heap of (cycle, callback) events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at absolute cycle when (>= current cycle). */
    void
    schedule(Cycle when, Callback cb)
    {
        heap.push(Event{when, seq++, std::move(cb)});
    }

    /** @return the firing cycle of the earliest pending event. */
    Cycle
    nextEventCycle() const
    {
        return heap.empty() ? ~Cycle(0) : heap.top().when;
    }

    /** @return true if no events are pending. */
    bool empty() const { return heap.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap.size(); }

    /**
     * Run every event scheduled at or before cycle now, in (cycle, FIFO)
     * order. Callbacks may schedule further events.
     */
    void
    runUntil(Cycle now)
    {
        while (!heap.empty() && heap.top().when <= now) {
            // Copy out before pop so the callback can schedule new events.
            Callback cb = std::move(const_cast<Event &>(heap.top()).cb);
            heap.pop();
            cb();
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t order;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : order > o.order;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
    std::uint64_t seq = 0;
};

} // namespace dws

#endif // DWS_SIM_EVENT_QUEUE_HH
