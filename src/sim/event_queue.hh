/**
 * @file
 * A tiny deterministic event queue used for memory-completion timing.
 *
 * The WPU pipelines are cycle-driven (tick() once per cycle); only memory
 * request completions are event-driven. Events with equal firing cycles
 * pop in insertion order so that simulations are fully reproducible.
 *
 * Events are plain typed records (kind + target id + payload), not
 * type-erased callbacks: scheduling one costs no heap allocation and
 * firing one costs no indirect std::function dispatch — each event is
 * routed to the EventTarget bound for its kind (a Wpu for group wakes,
 * the MemSystem for MSHR releases). This keeps the hot path of a
 * memory-bound simulation proportional to the number of completions,
 * not to allocator traffic.
 */

#ifndef DWS_SIM_EVENT_QUEUE_HH
#define DWS_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"

namespace dws {

/** What a SimEvent means to its target. */
enum class EventKind : std::uint8_t {
    /** Memory completion for (wpu, group): clear `lanes` and wake. */
    WakeGroup,
    /** Retry a partially issued access of (wpu, group) (MSHRs freed). */
    WakeRetry,
    /** Release the L1 MSHR entry of `line` on WPU `wpu`. */
    L1MshrRelease,
    /** Release the shared L2 MSHR entry of `line`. */
    L2MshrRelease,
};

/** @return printable kind name (diagnostics, tests). */
const char *eventKindName(EventKind k);

/**
 * One scheduled event. A plain value: every field an event could need
 * is inline, and unused fields stay at their defaults. `lanes` is a
 * thread mask (wpu/mask.hh); it is typed as the underlying integer so
 * the sim layer does not depend on the wpu layer.
 */
struct SimEvent
{
    Cycle when = 0;
    EventKind kind = EventKind::WakeGroup;
    /** Target WPU (wake kinds) or requesting WPU (L1MshrRelease). */
    WpuId wpu = -1;
    /** Target SIMD group (wake kinds). */
    GroupId group = -1;
    /** Lanes whose requests completed (WakeGroup; 0 = none specific). */
    std::uint64_t lanes = 0;
    /** Cache line address (MSHR release kinds). */
    Addr line = 0;
};

/** Receiver of dispatched events (implemented by Wpu and MemSystem). */
class EventTarget
{
  public:
    virtual ~EventTarget();
    /** Handle one event at its firing time (`ev.when`). */
    virtual void onSimEvent(const SimEvent &ev) = 0;
};

/** FIFO-stable min-heap of typed events with per-target dispatch. */
class EventQueue
{
  public:
    /** Bind the handler of WakeGroup/WakeRetry events for one WPU. */
    void
    bindWpu(WpuId id, EventTarget *t)
    {
        if (static_cast<std::size_t>(id) >= wpuTargets.size())
            wpuTargets.resize(static_cast<std::size_t>(id) + 1, nullptr);
        wpuTargets[static_cast<std::size_t>(id)] = t;
    }

    /** Bind the handler of MSHR-release events (the memory system). */
    void bindMem(EventTarget *t) { memTarget = t; }

    /**
     * Attach the tracer (nullptr = off). Dispatch advances trace time
     * to each event's firing cycle so MSHR-drain records are stamped
     * with the cycle the release actually happens, not the cycle the
     * run loop catches up.
     */
    void setTracer(Tracer *t) { trace_ = t; }

    /** Schedule an event at absolute cycle ev.when (>= current cycle). */
    void
    schedule(const SimEvent &ev)
    {
        heap.push_back(Entry{ev, seq++});
        std::push_heap(heap.begin(), heap.end(), Later{});
    }

    /** @return the firing cycle of the earliest pending event. */
    Cycle
    nextEventCycle() const
    {
        return heap.empty() ? ~Cycle(0) : heap.front().ev.when;
    }

    /** @return true if no events are pending. */
    bool empty() const { return heap.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap.size(); }

    /** @return number of pending events of one kind (diagnostics). */
    std::size_t kindCount(EventKind k) const;

    /**
     * @return one line summarizing the pending events by kind with the
     *         earliest firing cycle, e.g.
     *         "events pending: 3 (WakeGroup:2 L1MshrRelease:1) next@412"
     *         — printed by the deadlock report so a hung run shows what
     *         the system was still waiting for.
     */
    std::string censusLine() const;

    /**
     * Dispatch every event scheduled at or before cycle now, in
     * (cycle, FIFO) order. Handlers may schedule further events.
     */
    void
    runUntil(Cycle now)
    {
        while (!heap.empty() && heap.front().ev.when <= now) {
            // Copy out (plain value) before pop so the handler can
            // schedule new events.
            const SimEvent ev = heap.front().ev;
            std::pop_heap(heap.begin(), heap.end(), Later{});
            heap.pop_back();
            DWS_TRACE(trace_, advanceTo(ev.when));
            dispatch(ev);
        }
    }

  private:
    /** The fault injector mutates pending events in place. */
    friend class FaultInjector;

    void dispatch(const SimEvent &ev);

    struct Entry
    {
        SimEvent ev;
        std::uint64_t order;
    };

    /** Heap comparator: `a` fires after `b` (min-heap via std::*_heap). */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.ev.when != b.ev.when ? a.ev.when > b.ev.when
                                          : a.order > b.order;
        }
    };

    /** Min-heap over (when, order); heap.front() is the next event. */
    std::vector<Entry> heap;
    std::uint64_t seq = 0;

    /** WakeGroup/WakeRetry handlers, indexed by WpuId. */
    std::vector<EventTarget *> wpuTargets;
    /** MSHR-release handler. */
    EventTarget *memTarget = nullptr;
    Tracer *trace_ = nullptr;
};

} // namespace dws

#endif // DWS_SIM_EVENT_QUEUE_HH
