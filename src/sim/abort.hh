/**
 * @file
 * Structured, recoverable simulation failures.
 *
 * Every terminal failure of a simulation — an internal panic, the
 * deadlock detector, the maxCycles safety valve, an invariant-checker
 * violation, a watchdog cancellation — is classified by a SimOutcome
 * and funneled through simAbort(). Standalone binaries exit with a
 * distinct per-outcome exit code; under the sweep harness (a
 * ScopedRecoverableAborts region) the same failure is thrown as a
 * SimAbortError instead, so one poisoned sweep cell fails alone while
 * its siblings complete untouched. The error carries the failing
 * cycle and the full diagnostic state dump (per-WPU state lines,
 * pending-event census, invariant violations), making a hang or a
 * corruption diagnosable from the failure record alone.
 */

#ifndef DWS_SIM_ABORT_HH
#define DWS_SIM_ABORT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace dws {

/** Terminal classification of one simulation run. */
enum class SimOutcome : std::uint8_t {
    /** Completed; output matched the golden reference. */
    Ok,
    /** Completed, but output failed validation. */
    ValidationFailed,
    /** Internal simulator bug (panic()). */
    Panic,
    /** Deadlock detector: no pending events, no ready groups. */
    Deadlock,
    /** maxCycles safety valve tripped. */
    CycleLimit,
    /** Runtime invariant checker found corrupted machine state. */
    InvariantViolation,
    /** Cancelled by the sweep watchdog (wall clock / no progress). */
    Timeout,
};

/** @return printable outcome name ("ok", "deadlock", ...). */
const char *simOutcomeName(SimOutcome o);

/** @return the outcome parsed from its name, or Ok if unknown. */
SimOutcome simOutcomeFromName(const std::string &name);

/**
 * @return the process exit code for an outcome:
 *         ok 0, validation-failed 2, deadlock 3, cycle-limit 4,
 *         invariant-violation 5, panic 6, timeout 7.
 *         (1 is reserved for fatal() usage/configuration errors.)
 */
int exitCodeFor(SimOutcome o);

/** A recoverable simulation failure (thrown under the harness). */
class SimAbortError : public std::runtime_error
{
  public:
    SimAbortError(SimOutcome outcome, Cycle cycle, std::string message,
                  std::string diagnostics)
        : std::runtime_error(std::move(message)), outcome(outcome),
          cycle(cycle), diagnostics(std::move(diagnostics))
    {}

    /** Failure class. */
    SimOutcome outcome;
    /** Simulated cycle at which the failure was raised. */
    Cycle cycle;
    /** Multi-line state dump: WPU state lines, event census, etc. */
    std::string diagnostics;
};

/**
 * Mark the current thread as running under a failure-isolating
 * harness: while at least one instance is alive, simAbort() (and
 * panic()) throw SimAbortError instead of terminating the process.
 */
class ScopedRecoverableAborts
{
  public:
    ScopedRecoverableAborts();
    ~ScopedRecoverableAborts();

    ScopedRecoverableAborts(const ScopedRecoverableAborts &) = delete;
    ScopedRecoverableAborts &
    operator=(const ScopedRecoverableAborts &) = delete;

  private:
    bool prev;
};

/** @return true if failures on this thread throw SimAbortError. */
bool recoverableAborts();

/**
 * Raise a structured simulation failure: throws SimAbortError when the
 * thread is in a ScopedRecoverableAborts region; otherwise prints the
 * diagnostics and message to stderr and exits with the outcome's exit
 * code (abort()s for Panic, preserving the core for debugging).
 */
[[noreturn]] void simAbort(SimOutcome o, Cycle cycle,
                           std::string diagnostics, const char *fmt, ...);

/**
 * Cooperative control block linking one running simulation to the
 * sweep watchdog. The simulation loop publishes its cycle into
 * `progressCycle` and polls `cancel`; the watchdog thread reads the
 * progress to detect a hung cell and sets `cancel` to stop it (the
 * run raises SimOutcome::Timeout at the next poll).
 */
struct SimControl
{
    std::atomic<std::uint64_t> progressCycle{0};
    std::atomic<bool> cancel{false};
};

/** @return the control block bound to this thread (nullptr = none). */
SimControl *threadSimControl();

/** Bind a control block to this thread (nullptr to unbind). */
void setThreadSimControl(SimControl *ctl);

} // namespace dws

#endif // DWS_SIM_ABORT_HH
