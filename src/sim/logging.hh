/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - simulator bug; never the user's fault. Aborts.
 * fatal()  - user/configuration error the simulation cannot survive. Exits.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status output.
 */

#ifndef DWS_SIM_LOGGING_HH
#define DWS_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dws {

/** Print an error for an internal simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print an error caused by bad user input/configuration and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a warning; simulation continues. */
void warn(const char *fmt, ...);

/** Print an informational message. */
void inform(const char *fmt, ...);

/** Globally silence warn()/inform() (used by benches and tests). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool quiet();

} // namespace dws

#endif // DWS_SIM_LOGGING_HH
