#include "sim/json_writer.hh"

#include <cinttypes>
#include <cstdio>

namespace dws {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeElement()
{
    if (afterKey_) {
        // Value directly follows its key; key() already did the comma.
        afterKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        if (stack_.back())
            os_ << ',';
        stack_.back() = true;
        newline();
    }
}

void
JsonWriter::beginObject()
{
    beforeElement();
    os_ << '{';
    stack_.push_back(false);
}

void
JsonWriter::endObject()
{
    bool hadElems = !stack_.empty() && stack_.back();
    stack_.pop_back();
    if (hadElems)
        newline();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeElement();
    os_ << '[';
    stack_.push_back(false);
}

void
JsonWriter::endArray()
{
    bool hadElems = !stack_.empty() && stack_.back();
    stack_.pop_back();
    if (hadElems)
        newline();
    os_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    beforeElement();
    os_ << '"' << jsonEscape(k) << (indent_ > 0 ? "\": " : "\":");
    afterKey_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    beforeElement();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(bool v)
{
    beforeElement();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(double v)
{
    beforeElement();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeElement();
    os_ << v;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeElement();
    os_ << v;
}

} // namespace dws
