#include "sim/config.hh"

#include <cctype>
#include <cstdint>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace dws {

int
CacheConfig::numSets() const
{
    if (lineBytes <= 0 || sizeBytes == 0)
        panic("cache config with zero geometry");
    const std::uint64_t lines = sizeBytes / lineBytes;
    if (assoc == 0)
        return 1; // fully associative: one set holding every line
    if (lines % assoc != 0)
        fatal("cache size %llu not divisible by assoc %d x line %d",
              (unsigned long long)sizeBytes, assoc, lineBytes);
    return static_cast<int>(lines / assoc);
}

std::string
PolicyConfig::name() const
{
    if (slip)
        return slipBranchBypass ? "Slip.BranchBypass" : "Slip";
    if (!splitOnBranch && splitScheme == SplitScheme::None)
        return "Conv";
    std::string n = "DWS";
    if (splitOnBranch && splitScheme == SplitScheme::None)
        return pcReconv ? "DWS.BranchOnly" : "DWS.BranchOnly.Stack";
    switch (splitScheme) {
      case SplitScheme::Aggressive: n += ".AggressSplit"; break;
      case SplitScheme::Lazy:       n += ".LazySplit"; break;
      case SplitScheme::Revive:     n += ".ReviveSplit"; break;
      case SplitScheme::None:       break;
    }
    if (!splitOnBranch)
        n += ".MemOnly";
    if (memReconv == MemReconv::BranchLimited)
        n += ".BL";
    return n;
}

PolicyConfig
PolicyConfig::conv()
{
    return PolicyConfig{};
}

PolicyConfig
PolicyConfig::branchOnlyStack()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = false;
    return p;
}

PolicyConfig
PolicyConfig::branchOnly()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::memOnlyBranchLimited(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchLimited;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveMemOnly()
{
    PolicyConfig p;
    p.splitScheme = SplitScheme::Revive;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::dws(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveSplit()
{
    return dws(SplitScheme::Revive);
}

PolicyConfig
PolicyConfig::adaptiveSlip()
{
    PolicyConfig p;
    p.slip = true;
    return p;
}

PolicyConfig
PolicyConfig::slipBranchBypassCfg()
{
    PolicyConfig p;
    p.slip = true;
    p.slipBranchBypass = true;
    return p;
}

SystemConfig
SystemConfig::table3(const PolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    return cfg;
}

HierarchySpec
HierarchySpec::fromLegacy(const MemConfig &m)
{
    HierarchySpec spec;
    LevelSpec l2;
    l2.cache = m.l2;
    l2.slices = 1;
    l2.linkLatency = m.xbarLatency;
    l2.linkRequestCycles = m.xbarRequestCycles;
    l2.linkBytesPerCycle = m.xbarBytesPerCycle;
    spec.levels.push_back(l2);
    return spec;
}

HierarchySpec
HierarchySpec::table3()
{
    return fromLegacy(MemConfig{});
}

HierarchySpec
HierarchySpec::withL3(std::uint64_t sizeBytes, int assoc, int hitLatency)
{
    HierarchySpec spec = table3();
    LevelSpec l3;
    l3.cache = MemConfig{}.l2;
    l3.cache.sizeBytes = sizeBytes;
    l3.cache.assoc = assoc;
    l3.cache.hitLatency = hitLatency;
    // The L2<->L3 link is on-die and wider than the WPU crossbar.
    l3.linkLatency = 4;
    l3.linkRequestCycles = 1;
    l3.linkBytesPerCycle = 64.0;
    spec.levels.push_back(l3);
    return spec;
}

namespace {

/** Split `text` on `sep`, keeping empty fields. */
std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

bool
HierarchySpec::parse(const std::string &text, HierarchySpec &out,
                     std::string &err)
{
    HierarchySpec spec;
    int nextShared = 2; // shared level names must run l2, l3, l4, ...
    for (const std::string &levelText : splitOn(text, ',')) {
        const std::vector<std::string> f = splitOn(levelText, ':');
        if (f.size() < 4 || f.size() > 6) {
            err = "level '" + levelText +
                  "': want name:size:assoc:latency[:slices[:mshrs]]";
            return false;
        }
        const std::string &name = f[0];
        const bool isL1i = name == "l1i";
        const bool isL1d = name == "l1d";
        const bool isShared = name.size() >= 2 && name[0] == 'l' &&
                              !isL1i && !isL1d;
        if (!isL1i && !isL1d && !isShared) {
            err = "unknown level name '" + name + "'";
            return false;
        }
        const auto size = parseSizeBytes(f[1].c_str());
        const auto assoc = parseInt64InRange(f[2].c_str(), 0, 1 << 20);
        const auto lat = parseInt64InRange(f[3].c_str(), 0, 1 << 20);
        if (!size || !assoc || !lat) {
            err = "level '" + levelText + "': bad size/assoc/latency";
            return false;
        }
        std::int64_t slices = 1;
        if (f.size() >= 5) {
            const auto s = parseInt64InRange(f[4].c_str(), 1, 1 << 16);
            if (!s) {
                err = "level '" + levelText + "': bad slice count";
                return false;
            }
            slices = *s;
        }
        std::optional<std::int64_t> mshrs;
        if (f.size() == 6) {
            mshrs = parseInt64InRange(f[5].c_str(), 1, 1 << 20);
            if (!mshrs) {
                err = "level '" + levelText + "': bad mshr count";
                return false;
            }
        }

        if (isL1i || isL1d) {
            if (slices != 1) {
                err = "level '" + name + "' is per-WPU and cannot be sliced";
                return false;
            }
            std::optional<CacheConfig> &slot = isL1i ? spec.l1i : spec.l1d;
            if (slot) {
                err = "duplicate level '" + name + "'";
                return false;
            }
            CacheConfig c = isL1i ? WpuConfig{}.icache : WpuConfig{}.dcache;
            c.sizeBytes = *size;
            c.assoc = static_cast<int>(*assoc);
            c.hitLatency = static_cast<int>(*lat);
            if (mshrs)
                c.mshrs = static_cast<int>(*mshrs);
            slot = c;
            continue;
        }

        const auto depth = parseInt64(name.substr(1));
        if (!depth || *depth != nextShared) {
            err = "shared levels must be named l2, l3, ... in order; got '" +
                  name + "'";
            return false;
        }
        nextShared++;
        LevelSpec lvl;
        lvl.cache = MemConfig{}.l2;
        lvl.cache.sizeBytes = *size;
        lvl.cache.assoc = static_cast<int>(*assoc);
        lvl.cache.hitLatency = static_cast<int>(*lat);
        if (mshrs)
            lvl.cache.mshrs = static_cast<int>(*mshrs);
        lvl.slices = static_cast<int>(slices);
        if (*depth > 2) {
            // Inter-cache links below the WPU crossbar are on-die.
            lvl.linkLatency = 4;
            lvl.linkRequestCycles = 1;
            lvl.linkBytesPerCycle = 64.0;
        }
        spec.levels.push_back(lvl);
    }
    if (spec.levels.empty()) {
        err = "hierarchy needs at least one shared level (l2)";
        return false;
    }
    out = spec;
    err.clear();
    return true;
}

namespace {

std::string
checkCache(const std::string &name, const CacheConfig &c, int lineBytes)
{
    char buf[160];
    if (c.sizeBytes == 0 || c.sizeBytes > (std::uint64_t(1) << 40)) {
        std::snprintf(buf, sizeof(buf), "%s: size %llu out of range",
                      name.c_str(), (unsigned long long)c.sizeBytes);
        return buf;
    }
    if (c.lineBytes <= 0 || !isPowerOfTwo((std::uint64_t)c.lineBytes))
        return name + ": line size must be a power of two";
    if (c.lineBytes != lineBytes)
        return name + ": all levels must share one line size";
    if (c.assoc < 0 || (c.assoc != 0 && !isPowerOfTwo((std::uint64_t)c.assoc)))
        return name + ": associativity must be 0 or a power of two";
    const std::uint64_t lines = c.sizeBytes / c.lineBytes;
    if (lines == 0 || c.sizeBytes % c.lineBytes != 0)
        return name + ": size must be a multiple of the line size";
    if (c.assoc != 0 && lines % c.assoc != 0)
        return name + ": size not divisible by assoc x line";
    if (c.mshrs <= 0 || c.mshrTargets <= 0)
        return name + ": mshrs and targets must be positive";
    if (c.mshrBanks <= 0 || !isPowerOfTwo((std::uint64_t)c.mshrBanks))
        return name + ": mshr banks must be a power of two";
    if (c.mshrs % c.mshrBanks != 0)
        return name + ": mshrs must divide evenly across banks";
    if (c.banks <= 0)
        return name + ": bank count must be positive";
    return "";
}

} // namespace

std::string
HierarchySpec::validate(int numWpus) const
{
    if (numWpus < 1 || numWpus > 1024)
        return "wpus must be in [1, 1024]";
    if (levels.empty())
        return "hierarchy needs at least one shared level";
    const int lineBytes =
        l1d ? l1d->lineBytes : WpuConfig{}.dcache.lineBytes;
    if (l1i) {
        const std::string e = checkCache("l1i", *l1i, lineBytes);
        if (!e.empty())
            return e;
    }
    if (l1d) {
        const std::string e = checkCache("l1d", *l1d, lineBytes);
        if (!e.empty())
            return e;
    }
    for (std::size_t i = 0; i < levels.size(); i++) {
        const LevelSpec &lvl = levels[i];
        const std::string name = "l" + std::to_string(i + 2);
        const std::string e = checkCache(name, lvl.cache, lineBytes);
        if (!e.empty())
            return e;
        if (lvl.slices < 1 || !isPowerOfTwo((std::uint64_t)lvl.slices))
            return name + ": slice count must be a power of two";
        if (lvl.cache.sizeBytes / lvl.cache.lineBytes <
            (std::uint64_t)lvl.slices)
            return name + ": more slices than cache lines";
        if (lvl.linkLatency < 0 || lvl.linkRequestCycles < 0)
            return name + ": link latencies must be non-negative";
        if (!(lvl.linkBytesPerCycle > 0.0))
            return name + ": link bandwidth must be positive";
    }
    return "";
}

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

/** Append one `key=value\n` line. */
void
kv(std::string &s, const char *key, const std::string &value)
{
    s += key;
    s += '=';
    s += value;
    s += '\n';
}

void
kv(std::string &s, const char *key, std::int64_t value)
{
    kv(s, key, std::to_string(value));
}

/** %.17g renders a double so strtod round-trips it exactly. */
std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Canonical colon-joined CacheConfig (every simulation field). */
std::string
cacheText(const CacheConfig &c)
{
    std::string s = std::to_string(c.sizeBytes);
    for (int v : {c.assoc, c.lineBytes, c.hitLatency, c.mshrs,
                  c.mshrTargets, c.banks, c.mshrBanks,
                  c.mshrDownEntries}) {
        s += ':';
        s += std::to_string(v);
    }
    return s;
}

/** Inverse of cacheText. @return false on malformed input. */
bool
parseCacheText(const std::string &text, CacheConfig &out)
{
    const std::vector<std::string> f = splitOn(text, ':');
    if (f.size() != 9)
        return false;
    const auto size = parseUint64(f[0]);
    if (!size)
        return false;
    int *fields[] = {&out.assoc, &out.lineBytes, &out.hitLatency,
                     &out.mshrs, &out.mshrTargets, &out.banks,
                     &out.mshrBanks, &out.mshrDownEntries};
    out.sizeBytes = *size;
    for (std::size_t i = 0; i < 8; i++) {
        const auto v = parseInt64InRange(f[i + 1].c_str(), 0, 1 << 30);
        if (!v)
            return false;
        *fields[i] = static_cast<int>(*v);
    }
    return true;
}

} // namespace

std::string
SystemConfig::cacheKey() const
{
    std::string s = "dwscfg v1\n";
    kv(s, "wpus", numWpus);
    kv(s, "wpu.simd", wpu.simdWidth);
    kv(s, "wpu.warps", wpu.numWarps);
    kv(s, "wpu.slots", wpu.schedSlots);
    kv(s, "wpu.wst", wpu.wstEntries);
    kv(s, "wpu.icache", cacheText(wpu.icache));
    kv(s, "wpu.dcache", cacheText(wpu.dcache));
    const HierarchySpec hier = hierarchy();
    kv(s, "hier.levels", static_cast<std::int64_t>(hier.levels.size()));
    for (std::size_t i = 0; i < hier.levels.size(); i++) {
        const LevelSpec &lvl = hier.levels[i];
        const std::string key = "hier.l" + std::to_string(i + 2);
        kv(s, key.c_str(),
           cacheText(lvl.cache) + ':' + std::to_string(lvl.slices) +
                   ':' + std::to_string(lvl.linkLatency) + ':' +
                   std::to_string(lvl.linkRequestCycles) + ':' +
                   fmtDouble(lvl.linkBytesPerCycle));
    }
    kv(s, "dram",
       std::to_string(mem.dramLatency) + ':' +
               fmtDouble(mem.dramBytesPerCycle));
    kv(s, "policy.splitOnBranch", policy.splitOnBranch ? 1 : 0);
    kv(s, "policy.splitScheme",
       static_cast<std::int64_t>(policy.splitScheme));
    kv(s, "policy.memReconv",
       static_cast<std::int64_t>(policy.memReconv));
    kv(s, "policy.pcReconv", policy.pcReconv ? 1 : 0);
    kv(s, "policy.slip", policy.slip ? 1 : 0);
    kv(s, "policy.slipBB", policy.slipBranchBypass ? 1 : 0);
    kv(s, "policy.slipInterval",
       static_cast<std::int64_t>(policy.slipInterval));
    kv(s, "policy.slipRaise", fmtDouble(policy.slipRaiseMemFrac));
    kv(s, "policy.slipLower", fmtDouble(policy.slipLowerActiveFrac));
    kv(s, "policy.subdivMaxPostBlock", policy.subdivMaxPostBlock);
    kv(s, "policy.minSplitWidth", policy.minSplitWidth);
    kv(s, "seed", static_cast<std::int64_t>(seed));
    kv(s, "maxCycles", static_cast<std::int64_t>(maxCycles));
    kv(s, "fault", faultSpec);
    return s;
}

std::uint64_t
SystemConfig::cacheKeyHash() const
{
    return fnv1a(cacheKey());
}

bool
SystemConfig::parseCacheKey(const std::string &text, SystemConfig &out,
                            std::string &err)
{
    SystemConfig cfg;
    cfg.mem.hier.levels.clear();
    std::vector<std::string> lines = splitOn(text, '\n');
    // cacheKey() ends every line (incl. the last) with '\n'.
    if (!lines.empty() && lines.back().empty())
        lines.pop_back();
    if (lines.empty() || lines[0] != "dwscfg v1") {
        err = "missing 'dwscfg v1' header";
        return false;
    }
    std::int64_t declaredLevels = -1;
    std::size_t nextLevel = 0;
    for (std::size_t li = 1; li < lines.size(); li++) {
        const std::string &line = lines[li];
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            err = "line " + std::to_string(li + 1) + ": missing '='";
            return false;
        }
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        const auto intVal = [&](std::int64_t lo,
                                std::int64_t hi) -> std::int64_t {
            const auto v = parseInt64InRange(val.c_str(), lo, hi);
            if (!v) {
                err = key + ": bad integer '" + val + "'";
                return INT64_MIN;
            }
            return *v;
        };
        std::int64_t v;
        if (key == "wpus") {
            if ((v = intVal(1, 1024)) == INT64_MIN)
                return false;
            cfg.numWpus = static_cast<int>(v);
        } else if (key == "wpu.simd") {
            if ((v = intVal(1, 1 << 16)) == INT64_MIN)
                return false;
            cfg.wpu.simdWidth = static_cast<int>(v);
        } else if (key == "wpu.warps") {
            if ((v = intVal(1, 1 << 16)) == INT64_MIN)
                return false;
            cfg.wpu.numWarps = static_cast<int>(v);
        } else if (key == "wpu.slots") {
            if ((v = intVal(1, 1 << 16)) == INT64_MIN)
                return false;
            cfg.wpu.schedSlots = static_cast<int>(v);
        } else if (key == "wpu.wst") {
            if ((v = intVal(1, 1 << 16)) == INT64_MIN)
                return false;
            cfg.wpu.wstEntries = static_cast<int>(v);
        } else if (key == "wpu.icache" || key == "wpu.dcache") {
            CacheConfig c;
            if (!parseCacheText(val, c)) {
                err = key + ": bad cache geometry '" + val + "'";
                return false;
            }
            (key == "wpu.icache" ? cfg.wpu.icache : cfg.wpu.dcache) = c;
        } else if (key == "hier.levels") {
            if ((declaredLevels = intVal(0, 16)) == INT64_MIN)
                return false;
        } else if (key.rfind("hier.l", 0) == 0) {
            const auto depth = parseInt64(key.substr(6));
            if (!depth || *depth != static_cast<std::int64_t>(
                                  nextLevel + 2)) {
                err = "hierarchy levels must run l2, l3, ...; got '" +
                      key + "'";
                return false;
            }
            // cache (9 fields) + slices + linkLat + linkReq + linkBw
            const std::vector<std::string> f = splitOn(val, ':');
            if (f.size() != 13) {
                err = key + ": want 13 colon-separated fields";
                return false;
            }
            std::string cacheFields = f[0];
            for (std::size_t i = 1; i < 9; i++)
                cacheFields += ':' + f[i];
            LevelSpec lvl;
            const auto slices = parseInt64InRange(f[9].c_str(), 1,
                                                  1 << 16);
            const auto lat = parseInt64InRange(f[10].c_str(), 0,
                                               1 << 20);
            const auto req = parseInt64InRange(f[11].c_str(), 0,
                                               1 << 20);
            const auto bw = parseFiniteDouble(f[12].c_str());
            if (!parseCacheText(cacheFields, lvl.cache) || !slices ||
                !lat || !req || !bw) {
                err = key + ": bad level fields '" + val + "'";
                return false;
            }
            lvl.slices = static_cast<int>(*slices);
            lvl.linkLatency = static_cast<int>(*lat);
            lvl.linkRequestCycles = static_cast<int>(*req);
            lvl.linkBytesPerCycle = *bw;
            cfg.mem.hier.levels.push_back(lvl);
            nextLevel++;
        } else if (key == "dram") {
            const std::vector<std::string> f = splitOn(val, ':');
            std::optional<std::int64_t> lat;
            std::optional<double> bw;
            if (f.size() == 2) {
                lat = parseInt64InRange(f[0].c_str(), 0, 1 << 20);
                bw = parseFiniteDouble(f[1].c_str());
            }
            if (!lat || !bw) {
                err = "dram: bad 'latency:bytes-per-cycle' pair";
                return false;
            }
            cfg.mem.dramLatency = static_cast<int>(*lat);
            cfg.mem.dramBytesPerCycle = *bw;
        } else if (key == "policy.splitOnBranch") {
            if ((v = intVal(0, 1)) == INT64_MIN)
                return false;
            cfg.policy.splitOnBranch = v != 0;
        } else if (key == "policy.splitScheme") {
            if ((v = intVal(0, 3)) == INT64_MIN)
                return false;
            cfg.policy.splitScheme = static_cast<SplitScheme>(v);
        } else if (key == "policy.memReconv") {
            if ((v = intVal(0, 1)) == INT64_MIN)
                return false;
            cfg.policy.memReconv = static_cast<MemReconv>(v);
        } else if (key == "policy.pcReconv") {
            if ((v = intVal(0, 1)) == INT64_MIN)
                return false;
            cfg.policy.pcReconv = v != 0;
        } else if (key == "policy.slip") {
            if ((v = intVal(0, 1)) == INT64_MIN)
                return false;
            cfg.policy.slip = v != 0;
        } else if (key == "policy.slipBB") {
            if ((v = intVal(0, 1)) == INT64_MIN)
                return false;
            cfg.policy.slipBranchBypass = v != 0;
        } else if (key == "policy.slipInterval") {
            if ((v = intVal(0, INT64_MAX)) == INT64_MIN)
                return false;
            cfg.policy.slipInterval = static_cast<Cycle>(v);
        } else if (key == "policy.slipRaise" ||
                   key == "policy.slipLower") {
            const auto d = parseFiniteDouble(val.c_str());
            if (!d) {
                err = key + ": bad double '" + val + "'";
                return false;
            }
            (key == "policy.slipRaise" ? cfg.policy.slipRaiseMemFrac
                                       : cfg.policy.slipLowerActiveFrac) =
                    *d;
        } else if (key == "policy.subdivMaxPostBlock") {
            if ((v = intVal(0, 1 << 20)) == INT64_MIN)
                return false;
            cfg.policy.subdivMaxPostBlock = static_cast<int>(v);
        } else if (key == "policy.minSplitWidth") {
            if ((v = intVal(0, 1 << 16)) == INT64_MIN)
                return false;
            cfg.policy.minSplitWidth = static_cast<int>(v);
        } else if (key == "seed") {
            const auto u = parseUint64(val);
            if (!u) {
                err = "seed: bad integer '" + val + "'";
                return false;
            }
            cfg.seed = *u;
        } else if (key == "maxCycles") {
            const auto u = parseUint64(val);
            if (!u) {
                err = "maxCycles: bad integer '" + val + "'";
                return false;
            }
            cfg.maxCycles = *u;
        } else if (key == "fault") {
            cfg.faultSpec = val;
        } else {
            err = "unknown key '" + key + "'";
            return false;
        }
    }
    if (declaredLevels < 0 ||
        declaredLevels != static_cast<std::int64_t>(nextLevel)) {
        err = "hier.levels count does not match the level lines";
        return false;
    }
    if (cfg.mem.hier.levels.empty()) {
        err = "config needs at least one shared cache level";
        return false;
    }
    out = cfg;
    err.clear();
    return true;
}

HierarchySpec
SystemConfig::hierarchy() const
{
    if (!mem.hier.levels.empty())
        return mem.hier;
    return HierarchySpec::fromLegacy(mem);
}

void
SystemConfig::applyHierarchy(const HierarchySpec &spec)
{
    if (spec.l1i)
        wpu.icache = *spec.l1i;
    if (spec.l1d)
        wpu.dcache = *spec.l1d;
    mem.hier = spec;
    mem.hier.l1i.reset();
    mem.hier.l1d.reset();
}

} // namespace dws
