#include "sim/config.hh"

#include <cctype>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace dws {

int
CacheConfig::numSets() const
{
    if (lineBytes <= 0 || sizeBytes == 0)
        panic("cache config with zero geometry");
    const std::uint64_t lines = sizeBytes / lineBytes;
    if (assoc == 0)
        return 1; // fully associative: one set holding every line
    if (lines % assoc != 0)
        fatal("cache size %llu not divisible by assoc %d x line %d",
              (unsigned long long)sizeBytes, assoc, lineBytes);
    return static_cast<int>(lines / assoc);
}

std::string
PolicyConfig::name() const
{
    if (slip)
        return slipBranchBypass ? "Slip.BranchBypass" : "Slip";
    if (!splitOnBranch && splitScheme == SplitScheme::None)
        return "Conv";
    std::string n = "DWS";
    if (splitOnBranch && splitScheme == SplitScheme::None)
        return pcReconv ? "DWS.BranchOnly" : "DWS.BranchOnly.Stack";
    switch (splitScheme) {
      case SplitScheme::Aggressive: n += ".AggressSplit"; break;
      case SplitScheme::Lazy:       n += ".LazySplit"; break;
      case SplitScheme::Revive:     n += ".ReviveSplit"; break;
      case SplitScheme::None:       break;
    }
    if (!splitOnBranch)
        n += ".MemOnly";
    if (memReconv == MemReconv::BranchLimited)
        n += ".BL";
    return n;
}

PolicyConfig
PolicyConfig::conv()
{
    return PolicyConfig{};
}

PolicyConfig
PolicyConfig::branchOnlyStack()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = false;
    return p;
}

PolicyConfig
PolicyConfig::branchOnly()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::memOnlyBranchLimited(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchLimited;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveMemOnly()
{
    PolicyConfig p;
    p.splitScheme = SplitScheme::Revive;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::dws(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveSplit()
{
    return dws(SplitScheme::Revive);
}

PolicyConfig
PolicyConfig::adaptiveSlip()
{
    PolicyConfig p;
    p.slip = true;
    return p;
}

PolicyConfig
PolicyConfig::slipBranchBypassCfg()
{
    PolicyConfig p;
    p.slip = true;
    p.slipBranchBypass = true;
    return p;
}

SystemConfig
SystemConfig::table3(const PolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    return cfg;
}

HierarchySpec
HierarchySpec::fromLegacy(const MemConfig &m)
{
    HierarchySpec spec;
    LevelSpec l2;
    l2.cache = m.l2;
    l2.slices = 1;
    l2.linkLatency = m.xbarLatency;
    l2.linkRequestCycles = m.xbarRequestCycles;
    l2.linkBytesPerCycle = m.xbarBytesPerCycle;
    spec.levels.push_back(l2);
    return spec;
}

HierarchySpec
HierarchySpec::table3()
{
    return fromLegacy(MemConfig{});
}

HierarchySpec
HierarchySpec::withL3(std::uint64_t sizeBytes, int assoc, int hitLatency)
{
    HierarchySpec spec = table3();
    LevelSpec l3;
    l3.cache = MemConfig{}.l2;
    l3.cache.sizeBytes = sizeBytes;
    l3.cache.assoc = assoc;
    l3.cache.hitLatency = hitLatency;
    // The L2<->L3 link is on-die and wider than the WPU crossbar.
    l3.linkLatency = 4;
    l3.linkRequestCycles = 1;
    l3.linkBytesPerCycle = 64.0;
    spec.levels.push_back(l3);
    return spec;
}

namespace {

/** Split `text` on `sep`, keeping empty fields. */
std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

bool
HierarchySpec::parse(const std::string &text, HierarchySpec &out,
                     std::string &err)
{
    HierarchySpec spec;
    int nextShared = 2; // shared level names must run l2, l3, l4, ...
    for (const std::string &levelText : splitOn(text, ',')) {
        const std::vector<std::string> f = splitOn(levelText, ':');
        if (f.size() < 4 || f.size() > 6) {
            err = "level '" + levelText +
                  "': want name:size:assoc:latency[:slices[:mshrs]]";
            return false;
        }
        const std::string &name = f[0];
        const bool isL1i = name == "l1i";
        const bool isL1d = name == "l1d";
        const bool isShared = name.size() >= 2 && name[0] == 'l' &&
                              !isL1i && !isL1d;
        if (!isL1i && !isL1d && !isShared) {
            err = "unknown level name '" + name + "'";
            return false;
        }
        const auto size = parseSizeBytes(f[1].c_str());
        const auto assoc = parseInt64InRange(f[2].c_str(), 0, 1 << 20);
        const auto lat = parseInt64InRange(f[3].c_str(), 0, 1 << 20);
        if (!size || !assoc || !lat) {
            err = "level '" + levelText + "': bad size/assoc/latency";
            return false;
        }
        std::int64_t slices = 1;
        if (f.size() >= 5) {
            const auto s = parseInt64InRange(f[4].c_str(), 1, 1 << 16);
            if (!s) {
                err = "level '" + levelText + "': bad slice count";
                return false;
            }
            slices = *s;
        }
        std::optional<std::int64_t> mshrs;
        if (f.size() == 6) {
            mshrs = parseInt64InRange(f[5].c_str(), 1, 1 << 20);
            if (!mshrs) {
                err = "level '" + levelText + "': bad mshr count";
                return false;
            }
        }

        if (isL1i || isL1d) {
            if (slices != 1) {
                err = "level '" + name + "' is per-WPU and cannot be sliced";
                return false;
            }
            std::optional<CacheConfig> &slot = isL1i ? spec.l1i : spec.l1d;
            if (slot) {
                err = "duplicate level '" + name + "'";
                return false;
            }
            CacheConfig c = isL1i ? WpuConfig{}.icache : WpuConfig{}.dcache;
            c.sizeBytes = *size;
            c.assoc = static_cast<int>(*assoc);
            c.hitLatency = static_cast<int>(*lat);
            if (mshrs)
                c.mshrs = static_cast<int>(*mshrs);
            slot = c;
            continue;
        }

        const auto depth = parseInt64(name.substr(1));
        if (!depth || *depth != nextShared) {
            err = "shared levels must be named l2, l3, ... in order; got '" +
                  name + "'";
            return false;
        }
        nextShared++;
        LevelSpec lvl;
        lvl.cache = MemConfig{}.l2;
        lvl.cache.sizeBytes = *size;
        lvl.cache.assoc = static_cast<int>(*assoc);
        lvl.cache.hitLatency = static_cast<int>(*lat);
        if (mshrs)
            lvl.cache.mshrs = static_cast<int>(*mshrs);
        lvl.slices = static_cast<int>(slices);
        if (*depth > 2) {
            // Inter-cache links below the WPU crossbar are on-die.
            lvl.linkLatency = 4;
            lvl.linkRequestCycles = 1;
            lvl.linkBytesPerCycle = 64.0;
        }
        spec.levels.push_back(lvl);
    }
    if (spec.levels.empty()) {
        err = "hierarchy needs at least one shared level (l2)";
        return false;
    }
    out = spec;
    err.clear();
    return true;
}

namespace {

std::string
checkCache(const std::string &name, const CacheConfig &c, int lineBytes)
{
    char buf[160];
    if (c.sizeBytes == 0 || c.sizeBytes > (std::uint64_t(1) << 40)) {
        std::snprintf(buf, sizeof(buf), "%s: size %llu out of range",
                      name.c_str(), (unsigned long long)c.sizeBytes);
        return buf;
    }
    if (c.lineBytes <= 0 || !isPowerOfTwo((std::uint64_t)c.lineBytes))
        return name + ": line size must be a power of two";
    if (c.lineBytes != lineBytes)
        return name + ": all levels must share one line size";
    if (c.assoc < 0 || (c.assoc != 0 && !isPowerOfTwo((std::uint64_t)c.assoc)))
        return name + ": associativity must be 0 or a power of two";
    const std::uint64_t lines = c.sizeBytes / c.lineBytes;
    if (lines == 0 || c.sizeBytes % c.lineBytes != 0)
        return name + ": size must be a multiple of the line size";
    if (c.assoc != 0 && lines % c.assoc != 0)
        return name + ": size not divisible by assoc x line";
    if (c.mshrs <= 0 || c.mshrTargets <= 0)
        return name + ": mshrs and targets must be positive";
    if (c.mshrBanks <= 0 || !isPowerOfTwo((std::uint64_t)c.mshrBanks))
        return name + ": mshr banks must be a power of two";
    if (c.mshrs % c.mshrBanks != 0)
        return name + ": mshrs must divide evenly across banks";
    if (c.banks <= 0)
        return name + ": bank count must be positive";
    return "";
}

} // namespace

std::string
HierarchySpec::validate(int numWpus) const
{
    if (numWpus < 1 || numWpus > 1024)
        return "wpus must be in [1, 1024]";
    if (levels.empty())
        return "hierarchy needs at least one shared level";
    const int lineBytes =
        l1d ? l1d->lineBytes : WpuConfig{}.dcache.lineBytes;
    if (l1i) {
        const std::string e = checkCache("l1i", *l1i, lineBytes);
        if (!e.empty())
            return e;
    }
    if (l1d) {
        const std::string e = checkCache("l1d", *l1d, lineBytes);
        if (!e.empty())
            return e;
    }
    for (std::size_t i = 0; i < levels.size(); i++) {
        const LevelSpec &lvl = levels[i];
        const std::string name = "l" + std::to_string(i + 2);
        const std::string e = checkCache(name, lvl.cache, lineBytes);
        if (!e.empty())
            return e;
        if (lvl.slices < 1 || !isPowerOfTwo((std::uint64_t)lvl.slices))
            return name + ": slice count must be a power of two";
        if (lvl.cache.sizeBytes / lvl.cache.lineBytes <
            (std::uint64_t)lvl.slices)
            return name + ": more slices than cache lines";
        if (lvl.linkLatency < 0 || lvl.linkRequestCycles < 0)
            return name + ": link latencies must be non-negative";
        if (!(lvl.linkBytesPerCycle > 0.0))
            return name + ": link bandwidth must be positive";
    }
    return "";
}

HierarchySpec
SystemConfig::hierarchy() const
{
    if (!mem.hier.levels.empty())
        return mem.hier;
    return HierarchySpec::fromLegacy(mem);
}

void
SystemConfig::applyHierarchy(const HierarchySpec &spec)
{
    if (spec.l1i)
        wpu.icache = *spec.l1i;
    if (spec.l1d)
        wpu.dcache = *spec.l1d;
    mem.hier = spec;
    mem.hier.l1i.reset();
    mem.hier.l1d.reset();
}

} // namespace dws
