#include "sim/config.hh"

#include "sim/logging.hh"

namespace dws {

int
CacheConfig::numSets() const
{
    if (lineBytes <= 0 || sizeBytes == 0)
        panic("cache config with zero geometry");
    const std::uint64_t lines = sizeBytes / lineBytes;
    if (assoc == 0)
        return 1; // fully associative: one set holding every line
    if (lines % assoc != 0)
        fatal("cache size %llu not divisible by assoc %d x line %d",
              (unsigned long long)sizeBytes, assoc, lineBytes);
    return static_cast<int>(lines / assoc);
}

std::string
PolicyConfig::name() const
{
    if (slip)
        return slipBranchBypass ? "Slip.BranchBypass" : "Slip";
    if (!splitOnBranch && splitScheme == SplitScheme::None)
        return "Conv";
    std::string n = "DWS";
    if (splitOnBranch && splitScheme == SplitScheme::None)
        return pcReconv ? "DWS.BranchOnly" : "DWS.BranchOnly.Stack";
    switch (splitScheme) {
      case SplitScheme::Aggressive: n += ".AggressSplit"; break;
      case SplitScheme::Lazy:       n += ".LazySplit"; break;
      case SplitScheme::Revive:     n += ".ReviveSplit"; break;
      case SplitScheme::None:       break;
    }
    if (!splitOnBranch)
        n += ".MemOnly";
    if (memReconv == MemReconv::BranchLimited)
        n += ".BL";
    return n;
}

PolicyConfig
PolicyConfig::conv()
{
    return PolicyConfig{};
}

PolicyConfig
PolicyConfig::branchOnlyStack()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = false;
    return p;
}

PolicyConfig
PolicyConfig::branchOnly()
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::memOnlyBranchLimited(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchLimited;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveMemOnly()
{
    PolicyConfig p;
    p.splitScheme = SplitScheme::Revive;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::dws(SplitScheme scheme)
{
    PolicyConfig p;
    p.splitOnBranch = true;
    p.splitScheme = scheme;
    p.memReconv = MemReconv::BranchBypass;
    p.pcReconv = true;
    return p;
}

PolicyConfig
PolicyConfig::reviveSplit()
{
    return dws(SplitScheme::Revive);
}

PolicyConfig
PolicyConfig::adaptiveSlip()
{
    PolicyConfig p;
    p.slip = true;
    return p;
}

PolicyConfig
PolicyConfig::slipBranchBypassCfg()
{
    PolicyConfig p;
    p.slip = true;
    p.slipBranchBypass = true;
    return p;
}

SystemConfig
SystemConfig::table3(const PolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    return cfg;
}

} // namespace dws
