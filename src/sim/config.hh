/**
 * @file
 * Configuration structures for the whole simulated system.
 *
 * Defaults reproduce Table 3 of Meng, Tarjan & Skadron, "Dynamic Warp
 * Subdivision for Integrated Branch and Memory Divergence Tolerance"
 * (ISCA 2010 / UVa TR CS-2010-5): four 16-wide, 4-warp WPUs over a
 * coherent two-level cache hierarchy.
 */

#ifndef DWS_SIM_CONFIG_HH
#define DWS_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace dws {

/**
 * Scheme used to decide *when* a warp is subdivided upon memory
 * divergence (paper Section 5.2).
 */
enum class SplitScheme {
    /** Never subdivide on memory divergence. */
    None,
    /** Subdivide on every divergent memory access (AggressSplit). */
    Aggressive,
    /**
     * Subdivide only when no other SIMD group is ready to hide latency
     * (LazySplit).
     */
    Lazy,
    /**
     * LazySplit, plus: when the pipeline stalls, find one suspended SIMD
     * group with partially completed memory requests and subdivide it so
     * the satisfied threads can run (ReviveSplit).
     */
    Revive,
};

/**
 * How warp-splits created on memory divergence are re-converged with
 * respect to control flow (paper Section 5.3).
 */
enum class MemReconv {
    /**
     * A memory-divergence split may not outlive the current basic block:
     * siblings re-unite at the next conditional branch or post-dominator
     * (BranchLimited, Section 5.3.1).
     */
    BranchLimited,
    /**
     * Run-ahead splits may pass branches; divergent branches subdivide
     * them further and PC-based re-convergence merges them
     * (BranchBypass, Section 5.3.2).
     */
    BranchBypass,
};

/** Divergence-handling policy of one WPU. */
struct PolicyConfig
{
    /**
     * Subdivide full-width SIMD groups upon *subdividable* divergent
     * branches (Section 4). When false, divergent branches are handled
     * by the conventional re-convergence stack.
     */
    bool splitOnBranch = false;

    /** Memory-divergence subdivision scheme (Section 5.2). */
    SplitScheme splitScheme = SplitScheme::None;

    /** Re-convergence style for memory-divergence splits (Section 5.3). */
    MemReconv memReconv = MemReconv::BranchBypass;

    /**
     * Opportunistically merge ready sibling warp-splits whose PCs match
     * when one of them issues a memory instruction (PC-based
     * re-convergence, Section 4.5). Stack-based re-convergence is always
     * active as the fallback.
     */
    bool pcReconv = true;

    /**
     * Enable the adaptive-slip baseline (Tarjan et al., SC'09; paper
     * Section 5.7) instead of DWS. Mutually exclusive with the split
     * options above.
     */
    bool slip = false;

    /** Allow slipped warps to bypass branches via DWS (Slip.BranchBypass). */
    bool slipBranchBypass = false;

    /** Profiling interval for the adaptive slip threshold, in cycles. */
    Cycle slipInterval = 100000;

    /** Raise the slip threshold above this fraction of memory-wait time. */
    double slipRaiseMemFrac = 0.70;

    /** Lower the slip threshold above this fraction of active time. */
    double slipLowerActiveFrac = 0.50;

    /**
     * Branch-subdivision heuristic (Section 4.3): a branch may subdivide
     * a warp only if the basic block that follows its immediate
     * post-dominator contains at most this many instructions.
     */
    int subdivMaxPostBlock = 50;

    /**
     * Over-subdivision guard: a SIMD group narrower than this many
     * active lanes is never subdivided further (Section 1 warns that
     * aggressive subdivision yields narrow splits that waste the SIMD
     * datapath).
     */
    int minSplitWidth = 8;

    /** @return a human-readable policy name for table output. */
    std::string name() const;

    /** Conventional baseline: no subdivision at all. */
    static PolicyConfig conv();
    /** DWS on branch divergence only, stack-based re-convergence. */
    static PolicyConfig branchOnlyStack();
    /** DWS on branch divergence only, PC-based re-convergence. */
    static PolicyConfig branchOnly();
    /** Memory-divergence-only DWS with the given scheme, BranchLimited. */
    static PolicyConfig memOnlyBranchLimited(SplitScheme scheme);
    /** Memory-divergence-only DWS.ReviveSplit with BranchBypass. */
    static PolicyConfig reviveMemOnly();
    /** Integrated DWS with the given memory scheme plus branch DWS. */
    static PolicyConfig dws(SplitScheme scheme);
    /** Headline configuration DWS.ReviveSplit (Figure 13). */
    static PolicyConfig reviveSplit();
    /** Adaptive slip baseline. */
    static PolicyConfig adaptiveSlip();
    /** Adaptive slip combined with branch bypass. */
    static PolicyConfig slipBranchBypassCfg();
};

/** Geometry and timing of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;
    /** Associativity; 0 means fully associative. */
    int assoc = 8;
    /** Line size in bytes. */
    int lineBytes = 128;
    /** Hit latency in cycles. */
    int hitLatency = 3;
    /** Number of MSHRs (outstanding missing lines). */
    int mshrs = 32;
    /** Maximum coalesced requests tracked per MSHR. */
    int mshrTargets = 32;
    /** Number of banks (D-caches are banked per lane). */
    int banks = 16;
    /**
     * Number of MSHR banks (up side). Misses are steered to a bank by
     * line address; a full bank rejects an allocation even while other
     * banks have room (esesc HierMSHR-style). 1 = the classic fully
     * shared file, which every legacy config uses.
     */
    int mshrBanks = 1;
    /**
     * Down-side (toward-memory) MSHR entries per bank: writebacks and
     * evictions in flight below this cache. Tracked observationally for
     * occupancy accounting; capacity overflow is counted, not stalled.
     */
    int mshrDownEntries = 8;

    /** @return number of sets implied by size/assoc/line. */
    int numSets() const;
};

/**
 * One shared cache level of a composable hierarchy (an L2, L3, ...),
 * possibly sliced by line address, plus the link that connects it to
 * the level above (the per-WPU L1s for the first entry, the previous
 * shared level otherwise).
 */
struct LevelSpec
{
    /** Geometry and timing of each slice of this level. */
    CacheConfig cache{};
    /** Address-interleaved slices (power of two). 1 = monolithic. */
    int slices = 1;
    /** One-way traversal latency of the upward link, in cycles. */
    int linkLatency = 8;
    /** Cycles between successive requests from one upstream client. */
    int linkRequestCycles = 3;
    /** Upward-link bandwidth in bytes per cycle. */
    double linkBytesPerCycle = 57.0;
};

struct MemConfig;

/**
 * Declarative description of the whole cache fabric. The factory
 * (mem/level.hh) builds one CacheLevel per entry of `levels` and wires
 * them into a tree: private L1s -> levels[0] -> ... -> levels[N-1] ->
 * DRAM. The directory protocol lives at levels[0], the first level
 * shared by every WPU. An empty `levels` vector means "synthesize the
 * legacy 2-level machine from MemConfig's flat fields", which keeps
 * every pre-fabric config bit-identical.
 */
struct HierarchySpec
{
    /** Optional per-WPU L1I override; nullopt keeps WpuConfig::icache. */
    std::optional<CacheConfig> l1i;
    /** Optional per-WPU L1D override; nullopt keeps WpuConfig::dcache. */
    std::optional<CacheConfig> l1d;
    /** Shared levels, nearest-to-WPU first. */
    std::vector<LevelSpec> levels;

    /** @return true when no explicit hierarchy has been requested. */
    bool empty() const { return !l1i && !l1d && levels.empty(); }

    /** Synthesize the legacy L2-over-crossbar machine from `m`. */
    static HierarchySpec fromLegacy(const MemConfig &m);

    /** The paper's Table 3 two-level hierarchy, spelled as a spec. */
    static HierarchySpec table3();

    /** Table 3 plus a shared L3 of the given geometry behind the L2. */
    static HierarchySpec withL3(std::uint64_t sizeBytes, int assoc,
                                int hitLatency);

    /**
     * Parse a spec string of comma-separated levels, each
     * `name:size:assoc:latency[:slices[:mshrs]]` with name one of
     * l1i/l1d/l2/l3/l4... and size accepting k/m/g suffixes, e.g.
     * `l1d:32k:8:3,l2:1m:16:30,l3:8m:16:60:2`.
     * @return false with a message in `err` on malformed input.
     */
    static bool parse(const std::string &text, HierarchySpec &out,
                      std::string &err);

    /**
     * Sanity-check the spec for `numWpus` WPUs.
     * @return an empty string when valid, else a description of the
     *         first problem found.
     */
    std::string validate(int numWpus) const;
};

/** Parameters of one WPU (Table 3). */
struct WpuConfig
{
    /** SIMD width: number of lanes operating in lockstep. */
    int simdWidth = 16;
    /** Multi-threading depth: number of warps. */
    int numWarps = 4;
    /**
     * Number of scheduler slots. SIMD groups beyond this sit idle until
     * a slot frees up (Section 6.6). The paper doubles a conventional
     * scheduler: 2 x numWarps.
     */
    int schedSlots = 8;
    /**
     * Maximum entries in the warp-split table. Subdivision is disabled
     * while the WST is full (Section 6.7). Paper default: 16.
     */
    int wstEntries = 16;

    CacheConfig icache{.sizeBytes = 16 * 1024, .assoc = 4, .lineBytes = 128,
                       .hitLatency = 1, .mshrs = 4, .mshrTargets = 8,
                       .banks = 1};
    CacheConfig dcache{};

    /** @return total hardware thread contexts (width x depth). */
    int numThreads() const { return simdWidth * numWarps; }
};

/** Shared L2 + interconnect + DRAM parameters. */
struct MemConfig
{
    CacheConfig l2{.sizeBytes = 1024 * 1024, .assoc = 16, .lineBytes = 128,
                   .hitLatency = 30, .mshrs = 256, .mshrTargets = 64,
                   .banks = 1};
    /** One-way crossbar traversal latency in cycles. */
    int xbarLatency = 8;
    /**
     * Cycles between successive L2-bound requests from one WPU: the
     * 300 MHz crossbar (Table 3) accepts one request per crossbar
     * cycle, i.e. every ~3 WPU cycles. Requests from a warp to
     * different lines are therefore serialized (Section 3.3), which is
     * precisely the memory-level-parallelism bottleneck DWS's
     * run-ahead splits attack (Figures 8 and 9).
     */
    int xbarRequestCycles = 3;
    /** Crossbar bandwidth in bytes per WPU-cycle (57 GB/s at 1 GHz). */
    double xbarBytesPerCycle = 57.0;
    /** DRAM access latency in cycles (pipelined). */
    int dramLatency = 100;
    /** Memory bus bandwidth in bytes per cycle (16 GB/s at 1 GHz). */
    double dramBytesPerCycle = 16.0;

    /**
     * Explicit shared-level hierarchy. When `hier.levels` is empty the
     * fabric factory synthesizes the legacy machine from the flat
     * l2/xbar fields above, so untouched configs stay bit-identical.
     */
    HierarchySpec hier{};
};

/** Whole-system configuration. */
struct SystemConfig
{
    /** Number of WPUs sharing the L2. */
    int numWpus = 4;
    WpuConfig wpu{};
    MemConfig mem{};
    PolicyConfig policy{};

    /** Seed for kernel input generation. */
    std::uint64_t seed = 12345;

    /**
     * Safety valve: abort the simulation if it exceeds this many cycles
     * (deadlock detection in tests). 0 disables the limit.
     */
    Cycle maxCycles = 0;

    /**
     * Runtime invariant-audit cadence in cycles (see
     * analysis/invariants.hh); 0 disables the audit. Debug builds
     * (-DDWS_DEBUG_INVARIANTS, set by CMake for the Debug config)
     * default to auditing every 256 cycles; Release defaults to off.
     * The DWS_CHECK_LANES environment variable forces a cadence of 64
     * regardless of this setting.
     */
#ifdef DWS_DEBUG_INVARIANTS
    Cycle checkInvariants = 256;
#else
    Cycle checkInvariants = 0;
#endif

    /**
     * Attach the static-analysis cross-validation oracle
     * (analysis/oracle.hh): the system runs every static pass over the
     * loaded program at construction and panics if the execution ever
     * contradicts a proven claim. Purely observational — RunStats
     * fingerprints are identical with it on or off.
     */
    bool checkOracle = false;

    /**
     * Structured tracing (src/trace/, DESIGN.md §11). 0 = off,
     * 1 = events, 2 = timeline, 3 = all; mirrors trace::TraceMode
     * (kept as an int here so this header stays dependency-free).
     * None of these fields affect simulation results: a traced run and
     * an untraced run produce identical RunStats fingerprints.
     */
    int traceMode = 0;

    /**
     * Trace output path. Format by extension: `.jsonl` JSON-lines,
     * `.json` Perfetto, anything else compact binary. Empty with
     * tracing on = record into the ring buffers only (tests attach a
     * sink directly; overflow is counted, not fatal).
     */
    std::string traceOut;

    /** Metrics-timeline sampling interval in cycles. */
    Cycle traceEpoch = 1024;

    /** Per-WPU trace ring capacity in records (32 B each). */
    std::uint32_t traceRingCap = 4096;

    /**
     * Fault-injection specification (src/fault/, DESIGN.md §12), e.g.
     * "mask-flip@5000:wpu=1:seed=7". Empty = no injection. Parsed by
     * parseFaultSpec(); the System plants the fault deterministically
     * at the given cycle, which the detection-latency campaign uses to
     * prove checker coverage.
     */
    std::string faultSpec;

    /** @return total thread contexts across all WPUs. */
    int totalThreads() const { return numWpus * wpu.numThreads(); }

    /**
     * @return the effective hierarchy: mem.hier when shared levels were
     *         specified explicitly, else the legacy synthesis from the
     *         flat MemConfig fields.
     */
    HierarchySpec hierarchy() const;

    /**
     * Install a hierarchy spec: L1 overrides are written into
     * wpu.icache/wpu.dcache (so every WpuConfig consumer sees them) and
     * the shared levels into mem.hier.
     */
    void applyHierarchy(const HierarchySpec &spec);

    /** Paper Table 3 configuration with the given policy. */
    static SystemConfig table3(const PolicyConfig &policy);

    /**
     * @return the canonical serialization of every field that can
     *         change simulation results: machine geometry (WPU count,
     *         shape, L1 caches), the *expanded* cache hierarchy
     *         (hierarchy(), so a default machine and an explicitly
     *         spelled equivalent spec serialize identically), DRAM
     *         timing, the full policy, seed, maxCycles and the fault
     *         spec. Observationally pure knobs (tracing, invariant
     *         audits, the oracle) are deliberately excluded: they never
     *         change a RunStats fingerprint. Two configs produce the
     *         same key text iff they simulate identically, which makes
     *         this the shared key material for the sweep journal and
     *         the serve-layer result cache (DESIGN.md §16).
     */
    std::string cacheKey() const;

    /** @return FNV-1a hash of cacheKey(). */
    std::uint64_t cacheKeyHash() const;

    /**
     * Rebuild a SystemConfig from its cacheKey() serialization (the
     * serve daemon's wire format for job configs). The round trip is
     * canonical: parseCacheKey(c.cacheKey(), out) leaves
     * out.cacheKey() == c.cacheKey().
     * @return false with a message in `err` on malformed input.
     */
    static bool parseCacheKey(const std::string &text, SystemConfig &out,
                              std::string &err);
};

/**
 * FNV-1a over a byte range; seed overload chains ranges. Used for the
 * config/result cache keys (serve/) and the sweep journal.
 */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t seed = 14695981039346656037ull);
inline std::uint64_t
fnv1a(const std::string &s, std::uint64_t seed = 14695981039346656037ull)
{
    return fnv1a(s.data(), s.size(), seed);
}
/** Deleted: fnv1a("literal", seed) would silently bind the seed to the
 *  (void*, size_t) overload's byte count. Wrap in std::string. */
std::uint64_t fnv1a(const char *, std::uint64_t) = delete;

} // namespace dws

#endif // DWS_SIM_CONFIG_HH
