#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "sim/abort.hh"

namespace dws {

namespace {
// The report sinks are the only process-wide mutable state the
// simulator has; concurrent Systems on SweepExecutor workers share
// them, so the flag is atomic and each report is emitted as one
// fprintf so lines from different jobs never interleave.
std::atomic<bool> quietFlag{false};
std::mutex reportMutex;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    va_list probe;
    va_copy(probe, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    std::string line(tag);
    line += ": ";
    if (len > 0) {
        std::vector<char> buf(static_cast<size_t>(len) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap);
        line += buf.data();
    }
    line += "\n";
    std::lock_guard<std::mutex> lock(reportMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (recoverableAborts()) {
        // Under the sweep harness the failure is captured per job; the
        // message travels in the error rather than straight to stderr.
        va_list probe;
        va_copy(probe, ap);
        const int len = std::vsnprintf(nullptr, 0, fmt, probe);
        va_end(probe);
        std::string msg;
        if (len > 0) {
            std::vector<char> buf(static_cast<size_t>(len) + 1);
            std::vsnprintf(buf.data(), buf.size(), fmt, ap);
            msg = buf.data();
        }
        va_end(ap);
        throw SimAbortError(SimOutcome::Panic, 0, std::move(msg), "");
    }
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace dws
