#include "sim/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace dws {

namespace {

/** @return true when only whitespace remains at `end`. */
bool
restIsSpace(const char *end)
{
    while (*end != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*end)))
            return false;
        end++;
    }
    return true;
}

} // namespace

std::optional<std::int64_t>
parseInt64(const char *s)
{
    if (s == nullptr || *s == '\0')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 0);
    if (errno == ERANGE || end == s || !restIsSpace(end))
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t>
parseUint64(const char *s)
{
    if (s == nullptr)
        return std::nullopt;
    while (std::isspace(static_cast<unsigned char>(*s)))
        s++;
    if (*s == '\0' || *s == '-' || *s == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (errno == ERANGE || end == s || !restIsSpace(end))
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<double>
parseFiniteDouble(const char *s)
{
    if (s == nullptr || *s == '\0')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (errno == ERANGE || end == s || !restIsSpace(end) ||
        !std::isfinite(v))
        return std::nullopt;
    return v;
}

std::optional<std::int64_t>
parseInt64InRange(const char *s, std::int64_t lo, std::int64_t hi)
{
    const auto v = parseInt64(s);
    if (!v || *v < lo || *v > hi)
        return std::nullopt;
    return v;
}

std::optional<std::uint64_t>
parseSizeBytes(const char *s)
{
    if (s == nullptr)
        return std::nullopt;
    while (std::isspace(static_cast<unsigned char>(*s)))
        s++;
    if (*s == '\0' || *s == '-' || *s == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s)
        return std::nullopt;
    std::uint64_t shift = 0;
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': shift = 10; end++; break;
      case 'm': shift = 20; end++; break;
      case 'g': shift = 30; end++; break;
      default: break;
    }
    if (!restIsSpace(end))
        return std::nullopt;
    const std::uint64_t bytes = static_cast<std::uint64_t>(v) << shift;
    if (shift != 0 && (bytes >> shift) != v)
        return std::nullopt;
    return bytes;
}

} // namespace dws
