/**
 * @file
 * Deterministic xorshift64* random number generator.
 *
 * The simulator must be bit-for-bit reproducible across runs and hosts, so
 * all randomness (kernel input data, tie-breaking) goes through this
 * seeded generator rather than std::random_device or rand().
 */

#ifndef DWS_SIM_RNG_HH
#define DWS_SIM_RNG_HH

#include <cstdint>

namespace dws {

/** Small, fast, seedable PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** @return the next raw 64-bit pseudo-random value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** @return a value uniformly distributed in [0, bound). */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** @return a signed value uniformly distributed in [lo, hi]. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    std::uint64_t state;
};

} // namespace dws

#endif // DWS_SIM_RNG_HH
