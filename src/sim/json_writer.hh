/**
 * @file
 * A small escaping-correct JSON emitter shared by everything that
 * writes JSON: the sweep executor's `--json` records, the throughput
 * bench, the trace subsystem's JSON-lines and Perfetto sinks, and the
 * `dws_trace` CLI. Replaces the ad-hoc fprintf emission that was
 * duplicated (with subtly different escaping bugs) across the bench
 * binaries.
 *
 * The writer is a push-down emitter: begin/end objects and arrays nest
 * freely, commas and (optional) indentation are inserted automatically,
 * and every string value passes through jsonEscape(). It does not
 * buffer: output goes straight to the ostream.
 */

#ifndef DWS_SIM_JSON_WRITER_HH
#define DWS_SIM_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dws {

/** @return s with every character JSON demands escaped, escaped. */
std::string jsonEscape(std::string_view s);

/** Streaming JSON emitter with automatic commas and escaping. */
class JsonWriter
{
  public:
    /**
     * @param os     destination stream (not owned; must outlive writer)
     * @param indent spaces per nesting level; 0 emits compact
     *               single-line JSON (used for JSON-lines records)
     */
    explicit JsonWriter(std::ostream &os, int indent = 2)
        : os_(os), indent_(indent)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value (inside an object). */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

    /** key(k) + value(v) in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

  private:
    /** Comma/newline/indent bookkeeping before any new element. */
    void beforeElement();
    void newline();

    std::ostream &os_;
    int indent_;
    /** One frame per open container: has it emitted an element yet? */
    std::vector<bool> stack_;
    /** A key was just written; the next value follows inline. */
    bool afterKey_ = false;
};

} // namespace dws

#endif // DWS_SIM_JSON_WRITER_HH
