/**
 * @file
 * Event dispatch: route each popped SimEvent to its bound EventTarget.
 */

#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace dws {

EventTarget::~EventTarget() = default;

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::WakeGroup:
        return "WakeGroup";
      case EventKind::WakeRetry:
        return "WakeRetry";
      case EventKind::L1MshrRelease:
        return "L1MshrRelease";
      case EventKind::L2MshrRelease:
        return "L2MshrRelease";
    }
    return "?";
}

void
EventQueue::dispatch(const SimEvent &ev)
{
    EventTarget *t = nullptr;
    switch (ev.kind) {
      case EventKind::WakeGroup:
      case EventKind::WakeRetry:
        if (static_cast<size_t>(ev.wpu) < wpuTargets.size())
            t = wpuTargets[static_cast<size_t>(ev.wpu)];
        break;
      case EventKind::L1MshrRelease:
      case EventKind::L2MshrRelease:
        t = memTarget;
        break;
    }
    if (!t) {
        panic("event %s at cycle %llu has no bound target (wpu %d)",
              eventKindName(ev.kind), (unsigned long long)ev.when,
              (int)ev.wpu);
    }
    t->onSimEvent(ev);
}

} // namespace dws
