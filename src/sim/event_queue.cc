/**
 * @file
 * Event dispatch: route each popped SimEvent to its bound EventTarget.
 */

#include "sim/event_queue.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace dws {

EventTarget::~EventTarget() = default;

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::WakeGroup:
        return "WakeGroup";
      case EventKind::WakeRetry:
        return "WakeRetry";
      case EventKind::L1MshrRelease:
        return "L1MshrRelease";
      case EventKind::L2MshrRelease:
        return "L2MshrRelease";
    }
    return "?";
}

std::size_t
EventQueue::kindCount(EventKind k) const
{
    std::size_t n = 0;
    for (const auto &e : heap)
        if (e.ev.kind == k)
            n++;
    return n;
}

std::string
EventQueue::censusLine() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "events pending: %zu", heap.size());
    std::string s = buf;
    if (heap.empty())
        return s;
    s += " (";
    bool first = true;
    for (EventKind k : {EventKind::WakeGroup, EventKind::WakeRetry,
                        EventKind::L1MshrRelease,
                        EventKind::L2MshrRelease}) {
        const std::size_t n = kindCount(k);
        if (!n)
            continue;
        if (!first)
            s += ' ';
        first = false;
        std::snprintf(buf, sizeof(buf), "%s:%zu", eventKindName(k), n);
        s += buf;
    }
    std::snprintf(buf, sizeof(buf), ") next@%llu",
                  (unsigned long long)nextEventCycle());
    s += buf;
    return s;
}

void
EventQueue::dispatch(const SimEvent &ev)
{
    EventTarget *t = nullptr;
    switch (ev.kind) {
      case EventKind::WakeGroup:
      case EventKind::WakeRetry:
        if (static_cast<size_t>(ev.wpu) < wpuTargets.size())
            t = wpuTargets[static_cast<size_t>(ev.wpu)];
        break;
      case EventKind::L1MshrRelease:
      case EventKind::L2MshrRelease:
        t = memTarget;
        break;
    }
    if (!t) {
        panic("event %s at cycle %llu has no bound target (wpu %d)",
              eventKindName(ev.kind), (unsigned long long)ev.when,
              (int)ev.wpu);
    }
    t->onSimEvent(ev);
}

} // namespace dws
