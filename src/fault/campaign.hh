/**
 * @file
 * Detection-latency campaign: fault classes x seeds, each run in-process
 * under recoverable aborts, classified by how (and how fast) the fault
 * was caught.
 *
 * This is the self-validation layer of the fault framework (DESIGN.md
 * §12): the campaign *proves* — per class, per seed — that the runtime
 * invariant checker or the deadlock detector catches every injected
 * corruption within a bounded number of cycles. A "missed" cell means a
 * checker coverage gap; CI gates on zero of them.
 */

#ifndef DWS_FAULT_CAMPAIGN_HH
#define DWS_FAULT_CAMPAIGN_HH

#include <ostream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "sim/abort.hh"
#include "sim/types.hh"

namespace dws {

/** Parameters of one campaign. */
struct CampaignOptions
{
    /** Classes to inject; empty = all of them. */
    std::vector<FaultClass> classes;
    /** Seeds per class (each seed is one independent cell). */
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    /** Kernel the faults are planted into. */
    std::string kernel = "Merge";
    /** Earliest injection cycle (mid-run, past warm-up). */
    Cycle injectCycle = 2000;
    /**
     * Invariant-audit cadence during campaign runs. The default of 1
     * makes the detection latency of state-corruption classes exactly
     * the distance from mutation to the next audit point, so the
     * reported latency measures the *checker*, not the cadence.
     */
    Cycle auditCadence = 1;
    /**
     * Detection-latency bound in cycles, from the fault actually
     * firing to the abort. State corruption is caught at the next
     * audit (<= cadence); event faults (dropped/delayed fills, stale
     * wakes) are caught at the first audit after the victim's recorded
     * fill time passes, bounded by the longest memory round trip. The
     * default covers both with margin on the Tiny-scale kernels.
     */
    Cycle detectBound = 50000;
    /** Per-run cycle ceiling (a runaway run classifies as missed). */
    Cycle maxCycles = 2'000'000;
};

/** One (class, seed) campaign cell. */
struct CampaignCell
{
    FaultClass cls = FaultClass::MaskFlip;
    std::uint64_t seed = 1;
    /** The exact spec re-runnable via `dws_sim --inject=`. */
    std::string spec;

    bool fired = false;
    Cycle firedAt = 0;
    /** What the injector corrupted (empty if it never fired). */
    std::string faultDesc;

    /** How the run ended. */
    SimOutcome outcome = SimOutcome::Ok;
    /** Abort cycle (when outcome != Ok). */
    Cycle abortCycle = 0;
    /** Cycles from firing to the abort (detected cells only). */
    Cycle latency = 0;
    /** Abort message or validation verdict. */
    std::string message;

    /** "detected", "contained" or "missed". */
    std::string classification;
};

/** Aggregated campaign results. */
struct CampaignReport
{
    CampaignOptions options;
    std::vector<CampaignCell> cells;
    int detected = 0;
    int contained = 0;
    int missed = 0;
    /** Largest detection latency over all detected cells. */
    Cycle maxLatency = 0;
};

/**
 * Run the campaign. Each cell is one full simulation with one planted
 * fault, classified as:
 *  - "detected":  aborted with InvariantViolation or Deadlock within
 *                 options.detectBound cycles of the fault firing;
 *  - "contained": surfaced through another structured channel (panic,
 *                 cycle limit) — not silent, but not the targeted
 *                 detector;
 *  - "missed":    everything else — the fault never fired, the bound
 *                 was exceeded, or the run completed as if healthy
 *                 (with or without valid output). Every missed cell is
 *                 a coverage gap in the campaign config or the checker.
 *
 * Deterministic: the same options produce byte-identical reports.
 */
CampaignReport runFaultCampaign(const CampaignOptions &options);

/** Emit the report as JSON (summary + per-cell detail). */
void writeCampaignReport(const CampaignReport &report, std::ostream &os);

} // namespace dws

#endif // DWS_FAULT_CAMPAIGN_HH
