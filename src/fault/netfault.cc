#include "fault/netfault.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/executor.hh"
#include "serve/server.hh"
#include "sim/config.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace dws {

const char *
netFaultClassName(NetFaultClass c)
{
    switch (c) {
    case NetFaultClass::ConnRefused: return "conn-refused";
    case NetFaultClass::MidFrameDisconnect: return "mid-frame-disconnect";
    case NetFaultClass::CorruptByte: return "corrupt-byte";
    case NetFaultClass::StallPastDeadline: return "stall-past-deadline";
    case NetFaultClass::TruncatedReply: return "truncated-reply";
    case NetFaultClass::BusyStorm: return "busy-storm";
    }
    return "?";
}

const std::vector<NetFaultClass> &
allNetFaultClasses()
{
    static const std::vector<NetFaultClass> all = {
            NetFaultClass::ConnRefused,
            NetFaultClass::MidFrameDisconnect,
            NetFaultClass::CorruptByte,
            NetFaultClass::StallPastDeadline,
            NetFaultClass::TruncatedReply,
            NetFaultClass::BusyStorm,
    };
    return all;
}

namespace {

/** Wait for readability on up to two fds. @return poll() result. */
int
pollPair(int fdA, int fdB, int timeoutMs, bool &readableA,
         bool &readableB)
{
    struct pollfd pfds[2];
    pfds[0].fd = fdA;
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = fdB;
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    const nfds_t n = fdB >= 0 ? 2 : 1;
    int r;
    do {
        r = ::poll(pfds, n, timeoutMs);
    } while (r < 0 && errno == EINTR);
    readableA = r > 0 && pfds[0].revents != 0;
    readableB = r > 0 && n == 2 && pfds[1].revents != 0;
    return r;
}

/** Blocking-with-deadline write of the whole buffer to a nonblocking
 *  fd. @return false on error or deadline. */
bool
writeAll(int fd, const std::uint8_t *buf, std::size_t len, int deadlineMs)
{
    const auto end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadlineMs);
    std::size_t at = 0;
    while (at < len) {
        const ssize_t n = ::write(fd, buf + at, len - at);
        if (n > 0) {
            at += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK)
            return false;
        const auto now = std::chrono::steady_clock::now();
        if (now >= end)
            return false;
        struct pollfd p;
        p.fd = fd;
        p.events = POLLOUT;
        p.revents = 0;
        const int ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                        end - now)
                        .count()) +
                       1;
        int r;
        do {
            r = ::poll(&p, 1, ms);
        } while (r < 0 && errno == EINTR);
        if (r <= 0)
            return false;
    }
    return true;
}

} // namespace

FaultProxy::FaultProxy(Options o) : opts(std::move(o)) {}

FaultProxy::~FaultProxy()
{
    stop();
}

bool
FaultProxy::start(std::string &err)
{
    if (!parseServeAddr(opts.upstream, upstreamAddr, err))
        return false;
    ServeAddr listen;
    listen.kind = ServeAddr::Kind::Tcp;
    listen.host = "127.0.0.1";
    listen.port = 0;
    listenFd = listenOn(listen, err, &port);
    if (listenFd < 0)
        return false;
    if (::pipe(stopPipe) != 0) {
        err = "fault proxy: pipe: " + std::string(std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

std::string
FaultProxy::endpoint() const
{
    return "tcp:127.0.0.1:" + std::to_string(port);
}

std::size_t
FaultProxy::connectionsSeen() const
{
    return seen.load(std::memory_order_relaxed);
}

std::size_t
FaultProxy::connectionsFaulted() const
{
    return faulted.load(std::memory_order_relaxed);
}

void
FaultProxy::acceptLoop()
{
    for (;;) {
        bool stopReady = false, listenReady = false;
        pollPair(stopPipe[0], listenFd, -1, stopReady, listenReady);
        if (stopReady)
            return;
        if (!listenReady)
            continue;
        for (;;) {
            const int fd = acceptConn(listenFd);
            if (fd < 0)
                break;
            const std::size_t idx =
                    seen.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mtx);
            if (stopping) {
                ::close(fd);
                return;
            }
            for (auto it : finished)
                it->join();
            for (auto it : finished)
                connThreads.erase(it);
            finished.clear();
            liveFds.push_back(fd);
            connThreads.emplace_back();
            auto self = std::prev(connThreads.end());
            *self = std::thread(
                    [this, fd, idx, self] { serveConn(fd, idx, self); });
        }
    }
}

void
FaultProxy::serveConn(int clientFd, std::size_t connIndex,
                      std::list<std::thread>::iterator self)
{
    const bool inject = connIndex < opts.faultConns;
    if (inject)
        faulted.fetch_add(1, std::memory_order_relaxed);

    int upstreamFd = -1;
    if (inject && opts.cls == NetFaultClass::ConnRefused) {
        // Refused at the door: the peer sees an immediate close
        // before any protocol byte.
    } else if (inject && opts.cls == NetFaultClass::StallPastDeadline) {
        // Black hole: swallow the request, never answer. The client's
        // RPC deadline — not this proxy — must end the wait.
        const auto end = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(opts.maxWaitMs);
        std::uint8_t buf[4096];
        for (;;) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= end)
                break;
            const int ms = static_cast<int>(
                    std::chrono::duration_cast<
                            std::chrono::milliseconds>(end - now)
                            .count()) +
                           1;
            bool readable = false, unused = false;
            if (pollPair(clientFd, -1, ms, readable, unused) <= 0)
                break;
            const ssize_t n = ::read(clientFd, buf, sizeof(buf));
            if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN &&
                           errno != EWOULDBLOCK))
                break;
        }
    } else if (inject && opts.cls == NetFaultClass::BusyStorm) {
        // Answer the first frame with a crafted Busy, then hang up:
        // the client must back off and try elsewhere.
        ServeFrame f;
        if (readFrameDeadline(clientFd, f, opts.maxWaitMs,
                              opts.maxWaitMs) == FrameIo::Ok)
            writeFrameDeadline(clientFd, FrameType::Busy,
                               encodeBusy("injected busy storm", 10),
                               1000);
    } else {
        std::string err;
        upstreamFd = connectToAddr(upstreamAddr, opts.maxWaitMs, err);
        if (upstreamFd >= 0) {
            {
                std::lock_guard<std::mutex> lock(mtx);
                liveFds.push_back(upstreamFd);
            }
            if (inject)
                faultedSplice(clientFd, upstreamFd);
            else
                spliceClean(clientFd, upstreamFd);
        }
    }

    std::lock_guard<std::mutex> lock(mtx);
    ::close(clientFd);
    liveFds.erase(std::remove(liveFds.begin(), liveFds.end(), clientFd),
                  liveFds.end());
    if (upstreamFd >= 0) {
        ::close(upstreamFd);
        liveFds.erase(std::remove(liveFds.begin(), liveFds.end(),
                                  upstreamFd),
                      liveFds.end());
    }
    finished.push_back(self);
}

void
FaultProxy::spliceClean(int clientFd, int upstreamFd)
{
    std::uint8_t buf[4096];
    for (;;) {
        bool cReady = false, uReady = false;
        // A clean connection may sit idle between pooled requests;
        // only a dead-silent maxWaitMs window severs it.
        if (pollPair(clientFd, upstreamFd, opts.maxWaitMs, cReady,
                     uReady) <= 0)
            return;
        if (cReady) {
            const ssize_t n = ::read(clientFd, buf, sizeof(buf));
            if (n == 0 ||
                (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK))
                return;
            if (n > 0 && !writeAll(upstreamFd, buf,
                                   static_cast<std::size_t>(n),
                                   opts.maxWaitMs))
                return;
        }
        if (uReady) {
            const ssize_t n = ::read(upstreamFd, buf, sizeof(buf));
            if (n == 0 ||
                (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK))
                return;
            if (n > 0 && !writeAll(clientFd, buf,
                                   static_cast<std::size_t>(n),
                                   opts.maxWaitMs))
                return;
        }
    }
}

void
FaultProxy::faultedSplice(int clientFd, int upstreamFd)
{
    // Request bytes pass untouched; the fault lands on the reply
    // stream, deterministically positioned by the seed.
    std::uint8_t buf[4096];
    std::size_t replySent = 0;
    std::vector<std::uint8_t> held; // TruncatedReply frame buffer
    const std::size_t corruptAt = kFrameHeaderBytes + opts.seed % 8;
    for (;;) {
        bool cReady = false, uReady = false;
        if (pollPair(clientFd, upstreamFd, opts.maxWaitMs, cReady,
                     uReady) <= 0)
            return;
        if (cReady) {
            const ssize_t n = ::read(clientFd, buf, sizeof(buf));
            if (n == 0 ||
                (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK))
                return;
            if (n > 0 && !writeAll(upstreamFd, buf,
                                   static_cast<std::size_t>(n),
                                   opts.maxWaitMs))
                return;
        }
        if (!uReady)
            continue;
        const ssize_t n = ::read(upstreamFd, buf, sizeof(buf));
        if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN &&
                       errno != EWOULDBLOCK))
            return;
        if (n <= 0)
            continue;
        const std::size_t got = static_cast<std::size_t>(n);
        switch (opts.cls) {
        case NetFaultClass::MidFrameDisconnect: {
            // Forward at most the first 8 reply bytes — half a frame
            // header — then hang up mid-frame.
            const std::size_t room =
                    replySent < 8 ? 8 - replySent : 0;
            const std::size_t fwd = std::min(room, got);
            if (fwd > 0 &&
                !writeAll(clientFd, buf, fwd, opts.maxWaitMs))
                return;
            replySent += fwd;
            if (replySent >= 8)
                return;
            break;
        }
        case NetFaultClass::CorruptByte: {
            // Flip one payload byte of the first reply frame; the
            // frame checksum must catch it on the client.
            for (std::size_t i = 0; i < got; i++)
                if (replySent + i == corruptAt)
                    buf[i] ^= 0x5a;
            if (!writeAll(clientFd, buf, got, opts.maxWaitMs))
                return;
            replySent += got;
            break;
        }
        case NetFaultClass::TruncatedReply: {
            // Hold the reply until one whole frame is buffered, then
            // deliver everything but its last 4 bytes and hang up.
            held.insert(held.end(), buf, buf + got);
            if (held.size() < kFrameHeaderBytes)
                break;
            std::uint32_t len = 0;
            std::memcpy(&len, held.data() + 8, 4);
            if (len > kMaxFramePayload)
                return; // nonsense header; just sever
            const std::size_t total = kFrameHeaderBytes + len;
            if (held.size() < total)
                break;
            writeAll(clientFd, held.data(), total - 4, opts.maxWaitMs);
            return;
        }
        default:
            return; // other classes never reach the splice
        }
    }
}

void
FaultProxy::stop()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (stopping)
            return;
        stopping = true;
        // Sever every spliced stream so connection threads unblock.
        for (int fd : liveFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (stopPipe[1] >= 0) {
        const char b = 1;
        ssize_t ignored = ::write(stopPipe[1], &b, 1);
        (void)ignored;
    }
    if (acceptThread.joinable())
        acceptThread.join();
    std::list<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mtx);
        threads.swap(connThreads);
        finished.clear();
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    for (int i = 0; i < 2; i++)
        if (stopPipe[i] >= 0) {
            ::close(stopPipe[i]);
            stopPipe[i] = -1;
        }
}

// --------------------------------------------------------------------
// Campaign
// --------------------------------------------------------------------

namespace {

PolicyConfig
chaosPolicy(const std::string &name)
{
    if (name == "Conv")
        return PolicyConfig::conv();
    if (name == "DWS.AggressSplit")
        return PolicyConfig::dws(SplitScheme::Aggressive);
    if (name == "DWS.ReviveSplit")
        return PolicyConfig::reviveSplit();
    if (name == "Slip")
        return PolicyConfig::adaptiveSlip();
    fatal("chaos: unknown policy '%s'", name.c_str());
    return PolicyConfig::conv(); // unreachable
}

std::vector<SweepJob>
chaosJobs(const NetChaosOptions &opt)
{
    std::vector<SweepJob> jobs;
    for (const std::string &policy : opt.policies)
        for (const std::string &kernel : opt.kernels) {
            SweepJob j;
            j.kernel = kernel;
            j.cfg = SystemConfig::table3(chaosPolicy(policy));
            j.scale = KernelScale::Tiny;
            j.label = policy;
            jobs.push_back(std::move(j));
        }
    return jobs;
}

std::string
cellKey(const SweepExecutor::Record &r)
{
    return r.label + "/" + r.kernel;
}

NetChaosCell
runChaosCell(const NetChaosOptions &opt, NetFaultClass cls,
             bool persistent,
             const std::map<std::string, std::string> &baseline)
{
    NetChaosCell cell;
    cell.cls = cls;
    cell.mode = persistent ? "persistent" : "transient";
    const auto t0 = std::chrono::steady_clock::now();

    const std::string dir = opt.workDir + "/" +
                            std::string(netFaultClassName(cls)) + "." +
                            cell.mode;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    if (ec) {
        cell.detail = "cannot create " + dir + ": " + ec.message();
        return cell;
    }

    ServeDaemon::Options dopts;
    dopts.socketPath = dir + "/daemon.sock";
    dopts.cacheDir = dir + "/cache";
    dopts.jobs = 1;
    ServeDaemon daemon(dopts);
    std::string err;
    if (!daemon.start(err)) {
        cell.detail = "daemon: " + err;
        return cell;
    }

    FaultProxy::Options popts;
    popts.upstream = "unix:" + dopts.socketPath;
    popts.cls = cls;
    popts.faultConns = persistent ? static_cast<std::size_t>(-1)
                                  : opt.transientFaultConns;
    popts.seed = opt.seed;
    FaultProxy proxy(popts);
    if (!proxy.start(err)) {
        daemon.stop();
        cell.detail = "proxy: " + err;
        return cell;
    }

    {
        // One worker: connection order — and hence which connections
        // eat the fault prefix — is deterministic.
        SweepExecutor ex(1);
        ServeConfig sc;
        sc.endpoint = proxy.endpoint();
        sc.connectTimeoutMs = 2000;
        sc.rpcTimeoutMs = opt.rpcTimeoutMs;
        sc.retry.maxAttempts = opt.retryAttempts;
        sc.retry.baseDelayMs = opt.retryBaseDelayMs;
        sc.retry.maxDelayMs = 200;
        sc.retry.seed = opt.seed;
        sc.allowFallback = true;
        ex.setServe(sc);
        ex.runBatch(chaosJobs(opt));

        for (const SweepExecutor::Record &r : ex.records()) {
            cell.jobs++;
            if (r.degraded)
                cell.degraded++;
            else
                cell.served++;
            const auto want = baseline.find(cellKey(r));
            if (want == baseline.end()) {
                if (cell.detail.empty())
                    cell.detail = cellKey(r) + ": no baseline";
                continue;
            }
            if (r.outcome == "ok" && r.fingerprint == want->second) {
                cell.matched++;
            } else if (cell.detail.empty()) {
                cell.detail = cellKey(r) + ": outcome " + r.outcome +
                              (r.error.empty() ? "" : " (" + r.error +
                                                              ")") +
                              ", fingerprint " +
                              (r.fingerprint == want->second
                                       ? "matches"
                                       : "MISMATCH");
            }
        }
    }

    proxy.stop();
    daemon.stop();
    cell.faultedConns = proxy.connectionsFaulted();
    cell.pass = cell.jobs > 0 && cell.matched == cell.jobs;
    cell.wallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return cell;
}

} // namespace

NetChaosReport
runNetChaosCampaign(const NetChaosOptions &options)
{
    NetChaosReport report;
    report.options = options;
    std::vector<NetFaultClass> classes = options.classes;
    if (classes.empty())
        classes = allNetFaultClasses();

    // The ground truth: the same sweep with no daemon anywhere near it.
    std::map<std::string, std::string> baseline;
    {
        SweepExecutor ex(1);
        ex.runBatch(chaosJobs(options));
        for (const SweepExecutor::Record &r : ex.records()) {
            if (r.outcome != "ok")
                fatal("chaos: baseline cell %s failed: %s",
                      cellKey(r).c_str(), r.error.c_str());
            baseline[cellKey(r)] = r.fingerprint;
        }
    }

    for (NetFaultClass cls : classes)
        for (const bool persistent : {false, true}) {
            inform("chaos: %s/%s ...", netFaultClassName(cls),
                   persistent ? "persistent" : "transient");
            NetChaosCell cell = runChaosCell(options, cls, persistent,
                                             baseline);
            if (cell.pass)
                report.passed++;
            else
                report.failed++;
            report.cells.push_back(std::move(cell));
        }
    return report;
}

void
writeNetChaosReport(const NetChaosReport &report, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.field("seed", report.options.seed);
    w.field("rpc_timeout_ms",
            static_cast<std::int64_t>(report.options.rpcTimeoutMs));
    w.field("retry_attempts",
            static_cast<std::int64_t>(report.options.retryAttempts));
    w.field("cells", static_cast<std::uint64_t>(report.cells.size()));
    w.field("passed", report.passed);
    w.field("failed", report.failed);
    w.key("runs");
    w.beginArray();
    for (const NetChaosCell &c : report.cells) {
        w.beginObject();
        w.field("class", netFaultClassName(c.cls));
        w.field("mode", c.mode);
        w.field("jobs", c.jobs);
        w.field("matched", c.matched);
        w.field("served", c.served);
        w.field("degraded", c.degraded);
        w.field("faulted_conns",
                static_cast<std::uint64_t>(c.faultedConns));
        w.field("wall_ms", c.wallMs);
        w.field("pass", c.pass);
        w.field("detail", c.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace dws
