/**
 * @file
 * Deterministic fault injection into the running simulator (DESIGN.md
 * §12).
 *
 * The invariant checker (analysis/invariants.hh) and the deadlock
 * detector claim to catch bookkeeping corruption; this framework is how
 * that claim is tested rather than assumed. A FaultInjector plants one
 * fault of a chosen class at a chosen cycle by mutating the simulator's
 * own structures through the same funnels a real bug would corrupt —
 * WST occupancy counts, group active masks, pending MSHR release
 * events, event-queue targets, cache tag arrays, scheduler slot counts
 * — and the detection-latency campaign (campaign.hh) verifies that
 * every class is caught, within a bounded number of cycles, with the
 * expected outcome.
 *
 * Everything is deterministic: the injected mutation is a pure function
 * of (FaultSpec, simulator state), and simulator state is a pure
 * function of (SystemConfig, kernel). Re-running the same spec
 * reproduces the same fault, the same detection cycle and the same
 * diagnostics — a detected fault is therefore a *repeatable* test case.
 */

#ifndef DWS_FAULT_FAULT_HH
#define DWS_FAULT_FAULT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace dws {

class EventQueue;
class MemSystem;
class Wpu;

/** The kinds of state corruption the injector can plant. */
enum class FaultClass : std::uint8_t {
    /** Skew a WST per-warp occupancy count by one. */
    WstSkew,
    /** Clear one set bit of a live group's active mask. */
    MaskFlip,
    /** Remove a pending L1 MSHR-release event (the fill never frees
     *  its entry). */
    MshrDropFill,
    /** Push a pending L1 MSHR-release event hundreds of cycles past
     *  the entry's recorded fill time. */
    MshrDelayFill,
    /** Redirect a pending wake event to a nonexistent group (the real
     *  sleeper never wakes). */
    StaleEventTarget,
    /** Overwrite one valid cache way's tag with a sibling way's tag
     *  (two ways of a set now shadow each other). */
    CacheTagCorrupt,
    /** Skew the scheduler's used-slot count by one. */
    SchedSlotSkew,
};

/** Number of fault classes (campaign iteration). */
constexpr int kNumFaultClasses =
        static_cast<int>(FaultClass::SchedSlotSkew) + 1;

/** @return the spec/report name of a class, e.g. "mask-flip". */
const char *faultClassName(FaultClass c);

/** @return the class named `name`, or nullopt. */
std::optional<FaultClass> faultClassFromName(const std::string &name);

/** @return every fault class, in declaration order. */
std::vector<FaultClass> allFaultClasses();

/**
 * One planned fault, parsed from "class@cycle[:wpu=N][:seed=S]"
 * (e.g. "mask-flip@5000:wpu=1:seed=7").
 */
struct FaultSpec
{
    FaultClass cls = FaultClass::MaskFlip;
    /** Earliest cycle at which to plant the fault. */
    Cycle cycle = 0;
    /** WPU whose structures are targeted. */
    WpuId wpu = 0;
    /** Seed for the intra-class choices (which group, which bit...). */
    std::uint64_t seed = 1;

    /** @return the canonical spec string (round-trips via parse). */
    std::string toString() const;
};

/**
 * Parse an injection spec.
 * @return nullopt (with a warn()) on malformed input.
 */
std::optional<FaultSpec> parseFaultSpec(const std::string &spec);

/**
 * Plants one fault into a live System. Owned by the System and invoked
 * from its run loop once per iteration, after the event queue has
 * drained through the current cycle and before any WPU ticks — i.e.
 * exactly between two architecturally consistent states, so whatever
 * the audit sees next cycle is the fault, not an artifact of catching
 * the machine mid-update.
 *
 * A fault class can be inapplicable at the requested cycle (no live
 * group to corrupt, no pending fill to drop); the injector then re-arms
 * and retries every subsequent cycle until a target exists, keeping
 * `firedAt()` honest about when the corruption actually happened.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSpec &spec)
        : spec_(spec), rng_(spec.seed ? spec.seed : 1)
    {}

    /**
     * Attempt to plant the fault.
     *
     * @param now    current cycle (must be non-decreasing across calls)
     * @param wpus   the system's WPUs
     * @param events the system's event queue
     * @param memsys the system's memory hierarchy
     * @return true iff the fault was planted during this call
     */
    bool tryFire(Cycle now, const std::vector<std::unique_ptr<Wpu>> &wpus,
                 EventQueue &events, MemSystem &memsys);

    /** @return true once the fault has been planted. */
    bool fired() const { return fired_; }

    /** @return the cycle the fault was actually planted. */
    Cycle firedAt() const { return firedAt_; }

    /** @return what was corrupted, e.g. for the campaign report. */
    const std::string &description() const { return desc_; }

    /** @return the spec this injector was built from. */
    const FaultSpec &spec() const { return spec_; }

  private:
    bool fireWstSkew(Wpu &w);
    bool fireMaskFlip(Wpu &w);
    bool fireMshrDropFill(EventQueue &events);
    bool fireMshrDelayFill(EventQueue &events);
    bool fireStaleEventTarget(EventQueue &events);
    bool fireCacheTagCorrupt(MemSystem &memsys);
    bool fireSchedSlotSkew(Wpu &w);

    FaultSpec spec_;
    Rng rng_;
    bool fired_ = false;
    Cycle firedAt_ = 0;
    std::string desc_;
};

} // namespace dws

#endif // DWS_FAULT_FAULT_HH
