/**
 * @file
 * Deterministic network-fault injection for the sweep service
 * (DESIGN.md §17) — the transport-level sibling of the simulator-state
 * fault framework (fault/fault.hh).
 *
 * A FaultProxy is a byte-splicing shim between a ServeClient and a
 * dws_serve daemon: it listens on a TCP loopback port, forwards every
 * connection to the upstream daemon endpoint, and — on a configurable
 * prefix of the connections it accepts — injects one network-fault
 * class (refused connection, mid-frame disconnect, byte corruption,
 * stall past the client's deadline, truncated reply, Busy storm).
 * Faults are keyed by connection index and seed, never by the clock,
 * so a campaign replays bit-identically.
 *
 * runNetChaosCampaign() is the proof obligation behind `--serve`'s
 * robustness claim: for every fault class, in both a *transient* mode
 * (first connections faulted, then clean — the client must retry to
 * success) and a *persistent* mode (every connection faulted — the
 * client must degrade to a correct local run), the mini-sweep's
 * RunStats fingerprints must equal a daemon-less baseline. Zero wrong
 * tables, zero hangs (every wait is deadline-bounded).
 */

#ifndef DWS_FAULT_NETFAULT_HH
#define DWS_FAULT_NETFAULT_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/transport.hh"

namespace dws {

/** Network-fault classes injected by the proxy. */
enum class NetFaultClass {
    /** Connection closed at accept, before any byte. */
    ConnRefused,
    /** Upstream reply cut off mid-frame-header. */
    MidFrameDisconnect,
    /** One reply byte XOR-flipped (caught by the frame checksum). */
    CorruptByte,
    /** Reply withheld until the client's deadline expires. */
    StallPastDeadline,
    /** Reply delivered minus its last bytes, then closed. */
    TruncatedReply,
    /** Every request answered with a crafted Busy frame. */
    BusyStorm,
};

/** @return printable class name ("conn-refused", ...). */
const char *netFaultClassName(NetFaultClass c);

/** @return all injectable classes, in a fixed order. */
const std::vector<NetFaultClass> &allNetFaultClasses();

/** One byte-splicing fault shim between client and daemon. */
class FaultProxy
{
  public:
    struct Options
    {
        /** Upstream daemon endpoint (unix or tcp spec). */
        std::string upstream;
        /** Fault class applied to faulted connections. */
        NetFaultClass cls = NetFaultClass::ConnRefused;
        /** Number of initial connections to fault; connections past
         *  this index splice transparently. SIZE_MAX faults all. */
        std::size_t faultConns = 0;
        /** Determinism seed (corrupt-byte position, etc.). */
        std::uint64_t seed = 1;
        /** Safety bound on any proxy-side wait, ms. */
        int maxWaitMs = 10000;
    };

    explicit FaultProxy(Options opts);
    ~FaultProxy();

    FaultProxy(const FaultProxy &) = delete;
    FaultProxy &operator=(const FaultProxy &) = delete;

    /** Bind 127.0.0.1:0 and start accepting.
     *  @return false with a message in `err`. */
    bool start(std::string &err);

    /** @return "tcp:127.0.0.1:PORT" of the listening shim. */
    std::string endpoint() const;

    /** Stop accepting, sever every spliced connection, join. */
    void stop();

    /** Connections accepted so far (faulted + clean). */
    std::size_t connectionsSeen() const;
    /** Connections that had a fault applied. */
    std::size_t connectionsFaulted() const;

  private:
    void acceptLoop();
    void serveConn(int clientFd, std::size_t connIndex,
                   std::list<std::thread>::iterator self);
    void spliceClean(int clientFd, int upstreamFd);
    void faultedSplice(int clientFd, int upstreamFd);

    Options opts;
    ServeAddr upstreamAddr;
    int listenFd = -1;
    std::uint16_t port = 0;
    int stopPipe[2] = {-1, -1};
    std::thread acceptThread;

    mutable std::mutex mtx;
    std::list<std::thread> connThreads;
    std::vector<std::list<std::thread>::iterator> finished;
    std::vector<int> liveFds;
    bool stopping = false;

    std::atomic<std::size_t> seen{0};
    std::atomic<std::size_t> faulted{0};
};

/** Parameters of one network-chaos campaign. */
struct NetChaosOptions
{
    /** Classes to inject; empty = all of them. */
    std::vector<NetFaultClass> classes;
    /** Scratch directory for daemon socket + cache. */
    std::string workDir = ".dws_chaos";
    /** Determinism seed. */
    std::uint64_t seed = 1;
    /** Kernels of the mini-sweep (registered names). */
    std::vector<std::string> kernels = {"Short", "Merge"};
    /** Policies of the mini-sweep (Conv + one DWS scheme). */
    std::vector<std::string> policies = {"Conv", "DWS.ReviveSplit"};
    /** Client per-RPC deadline, ms (small: stalls must trip it). */
    int rpcTimeoutMs = 2000;
    /** Client retry schedule (fast backoff for test runtimes; 6
     *  attempts cover the worst transient class, a Busy storm, which
     *  burns two attempts per faulted connection). */
    int retryAttempts = 6;
    std::uint32_t retryBaseDelayMs = 10;
    /** Faulted-connection prefix in transient mode. */
    std::size_t transientFaultConns = 2;
};

/** One (class, mode) campaign cell. */
struct NetChaosCell
{
    NetFaultClass cls = NetFaultClass::ConnRefused;
    /** "transient" (faults then clean) or "persistent" (all faulted). */
    std::string mode;
    int jobs = 0;
    /** Jobs whose fingerprint matched the daemon-less baseline. */
    int matched = 0;
    /** Jobs that degraded to local simulation. */
    int degraded = 0;
    /** Jobs answered by the daemon (through the proxy). */
    int served = 0;
    /** Connections the proxy faulted during the cell. */
    std::size_t faultedConns = 0;
    double wallMs = 0.0;
    /** True iff every job matched the baseline (no wrong tables). */
    bool pass = false;
    /** First mismatch/failure description (empty when pass). */
    std::string detail;
};

/** Aggregated chaos-campaign results. */
struct NetChaosReport
{
    NetChaosOptions options;
    std::vector<NetChaosCell> cells;
    int passed = 0;
    int failed = 0;

    bool allPassed() const { return failed == 0 && !cells.empty(); }
};

/**
 * Run the campaign: a daemon-less baseline sweep, then per (class,
 * mode) a fresh daemon + FaultProxy + served sweep, comparing every
 * cell's RunStats fingerprint to the baseline. Deterministic given
 * options.seed (wall times aside).
 */
NetChaosReport runNetChaosCampaign(const NetChaosOptions &options);

/** Emit the report as JSON (summary + per-cell detail). */
void writeNetChaosReport(const NetChaosReport &report, std::ostream &os);

} // namespace dws

#endif // DWS_FAULT_NETFAULT_HH
