#include "fault/campaign.hh"

#include <memory>

#include "harness/system.hh"
#include "kernels/kernel.hh"
#include "sim/config.hh"
#include "sim/json_writer.hh"
#include "sim/logging.hh"

namespace dws {

namespace {

CampaignCell
runCell(const CampaignOptions &opt, FaultClass cls, std::uint64_t seed)
{
    CampaignCell cell;
    cell.cls = cls;
    cell.seed = seed;

    FaultSpec spec;
    spec.cls = cls;
    spec.cycle = opt.injectCycle;
    spec.wpu = 0;
    spec.seed = seed;
    cell.spec = spec.toString();

    SystemConfig cfg = SystemConfig::table3(PolicyConfig::reviveSplit());
    cfg.faultSpec = cell.spec;
    cfg.checkInvariants = opt.auditCadence;
    cfg.maxCycles = opt.maxCycles;

    KernelParams kp;
    kp.scale = KernelScale::Tiny;
    std::unique_ptr<Kernel> kernel = makeKernel(opt.kernel, kp);
    if (!kernel) {
        cell.classification = "missed";
        cell.message = "unknown kernel " + opt.kernel;
        return cell;
    }

    System sys(cfg, *kernel);
    bool completed = false;
    bool valid = false;
    try {
        ScopedRecoverableAborts recover;
        sys.run();
        completed = true;
        valid = kernel->validate(sys.memory());
    } catch (const SimAbortError &err) {
        cell.outcome = err.outcome;
        cell.abortCycle = err.cycle;
        cell.message = err.what();
    }

    const FaultInjector *inj = sys.faultInjector();
    cell.fired = inj && inj->fired();
    if (cell.fired) {
        cell.firedAt = inj->firedAt();
        cell.faultDesc = inj->description();
    }

    if (!cell.fired) {
        cell.classification = "missed";
        if (cell.message.empty())
            cell.message = "fault never fired (no applicable target)";
        return cell;
    }
    if (completed) {
        // The machine ran to completion around the corruption without
        // any detector noticing: silent, hence missed — even if the
        // output happens to be valid.
        cell.outcome =
                valid ? SimOutcome::Ok : SimOutcome::ValidationFailed;
        cell.classification = "missed";
        cell.message = valid ? "run completed, output valid"
                             : "run completed, output INVALID";
        return cell;
    }
    if (cell.outcome == SimOutcome::InvariantViolation ||
        cell.outcome == SimOutcome::Deadlock) {
        cell.latency = cell.abortCycle - cell.firedAt;
        cell.classification =
                cell.latency <= opt.detectBound ? "detected" : "missed";
        if (cell.classification == "missed")
            cell.message += " [latency exceeds bound]";
        return cell;
    }
    cell.classification = "contained";
    return cell;
}

} // namespace

CampaignReport
runFaultCampaign(const CampaignOptions &options)
{
    CampaignReport report;
    report.options = options;
    std::vector<FaultClass> classes = options.classes;
    if (classes.empty())
        classes = allFaultClasses();

    for (FaultClass cls : classes) {
        for (std::uint64_t seed : options.seeds) {
            CampaignCell cell = runCell(options, cls, seed);
            if (cell.classification == "detected") {
                report.detected++;
                if (cell.latency > report.maxLatency)
                    report.maxLatency = cell.latency;
            } else if (cell.classification == "contained") {
                report.contained++;
            } else {
                report.missed++;
            }
            report.cells.push_back(std::move(cell));
        }
    }
    return report;
}

void
writeCampaignReport(const CampaignReport &report, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.field("kernel", report.options.kernel);
    w.field("inject_cycle", report.options.injectCycle);
    w.field("audit_cadence", report.options.auditCadence);
    w.field("detect_bound", report.options.detectBound);
    w.field("cells", static_cast<std::uint64_t>(report.cells.size()));
    w.field("detected", report.detected);
    w.field("contained", report.contained);
    w.field("missed", report.missed);
    w.field("max_latency", report.maxLatency);
    w.key("by_class");
    w.beginArray();
    {
        std::vector<FaultClass> classes = report.options.classes;
        if (classes.empty())
            classes = allFaultClasses();
        for (FaultClass cls : classes) {
            int det = 0, con = 0, mis = 0;
            Cycle lat = 0;
            for (const CampaignCell &c : report.cells) {
                if (c.cls != cls)
                    continue;
                if (c.classification == "detected") {
                    det++;
                    if (c.latency > lat)
                        lat = c.latency;
                } else if (c.classification == "contained") {
                    con++;
                } else {
                    mis++;
                }
            }
            w.beginObject();
            w.field("class", faultClassName(cls));
            w.field("detected", det);
            w.field("contained", con);
            w.field("missed", mis);
            w.field("max_latency", lat);
            w.endObject();
        }
    }
    w.endArray();
    w.key("runs");
    w.beginArray();
    for (const CampaignCell &c : report.cells) {
        w.beginObject();
        w.field("class", faultClassName(c.cls));
        w.field("seed", c.seed);
        w.field("spec", c.spec);
        w.field("fired", c.fired);
        w.field("fired_at", c.firedAt);
        w.field("fault", c.faultDesc);
        w.field("outcome", simOutcomeName(c.outcome));
        w.field("abort_cycle", c.abortCycle);
        w.field("latency", c.latency);
        w.field("classification", c.classification);
        w.field("message", c.message);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace dws
