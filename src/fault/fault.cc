#include "fault/fault.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mem/memsys.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "wpu/wpu.hh"

namespace dws {

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::WstSkew:          return "wst-skew";
      case FaultClass::MaskFlip:         return "mask-flip";
      case FaultClass::MshrDropFill:     return "mshr-drop-fill";
      case FaultClass::MshrDelayFill:    return "mshr-delay-fill";
      case FaultClass::StaleEventTarget: return "stale-event-target";
      case FaultClass::CacheTagCorrupt:  return "cache-tag-corrupt";
      case FaultClass::SchedSlotSkew:    return "sched-slot-skew";
    }
    return "?";
}

std::optional<FaultClass>
faultClassFromName(const std::string &name)
{
    for (FaultClass c : allFaultClasses())
        if (name == faultClassName(c))
            return c;
    return std::nullopt;
}

std::vector<FaultClass>
allFaultClasses()
{
    std::vector<FaultClass> out;
    out.reserve(kNumFaultClasses);
    for (int i = 0; i < kNumFaultClasses; i++)
        out.push_back(static_cast<FaultClass>(i));
    return out;
}

std::string
FaultSpec::toString() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s@%llu:wpu=%d:seed=%llu",
                  faultClassName(cls), (unsigned long long)cycle, wpu,
                  (unsigned long long)seed);
    return buf;
}

std::optional<FaultSpec>
parseFaultSpec(const std::string &spec)
{
    const size_t at = spec.find('@');
    if (at == std::string::npos) {
        warn("fault spec '%s': expected class@cycle[:wpu=N][:seed=S]",
             spec.c_str());
        return std::nullopt;
    }
    FaultSpec out;
    const std::optional<FaultClass> cls =
            faultClassFromName(spec.substr(0, at));
    if (!cls) {
        std::string names;
        for (FaultClass c : allFaultClasses()) {
            if (!names.empty())
                names += ", ";
            names += faultClassName(c);
        }
        warn("fault spec '%s': unknown class '%s' (one of: %s)",
             spec.c_str(), spec.substr(0, at).c_str(), names.c_str());
        return std::nullopt;
    }
    out.cls = *cls;

    size_t pos = at + 1;
    char *end = nullptr;
    out.cycle = std::strtoull(spec.c_str() + pos, &end, 10);
    if (end == spec.c_str() + pos) {
        warn("fault spec '%s': expected a cycle after '@'", spec.c_str());
        return std::nullopt;
    }
    pos = static_cast<size_t>(end - spec.c_str());

    while (pos < spec.size()) {
        if (spec[pos] != ':') {
            warn("fault spec '%s': expected ':' at offset %zu",
                 spec.c_str(), pos);
            return std::nullopt;
        }
        pos++;
        if (spec.compare(pos, 4, "wpu=") == 0) {
            pos += 4;
            out.wpu = static_cast<WpuId>(
                    std::strtol(spec.c_str() + pos, &end, 10));
        } else if (spec.compare(pos, 5, "seed=") == 0) {
            pos += 5;
            out.seed = std::strtoull(spec.c_str() + pos, &end, 10);
        } else {
            warn("fault spec '%s': unknown option at offset %zu "
                 "(wpu= or seed=)",
                 spec.c_str(), pos);
            return std::nullopt;
        }
        if (end == spec.c_str() + pos) {
            warn("fault spec '%s': expected a number at offset %zu",
                 spec.c_str(), pos);
            return std::nullopt;
        }
        pos = static_cast<size_t>(end - spec.c_str());
    }
    return out;
}

bool
FaultInjector::tryFire(Cycle now,
                       const std::vector<std::unique_ptr<Wpu>> &wpus,
                       EventQueue &events, MemSystem &memsys)
{
    if (fired_ || now < spec_.cycle)
        return false;
    if (static_cast<size_t>(spec_.wpu) >= wpus.size())
        return false;
    Wpu &w = *wpus[static_cast<size_t>(spec_.wpu)];

    bool ok = false;
    switch (spec_.cls) {
      case FaultClass::WstSkew:
        ok = fireWstSkew(w);
        break;
      case FaultClass::MaskFlip:
        ok = fireMaskFlip(w);
        break;
      case FaultClass::MshrDropFill:
        ok = fireMshrDropFill(events);
        break;
      case FaultClass::MshrDelayFill:
        ok = fireMshrDelayFill(events);
        break;
      case FaultClass::StaleEventTarget:
        ok = fireStaleEventTarget(events);
        break;
      case FaultClass::CacheTagCorrupt:
        ok = fireCacheTagCorrupt(memsys);
        break;
      case FaultClass::SchedSlotSkew:
        ok = fireSchedSlotSkew(w);
        break;
    }
    if (ok) {
        fired_ = true;
        firedAt_ = now;
    }
    return ok;
}

bool
FaultInjector::fireWstSkew(Wpu &w)
{
    WarpSplitTable &wst = w.wstTable;
    const size_t warp = static_cast<size_t>(
            rng_.nextBounded(wst.groupsPerWarp.size()));
    wst.groupsPerWarp[warp]++;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "incremented WST group count of warp %zu to %d", warp,
                  wst.groupsPerWarp[warp]);
    desc_ = buf;
    return true;
}

bool
FaultInjector::fireMaskFlip(Wpu &w)
{
    // Pick a live group, then a set bit of its mask, both by rng.
    std::vector<SimdGroup *> cands;
    for (SimdGroup *g : w.live)
        if (g->mask != 0)
            cands.push_back(g);
    if (cands.empty())
        return false;
    SimdGroup *g = cands[static_cast<size_t>(
            rng_.nextBounded(cands.size()))];
    const int nbits = popcount(g->mask);
    int pick = static_cast<int>(
            rng_.nextBounded(static_cast<std::uint64_t>(nbits)));
    int bit = -1;
    for (int i = 0; i < 64; i++) {
        if (g->mask & (ThreadMask(1) << i)) {
            if (pick-- == 0) {
                bit = i;
                break;
            }
        }
    }
    g->mask &= ~(ThreadMask(1) << bit);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "cleared lane %d of group %d (warp %d) active mask",
                  bit, g->id, g->warp);
    desc_ = buf;
    return true;
}

bool
FaultInjector::fireMshrDropFill(EventQueue &events)
{
    // The heap's vector order is a pure function of the schedule/pop
    // history, so picking a candidate by index is deterministic.
    std::vector<size_t> cands;
    for (size_t i = 0; i < events.heap.size(); i++) {
        const SimEvent &ev = events.heap[i].ev;
        if (ev.kind == EventKind::L1MshrRelease && ev.wpu == spec_.wpu)
            cands.push_back(i);
    }
    if (cands.empty())
        return false;
    const size_t idx = cands[static_cast<size_t>(
            rng_.nextBounded(cands.size()))];
    const SimEvent ev = events.heap[idx].ev;
    events.heap.erase(events.heap.begin() +
                      static_cast<std::ptrdiff_t>(idx));
    std::make_heap(events.heap.begin(), events.heap.end(),
                   EventQueue::Later{});
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "dropped L1 MSHR release of line 0x%llx due at %llu",
                  (unsigned long long)ev.line,
                  (unsigned long long)ev.when);
    desc_ = buf;
    return true;
}

bool
FaultInjector::fireMshrDelayFill(EventQueue &events)
{
    std::vector<size_t> cands;
    for (size_t i = 0; i < events.heap.size(); i++) {
        const SimEvent &ev = events.heap[i].ev;
        if (ev.kind == EventKind::L1MshrRelease && ev.wpu == spec_.wpu)
            cands.push_back(i);
    }
    if (cands.empty())
        return false;
    const size_t idx = cands[static_cast<size_t>(
            rng_.nextBounded(cands.size()))];
    const Cycle delay =
            static_cast<Cycle>(rng_.nextRange(500, 2000));
    SimEvent &ev = events.heap[idx].ev;
    const Cycle was = ev.when;
    const Addr line = ev.line;
    ev.when += delay;
    std::make_heap(events.heap.begin(), events.heap.end(),
                   EventQueue::Later{});
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  "delayed L1 MSHR release of line 0x%llx from %llu by "
                  "%llu cycles",
                  (unsigned long long)line, (unsigned long long)was,
                  (unsigned long long)delay);
    desc_ = buf;
    return true;
}

bool
FaultInjector::fireStaleEventTarget(EventQueue &events)
{
    // Only lanes==0 wakes: those carry no pendingMem payload, so the
    // orphaned sleeper matches the lost-wake audit precisely.
    std::vector<size_t> cands;
    for (size_t i = 0; i < events.heap.size(); i++) {
        const SimEvent &ev = events.heap[i].ev;
        if (ev.kind == EventKind::WakeGroup && ev.wpu == spec_.wpu &&
            ev.lanes == 0)
            cands.push_back(i);
    }
    if (cands.empty())
        return false;
    const size_t idx = cands[static_cast<size_t>(
            rng_.nextBounded(cands.size()))];
    SimEvent &ev = events.heap[idx].ev;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "redirected wake of group %d due at %llu to a "
                  "nonexistent group",
                  ev.group, (unsigned long long)ev.when);
    desc_ = buf;
    // Wpu::wake ignores unknown ids, so the event fires into the void
    // and the real group sleeps past its readyAt. No reordering: when
    // is untouched.
    ev.group = -2;
    return true;
}

bool
FaultInjector::fireCacheTagCorrupt(MemSystem &memsys)
{
    CacheArray &c = memsys.dcache(spec_.wpu);
    // Sets with >= 2 valid ways: duplicate one tag onto a sibling way.
    std::vector<int> cands;
    for (int s = 0; s < c.sets_; s++) {
        const CacheLine *set =
                &c.lines_[static_cast<size_t>(s) * c.ways_];
        int valid = 0;
        for (int a = 0; a < c.ways_; a++)
            valid += set[a].valid() ? 1 : 0;
        if (valid >= 2)
            cands.push_back(s);
    }
    if (cands.empty())
        return false;
    const int s = cands[static_cast<size_t>(
            rng_.nextBounded(cands.size()))];
    CacheLine *set = &c.lines_[static_cast<size_t>(s) * c.ways_];
    int first = -1, second = -1;
    for (int a = 0; a < c.ways_; a++) {
        if (!set[a].valid())
            continue;
        if (first < 0) {
            first = a;
        } else {
            second = a;
            break;
        }
    }
    const Addr was = set[second].tag;
    set[second].tag = set[first].tag;
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  "%s set %d way %d tag 0x%llx overwritten with way %d "
                  "tag 0x%llx",
                  c.name().c_str(), s, second, (unsigned long long)was,
                  first, (unsigned long long)set[first].tag);
    desc_ = buf;
    return true;
}

bool
FaultInjector::fireSchedSlotSkew(Wpu &w)
{
    w.sched.used++;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "incremented scheduler used-slot count to %d",
                  w.sched.used);
    desc_ = buf;
    return true;
}

} // namespace dws
