#include "trace/trace.hh"

#include <cstring>

namespace dws {

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Invalid: return "Invalid";
      case TraceKind::GroupCreate: return "GroupCreate";
      case TraceKind::GroupDestroy: return "GroupDestroy";
      case TraceKind::StateChange: return "StateChange";
      case TraceKind::SplitBranch: return "SplitBranch";
      case TraceKind::SplitMem: return "SplitMem";
      case TraceKind::SplitRevive: return "SplitRevive";
      case TraceKind::MergePc: return "MergePc";
      case TraceKind::MergeStack: return "MergeStack";
      case TraceKind::FramePush: return "FramePush";
      case TraceKind::FramePop: return "FramePop";
      case TraceKind::SlotAcquire: return "SlotAcquire";
      case TraceKind::SlotRelease: return "SlotRelease";
      case TraceKind::WstAlloc: return "WstAlloc";
      case TraceKind::WstFree: return "WstFree";
      case TraceKind::WstPark: return "WstPark";
      case TraceKind::WstUnpark: return "WstUnpark";
      case TraceKind::MshrFill: return "MshrFill";
      case TraceKind::MshrDrain: return "MshrDrain";
      case TraceKind::CacheBurst: return "CacheBurst";
      case TraceKind::CacheEvict: return "CacheEvict";
      case TraceKind::BarArrive: return "BarArrive";
      case TraceKind::BarRelease: return "BarRelease";
      case TraceKind::EpochExec: return "EpochExec";
      case TraceKind::EpochOcc: return "EpochOcc";
      case TraceKind::EpochRate: return "EpochRate";
    }
    return "Unknown";
}

std::uint64_t
traceFnv1a(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

TraceMode
parseTraceMode(const char *s)
{
    if (!s)
        return TraceMode::Off;
    if (!std::strcmp(s, "events"))
        return TraceMode::Events;
    if (!std::strcmp(s, "timeline"))
        return TraceMode::Timeline;
    if (!std::strcmp(s, "all"))
        return TraceMode::All;
    return TraceMode::Off;
}

const char *
traceModeName(TraceMode m)
{
    switch (m) {
      case TraceMode::Off: return "off";
      case TraceMode::Events: return "events";
      case TraceMode::Timeline: return "timeline";
      case TraceMode::All: return "all";
    }
    return "off";
}

Tracer::Tracer(int numWpus, int simdWidth, TraceMode mode, Cycle epoch,
               std::size_t ringCap)
    : numWpus_(numWpus), simdWidth_(simdWidth), mode_(mode),
      epoch_(epoch ? epoch : 1024)
{
    std::size_t n = static_cast<std::size_t>(numWpus_) + 1;
    rings_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        rings_.emplace_back(ringCap ? ringCap : 4096);
    bursts_.resize(n);
    live_.resize(n);
    rates_.resize(n);
}

Tracer::~Tracer() { finish(); }

void
Tracer::setSink(std::unique_ptr<TraceSink> sink)
{
    sink_ = std::move(sink);
    if (sink_)
        sink_->begin(header());
}

TraceFileHeader
Tracer::header() const
{
    TraceFileHeader h{};
    std::memcpy(h.magic, "DWSTRACE", 8);
    h.version = kTraceFormatVersion;
    h.recordSize = sizeof(TraceRecord);
    h.numWpus = static_cast<std::uint32_t>(numWpus_);
    h.simdWidth = static_cast<std::uint32_t>(simdWidth_);
    h.epoch = timelineOn() ? epoch_ : 0;
    h.byteOrder = kTraceByteOrderProbe;
    h.mode = static_cast<std::uint32_t>(mode_);
    return h;
}

TraceFileFooter
Tracer::footer() const
{
    TraceFileFooter f{};
    std::memcpy(f.magic, "DWSTFOOT", 8);
    f.records = records_;
    f.dropped = dropped();
    f.checksum = checksum_;
    f.lastCycle = lastRecordCycle_;
    return f;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t d = 0;
    for (const auto &r : rings_)
        d += r.dropped();
    return d;
}

void
Tracer::emit(TraceKind kind, std::uint8_t wpu, std::uint16_t warp,
             std::uint32_t group, std::uint64_t mask, std::uint32_t arg0,
             std::uint32_t arg1)
{
    TraceRecord r;
    r.cycle = now_;
    r.mask = mask;
    r.group = group;
    r.arg0 = arg0;
    r.arg1 = arg1;
    r.warp = warp;
    r.wpu = wpu;
    r.kind = static_cast<std::uint8_t>(kind);

    std::size_t idx = ringIndex(wpu == kTraceSystemWpu
                                    ? static_cast<WpuId>(numWpus_)
                                    : static_cast<WpuId>(wpu));
    auto &ring = rings_[idx];
    if (ring.full() && sink_)
        flushRing(idx);
    ring.push(r);
}

void
Tracer::flushRing(std::size_t idx)
{
    auto &ring = rings_[idx];
    if (ring.size() == 0)
        return;
    scratch_.clear();
    ring.drainTo(scratch_);
    if (sink_) {
        sink_->write(scratch_.data(), scratch_.size());
        records_ += scratch_.size();
        checksum_ = traceFnv1a(scratch_.data(),
                               scratch_.size() * sizeof(TraceRecord),
                               checksum_);
        for (const auto &r : scratch_)
            if (r.cycle > lastRecordCycle_)
                lastRecordCycle_ = r.cycle;
    }
}

void
Tracer::flushBursts()
{
    burstPending_ = false;
    if (!eventsOn()) {
        for (auto &b : bursts_)
            b = Burst{};
        return;
    }
    for (std::size_t i = 0; i < bursts_.size(); ++i) {
        auto &b = bursts_[i];
        if (b.cycle == kNoCycle)
            continue;
        // Burst records carry the cycle the burst started on, which
        // is no later than now_; emit() stamps now_, so stamp by hand.
        TraceRecord r;
        r.cycle = b.cycle;
        r.mask = 0;
        r.group = 0;
        r.arg0 = b.hits;
        r.arg1 = b.misses;
        r.warp = 0;
        r.wpu = i < static_cast<std::size_t>(numWpus_)
                    ? static_cast<std::uint8_t>(i)
                    : kTraceSystemWpu;
        r.kind = static_cast<std::uint8_t>(TraceKind::CacheBurst);
        auto &ring = rings_[i];
        if (ring.full() && sink_)
            flushRing(i);
        ring.push(r);
        b = Burst{};
    }
}

void
Tracer::groupCreate(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                    Pc pc, std::uint32_t state)
{
    ++live_[ringIndex(w)].groups;
    if (eventsOn())
        emit(TraceKind::GroupCreate, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp), static_cast<std::uint32_t>(g),
             mask, static_cast<std::uint32_t>(pc), state);
}

void
Tracer::groupDestroy(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                     Pc pc)
{
    --live_[ringIndex(w)].groups;
    if (eventsOn())
        emit(TraceKind::GroupDestroy, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp), static_cast<std::uint32_t>(g),
             mask, static_cast<std::uint32_t>(pc), 0);
}

void
Tracer::stateChange(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                    std::uint32_t from, std::uint32_t to)
{
    if (eventsOn())
        emit(TraceKind::StateChange, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp), static_cast<std::uint32_t>(g),
             mask, from, to);
}

void
Tracer::split(TraceKind kind, WpuId w, WarpId warp, GroupId parent,
              std::uint64_t childMask, GroupId child, Pc pc)
{
    auto &rc = rates_[ringIndex(w)];
    ++rc.splits;
    if (kind == TraceKind::SplitRevive)
        ++rc.revives;
    if (eventsOn())
        emit(kind, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp),
             static_cast<std::uint32_t>(parent), childMask,
             static_cast<std::uint32_t>(child),
             static_cast<std::uint32_t>(pc));
}

void
Tracer::merge(TraceKind kind, WpuId w, WarpId warp, GroupId into,
              std::uint64_t mask, std::uint32_t arg0)
{
    ++rates_[ringIndex(w)].merges;
    if (eventsOn())
        emit(kind, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp),
             static_cast<std::uint32_t>(into), mask, arg0, 0);
}

void
Tracer::frame(bool push, WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
              Pc rpc, std::uint32_t depthAfter)
{
    if (eventsOn())
        emit(push ? TraceKind::FramePush : TraceKind::FramePop,
             static_cast<std::uint8_t>(w), static_cast<std::uint16_t>(warp),
             static_cast<std::uint32_t>(g), mask,
             static_cast<std::uint32_t>(rpc), depthAfter);
}

void
Tracer::slot(bool acquire, WpuId w, WarpId warp, GroupId g,
             std::uint32_t usedAfter)
{
    if (eventsOn())
        emit(acquire ? TraceKind::SlotAcquire : TraceKind::SlotRelease,
             static_cast<std::uint8_t>(w), static_cast<std::uint16_t>(warp),
             static_cast<std::uint32_t>(g), 0, usedAfter, 0);
}

void
Tracer::wst(TraceKind kind, WpuId w, WarpId warp, std::uint32_t inUseAfter)
{
    live_[ringIndex(w)].wst = static_cast<int>(inUseAfter);
    if (eventsOn())
        emit(kind, static_cast<std::uint8_t>(w),
             static_cast<std::uint16_t>(warp), 0, 0, inUseAfter, 0);
}

void
Tracer::mshr(bool fill, int level, WpuId w, std::uint64_t lineAddr,
             std::uint32_t inUseAfter)
{
    if (level > 0) {
        const auto li = static_cast<std::size_t>(level - 1);
        const auto slice = static_cast<std::size_t>(w);
        if (sharedMshr_.size() <= li)
            sharedMshr_.resize(li + 1);
        if (sharedMshr_[li].size() <= slice)
            sharedMshr_[li].resize(slice + 1, 0);
        sharedMshr_[li][slice] = static_cast<int>(inUseAfter);
    } else {
        live_[ringIndex(w)].l1Mshr = static_cast<int>(inUseAfter);
    }
    if (eventsOn())
        emit(fill ? TraceKind::MshrFill : TraceKind::MshrDrain,
             level > 0 ? kTraceSystemWpu : static_cast<std::uint8_t>(w),
             0, 0, lineAddr, inUseAfter,
             static_cast<std::uint32_t>(level));
}

void
Tracer::cacheEvict(std::uint8_t owner, std::uint64_t lineAddr,
                   std::uint32_t coherenceState)
{
    if (eventsOn())
        emit(TraceKind::CacheEvict, owner, 0, 0, lineAddr, coherenceState, 0);
}

void
Tracer::barrier(bool release, WpuId w, WarpId warp, GroupId g,
                std::uint64_t mask, std::uint32_t arg0)
{
    if (eventsOn())
        emit(release ? TraceKind::BarRelease : TraceKind::BarArrive,
             static_cast<std::uint8_t>(w), static_cast<std::uint16_t>(warp),
             static_cast<std::uint32_t>(g), mask, arg0, 0);
}

void
Tracer::epochSample(WpuId w, const TraceEpochSample &s)
{
    if (!timelineOn())
        return;
    auto idx = ringIndex(w);
    auto &rc = rates_[idx];
    auto issuedDelta =
        static_cast<std::uint32_t>(s.issuedInstrs - rc.lastIssued);
    auto scalarDelta =
        static_cast<std::uint32_t>(s.scalarInstrs - rc.lastScalar);
    rc.lastIssued = s.issuedInstrs;
    rc.lastScalar = s.scalarInstrs;

    auto wpu = static_cast<std::uint8_t>(w);
    emit(TraceKind::EpochExec, wpu, 0, s.readyListDepth, 0, issuedDelta,
         scalarDelta);
    emit(TraceKind::EpochOcc, wpu, 0, s.slotsUsed, 0, s.wstInUse,
         s.mshrInUse);
    emit(TraceKind::EpochRate, wpu, 0, rc.revives, 0, rc.splits, rc.merges);
    rc.splits = 0;
    rc.merges = 0;
    rc.revives = 0;
}

void
Tracer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (burstPending_)
        flushBursts();
    if (sink_) {
        for (std::size_t i = 0; i < rings_.size(); ++i)
            flushRing(i);
        sink_->end(footer());
        sink_.reset();
    }
}

} // namespace dws
