/**
 * @file
 * Cycle-accurate structured tracing for the DWS simulator.
 *
 * The tracer records typed 32-byte records — group (warp-split)
 * lifecycle, state changes, splits/merges/revives with active masks,
 * re-convergence stack pushes/pops, scheduler slot occupancy, WST
 * allocation/parking, MSHR fill/drain, cache hit/miss bursts, and
 * periodic metrics-timeline epochs — into per-WPU ring buffers that
 * flush through a pluggable sink (binary / JSON-lines / Perfetto).
 *
 * Design constraints (DESIGN.md §11):
 *  - purely observational: a traced run and an untraced run produce
 *    byte-identical RunStats::fingerprint()s;
 *  - deterministic: the same run produces byte-identical trace files;
 *  - cheap when off: every hook is `if (trace_) ...` on a pointer
 *    that is null unless tracing was requested (branch-predictable
 *    no-op), and the hooks compile away entirely under
 *    -DDWS_TRACE_DISABLED (CMake option DWS_TRACING=OFF);
 *  - self-auditing: the tracer mirrors live split/WST/MSHR occupancy
 *    and the invariant checker reconciles the mirrors against the
 *    real structures at every audit.
 */

#ifndef DWS_TRACE_TRACE_HH
#define DWS_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/types.hh"

namespace dws {

/**
 * Hook wrapper: `DWS_TRACE(trace_, groupCreate(...))` expands to a
 * null-checked call, or to nothing when tracing is compiled out.
 */
#ifndef DWS_TRACE_DISABLED
#define DWS_TRACE(tp, call)                                                  \
    do {                                                                     \
        if ((tp) != nullptr) [[unlikely]]                                    \
            (tp)->call;                                                      \
    } while (0)
#else
#define DWS_TRACE(tp, call) ((void)0)
#endif

/**
 * Hook implementations are marked cold so the optimizer keeps them —
 * and the spills a call forces — out of the simulator's hot loops.
 * The shipping configuration runs with tracing off, where the only
 * per-hook cost should be the predicted-not-taken null check above.
 */
#if defined(__GNUC__) || defined(__clang__)
#define DWS_TRACE_COLD __attribute__((cold))
#else
#define DWS_TRACE_COLD
#endif

/** What a record describes. Values are part of the binary format. */
enum class TraceKind : std::uint8_t {
    Invalid = 0,
    // Group (warp-split) lifecycle.
    GroupCreate = 1,  ///< arg0 = pc, arg1 = initial state
    GroupDestroy = 2, ///< arg0 = pc at death
    StateChange = 3,  ///< arg0 = old state, arg1 = new state
    // Divergence events. group = surviving/parent id.
    SplitBranch = 4, ///< mask = child mask, arg0 = child id, arg1 = pc
    SplitMem = 5,    ///< mask = runahead mask, arg0 = child id, arg1 = pc
    SplitRevive = 6, ///< same payload as SplitMem, from a revive stall
    MergePc = 7,     ///< mask = merged mask, arg0 = absorbed id, arg1 = pc
    MergeStack = 8,  ///< mask = restored mask, arg0 = frame rpc
    // Re-convergence stack.
    FramePush = 9, ///< mask = frame mask, arg0 = rpc, arg1 = depth after
    FramePop = 10, ///< mask = mask after pop, arg0 = rpc, arg1 = depth after
    // Scheduler slot occupancy.
    SlotAcquire = 11, ///< arg0 = slots used after
    SlotRelease = 12, ///< arg0 = slots used after
    // Warp-split table.
    WstAlloc = 13,  ///< arg0 = table entries in use after
    WstFree = 14,   ///< arg0 = table entries in use after
    WstPark = 15,   ///< arg0 = table entries in use after
    WstUnpark = 16, ///< arg0 = table entries in use after
    // Memory system. wpu = requester (kTraceSystemWpu for shared levels).
    MshrFill = 17,   ///< mask = line addr, arg0 = in use after, arg1 = level
    MshrDrain = 18,  ///< mask = line addr, arg0 = in use after, arg1 = level
    CacheBurst = 19, ///< arg0 = hits, arg1 = misses since last cycle edge
    CacheEvict = 20, ///< mask = victim line addr, arg0 = coherence state
    // Barriers.
    BarArrive = 21,  ///< arg0 = pc
    BarRelease = 22, ///< arg0 = groups released
    // Metrics-timeline epochs (timeline mode), one triple per WPU.
    EpochExec = 23, ///< mask = active lanes sum, arg0 = issued, arg1 = scalar
    EpochOcc = 24,  ///< arg0 = wst in use, arg1 = mshrs; group = slots used
    EpochRate = 25, ///< arg0 = splits, arg1 = merges; group = revives
};

constexpr std::uint8_t kTraceKindMax = 25;

/** wpu field value for records not owned by any WPU (the L2 side). */
constexpr std::uint8_t kTraceSystemWpu = 0xff;

/** @return a stable display name for a record kind. */
const char *traceKindName(TraceKind k);

/**
 * One trace record. Exactly 32 bytes, trivially copyable: the binary
 * format is these bytes verbatim (host endianness; the header
 * carries a byte-order probe so dws_trace can reject foreign files).
 */
struct TraceRecord
{
    std::uint64_t cycle = 0;
    /** Active mask, line address, or kind-specific payload. */
    std::uint64_t mask = 0;
    /** Group id the record is about (or kind-specific). */
    std::uint32_t group = 0;
    std::uint32_t arg0 = 0;
    std::uint32_t arg1 = 0;
    std::uint16_t warp = 0;
    std::uint8_t wpu = 0;
    std::uint8_t kind = 0;
};

static_assert(sizeof(TraceRecord) == 32, "binary trace format is 32 B/record");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

/** FNV-1a over a byte range; the footer checksum and golden hashes. */
std::uint64_t traceFnv1a(const void *data, std::size_t n,
                         std::uint64_t seed = 0xcbf29ce484222325ull);

/** On-disk header, 64 bytes. */
struct TraceFileHeader
{
    char magic[8]; ///< "DWSTRACE"
    std::uint32_t version;
    std::uint32_t recordSize;
    std::uint32_t numWpus;
    std::uint32_t simdWidth;
    std::uint64_t epoch; ///< timeline epoch in cycles; 0 = events only
    std::uint32_t byteOrder; ///< written as 0x01020304 by the producer
    std::uint32_t mode;      ///< TraceMode the producer ran with
    std::uint8_t pad[24];
};

static_assert(sizeof(TraceFileHeader) == 64);

/** On-disk footer, 40 bytes; lets `dws_trace check` verify integrity. */
struct TraceFileFooter
{
    char magic[8]; ///< "DWSTFOOT"
    std::uint64_t records;   ///< records written to the sink
    std::uint64_t dropped;   ///< records lost to ring overflow
    std::uint64_t checksum;  ///< FNV-1a over all record bytes, in order
    std::uint64_t lastCycle; ///< cycle of the latest record
};

static_assert(sizeof(TraceFileFooter) == 40);

constexpr std::uint32_t kTraceFormatVersion = 1;
constexpr std::uint32_t kTraceByteOrderProbe = 0x01020304;

/**
 * Where flushed records go. Sinks see records in flush order: batches
 * are per-WPU, batch boundaries depend only on the (deterministic)
 * record sequence, so the sink's output is itself deterministic.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Called once, before any records. */
    virtual void begin(const TraceFileHeader &hdr) = 0;
    /** A batch of records flushed from one ring. */
    virtual void write(const TraceRecord *recs, std::size_t n) = 0;
    /** Called once, after the last batch. */
    virtual void end(const TraceFileFooter &foot) = 0;
};

/**
 * Fixed-capacity record buffer. With a sink downstream a full ring
 * flushes; without one it wraps, overwriting the oldest records and
 * counting the loss, so a sink-less tracer still bounds memory while
 * keeping exact overflow accounting.
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t cap) : buf_(cap ? cap : 1) {}

    /** @return false iff the ring was full and wrapped (no sink). */
    bool
    push(const TraceRecord &r)
    {
        if (size_ < buf_.size()) {
            buf_[(head_ + size_) % buf_.size()] = r;
            ++size_;
            return true;
        }
        buf_[head_] = r; // overwrite oldest
        head_ = (head_ + 1) % buf_.size();
        ++dropped_;
        return false;
    }

    bool full() const { return size_ == buf_.size(); }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }
    /** Records lost to wraparound since construction. */
    std::uint64_t dropped() const { return dropped_; }

    /** Append the buffered records, oldest first, and empty the ring. */
    void
    drainTo(std::vector<TraceRecord> &out)
    {
        for (std::size_t i = 0; i < size_; ++i)
            out.push_back(buf_[(head_ + i) % buf_.size()]);
        head_ = 0;
        size_ = 0;
    }

  private:
    std::vector<TraceRecord> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

/** What to record. */
enum class TraceMode : std::uint8_t {
    Off = 0,
    Events = 1,   ///< discrete records only
    Timeline = 2, ///< epoch metrics samples only
    All = 3,      ///< both
};

/** One WPU's metrics-timeline sample, gathered by Wpu::traceSample(). */
struct TraceEpochSample
{
    std::uint64_t issuedInstrs = 0; ///< cumulative; tracer takes deltas
    std::uint64_t scalarInstrs = 0; ///< cumulative; tracer takes deltas
    std::uint32_t readyListDepth = 0;
    std::uint32_t slotsUsed = 0;
    std::uint32_t wstInUse = 0;
    std::uint32_t mshrInUse = 0;
};

/**
 * The tracer facade the simulator hooks talk to. One per System (so
 * parallel sweep jobs trace independently); never shared across
 * threads. All hooks are no-ops for record kinds outside the
 * configured mode but still maintain the live occupancy mirrors the
 * invariant checker reconciles.
 */
class Tracer
{
  public:
    Tracer(int numWpus, int simdWidth, TraceMode mode, Cycle epoch,
           std::size_t ringCap);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    bool eventsOn() const { return mode_ == TraceMode::Events ||
                                   mode_ == TraceMode::All; }
    bool timelineOn() const { return mode_ == TraceMode::Timeline ||
                                     mode_ == TraceMode::All; }
    Cycle epoch() const { return epoch_; }
    Cycle now() const { return now_; }

    /** Attach the sink records flush to. Call before the run starts. */
    void setSink(std::unique_ptr<TraceSink> sink);

    /**
     * Advance trace time (monotonic; stale values ignored). Called by
     * the System run loop each cycle and by the event queue before
     * dispatch. A cycle edge flushes pending cache-burst aggregates.
     */
    DWS_TRACE_COLD void
    advanceTo(Cycle c)
    {
        if (c <= now_)
            return;
        if (burstPending_)
            flushBursts();
        now_ = c;
    }

    // ---- event hooks (callers pass current structure occupancy) ----

    DWS_TRACE_COLD void groupCreate(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                     Pc pc, std::uint32_t state);
    DWS_TRACE_COLD void groupDestroy(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                      Pc pc);
    DWS_TRACE_COLD void stateChange(WpuId w, WarpId warp, GroupId g, std::uint64_t mask,
                     std::uint32_t from, std::uint32_t to);
    /** kind is SplitBranch/SplitMem/SplitRevive. */
    DWS_TRACE_COLD void split(TraceKind kind, WpuId w, WarpId warp, GroupId parent,
               std::uint64_t childMask, GroupId child, Pc pc);
    /** kind is MergePc/MergeStack. */
    DWS_TRACE_COLD void merge(TraceKind kind, WpuId w, WarpId warp, GroupId into,
               std::uint64_t mask, std::uint32_t arg0);
    DWS_TRACE_COLD void frame(bool push, WpuId w, WarpId warp, GroupId g,
               std::uint64_t mask, Pc rpc, std::uint32_t depthAfter);
    DWS_TRACE_COLD void slot(bool acquire, WpuId w, WarpId warp, GroupId g,
              std::uint32_t usedAfter);
    /** kind is WstAlloc/WstFree/WstPark/WstUnpark. */
    DWS_TRACE_COLD void wst(TraceKind kind, WpuId w, WarpId warp, std::uint32_t inUseAfter);
    /**
     * MSHR fill/drain. `level` 0 = a WPU's L1 file (`w` = the WPU);
     * level >= 1 = shared fabric level `level - 1` (`w` = the slice).
     * The record's arg1 carries the level, so the default machine's
     * records are byte-identical to the old bool-l2 encoding.
     */
    DWS_TRACE_COLD void mshr(bool fill, int level, WpuId w, std::uint64_t lineAddr,
              std::uint32_t inUseAfter);
    /** Aggregated into one CacheBurst record per WPU per cycle. */
    DWS_TRACE_COLD void
    cacheAccess(WpuId w, bool hit)
    {
        auto &b = bursts_[ringIndex(w)];
        if (hit)
            ++b.hits;
        else
            ++b.misses;
        if (b.cycle == kNoCycle)
            b.cycle = now_;
        burstPending_ = true;
    }
    DWS_TRACE_COLD void cacheEvict(std::uint8_t owner, std::uint64_t lineAddr,
                    std::uint32_t coherenceState);
    DWS_TRACE_COLD void barrier(bool release, WpuId w, WarpId warp, GroupId g,
                 std::uint64_t mask, std::uint32_t arg0);
    /** Timeline-mode sample; emits EpochExec/EpochOcc/EpochRate. */
    DWS_TRACE_COLD void epochSample(WpuId w, const TraceEpochSample &s);

    // ---- live occupancy mirrors (invariant-checker cross-check) ----

    int liveGroups(WpuId w) const { return live_[ringIndex(w)].groups; }
    int wstInUse(WpuId w) const { return live_[ringIndex(w)].wst; }
    int l1MshrInUse(WpuId w) const { return live_[ringIndex(w)].l1Mshr; }

    /** Mirror for shared level `level` (1-based), slice `slice`. */
    int
    sharedMshrInUse(int level, int slice) const
    {
        const auto li = static_cast<std::size_t>(level - 1);
        if (li >= sharedMshr_.size())
            return 0;
        const auto &v = sharedMshr_[li];
        const auto s = static_cast<std::size_t>(slice);
        return s < v.size() ? v[s] : 0;
    }

    int l2MshrInUse() const { return sharedMshrInUse(1, 0); }

    // ---- accounting ----

    std::uint64_t recordsTotal() const { return records_; }
    std::uint64_t dropped() const;
    /** Flush every ring and close the sink. Idempotent. */
    void finish();

  private:
    struct Burst
    {
        Cycle cycle = kNoCycle;
        std::uint32_t hits = 0;
        std::uint32_t misses = 0;
    };
    struct LiveCounters
    {
        int groups = 0;
        int wst = 0;
        int l1Mshr = 0;
    };
    /** Per-epoch split/merge/revive tallies, reset at each sample. */
    struct RateCounters
    {
        std::uint32_t splits = 0;
        std::uint32_t merges = 0;
        std::uint32_t revives = 0;
        std::uint64_t lastIssued = 0;
        std::uint64_t lastScalar = 0;
    };

    static constexpr Cycle kNoCycle = ~Cycle(0);

    /** System-level records (L2) share the last ring. */
    std::size_t
    ringIndex(WpuId w) const
    {
        auto i = static_cast<std::size_t>(static_cast<std::uint8_t>(w));
        return i < static_cast<std::size_t>(numWpus_)
                   ? i
                   : static_cast<std::size_t>(numWpus_);
    }

    void emit(TraceKind kind, std::uint8_t wpu, std::uint16_t warp,
              std::uint32_t group, std::uint64_t mask, std::uint32_t arg0,
              std::uint32_t arg1);
    void flushRing(std::size_t idx);
    void flushBursts();
    TraceFileHeader header() const;
    TraceFileFooter footer() const;

    int numWpus_;
    int simdWidth_;
    TraceMode mode_;
    Cycle epoch_;
    Cycle now_ = 0;
    bool finished_ = false;
    bool burstPending_ = false;

    std::vector<TraceRing> rings_;  ///< numWpus_ + 1 (system)
    std::vector<Burst> bursts_;     ///< parallel to rings_
    std::vector<LiveCounters> live_;
    std::vector<RateCounters> rates_;
    /** Per shared level (outer, 0 = L2), per slice (inner) mirrors. */
    std::vector<std::vector<int>> sharedMshr_;

    std::unique_ptr<TraceSink> sink_;
    std::vector<TraceRecord> scratch_; ///< drain buffer for flushes
    std::uint64_t records_ = 0;        ///< records handed to the sink
    std::uint64_t checksum_ = 0xcbf29ce484222325ull;
    Cycle lastRecordCycle_ = 0;
};

/** Parse "events" / "timeline" / "all" / "off"; Off on no match. */
TraceMode parseTraceMode(const char *s);
const char *traceModeName(TraceMode m);

} // namespace dws

#endif // DWS_TRACE_TRACE_HH
