#include "trace/reader.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

namespace dws {

bool
readTraceFile(const std::string &path, TraceData &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        err = "cannot open " + path;
        return false;
    }
    in.seekg(0, std::ios::end);
    auto size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    if (size < sizeof(TraceFileHeader)) {
        err = path + ": too small for a trace header (" +
              std::to_string(size) + " bytes)";
        return false;
    }
    in.read(reinterpret_cast<char *>(&out.header), sizeof(out.header));
    if (std::memcmp(out.header.magic, "DWSTRACE", 8) != 0) {
        err = path + ": bad magic (not a dws binary trace)";
        return false;
    }
    if (out.header.byteOrder != kTraceByteOrderProbe) {
        err = path + ": foreign byte order";
        return false;
    }
    if (out.header.version != kTraceFormatVersion) {
        err = path + ": unsupported format version " +
              std::to_string(out.header.version);
        return false;
    }
    if (out.header.recordSize != sizeof(TraceRecord)) {
        err = path + ": record size " +
              std::to_string(out.header.recordSize) + " != " +
              std::to_string(sizeof(TraceRecord));
        return false;
    }

    std::uint64_t body = size - sizeof(TraceFileHeader);
    out.hasFooter = false;
    std::uint64_t recordBytes = body;
    if (body >= sizeof(TraceFileFooter) &&
        (body - sizeof(TraceFileFooter)) % sizeof(TraceRecord) == 0) {
        // Probe for the footer at the end of the file.
        in.seekg(-static_cast<std::streamoff>(sizeof(TraceFileFooter)),
                 std::ios::end);
        TraceFileFooter foot{};
        in.read(reinterpret_cast<char *>(&foot), sizeof(foot));
        if (std::memcmp(foot.magic, "DWSTFOOT", 8) == 0) {
            out.footer = foot;
            out.hasFooter = true;
            recordBytes = body - sizeof(TraceFileFooter);
        }
        in.seekg(sizeof(TraceFileHeader), std::ios::beg);
    }
    if (recordBytes % sizeof(TraceRecord) != 0) {
        err = path + ": truncated mid-record (" +
              std::to_string(recordBytes) + " record bytes)";
        return false;
    }

    out.records.resize(recordBytes / sizeof(TraceRecord));
    if (!out.records.empty())
        in.read(reinterpret_cast<char *>(out.records.data()),
                static_cast<std::streamsize>(recordBytes));
    if (!in.good()) {
        err = path + ": short read";
        return false;
    }
    return true;
}

std::vector<std::string>
checkTrace(const TraceData &t)
{
    std::vector<std::string> problems;
    auto add = [&](std::string msg) { problems.push_back(std::move(msg)); };

    if (!t.hasFooter)
        add("no footer: trace was truncated or the run did not finish");

    if (t.hasFooter && t.footer.records != t.records.size())
        add("footer says " + std::to_string(t.footer.records) +
            " records, file holds " + std::to_string(t.records.size()));

    std::uint64_t checksum = traceFnv1a(
        t.records.data(), t.records.size() * sizeof(TraceRecord));
    if (t.hasFooter && t.footer.checksum != checksum)
        add("checksum mismatch: file is corrupt");

    std::uint64_t lastCycle = 0;
    std::map<std::uint8_t, std::uint64_t> perWpuLast;
    std::size_t badKinds = 0, nonMonotonic = 0;
    for (std::size_t i = 0; i < t.records.size(); ++i) {
        const auto &r = t.records[i];
        if (r.kind == 0 || r.kind > kTraceKindMax) {
            if (badKinds++ == 0)
                add("record " + std::to_string(i) + ": unknown kind " +
                    std::to_string(r.kind));
        }
        if (r.wpu != kTraceSystemWpu && r.wpu >= t.header.numWpus)
            add("record " + std::to_string(i) + ": wpu " +
                std::to_string(r.wpu) + " out of range");
        auto [it, fresh] = perWpuLast.try_emplace(r.wpu, r.cycle);
        if (!fresh) {
            // Cycles within one WPU's stream never go backwards: the
            // tracer's clock is monotonic and rings flush in order.
            if (r.cycle < it->second && nonMonotonic++ == 0)
                add("record " + std::to_string(i) + ": wpu " +
                    std::to_string(r.wpu) + " cycle " +
                    std::to_string(r.cycle) + " after " +
                    std::to_string(it->second));
            it->second = r.cycle;
        }
        if (r.cycle > lastCycle)
            lastCycle = r.cycle;
    }
    if (badKinds > 1)
        add(std::to_string(badKinds) + " records with unknown kinds total");
    if (nonMonotonic > 1)
        add(std::to_string(nonMonotonic) + " non-monotonic records total");
    if (t.hasFooter && !t.records.empty() &&
        t.footer.lastCycle != lastCycle)
        add("footer last cycle " + std::to_string(t.footer.lastCycle) +
            " != observed " + std::to_string(lastCycle));

    return problems;
}

void
writeTraceSummary(std::ostream &os, const TraceData &t)
{
    char line[160];
    std::snprintf(line, sizeof(line),
                  "trace: %zu records, %u wpus, simd %u, mode %s, epoch %"
                  PRIu64 "\n",
                  t.records.size(), t.header.numWpus, t.header.simdWidth,
                  traceModeName(static_cast<TraceMode>(t.header.mode)),
                  t.header.epoch);
    os << line;
    if (t.hasFooter) {
        std::snprintf(line, sizeof(line),
                      "footer: %" PRIu64 " records, %" PRIu64
                      " dropped, last cycle %" PRIu64 "\n",
                      t.footer.records, t.footer.dropped,
                      t.footer.lastCycle);
        os << line;
    } else {
        os << "footer: missing (truncated trace)\n";
    }

    std::uint64_t counts[kTraceKindMax + 1] = {};
    std::map<std::uint8_t, std::uint64_t> perWpu;
    std::uint64_t firstCycle = ~std::uint64_t(0), lastCycle = 0;
    std::uint32_t peakWst = 0, peakMshr = 0;
    for (const auto &r : t.records) {
        if (r.kind <= kTraceKindMax)
            ++counts[r.kind];
        ++perWpu[r.wpu];
        if (r.cycle < firstCycle)
            firstCycle = r.cycle;
        if (r.cycle > lastCycle)
            lastCycle = r.cycle;
        auto kind = static_cast<TraceKind>(r.kind);
        if ((kind == TraceKind::WstAlloc || kind == TraceKind::WstPark) &&
            r.arg0 > peakWst)
            peakWst = r.arg0;
        if (kind == TraceKind::MshrFill && r.arg0 > peakMshr)
            peakMshr = r.arg0;
    }
    if (!t.records.empty()) {
        std::snprintf(line, sizeof(line),
                      "cycles: %" PRIu64 " .. %" PRIu64 "\n", firstCycle,
                      lastCycle);
        os << line;
    }

    std::uint64_t splits = counts[int(TraceKind::SplitBranch)] +
                           counts[int(TraceKind::SplitMem)] +
                           counts[int(TraceKind::SplitRevive)];
    std::uint64_t merges = counts[int(TraceKind::MergePc)] +
                           counts[int(TraceKind::MergeStack)];
    std::snprintf(line, sizeof(line),
                  "splits: %" PRIu64 " (branch %" PRIu64 ", mem %" PRIu64
                  ", revive %" PRIu64 "), merges: %" PRIu64
                  " (pc %" PRIu64 ", stack %" PRIu64 ")\n",
                  splits, counts[int(TraceKind::SplitBranch)],
                  counts[int(TraceKind::SplitMem)],
                  counts[int(TraceKind::SplitRevive)], merges,
                  counts[int(TraceKind::MergePc)],
                  counts[int(TraceKind::MergeStack)]);
    os << line;
    std::snprintf(line, sizeof(line),
                  "peak occupancy seen: wst %u, l1 mshr %u\n", peakWst,
                  peakMshr);
    os << line;

    os << "records by kind:\n";
    for (int k = 1; k <= kTraceKindMax; ++k) {
        if (!counts[k])
            continue;
        std::snprintf(line, sizeof(line), "  %-12s %10" PRIu64 "\n",
                      traceKindName(static_cast<TraceKind>(k)), counts[k]);
        os << line;
    }
    os << "records by wpu:\n";
    for (const auto &[wpu, n] : perWpu) {
        if (wpu == kTraceSystemWpu)
            std::snprintf(line, sizeof(line), "  %-12s %10" PRIu64 "\n",
                          "sys", n);
        else
            std::snprintf(line, sizeof(line), "  wpu %-8u %10" PRIu64 "\n",
                          wpu, n);
        os << line;
    }
}

namespace {

void
printRecord(std::ostream &os, const char *tag, std::size_t i,
            const TraceRecord &r)
{
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  %s[%zu]: cycle %" PRIu64 " %s wpu %u warp %u group %u"
                  " mask 0x%" PRIx64 " arg0 %u arg1 %u\n",
                  tag, i, r.cycle,
                  traceKindName(static_cast<TraceKind>(r.kind)), r.wpu,
                  r.warp, r.group, r.mask, r.arg0, r.arg1);
    os << line;
}

} // namespace

long long
diffTraces(std::ostream &os, const TraceData &a, const TraceData &b)
{
    if (a.header.numWpus != b.header.numWpus ||
        a.header.simdWidth != b.header.simdWidth ||
        a.header.epoch != b.header.epoch || a.header.mode != b.header.mode) {
        os << "headers differ (wpus/simd/epoch/mode)\n";
        return 0;
    }
    std::size_t n = std::min(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (std::memcmp(&a.records[i], &b.records[i],
                        sizeof(TraceRecord)) != 0) {
            os << "first divergence at record " << i << ":\n";
            printRecord(os, "A", i, a.records[i]);
            printRecord(os, "B", i, b.records[i]);
            return static_cast<long long>(i);
        }
    }
    if (a.records.size() != b.records.size()) {
        os << "traces identical for " << n << " records, then A has "
           << a.records.size() << " and B has " << b.records.size()
           << " total\n";
        const auto &longer = a.records.size() > b.records.size() ? a : b;
        printRecord(os, a.records.size() > b.records.size() ? "A" : "B", n,
                    longer.records[n]);
        return static_cast<long long>(n);
    }
    os << "traces identical (" << n << " records)\n";
    return -1;
}

} // namespace dws
