/**
 * @file
 * Concrete TraceSink implementations and the path-based factory.
 *
 *  - BinaryTraceSink: the compact on-disk format (64 B header, raw
 *    32 B records, 40 B footer with count/dropped/FNV-1a checksum).
 *    This is what `dws_trace` reads back.
 *  - JsonlTraceSink: one JSON object per line — a meta line, one line
 *    per record with the kind spelled out, and a footer line. For
 *    grep/jq consumption.
 *  - PerfettoTraceSink: buffers the run and emits Chrome trace-event
 *    JSON (load in ui.perfetto.dev) with one track per warp-split.
 *
 * Each sink either borrows a caller-owned ostream or owns a freshly
 * opened file. makeTraceSink() picks the format from the extension:
 * `.jsonl` → JSON-lines, `.json` → Perfetto, anything else → binary.
 */

#ifndef DWS_TRACE_SINKS_HH
#define DWS_TRACE_SINKS_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace dws {

/** Common stream-or-file plumbing for the concrete sinks. */
class StreamTraceSink : public TraceSink
{
  public:
    /** @return false iff a file path failed to open. */
    bool ok() const { return os_ != nullptr && os_->good(); }

  protected:
    explicit StreamTraceSink(std::ostream &os) : os_(&os) {}
    explicit StreamTraceSink(const std::string &path)
        : file_(std::make_unique<std::ofstream>(
              path, std::ios::binary | std::ios::trunc))
    {
        os_ = file_->is_open() ? file_.get() : nullptr;
    }

    std::ostream &out() { return *os_; }

  private:
    std::unique_ptr<std::ofstream> file_;
    std::ostream *os_ = nullptr;
};

class BinaryTraceSink : public StreamTraceSink
{
  public:
    explicit BinaryTraceSink(std::ostream &os) : StreamTraceSink(os) {}
    explicit BinaryTraceSink(const std::string &path)
        : StreamTraceSink(path)
    {}

    void begin(const TraceFileHeader &hdr) override;
    void write(const TraceRecord *recs, std::size_t n) override;
    void end(const TraceFileFooter &foot) override;
};

class JsonlTraceSink : public StreamTraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : StreamTraceSink(os) {}
    explicit JsonlTraceSink(const std::string &path)
        : StreamTraceSink(path)
    {}

    void begin(const TraceFileHeader &hdr) override;
    void write(const TraceRecord *recs, std::size_t n) override;
    void end(const TraceFileFooter &foot) override;
};

class PerfettoTraceSink : public StreamTraceSink
{
  public:
    explicit PerfettoTraceSink(std::ostream &os) : StreamTraceSink(os) {}
    explicit PerfettoTraceSink(const std::string &path)
        : StreamTraceSink(path)
    {}

    void begin(const TraceFileHeader &hdr) override;
    void write(const TraceRecord *recs, std::size_t n) override;
    void end(const TraceFileFooter &foot) override;

  private:
    TraceFileHeader hdr_{};
    std::vector<TraceRecord> buffer_;
};

/**
 * Open a sink writing to @p path, format chosen by extension (see
 * file comment). @return nullptr if the file could not be opened.
 */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &path);

/** Append one record as a single-line JSON object (shared w/ CLI). */
void writeRecordJson(std::ostream &os, const TraceRecord &r);

} // namespace dws

#endif // DWS_TRACE_SINKS_HH
