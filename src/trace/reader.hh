/**
 * @file
 * Reading and analyzing binary trace files: load, structural
 * validation (`dws_trace check`), human summary, and first-divergence
 * diff. Library functions so tests can exercise them without
 * shelling out to the CLI.
 */

#ifndef DWS_TRACE_READER_HH
#define DWS_TRACE_READER_HH

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace dws {

/** A fully loaded binary trace. */
struct TraceData
{
    TraceFileHeader header{};
    std::vector<TraceRecord> records;
    TraceFileFooter footer{};
    bool hasFooter = false;
};

/**
 * Load @p path. @return false (with @p err set) on malformed header,
 * foreign byte order, or short read. A missing/truncated footer loads
 * successfully with hasFooter=false; checkTrace reports it.
 */
bool readTraceFile(const std::string &path, TraceData &out,
                   std::string &err);

/**
 * Structural validation. @return every problem found (empty = clean):
 * missing footer, record-count/checksum/last-cycle mismatches,
 * unknown record kinds, non-monotonic cycles within a WPU stream.
 */
std::vector<std::string> checkTrace(const TraceData &t);

/** Human-readable aggregate summary (`dws_trace summary`). */
void writeTraceSummary(std::ostream &os, const TraceData &t);

/**
 * Compare two traces; report the first divergent record (or length /
 * header difference) on @p os. @return -1 if identical, else the
 * index of the first divergence (header/meta differences report
 * index 0).
 */
long long diffTraces(std::ostream &os, const TraceData &a,
                     const TraceData &b);

} // namespace dws

#endif // DWS_TRACE_READER_HH
