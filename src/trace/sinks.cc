#include "trace/sinks.hh"

#include "sim/json_writer.hh"
#include "trace/perfetto.hh"

namespace dws {

// ---------------------------------------------------------------- binary

void
BinaryTraceSink::begin(const TraceFileHeader &hdr)
{
    out().write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
}

void
BinaryTraceSink::write(const TraceRecord *recs, std::size_t n)
{
    out().write(reinterpret_cast<const char *>(recs),
                static_cast<std::streamsize>(n * sizeof(TraceRecord)));
}

void
BinaryTraceSink::end(const TraceFileFooter &foot)
{
    out().write(reinterpret_cast<const char *>(&foot), sizeof(foot));
    out().flush();
}

// ----------------------------------------------------------------- jsonl

void
writeRecordJson(std::ostream &os, const TraceRecord &r)
{
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.field("cycle", r.cycle);
    w.field("kind", traceKindName(static_cast<TraceKind>(r.kind)));
    if (r.wpu == kTraceSystemWpu)
        w.field("wpu", "sys");
    else
        w.field("wpu", static_cast<std::uint64_t>(r.wpu));
    w.field("warp", static_cast<std::uint64_t>(r.warp));
    w.field("group", static_cast<std::uint64_t>(r.group));
    w.field("mask", r.mask);
    w.field("arg0", static_cast<std::uint64_t>(r.arg0));
    w.field("arg1", static_cast<std::uint64_t>(r.arg1));
    w.endObject();
}

void
JsonlTraceSink::begin(const TraceFileHeader &hdr)
{
    JsonWriter w(out(), /*indent=*/0);
    w.beginObject();
    w.field("meta", "dws-trace");
    w.field("version", static_cast<std::uint64_t>(hdr.version));
    w.field("num_wpus", static_cast<std::uint64_t>(hdr.numWpus));
    w.field("simd_width", static_cast<std::uint64_t>(hdr.simdWidth));
    w.field("epoch", hdr.epoch);
    w.field("mode",
            traceModeName(static_cast<TraceMode>(hdr.mode)));
    w.endObject();
    out() << '\n';
}

void
JsonlTraceSink::write(const TraceRecord *recs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        writeRecordJson(out(), recs[i]);
        out() << '\n';
    }
}

void
JsonlTraceSink::end(const TraceFileFooter &foot)
{
    JsonWriter w(out(), /*indent=*/0);
    w.beginObject();
    w.field("footer", "dws-trace");
    w.field("records", foot.records);
    w.field("dropped", foot.dropped);
    w.field("last_cycle", foot.lastCycle);
    w.endObject();
    out() << '\n';
    out().flush();
}

// -------------------------------------------------------------- perfetto

void
PerfettoTraceSink::begin(const TraceFileHeader &hdr)
{
    hdr_ = hdr;
}

void
PerfettoTraceSink::write(const TraceRecord *recs, std::size_t n)
{
    buffer_.insert(buffer_.end(), recs, recs + n);
}

void
PerfettoTraceSink::end(const TraceFileFooter &)
{
    writePerfetto(out(), hdr_, buffer_);
    out().flush();
}

// --------------------------------------------------------------- factory

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &path)
{
    auto endsWith = [&](const char *suffix) {
        std::string_view sv(suffix);
        return path.size() >= sv.size() &&
               path.compare(path.size() - sv.size(), sv.size(), sv) == 0;
    };

    std::unique_ptr<StreamTraceSink> sink;
    if (endsWith(".jsonl"))
        sink = std::make_unique<JsonlTraceSink>(path);
    else if (endsWith(".json"))
        sink = std::make_unique<PerfettoTraceSink>(path);
    else
        sink = std::make_unique<BinaryTraceSink>(path);
    if (!sink->ok())
        return nullptr;
    return sink;
}

} // namespace dws
