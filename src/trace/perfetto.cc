#include "trace/perfetto.hh"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "sim/json_writer.hh"

namespace dws {

const char *
traceGroupStateName(std::uint32_t s)
{
    // Order mirrors wpu/simd_group.hh GroupState (checked in wpu.cc).
    switch (s) {
      case 0: return "Ready";
      case 1: return "WaitMem";
      case 2: return "WaitRetry";
      case 3: return "WaitReconv";
      case 4: return "WaitBarrier";
      case 5: return "Dead";
    }
    return "?";
}

namespace {

using TrackKey = std::pair<std::uint8_t, std::uint32_t>; // (wpu, group)

struct OpenSlice
{
    std::uint64_t start = 0;
    std::uint32_t state = 0;
};

void
emitMeta(JsonWriter &w, std::uint8_t pid, const char *what,
         const std::string &name, const std::uint32_t *tid)
{
    w.beginObject();
    w.field("ph", "M");
    w.field("pid", static_cast<std::uint64_t>(pid));
    if (tid)
        w.field("tid", static_cast<std::uint64_t>(*tid));
    w.field("name", what);
    w.key("args");
    w.beginObject();
    w.field("name", name);
    w.endObject();
    w.endObject();
}

void
emitSlice(JsonWriter &w, std::uint8_t pid, std::uint32_t tid,
          std::uint64_t start, std::uint64_t end, std::uint32_t state)
{
    w.beginObject();
    w.field("ph", "X");
    w.field("pid", static_cast<std::uint64_t>(pid));
    w.field("tid", static_cast<std::uint64_t>(tid));
    w.field("ts", start);
    w.field("dur", end > start ? end - start : 1);
    w.field("name", traceGroupStateName(state));
    w.endObject();
}

void
emitInstant(JsonWriter &w, std::uint8_t pid, std::uint32_t tid,
            std::uint64_t ts, const char *name, const TraceRecord &r)
{
    w.beginObject();
    w.field("ph", "i");
    w.field("pid", static_cast<std::uint64_t>(pid));
    w.field("tid", static_cast<std::uint64_t>(tid));
    w.field("ts", ts);
    w.field("s", "t");
    w.field("name", name);
    w.key("args");
    w.beginObject();
    w.field("mask", r.mask);
    w.field("arg0", static_cast<std::uint64_t>(r.arg0));
    w.field("arg1", static_cast<std::uint64_t>(r.arg1));
    w.endObject();
    w.endObject();
}

void
emitCounter(JsonWriter &w, std::uint8_t pid, std::uint64_t ts,
            const char *name,
            std::initializer_list<std::pair<const char *, std::uint64_t>>
                series)
{
    w.beginObject();
    w.field("ph", "C");
    w.field("pid", static_cast<std::uint64_t>(pid));
    w.field("ts", ts);
    w.field("name", name);
    w.key("args");
    w.beginObject();
    for (const auto &[k, v] : series)
        w.field(k, v);
    w.endObject();
    w.endObject();
}

} // namespace

void
writePerfetto(std::ostream &os, const TraceFileHeader &hdr,
              const std::vector<TraceRecord> &records)
{
    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    std::set<std::uint8_t> wpusSeen;
    std::set<TrackKey> tracksSeen;
    std::map<TrackKey, OpenSlice> open;
    std::uint64_t lastCycle = 0;

    auto notePid = [&](std::uint8_t pid) {
        if (!wpusSeen.insert(pid).second)
            return;
        std::string name = pid == kTraceSystemWpu
                               ? std::string("L2 / system")
                               : "WPU " + std::to_string(pid);
        emitMeta(w, pid, "process_name", name, nullptr);
    };
    auto noteTrack = [&](const TraceRecord &r) {
        notePid(r.wpu);
        TrackKey key{r.wpu, r.group};
        if (!tracksSeen.insert(key).second)
            return;
        std::string name = "warp " + std::to_string(r.warp) + " split " +
                           std::to_string(r.group);
        emitMeta(w, r.wpu, "thread_name", name, &r.group);
    };

    for (const auto &r : records) {
        auto kind = static_cast<TraceKind>(r.kind);
        if (r.cycle > lastCycle)
            lastCycle = r.cycle;
        TrackKey key{r.wpu, r.group};
        switch (kind) {
          case TraceKind::GroupCreate:
            noteTrack(r);
            open[key] = OpenSlice{r.cycle, r.arg1};
            emitInstant(w, r.wpu, r.group, r.cycle, "GroupCreate", r);
            break;
          case TraceKind::StateChange: {
            noteTrack(r);
            auto it = open.find(key);
            if (it != open.end())
                emitSlice(w, r.wpu, r.group, it->second.start, r.cycle,
                          it->second.state);
            open[key] = OpenSlice{r.cycle, r.arg1};
            break;
          }
          case TraceKind::GroupDestroy: {
            noteTrack(r);
            auto it = open.find(key);
            if (it != open.end()) {
                emitSlice(w, r.wpu, r.group, it->second.start, r.cycle,
                          it->second.state);
                open.erase(it);
            }
            emitInstant(w, r.wpu, r.group, r.cycle, "GroupDestroy", r);
            break;
          }
          case TraceKind::SplitBranch:
          case TraceKind::SplitMem:
          case TraceKind::SplitRevive:
          case TraceKind::MergePc:
          case TraceKind::MergeStack:
            noteTrack(r);
            emitInstant(w, r.wpu, r.group, r.cycle, traceKindName(kind), r);
            break;
          case TraceKind::EpochExec:
            notePid(r.wpu);
            emitCounter(w, r.wpu, r.cycle, "exec",
                        {{"issued", r.arg0},
                         {"scalar", r.arg1},
                         {"ready", r.group}});
            break;
          case TraceKind::EpochOcc:
            notePid(r.wpu);
            emitCounter(w, r.wpu, r.cycle, "occupancy",
                        {{"wst", r.arg0},
                         {"mshr", r.arg1},
                         {"slots", r.group}});
            break;
          case TraceKind::EpochRate:
            notePid(r.wpu);
            emitCounter(w, r.wpu, r.cycle, "rates",
                        {{"splits", r.arg0},
                         {"merges", r.arg1},
                         {"revives", r.group}});
            break;
          case TraceKind::CacheBurst:
            notePid(r.wpu);
            emitCounter(w, r.wpu, r.cycle, "cache",
                        {{"hits", r.arg0}, {"misses", r.arg1}});
            break;
          default:
            // Slot/WST/MSHR/frame/barrier records carry no track of
            // their own; they are visible via `dws_trace dump`.
            break;
        }
    }

    // Close every slice still open at the end of the run.
    for (const auto &[key, slice] : open)
        emitSlice(w, key.first, key.second, slice.start, lastCycle + 1,
                  slice.state);

    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.field("numWpus", hdr.numWpus);
    w.field("simdWidth", hdr.simdWidth);
    w.field("epochCycles", hdr.epoch);
    w.field("mode", traceModeName(static_cast<TraceMode>(hdr.mode)));
    w.endObject();
    w.endObject();
    os << '\n';
}

} // namespace dws
