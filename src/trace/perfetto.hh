/**
 * @file
 * Chrome trace-event (Perfetto-loadable) export: one process per WPU,
 * one track (thread) per warp-split, duration slices per group state,
 * instant markers for splits/merges/revives, and counter tracks from
 * the metrics-timeline epochs. Shared by the PerfettoTraceSink and
 * `dws_trace convert`.
 */

#ifndef DWS_TRACE_PERFETTO_HH
#define DWS_TRACE_PERFETTO_HH

#include <ostream>
#include <vector>

#include "trace/trace.hh"

namespace dws {

/**
 * Mirror of wpu/simd_group.hh GroupState names, indexed by the raw
 * value the hooks record (order is static_assert-checked in wpu.cc).
 */
const char *traceGroupStateName(std::uint32_t s);

/** Emit the whole trace as Chrome trace-event JSON. */
void writePerfetto(std::ostream &os, const TraceFileHeader &hdr,
                   const std::vector<TraceRecord> &records);

} // namespace dws

#endif // DWS_TRACE_PERFETTO_HH
