#include "mem/memsys.hh"

#include "mem/directory.hh"
#include "sim/logging.hh"

namespace dws {

MemSystem::MemSystem(const SystemConfig &sysCfg, EventQueue &eq)
    : cfg(sysCfg), events(eq),
      l2Mshrs(sysCfg.mem.l2.mshrs, sysCfg.mem.l2.mshrTargets),
      xbar(sysCfg.mem), dram(sysCfg.mem)
{
    for (int w = 0; w < cfg.numWpus; w++) {
        icaches_.push_back(std::make_unique<CacheArray>(
                cfg.wpu.icache, "l1i" + std::to_string(w)));
        dcaches_.push_back(std::make_unique<CacheArray>(
                cfg.wpu.dcache, "l1d" + std::to_string(w)));
        l1Mshrs.emplace_back(cfg.wpu.dcache.mshrs,
                             cfg.wpu.dcache.mshrTargets);
        reqChannelFree.push_back(0);
    }
    l2_ = std::make_unique<CacheArray>(cfg.mem.l2, "l2");
    events.bindMem(this);
}

void
MemSystem::setTracer(Tracer *t)
{
    trace_ = t;
    for (int w = 0; w < cfg.numWpus; w++) {
        dcaches_[static_cast<size_t>(w)]->setTracer(
                t, static_cast<std::uint8_t>(w));
        icaches_[static_cast<size_t>(w)]->setTracer(
                t, static_cast<std::uint8_t>(w));
    }
    l2_->setTracer(t, kTraceSystemWpu);
}

void
MemSystem::onSimEvent(const SimEvent &ev)
{
    switch (ev.kind) {
      case EventKind::L1MshrRelease: {
        MshrFile &f = l1Mshrs[static_cast<size_t>(ev.wpu)];
        f.release(ev.line);
        DWS_TRACE(trace_, mshr(false, false, ev.wpu, ev.line,
                               static_cast<std::uint32_t>(f.inUse())));
        break;
      }
      case EventKind::L2MshrRelease:
        l2Mshrs.release(ev.line);
        DWS_TRACE(trace_, mshr(false, true, 0, ev.line,
                               static_cast<std::uint32_t>(
                                       l2Mshrs.inUse())));
        break;
      default:
        panic("memory system got non-MSHR event %s",
              eventKindName(ev.kind));
    }
}

void
MemSystem::evictL1Data(WpuId wpu, Addr lineAddr, CoherState state, Cycle now)
{
    CacheArray &d = *dcaches_[static_cast<size_t>(wpu)];
    CacheLine *l2l = l2_->find(lineAddr);
    if (state == CoherState::Modified) {
        // Write the dirty line back to the inclusive L2.
        d.stats.writebacks++;
        xbar.transfer(now, cfg.wpu.dcache.lineBytes);
        if (l2l)
            l2l->state = CoherState::Modified;
    }
    if (l2l)
        Directory::removeSharer(*l2l, wpu);
}

void
MemSystem::evictL2(Addr lineAddr, CoherState state, Cycle now)
{
    // Inclusive L2: back-invalidate any L1 copies of the victim.
    for (int w = 0; w < cfg.numWpus; w++) {
        CacheArray &d = *dcaches_[static_cast<size_t>(w)];
        const CoherState prior = d.invalidate(lineAddr);
        if (prior != CoherState::Invalid) {
            d.stats.invalidationsReceived++;
            if (prior == CoherState::Modified) {
                d.stats.writebacks++;
                state = CoherState::Modified;
            }
        }
        // Instruction lines can also live under kInstrAddrBase.
        if (lineAddr >= kInstrAddrBase)
            icaches_[static_cast<size_t>(w)]->invalidate(lineAddr);
    }
    if (state == CoherState::Modified) {
        l2_->stats.writebacks++;
        dram.access(now, cfg.mem.l2.lineBytes);
    }
}

LineResponse
MemSystem::accessData(WpuId wpu, Addr lineAddr, bool write, int bankDelay,
                      Cycle now)
{
    CacheArray &d = *dcaches_[static_cast<size_t>(wpu)];
    MshrFile &mshrs = l1Mshrs[static_cast<size_t>(wpu)];
    if (write)
        d.stats.writes++;
    else
        d.stats.reads++;

    CacheLine *line = d.find(lineAddr);
    MshrEntry *mshr = mshrs.find(lineAddr);

    if (line && !mshr) {
        // Stable line present.
        if (!write || line->writable()) {
            if (write)
                line->state = CoherState::Modified;
            d.touch(line, now);
            DWS_TRACE(trace_, cacheAccess(wpu, true));
            return LineResponse{
                .l1Hit = true,
                .readyAt = now + cfg.wpu.dcache.hitLatency + bankDelay};
        }
        // Write to a Shared copy: upgrade via GetX (counts as a miss).
        d.stats.writeMisses++;
        DWS_TRACE(trace_, cacheAccess(wpu, false));
        return missPath(wpu, lineAddr, true, bankDelay, now, line, false);
    }

    if (mshr) {
        // Fill in flight: coalesce into the MSHR.
        if (!mshrs.addTarget(mshr)) {
            d.stats.mshrFullEvents++;
            return LineResponse{.retry = true, .readyAt = mshr->readyAt};
        }
        d.stats.coalescedRequests++;
        DWS_TRACE(trace_, cacheAccess(wpu, false));
        if (write && !mshr->write) {
            // The in-flight fill only requested S/E; upgrade after it
            // lands: one more round trip through the directory.
            mshr->write = true;
            CacheLine *pend = d.find(lineAddr);
            Cycle t = mshr->readyAt + 2 * xbar.hopLatency() +
                      cfg.mem.l2.hitLatency;
            CacheLine *l2l = l2_->find(lineAddr);
            if (l2l) {
                const DirOutcome out = Directory::getX(*l2l, wpu);
                for (int w = 0; w < cfg.numWpus; w++) {
                    if (w == wpu)
                        continue;
                    CacheArray &rd = *dcaches_[static_cast<size_t>(w)];
                    if (rd.invalidate(lineAddr) != CoherState::Invalid)
                        rd.stats.invalidationsReceived++;
                }
                d.stats.invalidationsSent +=
                        static_cast<std::uint64_t>(out.invalidations);
            }
            mshr->readyAt = t;
            if (pend) {
                pend->state = CoherState::Modified;
                pend->readyAt = t;
            }
        }
        return LineResponse{.l1Hit = false, .readyAt = mshr->readyAt};
    }

    // True miss.
    if (write)
        d.stats.writeMisses++;
    else
        d.stats.readMisses++;
    DWS_TRACE(trace_, cacheAccess(wpu, false));
    return missPath(wpu, lineAddr, write, bankDelay, now, nullptr, false);
}

LineResponse
MemSystem::missPath(WpuId wpu, Addr lineAddr, bool write, int bankDelay,
                    Cycle now, CacheLine *existing, bool instr)
{
    CacheArray &l1 = instr ? *icaches_[static_cast<size_t>(wpu)]
                           : *dcaches_[static_cast<size_t>(wpu)];
    MshrFile &mshrs = l1Mshrs[static_cast<size_t>(wpu)];

    if (!mshrs.available()) {
        l1.stats.mshrFullEvents++;
        // A full file always has entries, but keep the no-hint fallback
        // (readyAt 0 = "retry next cycle") explicit.
        return LineResponse{.retry = true,
                            .readyAt =
                                    mshrs.earliestReady().value_or(0)};
    }

    // Reserve the L1 way first so we can cleanly retry before any
    // directory state has been touched.
    CacheLine *fill = existing;
    if (!fill) {
        fill = l1.allocate(lineAddr, now,
                [&](Addr victim, CoherState st) {
                    if (!instr)
                        evictL1Data(wpu, victim, st, now);
                });
        if (!fill) {
            l1.stats.mshrFullEvents++;
            return LineResponse{.retry = true,
                                .readyAt = mshrs.earliestReady()
                                                   .value_or(0)};
        }
    }

    // Request hop: L1 lookup, then the WPU's L2 request channel (one
    // request per crossbar cycle: requests to distinct lines
    // serialize), then the crossbar traversal.
    Cycle t = now + bankDelay + l1.config().hitLatency;
    Cycle &chan = reqChannelFree[static_cast<size_t>(wpu)];
    if (chan > t)
        t = chan;
    chan = t + cfg.mem.xbarRequestCycles;
    t += xbar.hopLatency();

    // --- L2 side -----------------------------------------------------
    CacheLine *l2l = l2_->find(lineAddr);
    MshrEntry *m2 = l2Mshrs.find(lineAddr);
    if (m2) {
        // A fill for this line is already in flight (another WPU's miss
        // or an earlier request): serialize behind it. This stands in
        // for the protocol's transient states.
        if (m2->readyAt > t)
            t = m2->readyAt;
        t += cfg.mem.l2.hitLatency;
        l2_->stats.reads++;
        l2l = l2_->find(lineAddr);
    } else if (l2l) {
        t += cfg.mem.l2.hitLatency;
        l2_->stats.reads++;
    } else {
        // L2 miss: go to DRAM and fill the L2.
        l2_->stats.reads++;
        l2_->stats.readMisses++;
        t += cfg.mem.l2.hitLatency;
        l2l = l2_->allocate(lineAddr, now,
                [&](Addr victim, CoherState st) {
                    evictL2(victim, st, now);
                });
        if (!l2l) {
            // Every way pinned by in-flight fills: rare; retry. The L2
            // MSHR file may legitimately be empty here (allocation is
            // capacity-gated), so absence must not masquerade as a
            // cycle-0 hint.
            return LineResponse{.retry = true,
                                .readyAt = l2Mshrs.earliestReady()
                                                   .value_or(0)};
        }
        t = dram.access(t, cfg.mem.l2.lineBytes);
        l2l->state = CoherState::Exclusive; // clean w.r.t. DRAM
        l2l->readyAt = t;
        if (l2Mshrs.available()) {
            l2Mshrs.allocate(lineAddr, t, write);
            DWS_TRACE(trace_, mshr(true, true, 0, lineAddr,
                                   static_cast<std::uint32_t>(
                                           l2Mshrs.inUse())));
            events.schedule(SimEvent{.when = t,
                                     .kind = EventKind::L2MshrRelease,
                                     .line = lineAddr});
        }
    }
    l2_->touch(l2l, now);

    // --- Coherence actions (data lines only) ---------------------------
    if (!instr) {
        const DirOutcome out = write ? Directory::getX(*l2l, wpu)
                                     : Directory::getS(*l2l, wpu);
        if (out.recall) {
            coherenceRecalls++;
            // Probe round trip to the remote owner.
            Cycle probe = 2 * xbar.hopLatency() +
                          cfg.wpu.dcache.hitLatency;
            t += probe;
        }
        if (out.invalidations > 0) {
            // One overlapped invalidation round trip.
            t += 2 * xbar.hopLatency();
            l1.stats.invalidationsSent +=
                    static_cast<std::uint64_t>(out.invalidations);
        }
        // Apply remote L1 state changes immediately.
        for (int w = 0; w < cfg.numWpus; w++) {
            if (w == wpu)
                continue;
            CacheArray &rd = *dcaches_[static_cast<size_t>(w)];
            CacheLine *rl = rd.find(lineAddr);
            if (!rl)
                continue;
            if (rl->readyAt > t)
                t = rl->readyAt; // recall serializes behind its fill
            if (write) {
                rd.invalidate(lineAddr);
                rd.stats.invalidationsReceived++;
            } else if (rl->state == CoherState::Modified ||
                       rl->state == CoherState::Exclusive) {
                if (rl->state == CoherState::Modified) {
                    rd.stats.writebacks++;
                    l2l->state = CoherState::Modified;
                    xbar.transfer(now, cfg.wpu.dcache.lineBytes);
                }
                rl->state = CoherState::Shared;
            }
        }
        fill->state = out.grant;
    } else {
        fill->state = CoherState::Shared;
    }

    // --- Response hop: data transfer back over the crossbar ------------
    t = xbar.transfer(t, l1.config().lineBytes);

    fill->tag = lineAddr;
    fill->readyAt = t;
    l1.touch(fill, now);

    mshrs.allocate(lineAddr, t, write);
    DWS_TRACE(trace_, mshr(true, false, wpu, lineAddr,
                           static_cast<std::uint32_t>(mshrs.inUse())));
    events.schedule(SimEvent{.when = t,
                             .kind = EventKind::L1MshrRelease,
                             .wpu = wpu,
                             .line = lineAddr});

    return LineResponse{.l1Hit = false, .readyAt = t};
}

LineResponse
MemSystem::accessInstr(WpuId wpu, Addr lineAddr, Cycle now)
{
    CacheArray &i = *icaches_[static_cast<size_t>(wpu)];
    i.stats.reads++;
    CacheLine *line = i.find(lineAddr);
    if (line && line->readyAt <= now) {
        i.touch(line, now);
        return LineResponse{
            .l1Hit = true, .readyAt = now + cfg.wpu.icache.hitLatency};
    }
    if (line) {
        // Fill in flight for this line.
        return LineResponse{.l1Hit = false, .readyAt = line->readyAt};
    }
    i.stats.readMisses++;
    return missPath(wpu, lineAddr, false, 0, now, nullptr, true);
}

MemStats
MemSystem::stats() const
{
    MemStats s;
    s.l2 = l2_->stats;
    s.dramAccesses = dram.accesses;
    s.xbarTransfers = xbar.transfers;
    s.coherenceRecalls = coherenceRecalls;
    return s;
}

} // namespace dws
