#include "mem/memsys.hh"

#include "mem/directory.hh"
#include "sim/logging.hh"

namespace dws {

namespace {

/** Fabric depth bound: keeps the miss path's scratch arrays on-stack. */
constexpr int kMaxFabricLevels = 8;

} // namespace

MemSystem::MemSystem(const SystemConfig &sysCfg, EventQueue &eq)
    : cfg(sysCfg), events(eq), dram(sysCfg.mem)
{
    for (int w = 0; w < cfg.numWpus; w++) {
        icaches_.push_back(std::make_unique<CacheArray>(
                cfg.wpu.icache, "l1i" + std::to_string(w)));
        dcaches_.push_back(std::make_unique<CacheArray>(
                cfg.wpu.dcache, "l1d" + std::to_string(w)));
        l1Mshrs.emplace_back(cfg.wpu.dcache, 0);
    }
    levels_ = buildFabric(cfg.hierarchy(), cfg.numWpus);
    if (sharedLevels() > kMaxFabricLevels)
        fatal("cache fabric depth %d exceeds the supported maximum %d",
              sharedLevels(), kMaxFabricLevels);
    events.bindMem(this);
}

void
MemSystem::setTracer(Tracer *t)
{
    trace_ = t;
    for (int w = 0; w < cfg.numWpus; w++) {
        dcaches_[static_cast<size_t>(w)]->setTracer(
                t, static_cast<std::uint8_t>(w));
        icaches_[static_cast<size_t>(w)]->setTracer(
                t, static_cast<std::uint8_t>(w));
    }
    for (auto &lvl : levels_)
        lvl->setTracer(t);
}

void
MemSystem::onSimEvent(const SimEvent &ev)
{
    switch (ev.kind) {
      case EventKind::L1MshrRelease: {
        MshrFile &f = l1Mshrs[static_cast<size_t>(ev.wpu)];
        f.release(ev.line);
        DWS_TRACE(trace_, mshr(false, 0, ev.wpu, ev.line,
                               static_cast<std::uint32_t>(f.inUse())));
        break;
      }
      case EventKind::L2MshrRelease: {
        // The event's group field carries the shared-level index
        // (0 = L2); events scheduled before the fabric existed carry
        // the default -1 and mean level 0.
        const int li = ev.group < 0 ? 0 : static_cast<int>(ev.group);
        CacheLevel &lvl = *levels_[static_cast<size_t>(li)];
        MshrFile &f = lvl.mshrFor(ev.line);
        f.release(ev.line);
        DWS_TRACE(trace_, mshr(false, li + 1,
                               static_cast<WpuId>(lvl.sliceOf(ev.line)),
                               ev.line,
                               static_cast<std::uint32_t>(f.inUse())));
        break;
      }
      default:
        panic("memory system got non-MSHR event %s",
              eventKindName(ev.kind));
    }
}

void
MemSystem::evictL1Data(WpuId wpu, Addr lineAddr, CoherState state, Cycle now)
{
    CacheArray &d = *dcaches_[static_cast<size_t>(wpu)];
    CacheLevel &l0 = *levels_[0];
    CacheLine *l2l = l0.sliceFor(lineAddr).find(lineAddr);
    if (state == CoherState::Modified) {
        // Write the dirty line back to the inclusive first shared level.
        d.stats.writebacks++;
        const Cycle done =
                l0.link.transfer(now, cfg.wpu.dcache.lineBytes);
        l1Mshrs[static_cast<size_t>(wpu)].noteDown(lineAddr, done, now);
        if (l2l)
            l2l->state = CoherState::Modified;
    }
    if (l2l)
        Directory::removeSharer(*l2l, wpu);
}

void
MemSystem::evictShared(int li, Addr lineAddr, CoherState state, Cycle now)
{
    // Inclusive fabric: back-invalidate any L1 copies of the victim.
    for (int w = 0; w < cfg.numWpus; w++) {
        CacheArray &d = *dcaches_[static_cast<size_t>(w)];
        const CoherState prior = d.invalidate(lineAddr);
        if (prior != CoherState::Invalid) {
            d.stats.invalidationsReceived++;
            if (prior == CoherState::Modified) {
                d.stats.writebacks++;
                state = CoherState::Modified;
            }
        }
        // Instruction lines can also live under kInstrAddrBase.
        if (lineAddr >= kInstrAddrBase)
            icaches_[static_cast<size_t>(w)]->invalidate(lineAddr);
    }
    // ... and any shallower shared levels (loop is empty for the L2,
    // so the default machine's arithmetic is untouched).
    for (int i = li - 1; i >= 0; i--) {
        CacheArray &arr = levels_[static_cast<size_t>(i)]
                                  ->sliceFor(lineAddr);
        const CoherState prior = arr.invalidate(lineAddr);
        if (prior != CoherState::Invalid) {
            arr.stats.invalidationsReceived++;
            if (prior == CoherState::Modified) {
                arr.stats.writebacks++;
                state = CoherState::Modified;
            }
        }
    }
    if (state == CoherState::Modified) {
        CacheLevel &lvl = *levels_[static_cast<size_t>(li)];
        const int lineBytes = lvl.spec().cache.lineBytes;
        lvl.sliceFor(lineAddr).stats.writebacks++;
        Cycle done;
        if (li + 1 < sharedLevels()) {
            CacheLevel &below = *levels_[static_cast<size_t>(li + 1)];
            CacheLine *lower = below.sliceFor(lineAddr).find(lineAddr);
            if (lower)
                lower->state = CoherState::Modified;
            done = below.link.transfer(now, lineBytes);
        } else {
            done = dram.access(now, lineBytes);
        }
        lvl.mshrFor(lineAddr).noteDown(lineAddr, done, now);
    }
}

LineResponse
MemSystem::accessData(WpuId wpu, Addr lineAddr, bool write, int bankDelay,
                      Cycle now)
{
    CacheArray &d = *dcaches_[static_cast<size_t>(wpu)];
    MshrFile &mshrs = l1Mshrs[static_cast<size_t>(wpu)];
    if (write)
        d.stats.writes++;
    else
        d.stats.reads++;

    CacheLine *line = d.find(lineAddr);
    MshrEntry *mshr = mshrs.find(lineAddr);

    if (line && !mshr) {
        // Stable line present.
        if (!write || line->writable()) {
            if (write)
                line->state = CoherState::Modified;
            d.touch(line, now);
            DWS_TRACE(trace_, cacheAccess(wpu, true));
            return LineResponse{
                .l1Hit = true,
                .readyAt = now + cfg.wpu.dcache.hitLatency + bankDelay};
        }
        // Write to a Shared copy: upgrade via GetX (counts as a miss).
        d.stats.writeMisses++;
        DWS_TRACE(trace_, cacheAccess(wpu, false));
        return missPath(wpu, lineAddr, true, bankDelay, now, line, false);
    }

    if (mshr) {
        // Fill in flight: coalesce into the MSHR.
        if (!mshrs.addTarget(mshr)) {
            d.stats.mshrFullEvents++;
            return LineResponse{.retry = true, .readyAt = mshr->readyAt};
        }
        d.stats.coalescedRequests++;
        DWS_TRACE(trace_, cacheAccess(wpu, false));
        if (write && !mshr->write) {
            // The in-flight fill only requested S/E; upgrade after it
            // lands: one more round trip through the directory.
            mshr->write = true;
            CacheLine *pend = d.find(lineAddr);
            CacheLevel &l0 = *levels_[0];
            Cycle t = mshr->readyAt + 2 * l0.link.hopLatency() +
                      l0.spec().cache.hitLatency;
            CacheLine *l2l = l0.sliceFor(lineAddr).find(lineAddr);
            if (l2l) {
                const DirOutcome out = Directory::getX(*l2l, wpu);
                for (int w = 0; w < cfg.numWpus; w++) {
                    if (w == wpu)
                        continue;
                    CacheArray &rd = *dcaches_[static_cast<size_t>(w)];
                    if (rd.invalidate(lineAddr) != CoherState::Invalid)
                        rd.stats.invalidationsReceived++;
                }
                d.stats.invalidationsSent +=
                        static_cast<std::uint64_t>(out.invalidations);
            }
            mshr->readyAt = t;
            if (pend) {
                pend->state = CoherState::Modified;
                pend->readyAt = t;
            }
        }
        return LineResponse{.l1Hit = false, .readyAt = mshr->readyAt};
    }

    // True miss.
    if (write)
        d.stats.writeMisses++;
    else
        d.stats.readMisses++;
    DWS_TRACE(trace_, cacheAccess(wpu, false));
    return missPath(wpu, lineAddr, write, bankDelay, now, nullptr, false);
}

LineResponse
MemSystem::missPath(WpuId wpu, Addr lineAddr, bool write, int bankDelay,
                    Cycle now, CacheLine *existing, bool instr)
{
    CacheArray &l1 = instr ? *icaches_[static_cast<size_t>(wpu)]
                           : *dcaches_[static_cast<size_t>(wpu)];
    MshrFile &mshrs = l1Mshrs[static_cast<size_t>(wpu)];

    if (!mshrs.available(lineAddr)) {
        l1.stats.mshrFullEvents++;
        // A full file always has entries, but keep the no-hint fallback
        // (readyAt 0 = "retry next cycle") explicit.
        return LineResponse{.retry = true,
                            .readyAt =
                                    mshrs.earliestReady().value_or(0)};
    }

    // Reserve the L1 way first so we can cleanly retry before any
    // directory state has been touched.
    CacheLine *fill = existing;
    if (!fill) {
        fill = l1.allocate(lineAddr, now,
                [&](Addr victim, CoherState st) {
                    if (!instr)
                        evictL1Data(wpu, victim, st, now);
                });
        if (!fill) {
            l1.stats.mshrFullEvents++;
            return LineResponse{.retry = true,
                                .readyAt = mshrs.earliestReady()
                                                   .value_or(0)};
        }
    }

    // Request hop: L1 lookup, then the WPU's request channel onto the
    // first shared level's link (one request per link cycle: requests
    // to distinct lines serialize), then the link traversal.
    CacheLevel &l0 = *levels_[0];
    Cycle t = now + bankDelay + l1.config().hitLatency;
    Cycle &chan = l0.reqChannelFree[static_cast<size_t>(wpu)];
    if (chan > t)
        t = chan;
    chan = t + l0.link.requestCycles();
    t += l0.link.hopLatency();

    // --- Descend the shared levels ------------------------------------
    const int nLevels = sharedLevels();
    CacheLine *installed[kMaxFabricLevels] = {};
    CacheLine *hitLine = nullptr;
    int hitLevel = -1;
    for (int li = 0; li < nLevels; li++) {
        CacheLevel &lvl = *levels_[static_cast<size_t>(li)];
        CacheArray &arr = lvl.sliceFor(lineAddr);
        MshrFile &lm = lvl.mshrFor(lineAddr);
        const int hitLatency = lvl.spec().cache.hitLatency;
        MshrEntry *ml = lm.find(lineAddr);
        if (ml) {
            // A fill for this line is already in flight (another WPU's
            // miss or an earlier request): serialize behind it. This
            // stands in for the protocol's transient states.
            if (ml->readyAt > t)
                t = ml->readyAt;
            t += hitLatency;
            arr.stats.reads++;
            hitLine = arr.find(lineAddr);
            hitLevel = li;
            break;
        }
        CacheLine *cl = arr.find(lineAddr);
        if (cl) {
            t += hitLatency;
            arr.stats.reads++;
            hitLine = cl;
            hitLevel = li;
            break;
        }
        // Miss at this level: allocate on the way down and keep going.
        arr.stats.reads++;
        arr.stats.readMisses++;
        t += hitLatency;
        CacheLine *nl = arr.allocate(lineAddr, now,
                [&](Addr victim, CoherState st) {
                    evictShared(li, victim, st, now);
                });
        if (!nl) {
            // Every way pinned by in-flight fills: rare; retry. The
            // level's MSHR file may legitimately be empty here
            // (allocation is capacity-gated), so absence must not
            // masquerade as a cycle-0 hint.
            return LineResponse{.retry = true,
                                .readyAt = lm.earliestReady()
                                                   .value_or(0)};
        }
        installed[li] = nl;
        if (li + 1 < nLevels) {
            // Request hop down to the next level's link.
            t += levels_[static_cast<size_t>(li + 1)]->link.hopLatency();
        }
    }

    if (hitLevel < 0) {
        // Walked past the last level: DRAM supplies the line.
        t = dram.access(t, levels_[static_cast<size_t>(nLevels - 1)]
                                   ->spec().cache.lineBytes);
    } else if (hitLine) {
        levels_[static_cast<size_t>(hitLevel)]
                ->sliceFor(lineAddr).touch(hitLine, now);
    }

    // Unwind the fills deepest-first: each missed level receives the
    // line over the link below it, then starts its own fill window.
    for (int li = (hitLevel < 0 ? nLevels : hitLevel) - 1; li >= 0;
         li--) {
        CacheLevel &lvl = *levels_[static_cast<size_t>(li)];
        if (li + 1 < nLevels) {
            t = levels_[static_cast<size_t>(li + 1)]->link.transfer(
                    t, lvl.spec().cache.lineBytes);
        }
        CacheLine *cl = installed[li];
        cl->state = CoherState::Exclusive; // clean w.r.t. below
        cl->readyAt = t;
        MshrFile &lm = lvl.mshrFor(lineAddr);
        if (lm.available(lineAddr)) {
            lm.allocate(lineAddr, t, write);
            DWS_TRACE(trace_, mshr(true, li + 1,
                                   static_cast<WpuId>(
                                           lvl.sliceOf(lineAddr)),
                                   lineAddr,
                                   static_cast<std::uint32_t>(
                                           lm.inUse())));
            events.schedule(SimEvent{.when = t,
                                     .kind = EventKind::L2MshrRelease,
                                     .group = static_cast<GroupId>(li),
                                     .line = lineAddr});
        }
    }

    // --- Coherence actions (data lines only) ---------------------------
    // The directory lives at level 0; its line is either the hit line
    // or the fill installed on the way down.
    CacheLine *dirLine = hitLevel == 0 ? hitLine : installed[0];
    if (!instr) {
        DirOutcome out;
        if (dirLine) {
            out = write ? Directory::getX(*dirLine, wpu)
                        : Directory::getS(*dirLine, wpu);
        } else {
            // Only reachable in >= 3-level fabrics when the directory
            // line vanished while a fill was in flight: grant
            // conservatively without directory bookkeeping.
            out.grant = write ? CoherState::Modified : CoherState::Shared;
        }
        if (out.recall) {
            coherenceRecalls++;
            // Probe round trip to the remote owner.
            Cycle probe = 2 * l0.link.hopLatency() +
                          cfg.wpu.dcache.hitLatency;
            t += probe;
        }
        if (out.invalidations > 0) {
            // One overlapped invalidation round trip.
            t += 2 * l0.link.hopLatency();
            l1.stats.invalidationsSent +=
                    static_cast<std::uint64_t>(out.invalidations);
        }
        // Apply remote L1 state changes immediately.
        for (int w = 0; w < cfg.numWpus; w++) {
            if (w == wpu)
                continue;
            CacheArray &rd = *dcaches_[static_cast<size_t>(w)];
            CacheLine *rl = rd.find(lineAddr);
            if (!rl)
                continue;
            if (rl->readyAt > t)
                t = rl->readyAt; // recall serializes behind its fill
            if (write) {
                rd.invalidate(lineAddr);
                rd.stats.invalidationsReceived++;
            } else if (rl->state == CoherState::Modified ||
                       rl->state == CoherState::Exclusive) {
                if (rl->state == CoherState::Modified) {
                    rd.stats.writebacks++;
                    if (dirLine)
                        dirLine->state = CoherState::Modified;
                    l0.link.transfer(now, cfg.wpu.dcache.lineBytes);
                }
                rl->state = CoherState::Shared;
            }
        }
        fill->state = out.grant;
    } else {
        fill->state = CoherState::Shared;
    }

    // --- Response hop: data transfer back over the link ----------------
    t = l0.link.transfer(t, l1.config().lineBytes);

    fill->tag = lineAddr;
    fill->readyAt = t;
    l1.touch(fill, now);

    mshrs.allocate(lineAddr, t, write);
    DWS_TRACE(trace_, mshr(true, 0, wpu, lineAddr,
                           static_cast<std::uint32_t>(mshrs.inUse())));
    events.schedule(SimEvent{.when = t,
                             .kind = EventKind::L1MshrRelease,
                             .wpu = wpu,
                             .line = lineAddr});

    return LineResponse{.l1Hit = false, .readyAt = t};
}

LineResponse
MemSystem::accessInstr(WpuId wpu, Addr lineAddr, Cycle now)
{
    CacheArray &i = *icaches_[static_cast<size_t>(wpu)];
    i.stats.reads++;
    CacheLine *line = i.find(lineAddr);
    if (line && line->readyAt <= now) {
        i.touch(line, now);
        return LineResponse{
            .l1Hit = true, .readyAt = now + cfg.wpu.icache.hitLatency};
    }
    if (line) {
        // Fill in flight for this line.
        return LineResponse{.l1Hit = false, .readyAt = line->readyAt};
    }
    i.stats.readMisses++;
    return missPath(wpu, lineAddr, false, 0, now, nullptr, true);
}

MemStats
MemSystem::stats() const
{
    MemStats s;
    auto accumulate = [](CacheStats &into, const CacheStats &from) {
        into.reads += from.reads;
        into.writes += from.writes;
        into.readMisses += from.readMisses;
        into.writeMisses += from.writeMisses;
        into.writebacks += from.writebacks;
        into.invalidationsSent += from.invalidationsSent;
        into.invalidationsReceived += from.invalidationsReceived;
        into.mshrFullEvents += from.mshrFullEvents;
        into.bankConflicts += from.bankConflicts;
        into.coalescedRequests += from.coalescedRequests;
    };
    for (int sl = 0; sl < levels_[0]->sliceCount(); sl++)
        accumulate(s.l2, levels_[0]->slice(sl).stats);
    for (int li = 1; li < sharedLevels(); li++) {
        CacheStats cs;
        for (int sl = 0; sl < levels_[static_cast<size_t>(li)]
                                      ->sliceCount(); sl++) {
            accumulate(cs,
                       levels_[static_cast<size_t>(li)]->slice(sl).stats);
        }
        s.deeper.push_back(cs);
    }
    s.dramAccesses = dram.accesses;
    std::uint64_t xfers = 0;
    for (const auto &lvl : levels_)
        xfers += lvl->link.transfers;
    s.xbarTransfers = xfers;
    s.coherenceRecalls = coherenceRecalls;
    return s;
}

} // namespace dws
