/**
 * @file
 * A set-associative, LRU, write-back cache tag array with MESI state.
 *
 * Used for L1 I-caches (states degenerate to Shared/Invalid), banked L1
 * D-caches, and the shared levels of the fabric (L2, optional L3, ...).
 * The first shared level additionally uses the per-line directory fields
 * (sharer set and exclusive owner) for the MESI directory protocol
 * (paper Section 3.3).
 */

#ifndef DWS_MEM_CACHE_HH
#define DWS_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/sharers.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace dws {

/** MESI coherence states. */
enum class CoherState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** @return a printable name of a coherence state. */
const char *coherStateName(CoherState s);

/**
 * One cache line's tags and metadata.
 *
 * Field order keeps the struct at 48 bytes: CacheArray::find() strides
 * over a whole set on every access, so padding here is paid on the
 * simulator's hottest loop.
 */
struct CacheLine
{
    Addr tag = 0;                       ///< full line address
    Cycle lastUse = 0;                  ///< LRU timestamp
    Cycle readyAt = 0;                  ///< fill completion time (pending)

    // Directory state, used by the last-shared (directory) level only.
    SharerSet sharers;                  ///< WPUs with a copy
    std::int32_t owner = -1;            ///< WPU holding the line M/E
    CoherState state = CoherState::Invalid;

    bool valid() const { return state != CoherState::Invalid; }
    bool writable() const
    {
        return state == CoherState::Modified ||
               state == CoherState::Exclusive;
    }
};

/** A set-associative tag array. */
class CacheArray
{
  public:
    /**
     * @param cfg        geometry (assoc == 0 means fully associative)
     * @param name       for error messages
     * @param indexShift line-address bits skipped before set indexing.
     *                   A slice of an address-interleaved level passes
     *                   log2(slices) so the slice-select bits don't
     *                   alias every resident line into few sets.
     */
    CacheArray(const CacheConfig &cfg, std::string name,
               int indexShift = 0);

    /** @return the line address containing addr. */
    Addr lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    }

    /** @return the D-cache bank serving the given line address. */
    int bankOf(Addr line) const
    {
        return static_cast<int>((line / cfg_.lineBytes) %
                                static_cast<unsigned>(cfg_.banks));
    }

    /**
     * Find a present (non-Invalid) line.
     * @return pointer into the array, or nullptr.
     */
    CacheLine *find(Addr line);
    const CacheLine *find(Addr line) const;

    /**
     * Allocate a way for the given line, evicting the LRU victim if
     * needed. Lines whose fill is still pending (readyAt > now) are
     * pinned and cannot be victimized.
     *
     * @param line    line address to install
     * @param now     current cycle (for pinning and LRU)
     * @param evictCb invoked with the victim's (address, state) before
     *                it is overwritten; may be nullptr
     * @return the installed line (state Invalid, tag set), or nullptr if
     *         every way in the set is pinned
     */
    CacheLine *allocate(Addr line, Cycle now,
                        const std::function<void(Addr, CoherState)> &evictCb);

    /** Mark a line most-recently-used. */
    void touch(CacheLine *line, Cycle now) { line->lastUse = now + 1; }

    /** Invalidate the line if present. @return its prior state. */
    CoherState invalidate(Addr line);

    /** @return geometry. */
    const CacheConfig &config() const { return cfg_; }

    /** Per-cache statistics (updated by the memory system). */
    CacheStats stats;

    /** @return number of valid lines (for tests). */
    int validLines() const;

    /**
     * @return indices of sets holding two valid ways with the same tag.
     *         Always empty in a healthy cache (find() returns the first
     *         match, so a duplicate would shadow the other way's state);
     *         the invariant audit uses this to catch tag corruption.
     */
    std::vector<int> duplicateTagSets() const;

    /** @return cache name. */
    const std::string &name() const { return name_; }

    /**
     * Attach the tracer for eviction records (nullptr = off).
     * @param owner the record's wpu field: the owning WPU for an L1,
     *              kTraceSystemWpu for the L2
     */
    void
    setTracer(Tracer *t, std::uint8_t owner)
    {
        trace_ = t;
        traceOwner_ = owner;
    }

  private:
    /** The fault injector corrupts tags in place (src/fault/). */
    friend class FaultInjector;

    int setIndex(Addr line) const;

    Tracer *trace_ = nullptr;
    std::uint8_t traceOwner_ = kTraceSystemWpu;

    CacheConfig cfg_;
    std::string name_;
    int indexShift_;
    int ways_;
    int sets_;
    std::vector<CacheLine> lines_; ///< sets_ x ways_
};

} // namespace dws

#endif // DWS_MEM_CACHE_HH
