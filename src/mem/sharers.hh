/**
 * @file
 * A width-independent set of WPU ids, used for the per-line directory
 * sharer list.
 *
 * The original directory state was a `std::uint32_t` bitmask, which
 * silently capped the machine at 32 WPUs. SharerSet keeps the common
 * case (ids 0..63) in one inline word and spills larger ids into a
 * heap bitmap, so hierarchy configs can scale to hundreds of WPUs
 * without a per-line allocation in the paper-sized machine.
 *
 * The set lives inside every CacheLine, and CacheArray::find() strides
 * over lines on every access, so footprint matters: the spill hides
 * behind one pointer (16 bytes total) instead of an inline vector.
 */

#ifndef DWS_MEM_SHARERS_HH
#define DWS_MEM_SHARERS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace dws {

/** Set of WPU ids holding a copy of a cache line. */
class SharerSet
{
  public:
    /** Add a WPU to the set. */
    void
    add(WpuId w)
    {
        const unsigned i = index(w);
        if (i < 64) {
            lo_ |= word(i);
            return;
        }
        const std::size_t slot = i / 64 - 1;
        if (!hi_)
            hi_ = std::make_unique<std::vector<std::uint64_t>>();
        if (hi_->size() <= slot)
            hi_->resize(slot + 1, 0);
        (*hi_)[slot] |= word(i % 64);
    }

    /** Remove a WPU from the set (no-op if absent). */
    void
    remove(WpuId w)
    {
        const unsigned i = index(w);
        if (i < 64) {
            lo_ &= ~word(i);
            return;
        }
        const std::size_t slot = i / 64 - 1;
        if (hi_ && slot < hi_->size())
            (*hi_)[slot] &= ~word(i % 64);
    }

    /** @return true if the WPU is in the set. */
    bool
    test(WpuId w) const
    {
        const unsigned i = index(w);
        if (i < 64)
            return (lo_ >> i) & 1u;
        const std::size_t slot = i / 64 - 1;
        return hi_ && slot < hi_->size() &&
               (((*hi_)[slot] >> (i % 64)) & 1u);
    }

    /** @return number of WPUs in the set. */
    int
    count() const
    {
        int n = __builtin_popcountll(lo_);
        if (hi_) {
            for (std::uint64_t w : *hi_)
                n += __builtin_popcountll(w);
        }
        return n;
    }

    bool
    empty() const
    {
        if (lo_ != 0)
            return false;
        if (hi_) {
            for (std::uint64_t w : *hi_)
                if (w != 0)
                    return false;
        }
        return true;
    }

    /** @return true if the set is empty or contains only `w`. */
    bool
    noneExcept(WpuId w) const
    {
        const unsigned i = index(w);
        if (i < 64) {
            if ((lo_ & ~word(i)) != 0)
                return false;
        } else if (lo_ != 0) {
            return false;
        }
        if (hi_) {
            for (std::size_t s = 0; s < hi_->size(); s++) {
                std::uint64_t v = (*hi_)[s];
                if (i >= 64 && s == i / 64 - 1)
                    v &= ~word(i % 64);
                if (v != 0)
                    return false;
            }
        }
        return true;
    }

    /** Empty the set. */
    void
    clear()
    {
        lo_ = 0;
        hi_.reset();
    }

    /** Replace the set's contents with exactly `w`. */
    void
    reset(WpuId w)
    {
        clear();
        add(w);
    }

    /** Invoke fn(WpuId) for every member, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        forWord(lo_, 0, fn);
        if (hi_) {
            for (std::size_t s = 0; s < hi_->size(); s++)
                forWord((*hi_)[s], (static_cast<int>(s) + 1) * 64, fn);
        }
    }

  private:
    static unsigned
    index(WpuId w)
    {
        return static_cast<unsigned>(w);
    }

    static std::uint64_t
    word(unsigned bit)
    {
        return std::uint64_t(1) << bit;
    }

    template <typename Fn>
    static void
    forWord(std::uint64_t v, int base, Fn &&fn)
    {
        while (v != 0) {
            const int b = __builtin_ctzll(v);
            fn(static_cast<WpuId>(base + b));
            v &= v - 1;
        }
    }

    std::uint64_t lo_ = 0;  ///< WPU ids 0..63
    /** Bitmap for ids >= 64 (64 per word); allocated only when used. */
    std::unique_ptr<std::vector<std::uint64_t>> hi_;
};

} // namespace dws

#endif // DWS_MEM_SHARERS_HH
