/**
 * @file
 * Functional (architectural) memory: a flat array of 64-bit words.
 *
 * The simulator executes "functional-first": loads and stores update
 * architectural state the moment the instruction issues, while the
 * timing model separately decides when the issuing SIMD group may
 * proceed. This is safe because kernels written for the SIMT model only
 * communicate across explicit barriers (paper Section 5.4).
 */

#ifndef DWS_MEM_MEMORY_HH
#define DWS_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace dws {

/** Flat word-addressable simulated memory. */
class Memory
{
  public:
    /** Create a memory of sizeBytes (rounded up to a whole word). */
    explicit Memory(std::uint64_t sizeBytes = 0);

    /** Resize (zero-filling) to at least sizeBytes. */
    void resize(std::uint64_t sizeBytes);

    /** @return memory size in bytes. */
    std::uint64_t sizeBytes() const { return words.size() * kWordBytes; }

    /** Read the 64-bit word at byte address addr (must be 8-aligned). */
    std::int64_t read(Addr addr) const;

    /** Write the 64-bit word at byte address addr (must be 8-aligned). */
    void write(Addr addr, std::int64_t value);

    /** Word-indexed convenience accessors for host-side setup. */
    std::int64_t readWord(std::uint64_t wordIdx) const;
    void writeWord(std::uint64_t wordIdx, std::int64_t value);

    /** Zero all contents. */
    void clear();

  private:
    std::uint64_t checkAddr(Addr addr) const;

    std::vector<std::int64_t> words;
};

} // namespace dws

#endif // DWS_MEM_MEMORY_HH
