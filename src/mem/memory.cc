#include "mem/memory.hh"

#include "sim/logging.hh"

namespace dws {

Memory::Memory(std::uint64_t sizeBytes)
{
    resize(sizeBytes);
}

void
Memory::resize(std::uint64_t sizeBytes)
{
    const std::uint64_t need = (sizeBytes + kWordBytes - 1) / kWordBytes;
    if (need > words.size())
        words.resize(need, 0);
}

std::uint64_t
Memory::checkAddr(Addr addr) const
{
    if (addr % kWordBytes != 0)
        panic("unaligned memory access at %#llx", (unsigned long long)addr);
    const std::uint64_t idx = addr / kWordBytes;
    if (idx >= words.size())
        panic("memory access at %#llx beyond size %#llx",
              (unsigned long long)addr, (unsigned long long)sizeBytes());
    return idx;
}

std::int64_t
Memory::read(Addr addr) const
{
    return words[checkAddr(addr)];
}

void
Memory::write(Addr addr, std::int64_t value)
{
    words[checkAddr(addr)] = value;
}

std::int64_t
Memory::readWord(std::uint64_t wordIdx) const
{
    return read(wordIdx * kWordBytes);
}

void
Memory::writeWord(std::uint64_t wordIdx, std::int64_t value)
{
    write(wordIdx * kWordBytes, value);
}

void
Memory::clear()
{
    std::fill(words.begin(), words.end(), 0);
}

} // namespace dws
