#include "mem/dram.hh"

namespace dws {

Cycle
Dram::access(Cycle earliest, int bytes)
{
    const Cycle start = earliest > nextFree ? earliest : nextFree;
    const auto occupancy = static_cast<Cycle>(
            (bytes + bytesPerCycle - 1.0) / bytesPerCycle);
    nextFree = start + (occupancy ? occupancy : 1);
    accesses++;
    return nextFree + latency;
}

} // namespace dws
