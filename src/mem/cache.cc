#include "mem/cache.hh"

#include "sim/logging.hh"

namespace dws {

const char *
coherStateName(CoherState s)
{
    switch (s) {
      case CoherState::Invalid:   return "I";
      case CoherState::Shared:    return "S";
      case CoherState::Exclusive: return "E";
      case CoherState::Modified:  return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheConfig &cfg, std::string name,
                       int indexShift)
    : cfg_(cfg), name_(std::move(name)), indexShift_(indexShift)
{
    const std::uint64_t nLines = cfg_.sizeBytes / cfg_.lineBytes;
    if (nLines == 0)
        fatal("cache '%s' has no lines", name_.c_str());
    if (cfg_.assoc == 0) {
        sets_ = 1;
        ways_ = static_cast<int>(nLines);
    } else {
        sets_ = cfg_.numSets();
        ways_ = cfg_.assoc;
    }
    if ((sets_ & (sets_ - 1)) != 0)
        fatal("cache '%s': set count %d is not a power of two",
              name_.c_str(), sets_);
    lines_.resize(static_cast<size_t>(sets_) * ways_);
}

int
CacheArray::setIndex(Addr line) const
{
    return static_cast<int>(((line / cfg_.lineBytes) >> indexShift_) &
                            static_cast<Addr>(sets_ - 1));
}

CacheLine *
CacheArray::find(Addr line)
{
    CacheLine *set = &lines_[static_cast<size_t>(setIndex(line)) * ways_];
    for (int w = 0; w < ways_; w++) {
        if (set[w].valid() && set[w].tag == line)
            return &set[w];
    }
    return nullptr;
}

const CacheLine *
CacheArray::find(Addr line) const
{
    const CacheLine *set =
            &lines_[static_cast<size_t>(setIndex(line)) * ways_];
    for (int w = 0; w < ways_; w++) {
        if (set[w].valid() && set[w].tag == line)
            return &set[w];
    }
    return nullptr;
}

CacheLine *
CacheArray::allocate(Addr line, Cycle now,
                     const std::function<void(Addr, CoherState)> &evictCb)
{
    CacheLine *set = &lines_[static_cast<size_t>(setIndex(line)) * ways_];
    CacheLine *victim = nullptr;
    for (int w = 0; w < ways_; w++) {
        CacheLine &l = set[w];
        if (!l.valid()) {
            victim = &l;
            break;
        }
        if (l.readyAt > now)
            continue; // pending fill: pinned
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (!victim)
        return nullptr;
    if (victim->valid()) {
        DWS_TRACE(trace_, cacheEvict(traceOwner_, victim->tag,
                                     static_cast<std::uint32_t>(
                                             victim->state)));
        if (evictCb)
            evictCb(victim->tag, victim->state);
    }
    *victim = CacheLine{};
    victim->tag = line;
    victim->lastUse = now + 1;
    return victim;
}

CoherState
CacheArray::invalidate(Addr line)
{
    CacheLine *l = find(line);
    if (!l)
        return CoherState::Invalid;
    const CoherState prior = l->state;
    *l = CacheLine{};
    return prior;
}

int
CacheArray::validLines() const
{
    int n = 0;
    for (const auto &l : lines_)
        if (l.valid())
            n++;
    return n;
}

std::vector<int>
CacheArray::duplicateTagSets() const
{
    std::vector<int> out;
    for (int s = 0; s < sets_; s++) {
        const CacheLine *set = &lines_[static_cast<size_t>(s) * ways_];
        bool dup = false;
        for (int a = 0; a < ways_ && !dup; a++) {
            if (!set[a].valid())
                continue;
            for (int b = a + 1; b < ways_; b++) {
                if (set[b].valid() && set[b].tag == set[a].tag) {
                    dup = true;
                    break;
                }
            }
        }
        if (dup)
            out.push_back(s);
    }
    return out;
}

} // namespace dws
