/**
 * @file
 * Miss Status Holding Registers.
 *
 * One MSHR tracks one outstanding missing cache line; requests from the
 * same warp to the same line are coalesced into the MSHR as "targets"
 * (paper Section 3.3: "All requests from a warp to the same cache line
 * are coalesced in the MSHR. Each MSHR hosts a cache line and can track
 * as many requests to that line as the SIMD width requires").
 */

#ifndef DWS_MEM_MSHR_HH
#define DWS_MEM_MSHR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/types.hh"

namespace dws {

/** State of one outstanding miss. */
struct MshrEntry
{
    Cycle readyAt = 0;   ///< when the fill completes
    int targets = 0;     ///< coalesced requests so far
    bool write = false;  ///< exclusive (GetX) transaction
};

/** A file of MSHRs for one cache. */
class MshrFile
{
  public:
    /**
     * @param numEntries number of MSHRs
     * @param maxTargets coalesced-request capacity per MSHR
     */
    MshrFile(int numEntries, int maxTargets)
        : capacity(numEntries), maxTargets(maxTargets)
    {}

    /** @return the entry for a pending line, or nullptr. */
    MshrEntry *find(Addr line);

    /** @return true if a new MSHR can be allocated. */
    bool available() const
    {
        return static_cast<int>(pending.size()) < capacity;
    }

    /**
     * Allocate an MSHR for a missing line.
     * @return the new entry, or nullptr if the file is full.
     */
    MshrEntry *allocate(Addr line, Cycle readyAt, bool write);

    /**
     * Coalesce one more request into an existing entry.
     * @return false if the entry's target capacity is exhausted.
     */
    bool addTarget(MshrEntry *entry);

    /** Release the MSHR for a completed line fill. */
    void release(Addr line);

    /** @return number of in-flight MSHRs. */
    int inUse() const { return static_cast<int>(pending.size()); }

    /**
     * @return the earliest completion among in-flight MSHRs, or
     *         nullopt when nothing is in flight. (Cycle 0 is a
     *         legitimate readyAt, so absence is explicit rather than a
     *         0 sentinel.)
     */
    std::optional<Cycle> earliestReady() const;

    /**
     * @return entries whose fill completed strictly before `now` but
     *         were never released — leaked release events (audits).
     */
    int overdueEntries(Cycle now) const;

  private:
    /** The fault injector inspects pending entries (src/fault/). */
    friend class FaultInjector;

    int capacity;
    int maxTargets;
    std::unordered_map<Addr, MshrEntry> pending;
};

} // namespace dws

#endif // DWS_MEM_MSHR_HH
