/**
 * @file
 * Miss Status Holding Registers.
 *
 * One MSHR tracks one outstanding missing cache line; requests from the
 * same warp to the same line are coalesced into the MSHR as "targets"
 * (paper Section 3.3: "All requests from a warp to the same cache line
 * are coalesced in the MSHR. Each MSHR hosts a cache line and can track
 * as many requests to that line as the SIMD width requires").
 *
 * The file is split two ways (esesc HierMSHR-style, SNIPPETS.md §3):
 *
 *  - *Banked up side.* Entries for misses travelling toward memory are
 *    steered to a bank by line address; a full bank rejects a new miss
 *    even while other banks have room. Every legacy config uses one
 *    bank, which degenerates to the classic fully shared file.
 *  - *Down side.* Writebacks/evictions travelling toward memory are
 *    tracked in a separate, per-bank down file. It is observational:
 *    occupancy and overflow are counted for audits and stats, but a
 *    full down bank never stalls the simulated machine, so enabling
 *    the accounting cannot perturb timing.
 */

#ifndef DWS_MEM_MSHR_HH
#define DWS_MEM_MSHR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dws {

/** State of one outstanding miss. */
struct MshrEntry
{
    Cycle readyAt = 0;   ///< when the fill completes
    int targets = 0;     ///< coalesced requests so far
    bool write = false;  ///< exclusive (GetX) transaction
};

/** A file of MSHRs for one cache. */
class MshrFile
{
  public:
    /**
     * Single-bank file (the classic shared organization).
     * @param numEntries number of MSHRs
     * @param maxTargets coalesced-request capacity per MSHR
     */
    MshrFile(int numEntries, int maxTargets);

    /**
     * Banked file from a cache config: cfg.mshrs entries split evenly
     * over cfg.mshrBanks banks, plus cfg.mshrDownEntries down-side
     * entries per bank.
     * @param bankShift line-address bits skipped before bank selection
     *                  (a slice of an interleaved level passes
     *                  log2(slices), mirroring CacheArray's indexShift)
     */
    MshrFile(const CacheConfig &cfg, int bankShift);

    /**
     * @return the bank serving a line address. Line size and bank
     * count are powers of two (enforced at construction), so bank
     * selection on the miss path is a shift and a mask.
     */
    int bankOf(Addr line) const
    {
        return static_cast<int>((line >> addrShift_) & bankMask_);
    }

    /** @return the entry for a pending line, or nullptr. */
    MshrEntry *find(Addr line);

    /** @return true if any MSHR in the whole file is free. */
    bool available() const { return inUse_ < capacity_; }

    /** @return true if the bank serving `line` can allocate. */
    bool available(Addr line) const
    {
        return bankCount_[bankOf(line)] < perBankCap_;
    }

    /**
     * Allocate an MSHR for a missing line.
     * @return the new entry, or nullptr if the line's bank is full.
     */
    MshrEntry *allocate(Addr line, Cycle readyAt, bool write);

    /**
     * Coalesce one more request into an existing entry.
     * @return false if the entry's target capacity is exhausted.
     */
    bool addTarget(MshrEntry *entry);

    /** Release the MSHR for a completed line fill. */
    void release(Addr line);

    /** @return number of in-flight (up-side) MSHRs. */
    int inUse() const { return inUse_; }

    /** @return number of up-side entries in-flight in one bank. */
    int bankInUse(int bank) const { return bankCount_[bank]; }

    /** @return number of up-side banks. */
    int banks() const { return banks_; }

    /** @return up-side entries per bank. */
    int perBankCapacity() const { return perBankCap_; }

    /**
     * @return the earliest completion among in-flight MSHRs, or
     *         nullopt when nothing is in flight. (Cycle 0 is a
     *         legitimate readyAt, so absence is explicit rather than a
     *         0 sentinel.)
     */
    std::optional<Cycle> earliestReady() const;

    /**
     * @return up-side entries whose fill completed strictly before
     *         `now` but were never released — leaked release events
     *         (audits).
     */
    int overdueEntries(Cycle now) const;

    /**
     * Record a writeback/eviction heading toward memory that completes
     * at `completesAt`. Purely observational — see the file comment.
     */
    void noteDown(Addr line, Cycle completesAt, Cycle now);

    /** @return down-side entries still in flight at `now`. */
    int downInUse(Cycle now);

    /** @return peak down-side occupancy across the whole run. */
    int downPeak() const { return downPeak_; }

    /** @return times a down bank was full when a writeback arrived. */
    std::uint64_t downFullEvents() const { return downFullEvents_; }

  private:
    /** The fault injector inspects pending entries (src/fault/). */
    friend class FaultInjector;

    /** Drop down-side entries that completed at or before `now`. */
    void purgeDown(Cycle now);

    struct DownEntry
    {
        Addr line = 0;
        Cycle completesAt = 0;
        int bank = 0;
    };

    int capacity_;
    int perBankCap_;
    int banks_ = 1;
    int addrShift_ = 0;          ///< log2(lineBytes) + bankShift
    unsigned bankMask_ = 0;      ///< banks - 1
    int maxTargets_;
    int inUse_ = 0;
    std::vector<int> bankCount_;
    std::unordered_map<Addr, MshrEntry> pending;

    int downCapPerBank_ = 0;
    int downPeak_ = 0;
    std::uint64_t downFullEvents_ = 0;
    std::vector<DownEntry> downs_;
    std::vector<int> downBankCount_;
};

} // namespace dws

#endif // DWS_MEM_MSHR_HH
