#include "mem/directory.hh"

namespace dws {

namespace {
std::uint32_t
bit(WpuId w)
{
    return 1u << static_cast<unsigned>(w);
}
} // namespace

int
Directory::sharerCount(const CacheLine &line)
{
    return __builtin_popcount(line.sharers);
}

DirOutcome
Directory::getS(CacheLine &line, WpuId wpu)
{
    DirOutcome out;
    if (line.owner >= 0 && line.owner != wpu) {
        // Remote M/E owner: recall and downgrade to Shared.
        out.recall = true;
        out.dirtyRecall = true; // owner may hold M; charge the data hop
        line.owner = -1;
    }
    const bool alone = line.sharers == 0 ||
                       line.sharers == bit(wpu);
    line.sharers |= bit(wpu);
    if (alone && line.owner < 0) {
        out.grant = CoherState::Exclusive;
        line.owner = wpu;
    } else {
        out.grant = CoherState::Shared;
        // A downgraded owner keeps a Shared copy; previous owner cleared.
    }
    return out;
}

DirOutcome
Directory::getX(CacheLine &line, WpuId wpu)
{
    DirOutcome out;
    if (line.owner >= 0 && line.owner != wpu) {
        out.recall = true;
        out.dirtyRecall = true;
        line.owner = -1;
    }
    const std::uint32_t others = line.sharers & ~bit(wpu);
    out.invalidations = __builtin_popcount(others);
    line.sharers = bit(wpu);
    line.owner = wpu;
    out.grant = CoherState::Modified;
    return out;
}

void
Directory::removeSharer(CacheLine &line, WpuId wpu)
{
    line.sharers &= ~bit(wpu);
    if (line.owner == wpu)
        line.owner = -1;
}

} // namespace dws
