#include "mem/directory.hh"

namespace dws {

int
Directory::sharerCount(const CacheLine &line)
{
    return line.sharers.count();
}

DirOutcome
Directory::getS(CacheLine &line, WpuId wpu)
{
    DirOutcome out;
    if (line.owner >= 0 && line.owner != wpu) {
        // Remote M/E owner: recall and downgrade to Shared.
        out.recall = true;
        out.dirtyRecall = true; // owner may hold M; charge the data hop
        line.owner = -1;
    }
    const bool alone = line.sharers.noneExcept(wpu);
    line.sharers.add(wpu);
    if (alone && line.owner < 0) {
        out.grant = CoherState::Exclusive;
        line.owner = wpu;
    } else {
        out.grant = CoherState::Shared;
        // A downgraded owner keeps a Shared copy; previous owner cleared.
    }
    return out;
}

DirOutcome
Directory::getX(CacheLine &line, WpuId wpu)
{
    DirOutcome out;
    if (line.owner >= 0 && line.owner != wpu) {
        out.recall = true;
        out.dirtyRecall = true;
        line.owner = -1;
    }
    out.invalidations =
            line.sharers.count() - (line.sharers.test(wpu) ? 1 : 0);
    line.sharers.reset(wpu);
    line.owner = wpu;
    out.grant = CoherState::Modified;
    return out;
}

void
Directory::removeSharer(CacheLine &line, WpuId wpu)
{
    line.sharers.remove(wpu);
    if (line.owner == wpu)
        line.owner = -1;
}

} // namespace dws
