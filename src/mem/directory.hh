/**
 * @file
 * Directory bookkeeping helpers for the MESI protocol at the first
 * shared level of the fabric (the L2 in the default machine).
 *
 * The directory state itself lives in that level's CacheLine entries
 * (width-independent sharer set + exclusive owner); this class wraps
 * the transitions so memsys.cc stays readable and the protocol is
 * unit-testable.
 */

#ifndef DWS_MEM_DIRECTORY_HH
#define DWS_MEM_DIRECTORY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "sim/types.hh"

namespace dws {

/** Result of a directory transition: what the requester must pay for. */
struct DirOutcome
{
    /** A recall (probe of a remote M/E owner) was needed. */
    bool recall = false;
    /** The recalled owner held the line Modified (dirty data motion). */
    bool dirtyRecall = false;
    /** Number of sharer invalidations sent (GetX only). */
    int invalidations = 0;
    /** Coherence state granted to the requester's L1 copy. */
    CoherState grant = CoherState::Shared;
};

/** MESI directory transition functions over an L2 line. */
class Directory
{
  public:
    /**
     * Apply a GetS (read) from `wpu` to the directory state of `line`.
     * Downgrades a remote exclusive owner to Shared if present.
     */
    static DirOutcome getS(CacheLine &line, WpuId wpu);

    /**
     * Apply a GetX (write/upgrade) from `wpu`: invalidates all other
     * sharers and recalls a remote owner; grants Modified.
     */
    static DirOutcome getX(CacheLine &line, WpuId wpu);

    /** Remove a WPU from the sharer set (L1 eviction / PutS / PutM). */
    static void removeSharer(CacheLine &line, WpuId wpu);

    /** @return true if the WPU is recorded as holding the line. */
    static bool isSharer(const CacheLine &line, WpuId wpu)
    {
        return line.sharers.test(wpu);
    }

    /** @return number of recorded sharers. */
    static int sharerCount(const CacheLine &line);
};

} // namespace dws

#endif // DWS_MEM_DIRECTORY_HH
