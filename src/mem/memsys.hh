/**
 * @file
 * The coherent two-level memory hierarchy (paper Section 3.3, Table 3).
 *
 * Private, banked L1 D-caches and L1 I-caches per WPU; a shared,
 * inclusive L2 with a directory-based MESI protocol; a bandwidth-limited
 * crossbar between them; fixed-latency pipelined DRAM behind the L2.
 *
 * Timing approximation: coherence state transitions are applied
 * atomically at request-issue time while the requester pays a
 * deterministic latency composed of L1 lookup, crossbar hops, L2
 * lookup, recall/invalidation round trips, DRAM and bandwidth queuing.
 * Requests racing for the same L2 line serialize behind the line's
 * in-flight transaction (MSHR readyAt), which stands in for transient
 * protocol states. See DESIGN.md.
 */

#ifndef DWS_MEM_MEMSYS_HH
#define DWS_MEM_MEMSYS_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/crossbar.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dws {

/** Base of the pseudo address range used for instruction fetches. */
constexpr Addr kInstrAddrBase = Addr(1) << 40;

/** Outcome of one line-granular cache access. */
struct LineResponse
{
    /** Resources exhausted (MSHRs / pinned set); retry next cycle. */
    bool retry = false;
    /** The access hit in the L1 (no outstanding miss). */
    bool l1Hit = false;
    /** Cycle at which the data is available to the requesting threads. */
    Cycle readyAt = 0;
};

/** The full memory hierarchy shared by all WPUs. */
class MemSystem : public EventTarget
{
  public:
    /**
     * @param cfg    system configuration (cache geometry, latencies)
     * @param events shared event queue (for MSHR release timing)
     */
    MemSystem(const SystemConfig &cfg, EventQueue &events);

    /**
     * Access one cache line of data from a WPU's L1 D-cache.
     *
     * @param wpu       requesting WPU
     * @param lineAddr  line-aligned byte address
     * @param write     true for stores (needs M)
     * @param bankDelay queuing cycles from D-cache bank conflicts
     * @param now       current cycle
     */
    LineResponse accessData(WpuId wpu, Addr lineAddr, bool write,
                            int bankDelay, Cycle now);

    /**
     * Fetch one instruction line through a WPU's L1 I-cache.
     * Instruction lines are read-only and not directory-tracked.
     */
    LineResponse accessInstr(WpuId wpu, Addr lineAddr, Cycle now);

    /** Handle an L1/L2 MSHR-release event at its firing cycle. */
    void onSimEvent(const SimEvent &ev) override;

    /** @return the D-cache of a WPU (stats, tests). */
    CacheArray &dcache(WpuId w) { return *dcaches_[static_cast<size_t>(w)]; }
    /** @return the I-cache of a WPU. */
    CacheArray &icache(WpuId w) { return *icaches_[static_cast<size_t>(w)]; }
    /** @return the shared L2. */
    CacheArray &l2() { return *l2_; }

    const CacheArray &
    dcache(WpuId w) const
    {
        return *dcaches_[static_cast<size_t>(w)];
    }
    const CacheArray &
    icache(WpuId w) const
    {
        return *icaches_[static_cast<size_t>(w)];
    }
    const CacheArray &l2() const { return *l2_; }

    /** @return aggregated memory-side statistics. */
    MemStats stats() const;

    /** @return the L1 MSHR file of a WPU (shared I+D; audits). */
    const MshrFile &
    l1MshrFile(WpuId w) const
    {
        return l1Mshrs[static_cast<size_t>(w)];
    }

    /** @return the shared L2 MSHR file (audits). */
    const MshrFile &l2MshrFile() const { return l2Mshrs; }

    /** @return line size in bytes of the D-caches. */
    int lineBytes() const { return cfg.wpu.dcache.lineBytes; }

    /**
     * Attach the tracer (nullptr = off): cache hit/miss bursts and
     * MSHR fill/drain records, plus eviction records from the cache
     * arrays themselves. Purely observational.
     */
    void setTracer(Tracer *t);

  private:
    /**
     * Shared miss path: request hop, L2 (hit/serialize/miss+DRAM),
     * coherence actions, response hop, L1 fill.
     *
     * @param existing a stable L1 line being upgraded (S->M), or nullptr
     */
    LineResponse missPath(WpuId wpu, Addr lineAddr, bool write,
                          int bankDelay, Cycle now, CacheLine *existing,
                          bool instr);

    /** Evict callback applied to an L1 D-cache victim. */
    void evictL1Data(WpuId wpu, Addr lineAddr, CoherState state, Cycle now);

    /** Evict callback applied to an L2 victim (back-invalidation). */
    void evictL2(Addr lineAddr, CoherState state, Cycle now);

    SystemConfig cfg;
    EventQueue &events;
    Tracer *trace_ = nullptr;

    std::vector<std::unique_ptr<CacheArray>> icaches_;
    std::vector<std::unique_ptr<CacheArray>> dcaches_;
    std::unique_ptr<CacheArray> l2_;

    std::vector<MshrFile> l1Mshrs;
    MshrFile l2Mshrs;

    Crossbar xbar;
    Dram dram;

    /** Per-WPU L2 request-channel next-free time (request serialization). */
    std::vector<Cycle> reqChannelFree;

    std::uint64_t coherenceRecalls = 0;
};

} // namespace dws

#endif // DWS_MEM_MEMSYS_HH
