/**
 * @file
 * The coherent memory hierarchy (paper Section 3.3, Table 3),
 * generalized into a composable fabric.
 *
 * Private, banked L1 D-caches and L1 I-caches per WPU, then a chain of
 * shared CacheLevels built by the fabric factory from the system's
 * HierarchySpec — the paper's machine is the 1-entry chain (an
 * inclusive, directory-based L2), but arbitrary depth (L3, L4, ...),
 * address-interleaved slices and banked MSHRs all build from the spec
 * alone. Fixed-latency pipelined DRAM sits behind the last level; the
 * MESI directory lives at the first shared level, which every WPU's
 * link reaches.
 *
 * Timing approximation: coherence state transitions are applied
 * atomically at request-issue time while the requester pays a
 * deterministic latency composed of L1 lookup, link hops, per-level
 * lookups, recall/invalidation round trips, DRAM and bandwidth
 * queuing. Requests racing for the same shared-level line serialize
 * behind the line's in-flight transaction (MSHR readyAt), which stands
 * in for transient protocol states. See DESIGN.md.
 */

#ifndef DWS_MEM_MEMSYS_HH
#define DWS_MEM_MEMSYS_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/level.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dws {

/** Base of the pseudo address range used for instruction fetches. */
constexpr Addr kInstrAddrBase = Addr(1) << 40;

/** Outcome of one line-granular cache access. */
struct LineResponse
{
    /** Resources exhausted (MSHRs / pinned set); retry next cycle. */
    bool retry = false;
    /** The access hit in the L1 (no outstanding miss). */
    bool l1Hit = false;
    /** Cycle at which the data is available to the requesting threads. */
    Cycle readyAt = 0;
};

/** The full memory hierarchy shared by all WPUs. */
class MemSystem : public EventTarget
{
  public:
    /**
     * @param cfg    system configuration (cache geometry, latencies)
     * @param events shared event queue (for MSHR release timing)
     */
    MemSystem(const SystemConfig &cfg, EventQueue &events);

    /**
     * Access one cache line of data from a WPU's L1 D-cache.
     *
     * @param wpu       requesting WPU
     * @param lineAddr  line-aligned byte address
     * @param write     true for stores (needs M)
     * @param bankDelay queuing cycles from D-cache bank conflicts
     * @param now       current cycle
     */
    LineResponse accessData(WpuId wpu, Addr lineAddr, bool write,
                            int bankDelay, Cycle now);

    /**
     * Fetch one instruction line through a WPU's L1 I-cache.
     * Instruction lines are read-only and not directory-tracked.
     */
    LineResponse accessInstr(WpuId wpu, Addr lineAddr, Cycle now);

    /** Handle an L1/shared-level MSHR-release event at its cycle. */
    void onSimEvent(const SimEvent &ev) override;

    /** @return the D-cache of a WPU (stats, tests). */
    CacheArray &dcache(WpuId w) { return *dcaches_[static_cast<size_t>(w)]; }
    /** @return the I-cache of a WPU. */
    CacheArray &icache(WpuId w) { return *icaches_[static_cast<size_t>(w)]; }
    /** @return slice 0 of the first shared level (the classic L2). */
    CacheArray &l2() { return levels_[0]->slice(0); }

    const CacheArray &
    dcache(WpuId w) const
    {
        return *dcaches_[static_cast<size_t>(w)];
    }
    const CacheArray &
    icache(WpuId w) const
    {
        return *icaches_[static_cast<size_t>(w)];
    }
    const CacheArray &l2() const { return levels_[0]->slice(0); }

    /** @return number of shared fabric levels (1 = classic L2-only). */
    int sharedLevels() const { return static_cast<int>(levels_.size()); }

    /** @return slice count of shared level `li` (0 = L2). */
    int sliceCount(int li) const { return levels_[li]->sliceCount(); }

    /** @return tag-array slice `s` of shared level `li`. */
    CacheArray &sharedCache(int li, int s) { return levels_[li]->slice(s); }
    const CacheArray &
    sharedCache(int li, int s) const
    {
        return levels_[li]->slice(s);
    }

    /** @return MSHR file of slice `s` of shared level `li` (audits). */
    const MshrFile &
    sharedMshrFile(int li, int s) const
    {
        return levels_[li]->mshrFile(s);
    }

    /** @return the whole CacheLevel (tests, factory inspection). */
    const CacheLevel &level(int li) const { return *levels_[li]; }

    /** @return aggregated memory-side statistics. */
    MemStats stats() const;

    /** @return the L1 MSHR file of a WPU (shared I+D; audits). */
    const MshrFile &
    l1MshrFile(WpuId w) const
    {
        return l1Mshrs[static_cast<size_t>(w)];
    }

    /** @return the MSHR file of the first shared level's slice 0. */
    const MshrFile &l2MshrFile() const { return levels_[0]->mshrFile(0); }

    /** @return line size in bytes of the D-caches. */
    int lineBytes() const { return cfg.wpu.dcache.lineBytes; }

    /**
     * Attach the tracer (nullptr = off): cache hit/miss bursts and
     * MSHR fill/drain records, plus eviction records from the cache
     * arrays themselves. Purely observational.
     */
    void setTracer(Tracer *t);

  private:
    /**
     * Shared miss path: request hop, descent through the shared levels
     * (hit / serialize behind an in-flight fill / miss+descend, DRAM
     * past the last level), fills unwound deepest-first, coherence
     * actions at the directory level, response hop, L1 fill.
     *
     * @param existing a stable L1 line being upgraded (S->M), or nullptr
     */
    LineResponse missPath(WpuId wpu, Addr lineAddr, bool write,
                          int bankDelay, Cycle now, CacheLine *existing,
                          bool instr);

    /** Evict callback applied to an L1 D-cache victim. */
    void evictL1Data(WpuId wpu, Addr lineAddr, CoherState state, Cycle now);

    /**
     * Evict callback applied to a shared-level victim: back-invalidate
     * the L1s and every shallower shared level (the fabric is
     * inclusive), write dirty data down.
     */
    void evictShared(int li, Addr lineAddr, CoherState state, Cycle now);

    SystemConfig cfg;
    EventQueue &events;
    Tracer *trace_ = nullptr;

    std::vector<std::unique_ptr<CacheArray>> icaches_;
    std::vector<std::unique_ptr<CacheArray>> dcaches_;
    std::vector<MshrFile> l1Mshrs;

    /** Shared levels, nearest-to-WPU first (levels_[0] = directory). */
    std::vector<std::unique_ptr<CacheLevel>> levels_;

    Dram dram;

    std::uint64_t coherenceRecalls = 0;
};

} // namespace dws

#endif // DWS_MEM_MEMSYS_HH
