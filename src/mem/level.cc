#include "mem/level.hh"

#include "sim/logging.hh"

namespace dws {

namespace {

int
log2OfPow2(int v)
{
    int s = 0;
    while ((1 << s) < v)
        s++;
    return s;
}

} // namespace

CacheLevel::CacheLevel(const LevelSpec &spec, int index, int numWpus)
    : link(spec.linkLatency, spec.linkBytesPerCycle,
           spec.linkRequestCycles),
      spec_(spec), index_(index),
      name_("l" + std::to_string(index + 2))
{
    if (spec_.slices < 1 || (spec_.slices & (spec_.slices - 1)) != 0)
        fatal("%s: slice count %d is not a power of two", name_.c_str(),
              spec_.slices);
    const std::uint64_t lb = spec_.cache.lineBytes;
    if (lb == 0 || (lb & (lb - 1)) != 0)
        fatal("%s: line size %llu is not a power of two", name_.c_str(),
              (unsigned long long)lb);
    for (std::uint64_t b = lb; b > 1; b >>= 1)
        lineShift_++;
    sliceMask_ = static_cast<Addr>(spec_.slices) - 1;
    const int shift = log2OfPow2(spec_.slices);
    for (int s = 0; s < spec_.slices; s++) {
        std::string sliceName = name_;
        if (spec_.slices > 1)
            sliceName += "." + std::to_string(s);
        slices_.push_back(std::make_unique<CacheArray>(
                spec_.cache, sliceName, shift));
        mshrs_.push_back(std::make_unique<MshrFile>(spec_.cache, shift));
    }
    if (index == 0)
        reqChannelFree.assign(numWpus, 0);
}

void
CacheLevel::setTracer(Tracer *t)
{
    for (auto &s : slices_)
        s->setTracer(t, kTraceSystemWpu);
}

std::vector<std::unique_ptr<CacheLevel>>
buildFabric(const HierarchySpec &spec, int numWpus)
{
    if (spec.levels.empty())
        fatal("cache fabric needs at least one shared level");
    std::vector<std::unique_ptr<CacheLevel>> levels;
    for (std::size_t i = 0; i < spec.levels.size(); i++) {
        levels.push_back(std::make_unique<CacheLevel>(
                spec.levels[i], static_cast<int>(i), numWpus));
    }
    for (std::size_t i = 0; i + 1 < levels.size(); i++)
        levels[i]->connect(levels[i + 1].get());
    return levels;
}

} // namespace dws
