/**
 * @file
 * Off-chip memory timing: fixed access latency, pipelined requests,
 * bounded bus bandwidth (paper Table 3: 100 cycles, 16 GB/s bus).
 */

#ifndef DWS_MEM_DRAM_HH
#define DWS_MEM_DRAM_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dws {

/** DRAM timing model. */
class Dram
{
  public:
    explicit Dram(const MemConfig &cfg)
        : latency(cfg.dramLatency), bytesPerCycle(cfg.dramBytesPerCycle)
    {}

    /**
     * Reserve bus bandwidth for a line transfer starting no earlier
     * than `earliest`.
     *
     * @return completion cycle of the access (bus occupancy + latency).
     */
    Cycle access(Cycle earliest, int bytes);

    /** Total accesses performed (reads + writebacks). */
    std::uint64_t accesses = 0;

  private:
    int latency;
    double bytesPerCycle;
    Cycle nextFree = 0;
};

} // namespace dws

#endif // DWS_MEM_DRAM_HH
