#include "mem/mshr.hh"

#include "sim/logging.hh"

namespace dws {

MshrEntry *
MshrFile::find(Addr line)
{
    auto it = pending.find(line);
    return it == pending.end() ? nullptr : &it->second;
}

MshrEntry *
MshrFile::allocate(Addr line, Cycle readyAt, bool write)
{
    if (!available())
        return nullptr;
    if (pending.count(line))
        panic("MSHR double-allocated for line %#llx",
              (unsigned long long)line);
    MshrEntry &e = pending[line];
    e.readyAt = readyAt;
    e.targets = 1;
    e.write = write;
    return &e;
}

bool
MshrFile::addTarget(MshrEntry *entry)
{
    if (entry->targets >= maxTargets)
        return false;
    entry->targets++;
    return true;
}

void
MshrFile::release(Addr line)
{
    pending.erase(line);
}

int
MshrFile::overdueEntries(Cycle now) const
{
    int n = 0;
    for (const auto &[line, e] : pending) {
        if (e.readyAt < now)
            n++;
    }
    return n;
}

std::optional<Cycle>
MshrFile::earliestReady() const
{
    std::optional<Cycle> best;
    for (const auto &[line, e] : pending) {
        if (!best || e.readyAt < *best)
            best = e.readyAt;
    }
    return best;
}

} // namespace dws
