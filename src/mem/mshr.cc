#include "mem/mshr.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dws {

MshrFile::MshrFile(int numEntries, int maxTargets)
    : capacity_(numEntries), perBankCap_(numEntries),
      maxTargets_(maxTargets), bankCount_(1, 0), downBankCount_(1, 0)
{
    if (numEntries <= 0 || maxTargets <= 0)
        fatal("MSHR file needs positive entries and targets");
    downCapPerBank_ = CacheConfig{}.mshrDownEntries;
}

MshrFile::MshrFile(const CacheConfig &cfg, int bankShift)
    : capacity_(cfg.mshrs), banks_(cfg.mshrBanks),
      maxTargets_(cfg.mshrTargets), downCapPerBank_(cfg.mshrDownEntries)
{
    if (banks_ <= 0 || capacity_ % banks_ != 0)
        fatal("MSHR file: %d entries not divisible across %d banks",
              capacity_, banks_);
    if ((banks_ & (banks_ - 1)) != 0)
        fatal("MSHR file: bank count %d is not a power of two", banks_);
    if (cfg.lineBytes == 0 ||
        (cfg.lineBytes & (cfg.lineBytes - 1)) != 0) {
        fatal("MSHR file: line size %llu is not a power of two",
              (unsigned long long)cfg.lineBytes);
    }
    bankMask_ = static_cast<unsigned>(banks_) - 1;
    addrShift_ = bankShift;
    for (std::uint64_t b = cfg.lineBytes; b > 1; b >>= 1)
        addrShift_++;
    perBankCap_ = capacity_ / banks_;
    bankCount_.assign(banks_, 0);
    downBankCount_.assign(banks_, 0);
}

MshrEntry *
MshrFile::find(Addr line)
{
    auto it = pending.find(line);
    return it == pending.end() ? nullptr : &it->second;
}

MshrEntry *
MshrFile::allocate(Addr line, Cycle readyAt, bool write)
{
    if (!available(line))
        return nullptr;
    if (pending.count(line))
        panic("MSHR double-allocated for line %#llx",
              (unsigned long long)line);
    MshrEntry &e = pending[line];
    e.readyAt = readyAt;
    e.targets = 1;
    e.write = write;
    inUse_++;
    bankCount_[bankOf(line)]++;
    return &e;
}

bool
MshrFile::addTarget(MshrEntry *entry)
{
    if (entry->targets >= maxTargets_)
        return false;
    entry->targets++;
    return true;
}

void
MshrFile::release(Addr line)
{
    if (pending.erase(line)) {
        inUse_--;
        bankCount_[bankOf(line)]--;
    }
}

int
MshrFile::overdueEntries(Cycle now) const
{
    int n = 0;
    for (const auto &[line, e] : pending) {
        if (e.readyAt < now)
            n++;
    }
    return n;
}

std::optional<Cycle>
MshrFile::earliestReady() const
{
    std::optional<Cycle> best;
    for (const auto &[line, e] : pending) {
        if (!best || e.readyAt < *best)
            best = e.readyAt;
    }
    return best;
}

void
MshrFile::purgeDown(Cycle now)
{
    for (std::size_t i = downs_.size(); i-- > 0;) {
        if (downs_[i].completesAt <= now) {
            downBankCount_[downs_[i].bank]--;
            downs_[i] = downs_.back();
            downs_.pop_back();
        }
    }
}

void
MshrFile::noteDown(Addr line, Cycle completesAt, Cycle now)
{
    purgeDown(now);
    const int bank = bankOf(line);
    if (downBankCount_[bank] >= downCapPerBank_) {
        // The bank is full: a real machine would stall the eviction,
        // but the down side is observational, so evict the entry that
        // retires soonest and count the overflow instead.
        downFullEvents_++;
        std::size_t victim = downs_.size();
        for (std::size_t i = 0; i < downs_.size(); i++) {
            if (downs_[i].bank != bank)
                continue;
            if (victim == downs_.size() ||
                downs_[i].completesAt < downs_[victim].completesAt) {
                victim = i;
            }
        }
        downBankCount_[downs_[victim].bank]--;
        downs_[victim] = downs_.back();
        downs_.pop_back();
    }
    downs_.push_back({line, completesAt, bank});
    downBankCount_[bank]++;
    downPeak_ = std::max(downPeak_, static_cast<int>(downs_.size()));
}

int
MshrFile::downInUse(Cycle now)
{
    purgeDown(now);
    return static_cast<int>(downs_.size());
}

} // namespace dws
