/**
 * @file
 * One shared level of the composable cache fabric.
 *
 * A CacheLevel bundles everything one shared cache needs: its
 * address-interleaved tag-array slices, a banked MSHR file per slice,
 * and the bandwidth-limited link that connects it to the level above
 * (the per-WPU L1s for level 0, the previous shared level otherwise).
 * The factory `buildFabric()` turns a declarative HierarchySpec into a
 * connect()-wired chain of levels (FlexiCAS-style, SNIPPETS.md §2):
 *
 *     L1s  --link-->  levels[0] (L2, directory)  --link-->  levels[1]
 *                      (L3)  --...-->  DRAM
 *
 * MemSystem walks the chain generically; nothing in the miss path
 * names L2 or L3 explicitly anymore.
 */

#ifndef DWS_MEM_LEVEL_HH
#define DWS_MEM_LEVEL_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "mem/crossbar.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace dws {

/** One shared cache level: slices + MSHRs + upward link. */
class CacheLevel
{
  public:
    /**
     * @param spec    geometry of this level and its upward link
     * @param index   depth among shared levels (0 = nearest the WPUs)
     * @param numWpus clients of level 0's link (request channels)
     */
    CacheLevel(const LevelSpec &spec, int index, int numWpus);

    /** Wire this level to the one below it (nullptr = DRAM next). */
    void connect(CacheLevel *below) { below_ = below; }

    /** @return the level below, or nullptr when DRAM is next. */
    CacheLevel *below() const { return below_; }

    /** @return depth among shared levels (0 = L2). */
    int index() const { return index_; }

    /** @return "l2", "l3", ... */
    const std::string &name() const { return name_; }

    /** @return number of address-interleaved slices. */
    int sliceCount() const { return static_cast<int>(slices_.size()); }

    /**
     * @return the slice id serving a line address. Line size and slice
     * count are powers of two (enforced at construction), so the miss
     * path's slice decode is a shift and a mask, not a division.
     */
    int sliceOf(Addr line) const
    {
        return static_cast<int>((line >> lineShift_) & sliceMask_);
    }

    /** @return the tag-array slice serving a line address. */
    CacheArray &sliceFor(Addr line) { return *slices_[sliceOf(line)]; }

    /** @return the MSHR file of the slice serving a line address. */
    MshrFile &mshrFor(Addr line) { return *mshrs_[sliceOf(line)]; }

    /** @return slice `s`'s tag array. */
    CacheArray &slice(int s) { return *slices_[s]; }
    const CacheArray &slice(int s) const { return *slices_[s]; }

    /** @return slice `s`'s MSHR file. */
    MshrFile &mshrFile(int s) { return *mshrs_[s]; }
    const MshrFile &mshrFile(int s) const { return *mshrs_[s]; }

    /** @return this level's geometry and link spec. */
    const LevelSpec &spec() const { return spec_; }

    /** @return total capacity across slices, in bytes. */
    std::uint64_t totalBytes() const
    {
        return spec_.cache.sizeBytes * slices_.size();
    }

    /** Attach the tracer to every slice (nullptr = off). */
    void setTracer(Tracer *t);

    /** Upward link (crossbar for level 0, on-die link deeper). */
    Crossbar link;

    /**
     * Per-client next-accept time on the upward link: one entry per
     * WPU at level 0 (request-channel serialization, Table 3). Deeper
     * levels leave it empty — their request slots are not modeled.
     */
    std::vector<Cycle> reqChannelFree;

  private:
    LevelSpec spec_;
    int index_;
    int lineShift_ = 0;     ///< log2(lineBytes)
    Addr sliceMask_ = 0;    ///< slices - 1
    std::string name_;
    CacheLevel *below_ = nullptr;
    std::vector<std::unique_ptr<CacheArray>> slices_;
    std::vector<std::unique_ptr<MshrFile>> mshrs_;
};

/**
 * Build and connect() every shared level of `spec`.
 * @return the chain, nearest-to-WPU first.
 */
std::vector<std::unique_ptr<CacheLevel>>
buildFabric(const HierarchySpec &spec, int numWpus);

} // namespace dws

#endif // DWS_MEM_LEVEL_HH
