/**
 * @file
 * A bandwidth-limited link between adjacent cache levels: the crossbar
 * joining the private L1s to the first shared level, and the narrower
 * on-die links between deeper shared levels.
 *
 * Modeled as a fixed per-hop latency plus a next-free-time bandwidth
 * account for line-sized data transfers (paper Table 3: 300 MHz,
 * 57 GB/s, here expressed in WPU cycles).
 */

#ifndef DWS_MEM_CROSSBAR_HH
#define DWS_MEM_CROSSBAR_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace dws {

/** Crossbar timing model. */
class Crossbar
{
  public:
    explicit Crossbar(const MemConfig &cfg)
        : latency(cfg.xbarLatency), bytesPerCycle(cfg.xbarBytesPerCycle),
          reqCycles(cfg.xbarRequestCycles)
    {}

    /** Link of explicit geometry (fabric levels, LevelSpec). */
    Crossbar(int hopLatency, double bytesPerCycle, int requestCycles)
        : latency(hopLatency), bytesPerCycle(bytesPerCycle),
          reqCycles(requestCycles)
    {}

    /** @return the one-way traversal latency in cycles. */
    int hopLatency() const { return latency; }

    /** @return cycles between successive requests from one client. */
    int requestCycles() const { return reqCycles; }

    /**
     * Reserve bandwidth for a data transfer of the given size starting
     * no earlier than `earliest`.
     *
     * @return the cycle at which the transfer completes (including the
     *         hop latency).
     */
    Cycle transfer(Cycle earliest, int bytes);

    /** Total data transfers performed. */
    std::uint64_t transfers = 0;

  private:
    int latency;
    double bytesPerCycle;
    int reqCycles;
    Cycle nextFree = 0;
};

} // namespace dws

#endif // DWS_MEM_CROSSBAR_HH
