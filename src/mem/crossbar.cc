#include "mem/crossbar.hh"

namespace dws {

Cycle
Crossbar::transfer(Cycle earliest, int bytes)
{
    const Cycle start = earliest > nextFree ? earliest : nextFree;
    const auto occupancy = static_cast<Cycle>(
            (bytes + bytesPerCycle - 1.0) / bytesPerCycle);
    nextFree = start + (occupancy ? occupancy : 1);
    transfers++;
    return nextFree + latency;
}

} // namespace dws
