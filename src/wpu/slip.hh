/**
 * @file
 * Adaptive-slip threshold controller (paper Section 5.7; Tarjan et al.,
 * "Increasing memory miss tolerance for SIMD cores", SC 2009).
 *
 * Slip lets the threads of a warp that hit the cache continue while the
 * missing threads stay suspended until the run-ahead threads revisit
 * the same memory instruction. The number of concurrently suspended
 * threads per warp is bounded by an adaptive threshold: every profiling
 * interval (100k cycles) the threshold is incremented if the WPU spent
 * more than 70% of the time waiting for memory, and decremented if the
 * pipeline was actively executing more than 50% of the time.
 */

#ifndef DWS_WPU_SLIP_HH
#define DWS_WPU_SLIP_HH

#include "sim/config.hh"
#include "sim/types.hh"

namespace dws {

/** Per-WPU adaptive threshold for slip. */
class SlipController
{
  public:
    /**
     * @param cfg       the slip policy parameters
     * @param simdWidth upper bound for the threshold
     */
    SlipController(const PolicyConfig &cfg, int simdWidth)
        : cfg(cfg), width(simdWidth),
          maxDiv(simdWidth / 2 > 0 ? simdWidth / 2 : 1)
    {}

    /** @return the current maximum allowed suspended-thread count. */
    int maxDivergence() const { return maxDiv; }

    /**
     * @return true if suspending `missCount` more threads (on top of
     *         `alreadySuspended`) stays within the threshold.
     */
    bool
    maySlip(int alreadySuspended, int missCount) const
    {
        return alreadySuspended + missCount <= maxDiv;
    }

    /** @return the profiling interval in cycles. */
    Cycle interval() const { return cfg.slipInterval; }

    /**
     * End-of-interval adaptation.
     *
     * @param activeCycles   cycles spent issuing during the interval
     * @param memWaitCycles  cycles stalled on memory during the interval
     * @param intervalCycles length of the interval
     */
    void
    adapt(Cycle activeCycles, Cycle memWaitCycles, Cycle intervalCycles)
    {
        if (intervalCycles == 0)
            return;
        const double memFrac =
                double(memWaitCycles) / double(intervalCycles);
        const double activeFrac =
                double(activeCycles) / double(intervalCycles);
        if (memFrac > cfg.slipRaiseMemFrac) {
            if (maxDiv < width)
                maxDiv++;
        } else if (activeFrac > cfg.slipLowerActiveFrac) {
            if (maxDiv > 0)
                maxDiv--;
        }
    }

  private:
    PolicyConfig cfg;
    int width;
    int maxDiv;
};

} // namespace dws

#endif // DWS_WPU_SLIP_HH
