/**
 * @file
 * SimdGroup: one independently schedulable SIMD entity.
 *
 * A full (undivided) warp is the root group covering the whole SIMD
 * width; dynamic warp subdivision creates additional groups
 * (warp-splits) that share the warp's register file but carry their own
 * pc, active mask, private re-convergence frames and memory-wait state
 * (paper Sections 4.4 and 5.4). Each group corresponds to one entry of
 * the warp-split table once its warp is subdivided.
 */

#ifndef DWS_WPU_SIMD_GROUP_HH
#define DWS_WPU_SIMD_GROUP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "wpu/frame.hh"
#include "wpu/mask.hh"

namespace dws {

/** Scheduling state of a SIMD group. */
enum class GroupState : std::uint8_t {
    /** May be issued by the scheduler. */
    Ready,
    /** Suspended until outstanding cache accesses complete. */
    WaitMem,
    /** Re-attempting a partially issued memory access (MSHRs full). */
    WaitRetry,
    /** Arrived at a re-convergence barrier; waiting for siblings. */
    WaitReconv,
    /** Arrived at a global (kernel-wide) barrier. */
    WaitBarrier,
    /** All lanes halted; entry is reclaimable. */
    Dead,
};

/** @return printable state name. */
const char *groupStateName(GroupState s);

/** A partially issued SIMD memory access awaiting retry. */
struct PendingAccess
{
    bool active = false;
    bool write = false;
    /** Unique line addresses not yet accepted by the cache. */
    std::vector<Addr> lines;
    /** Lanes mapped to each pending line (parallel to lines). */
    std::vector<ThreadMask> laneMasks;
    /** Accumulated outcome of lanes already issued. */
    ThreadMask hitMask = 0;
    ThreadMask missMask = 0;
    /** Latest completion among already-issued hit lanes. */
    Cycle hitReadyAt = 0;
    /** Latest completion among already-issued miss lanes. */
    Cycle missReadyAt = 0;

    /** Return to the default-constructed state, keeping vector storage. */
    void
    reset()
    {
        active = false;
        write = false;
        lines.clear();
        laneMasks.clear();
        hitMask = 0;
        missMask = 0;
        hitReadyAt = 0;
        missReadyAt = 0;
    }
};

/** One schedulable SIMD entity (a full warp or a warp-split). */
struct SimdGroup
{
    GroupId id = -1;
    WarpId warp = -1;

    /** Next pc to execute. */
    Pc pc = 0;

    /** Lanes this group currently drives (never includes halted lanes). */
    ThreadMask mask = 0;

    /**
     * Private re-convergence stack. Invariant: frames.back().mask,
     * intersected with live lanes, equals mask. When the stack empties
     * the group has reached its barrier.
     */
    std::vector<Frame> frames;

    /** Barrier at which this group re-unites with its siblings. */
    BarrierRef barrier;

    GroupState state = GroupState::Ready;

    /** Lanes with outstanding memory requests (WaitMem only). */
    ThreadMask pendingMem = 0;

    /** Earliest cycle the group may issue again. */
    Cycle readyAt = 0;

    /**
     * Memory-divergence split under BranchLimited re-convergence: the
     * group must stop at the next conditional branch or post-dominator
     * and wait for its sibling (Section 5.3.1).
     */
    bool branchLimited = false;

    /** Holds one of the WPU's scheduler slots. */
    bool hasSlot = false;

    /** Created by a branch subdivision (scheduling hint only). */
    bool fromBranchSplit = false;

    /** Membership flag for the scheduler's ready list (O(1) updates). */
    bool inReadyList = false;

    /** Retry buffer for a partially issued access. */
    PendingAccess pending;

    /** pc of the memory instruction being waited on (for revive/stats). */
    Pc memPc = 0;

    /** @return true if the group can be considered by the scheduler. */
    bool
    issuable(Cycle now) const
    {
        return (state == GroupState::Ready ||
                state == GroupState::WaitRetry) &&
               readyAt <= now && hasSlot && mask != 0;
    }

    /** @return lanes whose memory requests have completed (WaitMem). */
    ThreadMask doneLanes() const { return mask & ~pendingMem; }

    /** @return true if this group is eligible for a revive split. */
    bool
    reviveEligible() const
    {
        return state == GroupState::WaitMem && pendingMem != 0 &&
               doneLanes() != 0;
    }

    /**
     * Reset a pooled group for reuse, keeping the frames and pending
     * vectors' storage. The arena hands out recycled groups with every
     * field at its default; a fresh id is assigned by the WPU so stale
     * wake events addressed to the previous occupant stay harmless.
     */
    void
    recycle()
    {
        id = -1;
        warp = -1;
        pc = 0;
        mask = 0;
        frames.clear();
        barrier.reset();
        state = GroupState::Ready;
        pendingMem = 0;
        readyAt = 0;
        branchLimited = false;
        hasSlot = false;
        fromBranchSplit = false;
        inReadyList = false;
        pending.reset();
        memPc = 0;
    }
};

} // namespace dws

#endif // DWS_WPU_SIMD_GROUP_HH
