/**
 * @file
 * The WPU's SIMD-group scheduler (paper Sections 3.3 and 6.6).
 *
 * The scheduler has a fixed number of slots (the paper doubles a
 * conventional warp scheduler: 2 x warps). A SIMD group must hold a slot
 * to be issued; groups beyond the slot count sit idle until a slot
 * frees. A group retains its slot across memory waits and releases it
 * when it reaches a synchronization point (re-convergence barrier,
 * global barrier) or dies. Ready groups without slots queue FIFO.
 * Issue selection is round-robin among issuable slot holders; switching
 * groups costs no extra latency.
 */

#ifndef DWS_WPU_SCHEDULER_HH
#define DWS_WPU_SCHEDULER_HH

#include <deque>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"
#include "wpu/simd_group.hh"

namespace dws {

/** Slot management and round-robin selection. */
class Scheduler
{
  public:
    explicit Scheduler(int slots) : capacity(slots) {}

    /** @return true if a free slot exists. */
    bool slotAvailable() const { return used < capacity; }

    /**
     * Try to give the group a slot; otherwise append it to the FIFO
     * wait queue. Idempotent for groups that already hold a slot.
     */
    void requestSlot(SimdGroup *g);

    /** Release the group's slot (and grant it to the queue head). */
    void releaseSlot(SimdGroup *g);

    /** Remove a (dying) group from the wait queue if queued. */
    void dequeue(GroupId id);

    /**
     * Re-file a group in the ready list after any change to its state
     * or slot. Membership is `hasSlot && (Ready || WaitRetry)` — a
     * superset of issuable() (which additionally gates on readyAt and a
     * non-empty mask), so pick() only ever needs to look here. Must be
     * called from every state-transition site; Wpu::setGroupState and
     * the slot-granting paths do so.
     */
    void updateReady(SimdGroup *g);

    /**
     * Round-robin selection of the next issuable group over the ready
     * list, by ascending id starting after the last picked id. New
     * splits get fresh (larger) ids, so siblings take turns naturally.
     *
     * @param now current cycle
     * @return the chosen group, or nullptr if none is issuable
     */
    SimdGroup *pick(Cycle now);

    /** @return true if any ready-list group is issuable this cycle. */
    bool
    anyIssuableAt(Cycle now) const
    {
        for (const SimdGroup *g : ready)
            if (g->issuable(now))
                return true;
        return false;
    }

    /** @return slots currently held. */
    int slotsUsed() const { return used; }

    /** @return the ready list, ascending by group id (audits). */
    const std::vector<SimdGroup *> &readyList() const { return ready; }

    /** @return true if the group waits in the slot queue (audits). */
    bool
    isQueued(GroupId id) const
    {
        for (const SimdGroup *q : waitQueue)
            if (q->id == id)
                return true;
        return false;
    }

    /** @return the FIFO slot wait queue (audits). */
    const std::deque<SimdGroup *> &queued() const { return waitQueue; }

    /** @return ready-list depth (metrics timeline). */
    int readyCount() const { return static_cast<int>(ready.size()); }

    /** Attach the tracer for slot-occupancy records (nullptr = off). */
    void
    setTracer(Tracer *t, WpuId wpu)
    {
        trace_ = t;
        wpuId_ = wpu;
    }

  private:
    /** The fault injector skews the slot count (src/fault/). */
    friend class FaultInjector;

    /** Grant free slots to queued groups (FIFO). */
    void drainQueue();

    Tracer *trace_ = nullptr;
    WpuId wpuId_ = 0;

    int capacity;
    int used = 0;
    /**
     * Groups waiting for a slot, FIFO. A single queue of pointers:
     * the previous id-deque + pointer-vector pair had to be mutated in
     * lockstep, and a desync left a dangling SimdGroup*.
     */
    std::deque<SimdGroup *> waitQueue;
    /**
     * Slot holders in state Ready or WaitRetry, ascending by id.
     * Maintained incrementally at state/slot transitions so pick() and
     * the per-cycle issuable probe touch only schedulable groups, not
     * every live group. Mirrored by SimdGroup::inReadyList.
     */
    std::vector<SimdGroup *> ready;
    GroupId lastPicked = -1;
    int lastWarp = -1;
};

} // namespace dws

#endif // DWS_WPU_SCHEDULER_HH
