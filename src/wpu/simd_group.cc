#include "wpu/simd_group.hh"

namespace dws {

const char *
groupStateName(GroupState s)
{
    switch (s) {
      case GroupState::Ready:       return "Ready";
      case GroupState::WaitMem:     return "WaitMem";
      case GroupState::WaitRetry:   return "WaitRetry";
      case GroupState::WaitReconv:  return "WaitReconv";
      case GroupState::WaitBarrier: return "WaitBarrier";
      case GroupState::Dead:        return "Dead";
    }
    return "?";
}

} // namespace dws
