// SlipController is header-only; see slip.hh.
#include "wpu/slip.hh"
