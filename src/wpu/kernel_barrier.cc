#include "wpu/kernel_barrier.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "wpu/wpu.hh"

namespace dws {

void
KernelBarrier::arrive(int count, Pc barPc, Cycle now)
{
    if (pendingBarPc == kPcUnknown)
        pendingBarPc = barPc;
    else if (pendingBarPc != barPc)
        panic("threads at different kernel barriers (%d vs %d)",
              pendingBarPc, barPc);
    arrived += count;
    if (arrived > alive) {
        for (Wpu *w : wpus)
            std::fputs(w->dumpState().c_str(), stderr);
        panic("kernel barrier overflow: %d arrived, %d alive", arrived,
              alive);
    }
    check(now);
}

void
KernelBarrier::onHalt(int count, Cycle now)
{
    alive -= count;
    if (alive < 0)
        panic("kernel barrier underflow: %d alive", alive);
    check(now);
}

void
KernelBarrier::check(Cycle now)
{
    if (arrived == 0 || arrived != alive)
        return;
    arrived = 0;
    pendingBarPc = kPcUnknown;
    // The release always happens inside some WPU's tick (a Bar issue or
    // a halt). That WPU's id tells each releasee whether its own tick
    // for this cycle is already behind it (stall-accounting boundary).
    WpuId releaser = -1;
    for (const Wpu *w : wpus) {
        if (w->midTick()) {
            releaser = w->id();
            break;
        }
    }
    for (Wpu *w : wpus)
        w->releaseKernelBarrier(now, releaser);
}

} // namespace dws
